package repro

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// This file is the engine's observability face: an optional binding of a
// Searcher or ShardedSearcher to an internal/telemetry Registry, feeding
// every query's core.Stats into aggregate counters. The paper's central
// claim — dimensional testing settles most candidates without verification
// — becomes a live time series here: rknn_candidates_*_total track the
// filter/refinement machinery exactly as Stats reports it per query, and
// rknn_pruning_ratio exposes the settled fraction as a scrape-time gauge.
// See DESIGN.md, "Observability".
//
// Metric mapping (counter += per-query Stats field, per back-end):
//
//	rknn_scan_depth_total                 ScanDepth
//	rknn_candidates_generated_total       FilterSize + Excluded (= Stats.Candidates)
//	rknn_candidates_excluded_total        Excluded (RDT+ exclusions)
//	rknn_candidates_lazy_accepted_total   LazyAccepts (Assertion 2)
//	rknn_candidates_lazy_settled_total    LazyAccepts + LazyRejects
//	rknn_candidates_verified_total        Verified (refinement kNN queries)
//	rknn_distance_comps_total             DistanceComps
//	rknn_approx_candidates_total          ScanDepth (approximate back-ends only)
//
// Approximate back-ends (Searcher.Approximate) additionally register
// rknn_approx_candidates_total — the hash-collision candidates the
// approximate ranking actually streamed, which for LSH is the probed
// fraction of the dataset. On an approximate engine this deliberately
// equals rknn_scan_depth_total for the same backend label: the family's
// value is that it EXISTS only in the approximate regime, giving
// dashboards and alerts a stable name that cannot silently match an exact
// engine's scan depth. They also register the scrape-time
// rknn_recall_estimate gauge,
// a sampled cross-check of the engine's answers against the exact
// brute-force oracle over the current snapshot (see approx.go; cached per
// snapshot, so scrapes of an unchanged dataset are free).
//
// All instruments are resolved once at registration, so the per-query path
// is lock-free: counter increments and one histogram observation.

// Operation labels: the query operations plus the write path (inserts and
// applied deletes), all series of rknn_queries_total and
// rknn_query_duration_seconds.
const (
	opRkNN      = "rknn"
	opRkNNPoint = "rknn_point"
	opBatch     = "batch"
	opKNN       = "knn"
	opInsert    = "insert"
	opDelete    = "delete"
)

var queryOps = []string{opRkNN, opRkNNPoint, opBatch, opKNN, opInsert, opDelete}

// opInstruments is the per-operation slice of the engine metrics.
type opInstruments struct {
	queries *telemetry.Counter
	latency *telemetry.Histogram
}

// engineTelemetry aggregates per-query work counters for one engine
// (labeled by back-end). Nil receivers are inert, so the query path can
// call through unconditionally after one atomic load.
type engineTelemetry struct {
	ops          map[string]opInstruments
	scanDepth    *telemetry.Counter
	generated    *telemetry.Counter
	excluded     *telemetry.Counter
	lazyAccepted *telemetry.Counter
	lazySettled  *telemetry.Counter
	verified     *telemetry.Counter
	distComps    *telemetry.Counter
	// approxCandidates is registered only for approximate back-ends; nil
	// keeps the exact engines' exposition free of approximate series.
	approxCandidates *telemetry.Counter
}

func newEngineTelemetry(reg *telemetry.Registry, backend string, approx bool) *engineTelemetry {
	queries := reg.CounterVec("rknn_queries_total",
		"Operations answered successfully, by operation (queries and writes). Batch members count individually.",
		"backend", "op")
	latency := reg.HistogramVec("rknn_query_duration_seconds",
		"Engine-side operation latency, by operation. Batch calls observe once per batch.",
		telemetry.DefaultLatencyBuckets, "backend", "op")
	t := &engineTelemetry{ops: make(map[string]opInstruments, len(queryOps))}
	for _, op := range queryOps {
		t.ops[op] = opInstruments{queries: queries.With(backend, op), latency: latency.With(backend, op)}
	}
	t.scanDepth = reg.CounterVec("rknn_scan_depth_total",
		"Forward neighbors retrieved by the expanding search (Stats.ScanDepth).",
		"backend").With(backend)
	t.generated = reg.CounterVec("rknn_candidates_generated_total",
		"Candidates that entered the witness machinery (Stats.FilterSize + Stats.Excluded).",
		"backend").With(backend)
	t.excluded = reg.CounterVec("rknn_candidates_excluded_total",
		"Candidates RDT+ refused to insert into the filter set (Stats.Excluded).",
		"backend").With(backend)
	t.lazyAccepted = reg.CounterVec("rknn_candidates_lazy_accepted_total",
		"Candidates accepted by Assertion 2 without verification (Stats.LazyAccepts).",
		"backend").With(backend)
	t.lazySettled = reg.CounterVec("rknn_candidates_lazy_settled_total",
		"Candidates settled without a verification kNN query (Stats.LazyAccepts + Stats.LazyRejects).",
		"backend").With(backend)
	t.verified = reg.CounterVec("rknn_candidates_verified_total",
		"Explicit refinement-phase kNN verifications (Stats.Verified).",
		"backend").With(backend)
	t.distComps = reg.CounterVec("rknn_distance_comps_total",
		"Distance computations performed by the witness machinery (Stats.DistanceComps).",
		"backend").With(backend)
	if approx {
		t.approxCandidates = reg.CounterVec("rknn_approx_candidates_total",
			"Candidates streamed by the approximate neighbor ranking (Stats.ScanDepth; equals rknn_scan_depth_total, registered only for approximate back-ends).",
			"backend").With(backend)
	}
	generated, verified := t.generated, t.verified
	reg.GaugeFunc("rknn_pruning_ratio",
		"Live fraction of candidates settled without verification: 1 - verified/generated.",
		func() float64 {
			g := float64(generated.Value())
			if g == 0 {
				return 0
			}
			r := 1 - float64(verified.Value())/g
			if r < 0 {
				return 0 // sharded merge re-verification can exceed the scatter candidates
			}
			return r
		},
		telemetry.Label{Name: "backend", Value: backend})
	return t
}

// observeOp records n answered queries and one latency observation for op.
func (t *engineTelemetry) observeOp(op string, n int, d time.Duration) {
	t.countQueries(op, n)
	t.observeLatency(op, d)
}

// countQueries records n answered queries for op without a latency
// observation — the per-member half of batch accounting, whose latency is
// observed once per batch call so the histogram's semantics match the
// unsharded engine.
func (t *engineTelemetry) countQueries(op string, n int) {
	if t == nil {
		return
	}
	t.ops[op].queries.Add(int64(n))
}

// observeLatency records one latency observation for op.
func (t *engineTelemetry) observeLatency(op string, d time.Duration) {
	if t == nil {
		return
	}
	t.ops[op].latency.Observe(d.Seconds())
}

// observeStats feeds one query's work counters into the aggregates.
func (t *engineTelemetry) observeStats(st Stats) {
	if t == nil {
		return
	}
	t.scanDepth.Add(int64(st.ScanDepth))
	t.generated.Add(int64(st.FilterSize + st.Excluded))
	t.excluded.Add(int64(st.Excluded))
	t.lazyAccepted.Add(int64(st.LazyAccepts))
	t.lazySettled.Add(int64(st.LazyAccepts + st.LazyRejects))
	t.verified.Add(int64(st.Verified))
	t.distComps.Add(st.DistanceComps)
	if t.approxCandidates != nil {
		t.approxCandidates.Add(int64(st.ScanDepth))
	}
}

// shardTelemetry aggregates the scatter-side work of one shard — the
// paper's pruning counters per partition, so uneven shards show up as
// uneven series.
type shardTelemetry struct {
	scatter     *telemetry.Counter
	generated   *telemetry.Counter
	excluded    *telemetry.Counter
	lazySettled *telemetry.Counter
	verified    *telemetry.Counter
}

func newShardTelemetry(reg *telemetry.Registry, shard int, slot *shardSlot) *shardTelemetry {
	label := strconv.Itoa(shard)
	st := &shardTelemetry{
		scatter: reg.CounterVec("rknn_shard_scatter_queries_total",
			"Scatter-gather visits answered by this shard.", "shard").With(label),
		generated: reg.CounterVec("rknn_shard_candidates_generated_total",
			"Candidates generated by this shard's expanding searches.", "shard").With(label),
		excluded: reg.CounterVec("rknn_shard_candidates_excluded_total",
			"RDT+ exclusions on this shard.", "shard").With(label),
		lazySettled: reg.CounterVec("rknn_shard_candidates_lazy_settled_total",
			"Candidates this shard settled without verification.", "shard").With(label),
		verified: reg.CounterVec("rknn_shard_candidates_verified_total",
			"Refinement verifications run inside this shard.", "shard").With(label),
	}
	reg.GaugeFunc("rknn_shard_points",
		"Live points currently held by this shard.",
		func() float64 {
			if eng := slot.eng.Load(); eng != nil {
				return float64(eng.Len())
			}
			return 0
		},
		telemetry.Label{Name: "shard", Value: label})
	return st
}

// observe feeds one scatter visit's core stats into the shard aggregates.
func (st *shardTelemetry) observe(cs core.Stats) {
	st.scatter.Inc()
	st.generated.Add(int64(cs.FilterSize + cs.Excluded))
	st.excluded.Add(int64(cs.Excluded))
	st.lazySettled.Add(int64(cs.LazyAccepts + cs.LazyRejects))
	st.verified.Add(int64(cs.Verified))
}

// WithTelemetry registers the engine's query metrics in reg and streams
// every answered query's work counters into it — the per-query Stats the
// engine already computes, aggregated as live Prometheus series. The same
// Registry can back several engines (series are labeled by back-end) and
// the HTTP server (internal/server shares it via server.WithRegistry).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.reg = reg }
}

// EnableTelemetry binds the Searcher to reg after construction — the hook
// for engines that do not pass through New, such as recovery paths (Load,
// Open). Safe to call while queries are in flight; queries started before
// the call are not recorded. Approximate back-ends additionally register
// the scrape-time rknn_recall_estimate gauge (sampled oracle cross-check,
// cached per snapshot and recomputed at most once per
// recallRecomputeInterval under continuous writes; -1 when an estimate
// fails).
func (s *Searcher) EnableTelemetry(reg *telemetry.Registry) {
	s.tel.Store(newEngineTelemetry(reg, string(s.backend), s.Approximate()))
	registerWriteGauges(reg, string(s.backend), s.MemtableLen, s.Compactions)
	if s.quant {
		registerQuantCounters(reg, string(s.backend), s.QuantFilterStats)
	}
	s.compactHist.Store(compactionHistogram(reg, string(s.backend)))
	if s.Approximate() {
		cache := &recallCache{}
		reg.GaugeFunc("rknn_recall_estimate",
			"Sampled reverse-neighbor recall of the approximate engine against the exact oracle (per-snapshot cached, rate-limited, background-refreshed on large datasets; -1 on failure or before the first estimate).",
			func() float64 { return cache.estimate(s) },
			telemetry.Label{Name: "backend", Value: string(s.backend)})
	}
}

// EnableTelemetry binds the ShardedSearcher to reg: engine-level metrics
// plus per-shard scatter counters and live shard size gauges. Like the
// Searcher form, it is safe to call while queries are in flight. An
// approximate sharded engine records rknn_approx_candidates_total; the
// recall gauge is a single-engine surface (its oracle reads one snapshot,
// not a scatter set).
func (ss *ShardedSearcher) EnableTelemetry(reg *telemetry.Registry) {
	sts := make([]*shardTelemetry, len(ss.slots))
	for i := range sts {
		sts[i] = newShardTelemetry(reg, i, ss.slots[i])
	}
	ss.shardTel.Store(&sts)
	ss.tel.Store(newEngineTelemetry(reg, string(ss.backend), ss.Approximate()))
	registerWriteGauges(reg, string(ss.backend), ss.MemtableLen, ss.Compactions)
	if ss.quant {
		registerQuantCounters(reg, string(ss.backend), ss.QuantFilterStats)
	}
	// Every shard engine (current and future — see newShardEngine) shares
	// one per-backend histogram, so the compaction-duration series sums
	// across shards.
	h := compactionHistogram(reg, string(ss.backend))
	ss.compactHist.Store(h)
	for _, slot := range ss.slots {
		if eng := slot.eng.Load(); eng != nil {
			eng.compactHist.Store(h)
		}
	}
}

// compactionHistogram resolves the per-backend compaction-duration
// histogram — the cost of each O(n) delta fold, previously only counted.
func compactionHistogram(reg *telemetry.Registry, backend string) *telemetry.Histogram {
	return reg.HistogramVec("rknn_compaction_duration_seconds",
		"Duration of delta-overlay compaction folds (the O(n) step of the write path), per backend, summed across shards.",
		telemetry.DefaultLatencyBuckets, "backend").With(backend)
}

// registerWriteGauges registers the incremental-write-path surfaces: the
// live delta-overlay size and the monotone compaction count, both computed
// at scrape time from state the engine already tracks.
func registerWriteGauges(reg *telemetry.Registry, backend string, memtable func() int, compactions func() int64) {
	reg.GaugeFunc("rknn_memtable_points",
		"Delta-overlay memtable rows awaiting compaction (summed across shards for a sharded engine).",
		func() float64 { return float64(memtable()) },
		telemetry.Label{Name: "backend", Value: backend})
	reg.CounterFunc("rknn_compactions_total",
		"Delta-overlay compactions folded into a fresh base index (summed across shards for a sharded engine).",
		func() float64 { return float64(compactions()) },
		telemetry.Label{Name: "backend", Value: backend})
}

// registerQuantCounters registers the quantized-pre-filter candidate
// counters: rows admitted to exact float verification and rows screened
// out by the quantized lower bounds. Both are monotone lifetime totals
// computed at scrape time (summed across shards for a sharded engine), so
// rate(admitted)/rate(admitted+screened) is the live admission fraction.
func registerQuantCounters(reg *telemetry.Registry, backend string, stats func() (admitted, screened int64)) {
	reg.CounterFunc("rknn_candidates_quant_admitted_total",
		"Candidate rows the quantized pre-filter admitted to exact float verification (summed across shards for a sharded engine).",
		func() float64 { a, _ := stats(); return float64(a) },
		telemetry.Label{Name: "backend", Value: backend})
	reg.CounterFunc("rknn_candidates_quant_screened_total",
		"Candidate rows the quantized pre-filter screened out before exact float verification (summed across shards for a sharded engine).",
		func() float64 { _, s := stats(); return float64(s) },
		telemetry.Label{Name: "backend", Value: backend})
}

// fromCore converts the internal per-query counters to the public Stats.
func fromCore(st core.Stats) Stats {
	return Stats{
		ScanDepth:     st.ScanDepth,
		FilterSize:    st.FilterSize,
		Excluded:      st.Excluded,
		LazyAccepts:   st.LazyAccepts,
		LazyRejects:   st.LazyRejects,
		Verified:      st.Verified,
		DistanceComps: st.DistanceComps,
		Omega:         st.Omega,
	}
}
