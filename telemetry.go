package repro

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// This file is the engine's observability face: an optional binding of a
// Searcher or ShardedSearcher to an internal/telemetry Registry, feeding
// every query's core.Stats into aggregate counters. The paper's central
// claim — dimensional testing settles most candidates without verification
// — becomes a live time series here: rknn_candidates_*_total track the
// filter/refinement machinery exactly as Stats reports it per query, and
// rknn_pruning_ratio exposes the settled fraction as a scrape-time gauge.
// See DESIGN.md, "Observability".
//
// Metric mapping (counter += per-query Stats field, per back-end):
//
//	rknn_scan_depth_total                 ScanDepth
//	rknn_candidates_generated_total       FilterSize + Excluded (= Stats.Candidates)
//	rknn_candidates_excluded_total        Excluded (RDT+ exclusions)
//	rknn_candidates_lazy_accepted_total   LazyAccepts (Assertion 2)
//	rknn_candidates_lazy_settled_total    LazyAccepts + LazyRejects
//	rknn_candidates_verified_total        Verified (refinement kNN queries)
//	rknn_distance_comps_total             DistanceComps
//	rknn_approx_candidates_total          ScanDepth (approximate back-ends only)
//
// Approximate back-ends (Searcher.Approximate) additionally register
// rknn_approx_candidates_total — the hash-collision candidates the
// approximate ranking actually streamed, which for LSH is the probed
// fraction of the dataset. On an approximate engine this deliberately
// equals rknn_scan_depth_total for the same backend label: the family's
// value is that it EXISTS only in the approximate regime, giving
// dashboards and alerts a stable name that cannot silently match an exact
// engine's scan depth. They also register the scrape-time
// rknn_recall_estimate gauge,
// a sampled cross-check of the engine's answers against the exact
// brute-force oracle over the current snapshot (see approx.go; cached per
// snapshot, so scrapes of an unchanged dataset are free).
//
// All instruments are resolved once at registration, so the per-query path
// is lock-free: counter increments and one histogram observation.

// Operation labels: the query operations plus the write path (inserts and
// applied deletes), all series of rknn_queries_total and
// rknn_query_duration_seconds.
const (
	opRkNN      = "rknn"
	opRkNNPoint = "rknn_point"
	opBatch     = "batch"
	opKNN       = "knn"
	opInsert    = "insert"
	opDelete    = "delete"
)

var queryOps = []string{opRkNN, opRkNNPoint, opBatch, opKNN, opInsert, opDelete}

// opInstruments is the per-operation slice of the engine metrics. window
// wraps the same cumulative latency histogram with the sliding-window
// ring, so one Observe feeds the lifetime exposition and the last-1m/5m
// views side by side.
type opInstruments struct {
	queries *telemetry.Counter
	latency *telemetry.Histogram
	window  *telemetry.Windowed
}

// engineTelemetry aggregates per-query work counters for one engine
// (labeled by back-end). Nil receivers are inert, so the query path can
// call through unconditionally after one atomic load.
type engineTelemetry struct {
	ops          map[string]opInstruments
	scanDepth    *telemetry.Counter
	generated    *telemetry.Counter
	excluded     *telemetry.Counter
	lazyAccepted *telemetry.Counter
	lazySettled  *telemetry.Counter
	verified     *telemetry.Counter
	distComps    *telemetry.Counter
	// approxCandidates is registered only for approximate back-ends; nil
	// keeps the exact engines' exposition free of approximate series.
	approxCandidates *telemetry.Counter

	// Windowed shadows of the pruning counters, banked per query at its
	// completion time so /statsz can report "settled fraction over the last
	// minute" — the live form of the paper's pruning-effectiveness claim.
	scanWin    *telemetry.WindowedCounter
	genWin     *telemetry.WindowedCounter
	settledWin *telemetry.WindowedCounter
	verWin     *telemetry.WindowedCounter

	// recallWin windows the sampled recall estimates of an approximate
	// engine (fed at scrape time by the rknn_recall_estimate gauge); nil on
	// exact engines.
	recallWin *telemetry.Windowed

	// workload is the Space-Saving hot-region sketch behind
	// /v1/admin/analytics; grid quantizes query points into its signature
	// cells. Both are built by EnableTelemetry from the live dataset.
	workload *telemetry.Workload
	grid     *queryGrid
}

func newEngineTelemetry(reg *telemetry.Registry, backend string, approx bool) *engineTelemetry {
	queries := reg.CounterVec("rknn_queries_total",
		"Operations answered successfully, by operation (queries and writes). Batch members count individually.",
		"backend", "op")
	latency := reg.HistogramVec("rknn_query_duration_seconds",
		"Engine-side operation latency, by operation. Batch calls observe once per batch.",
		telemetry.DefaultLatencyBuckets, "backend", "op")
	t := &engineTelemetry{
		ops:        make(map[string]opInstruments, len(queryOps)),
		scanWin:    telemetry.NewDefaultWindowedCounter(),
		genWin:     telemetry.NewDefaultWindowedCounter(),
		settledWin: telemetry.NewDefaultWindowedCounter(),
		verWin:     telemetry.NewDefaultWindowedCounter(),
	}
	for _, op := range queryOps {
		lh := latency.With(backend, op)
		t.ops[op] = opInstruments{
			queries: queries.With(backend, op),
			latency: lh,
			window:  telemetry.NewDefaultWindowed(lh),
		}
	}
	t.scanDepth = reg.CounterVec("rknn_scan_depth_total",
		"Forward neighbors retrieved by the expanding search (Stats.ScanDepth).",
		"backend").With(backend)
	t.generated = reg.CounterVec("rknn_candidates_generated_total",
		"Candidates that entered the witness machinery (Stats.FilterSize + Stats.Excluded).",
		"backend").With(backend)
	t.excluded = reg.CounterVec("rknn_candidates_excluded_total",
		"Candidates RDT+ refused to insert into the filter set (Stats.Excluded).",
		"backend").With(backend)
	t.lazyAccepted = reg.CounterVec("rknn_candidates_lazy_accepted_total",
		"Candidates accepted by Assertion 2 without verification (Stats.LazyAccepts).",
		"backend").With(backend)
	t.lazySettled = reg.CounterVec("rknn_candidates_lazy_settled_total",
		"Candidates settled without a verification kNN query (Stats.LazyAccepts + Stats.LazyRejects).",
		"backend").With(backend)
	t.verified = reg.CounterVec("rknn_candidates_verified_total",
		"Explicit refinement-phase kNN verifications (Stats.Verified).",
		"backend").With(backend)
	t.distComps = reg.CounterVec("rknn_distance_comps_total",
		"Distance computations performed by the witness machinery (Stats.DistanceComps).",
		"backend").With(backend)
	if approx {
		t.approxCandidates = reg.CounterVec("rknn_approx_candidates_total",
			"Candidates streamed by the approximate neighbor ranking (Stats.ScanDepth; equals rknn_scan_depth_total, registered only for approximate back-ends).",
			"backend").With(backend)
	}
	generated, verified := t.generated, t.verified
	reg.GaugeFunc("rknn_pruning_ratio",
		"Live fraction of candidates settled without verification: 1 - verified/generated.",
		func() float64 {
			g := float64(generated.Value())
			if g == 0 {
				return 0
			}
			r := 1 - float64(verified.Value())/g
			if r < 0 {
				return 0 // sharded merge re-verification can exceed the scatter candidates
			}
			return r
		},
		telemetry.Label{Name: "backend", Value: backend})
	return t
}

// observeOp records n answered queries and one latency observation for op,
// measured from begin. It returns the operation's completion time (begin
// plus the measured latency) so callers can feed observeStats and the
// workload sketch without a second clock read — the windowed instruments
// take the timestamp the latency measurement already paid for.
func (t *engineTelemetry) observeOp(op string, n int, begin time.Time) time.Time {
	t.countQueries(op, n)
	return t.observeLatency(op, begin)
}

// countQueries records n answered queries for op without a latency
// observation — the per-member half of batch accounting, whose latency is
// observed once per batch call so the histogram's semantics match the
// unsharded engine.
func (t *engineTelemetry) countQueries(op string, n int) {
	if t == nil {
		return
	}
	t.ops[op].queries.Add(int64(n))
}

// observeLatency records one latency observation for op, measured from
// begin, and returns the completion time (see observeOp).
func (t *engineTelemetry) observeLatency(op string, begin time.Time) time.Time {
	if t == nil {
		return time.Time{}
	}
	d := time.Since(begin)
	at := begin.Add(d)
	// Windowed.Observe feeds the cumulative histogram and the window slice
	// covering at in one call.
	t.ops[op].window.Observe(d.Seconds(), at)
	return at
}

// observeStats feeds one query's work counters into the aggregates, banking
// the windowed shadows at the query's completion time.
func (t *engineTelemetry) observeStats(st Stats, at time.Time) {
	if t == nil {
		return
	}
	t.scanDepth.Add(int64(st.ScanDepth))
	t.generated.Add(int64(st.FilterSize + st.Excluded))
	t.excluded.Add(int64(st.Excluded))
	t.lazyAccepted.Add(int64(st.LazyAccepts))
	t.lazySettled.Add(int64(st.LazyAccepts + st.LazyRejects))
	t.verified.Add(int64(st.Verified))
	t.distComps.Add(st.DistanceComps)
	if t.approxCandidates != nil {
		t.approxCandidates.Add(int64(st.ScanDepth))
	}
	t.scanWin.Add(int64(st.ScanDepth), at)
	t.genWin.Add(int64(st.FilterSize+st.Excluded), at)
	t.settledWin.Add(int64(st.LazyAccepts+st.LazyRejects), at)
	t.verWin.Add(int64(st.Verified), at)
}

// observeWorkload records one query under its region signature in the
// analytics sketch. q may be nil (a member lookup that raced a delete, or a
// batch member — batches skip the sketch, see BatchReverseKNNContext); the
// query still counts under its op/k signature so hot traffic without a
// resolvable region remains visible.
func (t *engineTelemetry) observeWorkload(op string, k int, q []float64, st Stats, d time.Duration, at time.Time) {
	if t == nil || t.workload == nil {
		return
	}
	sig := t.grid.signature(op, k, q)
	t.workload.Observe(sig, d.Seconds(), st.ScanDepth, st.FilterSize+st.Excluded, st.LazyAccepts+st.LazyRejects, at)
}

// shardTelemetry aggregates the scatter-side work of one shard — the
// paper's pruning counters per partition, so uneven shards show up as
// uneven series.
type shardTelemetry struct {
	scatter     *telemetry.Counter
	generated   *telemetry.Counter
	excluded    *telemetry.Counter
	lazySettled *telemetry.Counter
	verified    *telemetry.Counter
}

func newShardTelemetry(reg *telemetry.Registry, shard int, slot *shardSlot) *shardTelemetry {
	label := strconv.Itoa(shard)
	st := &shardTelemetry{
		scatter: reg.CounterVec("rknn_shard_scatter_queries_total",
			"Scatter-gather visits answered by this shard.", "shard").With(label),
		generated: reg.CounterVec("rknn_shard_candidates_generated_total",
			"Candidates generated by this shard's expanding searches.", "shard").With(label),
		excluded: reg.CounterVec("rknn_shard_candidates_excluded_total",
			"RDT+ exclusions on this shard.", "shard").With(label),
		lazySettled: reg.CounterVec("rknn_shard_candidates_lazy_settled_total",
			"Candidates this shard settled without verification.", "shard").With(label),
		verified: reg.CounterVec("rknn_shard_candidates_verified_total",
			"Refinement verifications run inside this shard.", "shard").With(label),
	}
	reg.GaugeFunc("rknn_shard_points",
		"Live points currently held by this shard.",
		func() float64 {
			if eng := slot.eng.Load(); eng != nil {
				return float64(eng.Len())
			}
			return 0
		},
		telemetry.Label{Name: "shard", Value: label})
	return st
}

// observe feeds one scatter visit's core stats into the shard aggregates.
func (st *shardTelemetry) observe(cs core.Stats) {
	st.scatter.Inc()
	st.generated.Add(int64(cs.FilterSize + cs.Excluded))
	st.excluded.Add(int64(cs.Excluded))
	st.lazySettled.Add(int64(cs.LazyAccepts + cs.LazyRejects))
	st.verified.Add(int64(cs.Verified))
}

// Grid geometry for the workload signatures: cellsPerDim quantizes each
// sampled dimension into a handful of cells (the sketch wants regions, not
// points), gridSamplePoints bounds the dataset sample that calibrates the
// per-dimension ranges, and gridNamedDims is how many leading cell indices
// appear verbatim in the signature — the rest are folded into a short hash
// so high-dimensional signatures stay readable and bounded.
const (
	gridCellsPerDim  = 4
	gridSamplePoints = 256
	gridNamedDims    = 3
)

// queryGrid quantizes query points into coarse region cells, the spatial
// half of the workload signature. It is calibrated once from a dataset
// sample at EnableTelemetry time: per-dimension [min,max] split into
// gridCellsPerDim cells, with out-of-range queries clamped to the border
// cells. A nil grid degrades to op/k-only signatures.
type queryGrid struct {
	min   []float64
	width []float64 // 0 for a constant dimension: everything lands in cell 0
}

// newQueryGrid calibrates a grid from up to gridSamplePoints points of ix.
// Point IDs are probed defensively (a concurrent delete can leave holes in
// an overlay's ID space); a panicked probe just ends the sample early.
// Returns nil when no points could be sampled.
func newQueryGrid(ix index.Index) *queryGrid {
	if ix == nil {
		return nil
	}
	n, d := ix.Len(), ix.Dim()
	if n == 0 || d == 0 {
		return nil
	}
	g := &queryGrid{min: make([]float64, d), width: make([]float64, d)}
	max := make([]float64, d)
	sampled := 0
	step := n / gridSamplePoints
	if step < 1 {
		step = 1
	}
	func() {
		defer func() { _ = recover() }()
		for id := 0; id < n; id += step {
			p := ix.Point(id)
			if len(p) != d {
				continue
			}
			if sampled == 0 {
				copy(g.min, p)
				copy(max, p)
			} else {
				for j, v := range p {
					if v < g.min[j] {
						g.min[j] = v
					}
					if v > max[j] {
						max[j] = v
					}
				}
			}
			sampled++
		}
	}()
	if sampled == 0 {
		return nil
	}
	for j := range g.width {
		g.width[j] = (max[j] - g.min[j]) / gridCellsPerDim
	}
	return g
}

// cell renders q's grid cell: the first gridNamedDims indices verbatim,
// higher dimensions folded into a 4-hex-digit FNV hash.
func (g *queryGrid) cell(q []float64) string {
	if g == nil || len(q) != len(g.min) {
		return "?"
	}
	var b strings.Builder
	h := fnv.New32a()
	for j, v := range q {
		c := 0
		if g.width[j] > 0 {
			c = int((v - g.min[j]) / g.width[j])
			if c < 0 {
				c = 0
			}
			if c >= gridCellsPerDim {
				c = gridCellsPerDim - 1
			}
		}
		if j < gridNamedDims {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		} else {
			h.Write([]byte{byte(c)})
		}
	}
	if len(q) > gridNamedDims {
		fmt.Fprintf(&b, "+%04x", h.Sum32()&0xffff)
	}
	return b.String()
}

// signature builds the sketch key: operation, neighbor rank, region cell.
func (g *queryGrid) signature(op string, k int, q []float64) string {
	if q == nil {
		return op + " k=" + strconv.Itoa(k)
	}
	return op + " k=" + strconv.Itoa(k) + " @" + g.cell(q)
}

// statsWindows are the trailing windows every live-operations surface
// reports, keyed the way /statsz and the dashboards spell them.
var statsWindows = map[string]time.Duration{
	"1m": time.Minute,
	"5m": 5 * time.Minute,
}

// recallBuckets spans [0,1] in 0.05 steps — the layout of the windowed
// recall histogram (its window mean is what surfaces; the buckets only
// bound memory).
var recallBuckets = func() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = float64(i+1) * 0.05
	}
	return out
}()

// EngineWindow is the pruning machinery's digest over one trailing window
// — the live form of the candidate aggregates /metrics exposes as
// lifetime totals.
type EngineWindow struct {
	// ScanDepth, Generated, Settled and Verified are window totals of the
	// same Stats fields the cumulative counters track.
	ScanDepth int64 `json:"scan_depth"`
	Generated int64 `json:"candidates_generated"`
	Settled   int64 `json:"candidates_lazy_settled"`
	Verified  int64 `json:"candidates_verified"`
	// PruningRatio is 1 - Verified/Generated over the window (0 with no
	// candidates), clamped at 0 like the lifetime gauge.
	PruningRatio float64 `json:"pruning_ratio"`
	// Recall is the windowed mean of the sampled recall estimates on an
	// approximate engine; -1 when absent (exact engine, or no estimate
	// landed in the window).
	Recall float64 `json:"recall_estimate"`
}

// queryWindowStats digests the per-operation latency windows: op ->
// window key -> stats. Operations silent over the longest window are
// omitted.
func (t *engineTelemetry) queryWindowStats(now time.Time) map[string]map[string]telemetry.WindowStats {
	if t == nil {
		return nil
	}
	out := make(map[string]map[string]telemetry.WindowStats)
	for op, ins := range t.ops {
		byWin := make(map[string]telemetry.WindowStats, len(statsWindows))
		seen := false
		for key, d := range statsWindows {
			st := ins.window.StatsAt(d, now)
			byWin[key] = st
			seen = seen || st.Count > 0
		}
		if seen {
			out[op] = byWin
		}
	}
	return out
}

// engineWindowStats digests the windowed pruning shadows (and recall, on
// approximate engines) per window key.
func (t *engineTelemetry) engineWindowStats(now time.Time) map[string]EngineWindow {
	if t == nil {
		return nil
	}
	out := make(map[string]EngineWindow, len(statsWindows))
	for key, d := range statsWindows {
		w := EngineWindow{
			ScanDepth: t.scanWin.SumWindowAt(d, now),
			Generated: t.genWin.SumWindowAt(d, now),
			Settled:   t.settledWin.SumWindowAt(d, now),
			Verified:  t.verWin.SumWindowAt(d, now),
			Recall:    -1,
		}
		if w.Generated > 0 {
			if r := 1 - float64(w.Verified)/float64(w.Generated); r > 0 {
				w.PruningRatio = r
			}
		}
		if t.recallWin != nil {
			if st := t.recallWin.StatsAt(d, now); st.Count > 0 {
				w.Recall = st.Mean
			}
		}
		out[key] = w
	}
	return out
}

// QueryWindowStats reports the per-operation windowed latency digests
// (op -> "1m"/"5m" -> stats) when telemetry is enabled; nil otherwise.
// The server surfaces these in /statsz next to the lifetime quantiles.
func (s *Searcher) QueryWindowStats() map[string]map[string]telemetry.WindowStats {
	return s.tel.Load().queryWindowStats(time.Now())
}

// EngineWindowStats reports the windowed pruning/recall digests
// ("1m"/"5m" -> window) when telemetry is enabled; nil otherwise.
func (s *Searcher) EngineWindowStats() map[string]EngineWindow {
	return s.tel.Load().engineWindowStats(time.Now())
}

// WorkloadTopK reports the hottest query-region signatures tracked by the
// analytics sketch, each with its latency digest over the given window.
// Nil without telemetry.
func (s *Searcher) WorkloadTopK(k int, window time.Duration) []telemetry.WorkloadStat {
	if t := s.tel.Load(); t != nil {
		return t.workload.TopK(k, window)
	}
	return nil
}

// QueryWindowStats is the sharded form of Searcher.QueryWindowStats.
func (ss *ShardedSearcher) QueryWindowStats() map[string]map[string]telemetry.WindowStats {
	return ss.tel.Load().queryWindowStats(time.Now())
}

// EngineWindowStats is the sharded form of Searcher.EngineWindowStats.
func (ss *ShardedSearcher) EngineWindowStats() map[string]EngineWindow {
	return ss.tel.Load().engineWindowStats(time.Now())
}

// WorkloadTopK is the sharded form of Searcher.WorkloadTopK.
func (ss *ShardedSearcher) WorkloadTopK(k int, window time.Duration) []telemetry.WorkloadStat {
	if t := ss.tel.Load(); t != nil {
		return t.workload.TopK(k, window)
	}
	return nil
}

// WithTelemetry registers the engine's query metrics in reg and streams
// every answered query's work counters into it — the per-query Stats the
// engine already computes, aggregated as live Prometheus series. The same
// Registry can back several engines (series are labeled by back-end) and
// the HTTP server (internal/server shares it via server.WithRegistry).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.reg = reg }
}

// EnableTelemetry binds the Searcher to reg after construction — the hook
// for engines that do not pass through New, such as recovery paths (Load,
// Open). Safe to call while queries are in flight; queries started before
// the call are not recorded. Approximate back-ends additionally register
// the scrape-time rknn_recall_estimate gauge (sampled oracle cross-check,
// cached per snapshot and recomputed at most once per
// recallRecomputeInterval under continuous writes; -1 when an estimate
// fails).
func (s *Searcher) EnableTelemetry(reg *telemetry.Registry) {
	t := newEngineTelemetry(reg, string(s.backend), s.Approximate())
	t.grid = newQueryGrid(s.snap.Load().ix)
	t.workload = telemetry.NewWorkload(0)
	if s.Approximate() {
		t.recallWin = telemetry.NewDefaultWindowed(telemetry.NewHistogram(recallBuckets))
	}
	s.tel.Store(t)
	registerWriteGauges(reg, string(s.backend), s.MemtableLen, s.Compactions)
	if s.quant {
		registerQuantCounters(reg, string(s.backend), s.QuantFilterStats)
	}
	s.compactHist.Store(compactionHistogram(reg, string(s.backend)))
	if s.Approximate() {
		cache := &recallCache{}
		reg.GaugeFunc("rknn_recall_estimate",
			"Sampled reverse-neighbor recall of the approximate engine against the exact oracle (per-snapshot cached, rate-limited, background-refreshed on large datasets; -1 on failure or before the first estimate).",
			func() float64 {
				v := cache.estimate(s)
				if v >= 0 {
					// Scrape-time path: one clock read per estimate is fine
					// here, and it keeps the windowed recall in
					// EngineWindowStats fed from the same cache the gauge
					// reports.
					t.recallWin.Observe(v, time.Now())
				}
				return v
			},
			telemetry.Label{Name: "backend", Value: string(s.backend)})
	}
}

// EnableTelemetry binds the ShardedSearcher to reg: engine-level metrics
// plus per-shard scatter counters and live shard size gauges. Like the
// Searcher form, it is safe to call while queries are in flight. An
// approximate sharded engine records rknn_approx_candidates_total; the
// recall gauge is a single-engine surface (its oracle reads one snapshot,
// not a scatter set).
func (ss *ShardedSearcher) EnableTelemetry(reg *telemetry.Registry) {
	sts := make([]*shardTelemetry, len(ss.slots))
	for i := range sts {
		sts[i] = newShardTelemetry(reg, i, ss.slots[i])
	}
	ss.shardTel.Store(&sts)
	t := newEngineTelemetry(reg, string(ss.backend), ss.Approximate())
	// Calibrate the workload grid from the first populated shard: shards
	// partition by hash, so any one shard's sample spans the dataset.
	for _, slot := range ss.slots {
		if eng := slot.eng.Load(); eng != nil {
			if g := newQueryGrid(eng.snap.Load().ix); g != nil {
				t.grid = g
				break
			}
		}
	}
	t.workload = telemetry.NewWorkload(0)
	ss.tel.Store(t)
	registerWriteGauges(reg, string(ss.backend), ss.MemtableLen, ss.Compactions)
	if ss.quant {
		registerQuantCounters(reg, string(ss.backend), ss.QuantFilterStats)
	}
	// Every shard engine (current and future — see newShardEngine) shares
	// one per-backend histogram, so the compaction-duration series sums
	// across shards.
	h := compactionHistogram(reg, string(ss.backend))
	ss.compactHist.Store(h)
	for _, slot := range ss.slots {
		if eng := slot.eng.Load(); eng != nil {
			eng.compactHist.Store(h)
		}
	}
}

// compactionHistogram resolves the per-backend compaction-duration
// histogram — the cost of each O(n) delta fold, previously only counted.
func compactionHistogram(reg *telemetry.Registry, backend string) *telemetry.Histogram {
	return reg.HistogramVec("rknn_compaction_duration_seconds",
		"Duration of delta-overlay compaction folds (the O(n) step of the write path), per backend, summed across shards.",
		telemetry.DefaultLatencyBuckets, "backend").With(backend)
}

// registerWriteGauges registers the incremental-write-path surfaces: the
// live delta-overlay size and the monotone compaction count, both computed
// at scrape time from state the engine already tracks.
func registerWriteGauges(reg *telemetry.Registry, backend string, memtable func() int, compactions func() int64) {
	reg.GaugeFunc("rknn_memtable_points",
		"Delta-overlay memtable rows awaiting compaction (summed across shards for a sharded engine).",
		func() float64 { return float64(memtable()) },
		telemetry.Label{Name: "backend", Value: backend})
	reg.CounterFunc("rknn_compactions_total",
		"Delta-overlay compactions folded into a fresh base index (summed across shards for a sharded engine).",
		func() float64 { return float64(compactions()) },
		telemetry.Label{Name: "backend", Value: backend})
}

// registerQuantCounters registers the quantized-pre-filter candidate
// counters: rows admitted to exact float verification and rows screened
// out by the quantized lower bounds. Both are monotone lifetime totals
// computed at scrape time (summed across shards for a sharded engine), so
// rate(admitted)/rate(admitted+screened) is the live admission fraction.
func registerQuantCounters(reg *telemetry.Registry, backend string, stats func() (admitted, screened int64)) {
	reg.CounterFunc("rknn_candidates_quant_admitted_total",
		"Candidate rows the quantized pre-filter admitted to exact float verification (summed across shards for a sharded engine).",
		func() float64 { a, _ := stats(); return float64(a) },
		telemetry.Label{Name: "backend", Value: backend})
	reg.CounterFunc("rknn_candidates_quant_screened_total",
		"Candidate rows the quantized pre-filter screened out before exact float verification (summed across shards for a sharded engine).",
		func() float64 { _, s := stats(); return float64(s) },
		telemetry.Label{Name: "backend", Value: backend})
}

// fromCore converts the internal per-query counters to the public Stats.
func fromCore(st core.Stats) Stats {
	return Stats{
		ScanDepth:     st.ScanDepth,
		FilterSize:    st.FilterSize,
		Excluded:      st.Excluded,
		LazyAccepts:   st.LazyAccepts,
		LazyRejects:   st.LazyRejects,
		Verified:      st.Verified,
		DistanceComps: st.DistanceComps,
		Omega:         st.Omega,
	}
}
