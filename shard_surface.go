package repro

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/vecmath"
)

// This file is the shard-serving surface of the facade: the handful of
// read-side methods a shard daemon exposes so a remote coordinator can run
// the scatter-gather verification against it — batched member-point
// lookups, batched forward-kNN probes with explicit self-exclusion, the ID
// span behind the shard-map rebuild, and the metric identity behind the
// coordinator's cross-shard configuration check. They are ordinary public
// API: all answer from one pinned snapshot, with the same concurrency
// contract as every other read.

// KNNQuery is one probe of KNNSkipBatch: the query point, the rank, and an
// optional member ID to exclude from the result (-1 for none) — the
// self-exclusion a member RkNN verification needs, made explicit because
// "fetch k+1 and drop the member" is not equivalent under duplicate-point
// distance ties.
type KNNQuery struct {
	Point []float64
	K     int
	Skip  int
}

// KNNSkipBatch answers many forward-kNN probes against one pinned
// snapshot, each in ascending (distance, ID) order with the probe's Skip
// member excluded. All probes see the same generation of the index, which
// is what makes a remote verification pass sound: the kNN bound of every
// candidate is computed over one consistent shard view.
func (s *Searcher) KNNSkipBatch(qs []KNNQuery) ([][]Neighbor, error) {
	sn := s.snap.Load()
	m := sn.ix.Metric()
	dim := sn.ix.Dim()
	out := make([][]Neighbor, len(qs))
	for i, q := range qs {
		if q.K <= 0 {
			return nil, fmt.Errorf("rknnd: core: K must be positive, got %d", q.K)
		}
		if err := vecmath.ValidateFor(m, q.Point); err != nil {
			return nil, fmt.Errorf("rknnd: probe %d: %w", i, err)
		}
		if len(q.Point) != dim {
			return nil, fmt.Errorf("rknnd: probe %d: query dimension %d, index dimension %d", i, len(q.Point), dim)
		}
		skip := q.Skip
		if skip < 0 {
			skip = -1
		}
		nn := sn.ix.KNN(q.Point, q.K, skip)
		res := make([]Neighbor, len(nn))
		for j, nb := range nn {
			res[j] = Neighbor{ID: nb.ID, Dist: nb.Dist}
		}
		out[i] = res
	}
	return out, nil
}

// MemberPoints resolves member IDs to coordinates from one pinned
// snapshot. A nil row marks an ID with no live point there: deleted, out
// of range, or an insert still in flight. Unlike Point, it never panics —
// it is the remote-safe form a daemon can expose to untrusted IDs. The
// returned rows are owned by the engine and must not be modified.
func (s *Searcher) MemberPoints(ids ...int) [][]float64 {
	ix := s.snap.Load().ix
	rows := make([][]float64, len(ids))
	for i, id := range ids {
		rows[i] = livePoint(ix, id)
	}
	return rows
}

// IDSpan returns the number of member IDs ever assigned, including
// tombstones — the quantity a coordinator needs to rebuild the global
// shard map, since hash placement is a pure function of assignment order,
// not of liveness.
func (s *Searcher) IDSpan() int {
	ix := s.snap.Load().ix
	if lv, ok := ix.(index.Liveness); ok {
		return lv.IDSpan()
	}
	return ix.Len()
}

// MetricIdentity returns the registry identity (ID, parameter) of the
// engine's distance metric — the comparable form behind the coordinator's
// cross-shard configuration check, mirroring what OpenSharded verifies
// across on-disk shard stores.
func (s *Searcher) MetricIdentity() (uint8, float64, error) {
	id, param, err := vecmath.IdentifyMetric(s.snap.Load().ix.Metric())
	return uint8(id), param, err
}

// MemberPoints is the sharded form of Searcher.MemberPoints: IDs are
// global, rows come from one pinned cross-shard read set.
func (ss *ShardedSearcher) MemberPoints(ids ...int) [][]float64 {
	views, m := ss.pin()
	byShard := make(map[int]*shardView, len(views))
	for i := range views {
		byShard[views[i].shard] = &views[i]
	}
	rows := make([][]float64, len(ids))
	for i, g := range ids {
		s, l, ok := m.Locate(g)
		if !ok {
			continue
		}
		if v, ok := byShard[s]; ok {
			rows[i] = livePoint(v.sn.ix, l)
		}
	}
	return rows
}

// IDSpan is the sharded form of Searcher.IDSpan: the global assignment
// count, which the shard map tracks exactly (deletes never shrink it).
func (ss *ShardedSearcher) IDSpan() int { return ss.smap.Load().Len() }

// MetricIdentity is the sharded form of Searcher.MetricIdentity.
func (ss *ShardedSearcher) MetricIdentity() (uint8, float64, error) {
	id, param, err := vecmath.IdentifyMetric(ss.metric)
	return uint8(id), param, err
}

// EstimateScale estimates the scale parameter t over the full dataset
// exactly the way NewSharded does before partitioning: the configured
// estimator (WithAutoScale, default MLE) runs against an exact scan index
// over all points, the margin (WithScaleMargin) is added, and the result
// is clamped to at least 1. A shard daemon uses this so S independently
// started processes, each holding one partition, agree on the t a single
// ShardedSearcher over the same dataset would use — a prerequisite for
// byte-identical networked answers.
func EstimateScale(points [][]float64, opts ...Option) (float64, error) {
	cfg := config{
		metric:  Euclidean,
		backend: BackendCoverTree,
		scale:   math.NaN(),
		auto:    EstimatorMLE,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.metric == nil {
		return 0, errors.New("rknnd: nil metric")
	}
	if err := vecmath.ValidateAllFor(cfg.metric, points); err != nil {
		return 0, fmt.Errorf("rknnd: %w", err)
	}
	full, err := harness.BuildBackend(string(BackendScan), points, cfg.metric)
	if err != nil {
		return 0, fmt.Errorf("rknnd: %w", err)
	}
	t, err := estimate(cfg.auto, full, points, cfg.metric)
	if err != nil {
		return 0, fmt.Errorf("rknnd: estimating scale parameter: %w", err)
	}
	t += cfg.margin
	if t < 1 {
		t = 1
	}
	return t, nil
}
