package repro

import (
	"reflect"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestAdaptiveFacade(t *testing.T) {
	pts := dataset.Sequoia(800, 6).Points
	s, err := New(pts, WithAdaptiveScale(), WithScaleMargin(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Scale() != 0 {
		t.Errorf("adaptive Scale() = %g, want 0 sentinel", s.Scale())
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	var recallSum float64
	const queries = 15
	for qid := 0; qid < queries; qid++ {
		got, err := s.ReverseKNN(qid, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, 10)
		if err != nil {
			t.Fatal(err)
		}
		recallSum += bruteforce.Recall(got, want)
	}
	if mean := recallSum / queries; mean < 0.9 {
		t.Errorf("adaptive facade mean recall %.3f, want >= 0.9", mean)
	}
	if _, err := New(pts, WithAdaptiveScale(), WithScaleMargin(-1)); err == nil {
		t.Error("accepted negative margin with adaptive scale")
	}
}

func TestBatchFacade(t *testing.T) {
	pts := dataset.FCT(600, 7).Points
	s, err := New(pts, WithScale(8))
	if err != nil {
		t.Fatal(err)
	}
	qids := []int{0, 11, 42, 99, 123}
	batch, err := s.BatchReverseKNN(qids, 10, 3)
	if err != nil {
		t.Fatalf("BatchReverseKNN: %v", err)
	}
	if len(batch) != len(qids) {
		t.Fatalf("batch returned %d entries", len(batch))
	}
	for i, qid := range qids {
		seq, err := s.ReverseKNN(qid, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], seq) {
			t.Errorf("qid %d: batch %v, sequential %v", qid, batch[i], seq)
		}
	}
	if _, err := s.BatchReverseKNN([]int{-5}, 10, 2); err == nil {
		t.Error("batch accepted invalid query id")
	}
	if _, err := s.BatchReverseKNN(qids, 10, -1); err == nil {
		t.Error("batch accepted negative workers")
	}
}

// TestConcurrentSearcherUse drives many goroutines through one Searcher to
// back the concurrency-safety claim (run with -race in CI).
func TestConcurrentSearcherUse(t *testing.T) {
	pts := dataset.Sequoia(700, 9).Points
	s, err := New(pts, WithScale(6))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := s.ReverseKNN((g*37+i)%700, 5); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSampleLiveIDsDistinct pins the recall sampler against tombstone
// runs: probing past deleted IDs must never revisit an already-sampled ID,
// so no query is double-weighted in the estimate.
func TestSampleLiveIDsDistinct(t *testing.T) {
	pts := testPoints(30, 2, 41)
	s, err := New(pts, WithBackend(BackendScan), WithScale(8))
	if err != nil {
		t.Fatal(err)
	}
	// Tombstone a run spanning several sample strides (span 30, 8 samples
	// → stride 3): without dedup, IDs 0 and 3 would both probe to 6.
	for id := 0; id < 6; id++ {
		if ok, err := s.Delete(id); !ok || err != nil {
			t.Fatalf("Delete(%d) = (%v, %v)", id, ok, err)
		}
	}
	ids := sampleLiveIDs(s.snap.Load().ix, 8)
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("sample %v repeats id %d", ids, id)
		}
		if id < 6 {
			t.Fatalf("sample %v includes tombstoned id %d", ids, id)
		}
		seen[id] = true
	}
	if len(ids) != 8 {
		t.Errorf("sampled %d ids, want 8 (24 live ids available)", len(ids))
	}
}
