package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/covertree"
	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/lsh"
	"repro/internal/persist"
	"repro/internal/vecmath"
)

// This file is the public face of the durability layer (internal/persist):
// snapshotting a Searcher to a stream, restoring one without re-estimating
// the scale parameter, and the DurableSearcher — a Searcher bound to an
// on-disk store whose Insert/Delete are write-ahead logged and which
// recovers its exact state (snapshot + log replay) after a crash or
// restart. See DESIGN.md, "Durable persistence".

// ErrNoStore reports that Open found no readable snapshot in the directory.
var ErrNoStore = persist.ErrNoStore

// Save writes a versioned, checksummed binary snapshot of the Searcher's
// current state — metric, back-end, scale configuration, points, and
// tombstones — to w. Load restores it without re-estimating the scale. Save
// runs against one immutable index snapshot, so it is safe to call
// concurrently with queries and updates; updates racing the call may or may
// not be included. Only built-in metrics serialize; a custom Metric makes
// Save fail.
func (s *Searcher) Save(w io.Writer) error {
	rec, err := s.snapshotRecord()
	if err != nil {
		return err
	}
	if err := persist.WriteSnapshot(w, rec); err != nil {
		return fmt.Errorf("rknnd: save: %w", err)
	}
	return nil
}

// snapshotRecord captures the Searcher's current state as a persist record.
func (s *Searcher) snapshotRecord() (*persist.Snapshot, error) {
	// Fold the delta overlay first so the record can ship the base
	// back-end's native structure blob. Racing writers may leave a residual
	// delta; the record then captures generically (rows + tombstones) and a
	// restore rebuilds — exactly the existing corrupted-blob degradation.
	s.compactNow()
	ix := s.snap.Load().ix
	metricID, metricParam, err := vecmath.IdentifyMetric(ix.Metric())
	if err != nil {
		return nil, fmt.Errorf("rknnd: save: %w", err)
	}
	st := index.Capture(ix)
	rec := &persist.Snapshot{
		MetricID:    metricID,
		MetricParam: metricParam,
		Backend:     string(s.backend),
		Plus:        s.plus,
		Adaptive:    s.adaptive,
		Scale:       s.scale,
		Margin:      s.margin,
		Dim:         ix.Dim(),
		Points:      st.Points,
		Deleted:     st.Deleted,
	}
	// Backend-native fast path: the cover tree ships its node topology so
	// a restore reattaches it to the point rows with zero distance
	// computations instead of re-inserting every point; the LSH index ships
	// its projections, offsets, width, and buckets so a restore performs
	// zero hash computations and reproduces byte-identical candidate sets.
	// A clean overlay exposes its base for the blob; a dirty one stays
	// generic.
	native := ix
	if ov, ok := ix.(*index.Overlay); ok && !ov.Dirty() {
		native = ov.Base()
	}
	switch nx := native.(type) {
	case *covertree.Tree:
		rec.Native = nx.EncodeStructure()
	case *lsh.Index:
		rec.Native = nx.EncodeStructure()
	}
	// The quantized-filter codebook ships with the snapshot so a restore
	// screens with the original training bounds instead of retraining on
	// the (possibly mutated) row set.
	if cb := s.quantCodebook(); cb != nil {
		rec.Quant = cb.MarshalBinary()
	}
	return rec, nil
}

// Load restores a Searcher from a snapshot written by Save. The scale
// parameter, metric, back-end, and tombstone state all come from the
// snapshot — nothing is re-estimated, so loading is build-cost only (and
// for the cover tree back-end, cheaper still via its native structure
// blob).
func Load(r io.Reader) (*Searcher, error) {
	rec, err := persist.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("rknnd: load: %w", err)
	}
	ix, err := restoreIndex(rec)
	if err != nil {
		return nil, err
	}
	return searcherForSnapshot(rec, ix)
}

// restoreIndex rebuilds the forward index described by a snapshot record:
// via the cover tree's native structure when present and intact, otherwise
// by a fresh build over the stored rows followed by re-applying tombstones.
func restoreIndex(rec *persist.Snapshot) (index.Index, error) {
	metric, err := vecmath.MetricFromID(rec.MetricID, rec.MetricParam)
	if err != nil {
		return nil, fmt.Errorf("rknnd: load: %w", err)
	}
	if rec.Backend == string(BackendCoverTree) && len(rec.Native) > 0 {
		if t, err := covertree.Restore(rec.Points, metric, rec.Deleted, rec.Native); err == nil {
			return t, nil
		}
		// A malformed native blob is recoverable: the rows and tombstones
		// are intact, so fall through to the generic rebuild.
	}
	if rec.Backend == string(BackendLSH) && len(rec.Native) > 0 {
		if ix, err := lsh.Restore(rec.Points, metric, rec.Deleted, rec.Native); err == nil {
			return ix, nil
		}
		// Same recoverability as the cover tree — but the rebuild below
		// re-hashes with default options, so a restored-from-rows LSH index
		// may produce different (still approximate) candidate sets than the
		// saved one. Only a corrupted-yet-checksum-valid blob takes this
		// path.
	}
	ix, err := harness.BuildBackend(rec.Backend, rec.Points, metric)
	if err != nil {
		if errors.Is(err, vecmath.ErrZeroVector) {
			// Snapshots written before the angular metric rejected zero
			// vectors can contain one; the rebuild now refuses it. Name the
			// migration instead of failing opaquely.
			return nil, fmt.Errorf("rknnd: load: %w (the snapshot predates zero-vector validation for the angular metric: delete the offending rows with the release that wrote it and re-save)", err)
		}
		return nil, fmt.Errorf("rknnd: load: %w", err)
	}
	if ix.Dim() != rec.Dim {
		return nil, fmt.Errorf("rknnd: load: snapshot dimension %d, rebuilt index dimension %d", rec.Dim, ix.Dim())
	}
	if len(rec.Quant) > 0 {
		// Re-enable the filter with the stored codebook. A corrupt blob is
		// recoverable — the codebook only affects screening speed, never
		// results — so degrade to retraining on the restored rows.
		cb, err := vecmath.DecodeCodebook(rec.Quant)
		if err != nil {
			cb = nil
		}
		if err := enableQuantFilter(ix, cb); err != nil {
			return nil, err
		}
	}
	if len(rec.Deleted) > 0 {
		dyn, ok := ix.(index.Dynamic)
		if !ok {
			return nil, fmt.Errorf("rknnd: load: back-end %q cannot restore tombstones", rec.Backend)
		}
		for _, id := range rec.Deleted {
			if !dyn.Delete(id) {
				return nil, fmt.Errorf("rknnd: load: tombstone %d not deletable after rebuild", id)
			}
		}
	}
	return ix, nil
}

// searcherForSnapshot assembles a Searcher around a restored index using
// the persisted engine configuration — deliberately never calling estimate.
func searcherForSnapshot(rec *persist.Snapshot, ix index.Index) (*Searcher, error) {
	s := &Searcher{
		plus:     rec.Plus,
		adaptive: rec.Adaptive,
		margin:   rec.Margin,
		backend:  Backend(rec.Backend),
		quant:    len(rec.Quant) > 0,
	}
	if rec.Adaptive {
		if rec.Margin < 0 {
			return nil, fmt.Errorf("rknnd: load: negative adaptive margin %v", rec.Margin)
		}
	} else {
		if !(rec.Scale > 0) {
			return nil, fmt.Errorf("rknnd: load: scale parameter %v not positive", rec.Scale)
		}
		s.scale = rec.Scale
	}
	s.snap.Store(&snapshot{ix: wrapOverlay(ix)})
	return s, nil
}

// StoreOption configures the on-disk store behind Open and NewDurable.
type StoreOption func(*storeConfig)

type storeConfig struct {
	sync persist.SyncPolicy
}

// WithWALSync sets how often the write-ahead log fsyncs: every n-th
// acknowledged write. n = 1 (the default) makes every acknowledged write
// survive an OS crash; n = 0 never fsyncs (writes still reach the OS
// immediately, surviving a process crash); n > 1 bounds the loss window to
// n−1 writes.
func WithWALSync(n int) StoreOption {
	return func(c *storeConfig) { c.sync = persist.SyncPolicy{Every: n} }
}

// DurableSearcher is a Searcher whose state lives in an on-disk store:
// every Insert and Delete is appended to a write-ahead log before being
// acknowledged, and Snapshot cuts a new full snapshot generation and
// truncates the log. Queries are served exactly as by the embedded
// Searcher — lock-free, against immutable snapshots. All mutations MUST go
// through the DurableSearcher: updating the embedded Searcher directly
// would bypass the log and silently fork the on-disk state.
type DurableSearcher struct {
	*Searcher

	wmu      sync.Mutex // orders WAL appends with their in-memory application
	store    *persist.Store
	broken   error // set on a log failure: the store can no longer be trusted
	gen      atomic.Uint64
	recovery RecoveryInfo
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// Generation is the snapshot generation recovered (1 for a store that
	// has never cut a snapshot since creation).
	Generation uint64
	// WALRecords is the number of logged mutations replayed on top of the
	// snapshot.
	WALRecords int
	// WALTorn reports that the log ended in a torn or corrupt record —
	// the signature of a crash mid-append — which was discarded.
	WALTorn bool
	// SkippedSnapshots lists newer snapshot files that failed validation
	// and were passed over for an older intact generation.
	SkippedSnapshots []string
}

// StoreExists reports whether dir contains a persisted store that Open
// could try to recover.
func StoreExists(dir string) bool { return persist.Exists(dir) }

// Open recovers a DurableSearcher from the store in dir: it loads the
// newest intact snapshot, replays the write-ahead log over it (verifying
// that every replayed insert lands on the ID it was originally assigned),
// discards a torn final log record, and resumes logging. The scale
// parameter is restored, never re-estimated. Returns ErrNoStore (wrapped)
// when dir holds no readable snapshot.
func Open(dir string, opts ...StoreOption) (*DurableSearcher, error) {
	cfg := storeConfig{sync: persist.DefaultSync()}
	for _, opt := range opts {
		opt(&cfg)
	}
	var records []persist.WALRecord
	st, rec, info, err := persist.Open(dir, cfg.sync, func(r persist.WALRecord) error {
		records = append(records, r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rknnd: open %s: %w", dir, err)
	}
	ix, err := restoreIndex(rec)
	if err != nil {
		st.Close()
		return nil, err
	}
	// Replay lands in the overlay's memtable: O(records) appends with zero
	// distance or hash computations, while insert-ID verification still
	// holds (row positions reproduce the logged IDs exactly).
	ix = wrapOverlay(ix)
	if err := replayRecords(ix, records); err != nil {
		st.Close()
		return nil, fmt.Errorf("rknnd: open %s: %w", dir, err)
	}
	s, err := searcherForSnapshot(rec, ix)
	if err != nil {
		st.Close()
		return nil, err
	}
	d := &DurableSearcher{
		Searcher: s,
		store:    st,
		recovery: RecoveryInfo{
			Generation:       info.Gen,
			WALRecords:       info.WALRecords,
			WALTorn:          info.WALTorn,
			SkippedSnapshots: info.SkippedSnapshots,
		},
	}
	d.gen.Store(info.Gen)
	// A large replayed log may exceed the compaction threshold; fold it in
	// the background rather than on the first unlucky write.
	s.maybeCompact()
	return d, nil
}

// replayRecords applies logged mutations to a freshly-restored index. The
// index is not yet shared, so mutations go straight to it — no
// copy-on-write clones, making replay O(records), not O(records·n).
func replayRecords(ix index.Index, records []persist.WALRecord) error {
	if len(records) == 0 {
		return nil
	}
	dyn, ok := ix.(index.Dynamic)
	if !ok {
		return fmt.Errorf("back-end does not support the logged updates")
	}
	for i, r := range records {
		switch r.Op {
		case persist.WALInsert:
			id, err := dyn.Insert(r.Point)
			if err != nil {
				return fmt.Errorf("wal record %d: %w", i, err)
			}
			if id != r.ID {
				return fmt.Errorf("wal record %d: replayed insert got id %d, logged id %d", i, id, r.ID)
			}
		case persist.WALDelete:
			if !dyn.Delete(r.ID) {
				return fmt.Errorf("wal record %d: logged delete of %d not applicable", i, r.ID)
			}
		default:
			return fmt.Errorf("wal record %d: unknown op %d", i, r.Op)
		}
	}
	return nil
}

// NewDurable binds an existing Searcher to a fresh store in dir, writing
// the initial snapshot (generation 1) and an empty log. It refuses to
// overwrite an existing store. The Searcher must not receive further
// updates except through the returned DurableSearcher.
func NewDurable(dir string, s *Searcher, opts ...StoreOption) (*DurableSearcher, error) {
	cfg := storeConfig{sync: persist.DefaultSync()}
	for _, opt := range opts {
		opt(&cfg)
	}
	rec, err := s.snapshotRecord()
	if err != nil {
		return nil, err
	}
	st, err := persist.Create(dir, rec, cfg.sync)
	if err != nil {
		return nil, fmt.Errorf("rknnd: create store in %s: %w", dir, err)
	}
	d := &DurableSearcher{Searcher: s, store: st, recovery: RecoveryInfo{Generation: 1}}
	d.gen.Store(1)
	return d, nil
}

// Recovery returns what Open found on disk (zero-valued for a store made
// by NewDurable).
func (d *DurableSearcher) Recovery() RecoveryInfo { return d.recovery }

// Generation returns the current snapshot generation of the store. It is
// lock-free, so monitoring endpoints never wait behind a snapshot cut.
func (d *DurableSearcher) Generation() uint64 { return d.gen.Load() }

var errClosed = errors.New("rknnd: durable searcher is closed")

// usable reports whether the store can still accept mutations; callers
// hold wmu.
func (d *DurableSearcher) usable() error {
	if d.store == nil {
		return errClosed
	}
	return d.broken
}

// disable poisons the store after a log failure: the write that just
// failed was applied in memory but not durably recorded, so any further
// logged write would fork the on-disk state (a lost insert would even make
// the log unreplayable, since insert IDs are verified on recovery). All
// subsequent mutations fail with the original cause; queries keep working.
// Callers hold wmu.
func (d *DurableSearcher) disable(cause error) error {
	d.broken = fmt.Errorf("rknnd: durable store disabled after write-ahead log failure: %w", cause)
	return d.broken
}

// Insert applies the update in memory and appends it to the write-ahead
// log before acknowledging. A log failure returns an error and disables
// the store (see disable); the in-memory insert remains visible until
// restart.
func (d *DurableSearcher) Insert(p []float64) (int, error) {
	return d.InsertContext(context.Background(), p)
}

// InsertContext is Insert with a context. It shadows the embedded engine's
// promoted method — without this override a context-taking caller would
// reach the in-memory engine directly and silently bypass the write-ahead
// log. A traced context records the WAL append and fsync as spans.
func (d *DurableSearcher) InsertContext(ctx context.Context, p []float64) (int, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if err := d.usable(); err != nil {
		return 0, err
	}
	id, err := d.Searcher.InsertContext(ctx, p)
	if err != nil {
		return 0, err
	}
	if err := d.store.AppendCtx(ctx, persist.WALRecord{Op: persist.WALInsert, ID: id, Point: p}); err != nil {
		return 0, d.disable(err)
	}
	return id, nil
}

// InsertBatch applies a batch of points in one copy-on-write step and logs
// the whole batch as one write-ahead append — one lock acquisition, one
// frame write, at most one fsync for the entire batch. The batch is atomic
// in memory and in the log: either every point is inserted and logged, or
// none are. The error contract matches Insert.
func (d *DurableSearcher) InsertBatch(points [][]float64) ([]int, error) {
	return d.InsertBatchContext(context.Background(), points)
}

// InsertBatchContext is InsertBatch with a context, shadowing the promoted
// method for the same WAL-bypass reason as InsertContext.
func (d *DurableSearcher) InsertBatchContext(ctx context.Context, points [][]float64) ([]int, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if err := d.usable(); err != nil {
		return nil, err
	}
	ids, err := d.Searcher.InsertBatchContext(ctx, points)
	if err != nil || len(ids) == 0 {
		return ids, err
	}
	records := make([]persist.WALRecord, len(ids))
	for i, id := range ids {
		records[i] = persist.WALRecord{Op: persist.WALInsert, ID: id, Point: points[i]}
	}
	if err := d.store.AppendBatchCtx(ctx, records); err != nil {
		return nil, d.disable(err)
	}
	return ids, nil
}

// Delete applies and logs a point deletion, with the same error contract
// as Insert. Deletes that change nothing are not logged.
func (d *DurableSearcher) Delete(id int) (bool, error) {
	return d.DeleteContext(context.Background(), id)
}

// DeleteContext is Delete with a context, shadowing the promoted method for
// the same WAL-bypass reason as InsertContext.
func (d *DurableSearcher) DeleteContext(ctx context.Context, id int) (bool, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if err := d.usable(); err != nil {
		return false, err
	}
	ok, err := d.Searcher.DeleteContext(ctx, id)
	if err != nil || !ok {
		return ok, err
	}
	if err := d.store.AppendCtx(ctx, persist.WALRecord{Op: persist.WALDelete, ID: id}); err != nil {
		return false, d.disable(err)
	}
	return true, nil
}

// Snapshot cuts a new snapshot generation reflecting all acknowledged
// writes — written to a temporary file and renamed into place, so a crash
// mid-cut preserves the previous generation — then truncates the log.
// Queries and the embedded engine are never blocked; concurrent Insert and
// Delete calls simply wait for the cut like any other logged write.
func (d *DurableSearcher) Snapshot() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if err := d.usable(); err != nil {
		return err
	}
	rec, err := d.snapshotRecord()
	if err != nil {
		return err
	}
	if err := d.store.Cut(rec); err != nil {
		return fmt.Errorf("rknnd: snapshot: %w", err)
	}
	d.gen.Store(d.store.Gen())
	return nil
}

// Close syncs and closes the log. Further mutations fail; queries keep
// working against the in-memory state.
func (d *DurableSearcher) Close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.store == nil {
		return nil
	}
	err := d.store.Close()
	d.store = nil
	return err
}
