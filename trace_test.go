package repro

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

func tracePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// findSpans collects every span with the given name anywhere in the tree.
func findSpans(sp trace.SpanJSON, name string) []trace.SpanJSON {
	var out []trace.SpanJSON
	if sp.Name == name {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// TestTraceSpanTreeSharded pins the span taxonomy of a traced scatter-gather
// query: facade.pin, one shard.scatter per shard each holding the core
// stage spans (scan, filter, verify) with the paper's work counters as
// attributes, and a shard.merge for the cross-shard re-verification.
func TestTraceSpanTreeSharded(t *testing.T) {
	ss, err := NewSharded(tracePoints(400, 6, 1), 3, WithScale(20))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("test.query", true)
	ctx := trace.With(context.Background(), tr.Root())
	ids, err := ss.ReverseKNNContext(ctx, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ss.ReverseKNN(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("traced answer %v, untraced %v", ids, want)
	}
	tr.Root().End()
	root := tr.Export().Root

	if got := len(findSpans(root, "facade.pin")); got != 1 {
		t.Errorf("facade.pin spans = %d, want 1", got)
	}
	scatters := findSpans(root, "shard.scatter")
	if len(scatters) != 3 {
		t.Fatalf("shard.scatter spans = %d, want 3", len(scatters))
	}
	seen := map[int]bool{}
	for _, sc := range scatters {
		shard, ok := sc.Attrs["shard"].(int64)
		if !ok {
			t.Fatalf("shard.scatter missing shard attr: %+v", sc.Attrs)
		}
		seen[int(shard)] = true
		core := findSpans(sc, "core.rknn")
		if len(core) != 1 {
			t.Fatalf("shard %d: core.rknn spans = %d, want 1", shard, len(core))
		}
		for _, stage := range []string{"core.scan", "core.filter", "core.verify"} {
			if got := len(findSpans(core[0], stage)); got != 1 {
				t.Errorf("shard %d: %s spans = %d, want 1", shard, stage, got)
			}
		}
		for _, attr := range []string{"scan_depth", "filter_size", "distance_comps", "k"} {
			if _, ok := core[0].Attrs[attr]; !ok {
				t.Errorf("shard %d: core.rknn missing %s attr: %+v", shard, attr, core[0].Attrs)
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("scatter spans cover shards %v, want all of 0..2", seen)
	}
	if got := len(findSpans(root, "shard.merge")); got != 1 {
		t.Errorf("shard.merge spans = %d, want 1", got)
	}
}

// TestTraceDurableOverlayWrites pins the write-path spans: a traced insert
// on a durable engine records facade.apply with a wal.append (and, under
// the default every-write sync policy, wal.fsync) beneath it, and a traced
// query over the resulting overlay records the base/memtable read split.
func TestTraceDurableOverlayWrites(t *testing.T) {
	s, err := New(tracePoints(120, 4, 2), WithScale(15), WithBackend(BackendCoverTree))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurable(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	wtr := trace.New("test.insert", true)
	wctx := trace.With(context.Background(), wtr.Root())
	if _, err := d.InsertContext(wctx, []float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	wtr.Root().End()
	wroot := wtr.Export().Root
	if got := len(findSpans(wroot, "facade.apply")); got == 0 {
		t.Error("traced durable insert recorded no facade.apply span")
	}
	appends := findSpans(wroot, "wal.append")
	if len(appends) != 1 {
		t.Fatalf("wal.append spans = %d, want 1", len(appends))
	}
	if got := len(findSpans(appends[0], "wal.fsync")); got != 1 {
		t.Errorf("wal.fsync spans = %d, want 1 under the default sync policy", got)
	}

	qtr := trace.New("test.query", true)
	qctx := trace.With(context.Background(), qtr.Root())
	if _, err := d.ReverseKNNContext(qctx, 3, 4); err != nil {
		t.Fatal(err)
	}
	qtr.Root().End()
	qroot := qtr.Export().Root
	if got := len(findSpans(qroot, "overlay.base")); got != 1 {
		t.Errorf("overlay.base spans = %d, want 1 (memtable holds the inserted point)", got)
	}
	if got := len(findSpans(qroot, "overlay.memtable")); got != 1 {
		t.Errorf("overlay.memtable spans = %d, want 1", got)
	}
}

// TestTraceUntracedPathUnchanged pins that a context without a span leaves
// no trace machinery behind: results match the traced path and the batch
// path still works through a plain context.
func TestTraceUntracedPathUnchanged(t *testing.T) {
	ss, err := NewSharded(tracePoints(200, 5, 3), 2, WithScale(18))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ss.ReverseKNNContext(context.Background(), 11, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("q", true)
	traced, err := ss.ReverseKNNContext(trace.With(context.Background(), tr.Root()), 11, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("untraced %v vs traced %v", plain, traced)
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("untraced %v vs traced %v", plain, traced)
		}
	}
}

// BenchmarkTracingOverhead compares the rknn query path with no trace on
// the context (the production default when a request is not being traced)
// against a fully traced query, on the single-engine facade. The "off" case
// is the one the acceptance bar holds to the untraced baseline.
func BenchmarkTracingOverhead(b *testing.B) {
	s, err := New(tracePoints(2000, 8, 4), WithScale(25))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.ReverseKNNContext(ctx, i%2000, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trace.New("bench", true)
			ctx := trace.With(context.Background(), tr.Root())
			if _, err := s.ReverseKNNContext(ctx, i%2000, 10); err != nil {
				b.Fatal(err)
			}
			tr.Root().End()
		}
	})
}

// histCount returns the observation count of a histogram family sample
// matching the labels.
func histCount(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) uint64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
	samples:
		for _, s := range f.Samples {
			for _, want := range labels {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					continue samples
				}
			}
			if s.Hist == nil {
				t.Fatalf("%s%v is not a histogram sample", name, labels)
			}
			return s.Hist.Count
		}
	}
	t.Fatalf("no sample %s%v in registry", name, labels)
	return 0
}

// waitForCompactions blocks until the engine reports at least n compactions
// (they fold on a background goroutine) or fails the test.
func waitForCompactions(t *testing.T, c interface{ Compactions() int64 }, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Compactions() < n {
		if time.Now().After(deadline) {
			t.Fatalf("no compaction after 10s (have %d, want %d)", c.Compactions(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCompactionHistogramAndTrace pins the background-compaction
// observability: with telemetry and tracing enabled, a fold past the
// threshold lands one observation in rknn_compaction_duration_seconds and
// one "compact" root trace (with a compact.fold child) in the ring.
func TestCompactionHistogramAndTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(tracePoints(100, 3, 6), WithScale(40),
		WithCompactionThreshold(8), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(8)
	s.EnableTracing(ring)
	for _, p := range tracePoints(12, 3, 7) {
		if _, err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	waitForCompactions(t, s, 1)
	backend := telemetry.Label{Name: "backend", Value: "covertree"}
	if got := histCount(t, reg, "rknn_compaction_duration_seconds", backend); got < 1 {
		t.Errorf("rknn_compaction_duration_seconds count = %d, want >= 1", got)
	}
	var compactTrace *trace.Trace
	for _, tr := range ring.Snapshot() {
		if tr.Summarize().Root == "compact" {
			compactTrace = tr
		}
	}
	if compactTrace == nil {
		t.Fatal("no compact trace in the ring")
	}
	root := compactTrace.Export().Root
	if got := len(findSpans(root, "compact.fold")); got != 1 {
		t.Errorf("compact.fold spans = %d, want 1", got)
	}
	if root.DurationUS <= 0 {
		t.Errorf("compact root duration = %dus, want > 0", root.DurationUS)
	}
}

// TestShardedCompactionHistogramShared pins that shard engines feed one
// per-backend histogram: compactions on any shard show up in the single
// rknn_compaction_duration_seconds series the sharded facade registered.
func TestShardedCompactionHistogramShared(t *testing.T) {
	reg := telemetry.NewRegistry()
	ss, err := NewSharded(tracePoints(150, 3, 8), 3, WithScale(40),
		WithCompactionThreshold(4))
	if err != nil {
		t.Fatal(err)
	}
	ss.EnableTelemetry(reg)
	for _, p := range tracePoints(40, 3, 9) {
		if _, err := ss.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Compactions fold per shard engine in the background; the facade's
	// Compactions view does not exist, so poll the histogram itself.
	backend := telemetry.Label{Name: "backend", Value: "covertree"}
	deadline := time.Now().Add(10 * time.Second)
	for histCount(t, reg, "rknn_compaction_duration_seconds", backend) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard compaction observation after 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
