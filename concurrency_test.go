// Concurrency tests for the snapshot-based Searcher. These are meaningful
// under the ordinary runner but are written for `go test -race`: queries on
// many goroutines race inserts and deletes on another, which the
// copy-on-write snapshot swap must make both data-race-free and
// semantically consistent (every query sees one frozen generation).
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/indextest"
)

// TestConcurrentQueriesDuringUpdates runs 8 query goroutines (member,
// point, stats, and forward-kNN queries) against a writer goroutine doing
// 40 inserts and 20 deletes on each dynamic back-end.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	for _, b := range []Backend{BackendCoverTree, BackendScan} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			pts := indextest.RandPoints(300, 3, 31)
			s, err := New(pts, WithBackend(b), WithScale(8))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var writerDone atomic.Bool
			var wg sync.WaitGroup
			const readers = 8
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := []float64{0.3, 0.6, float64(g) / readers}
					for i := 0; ; i++ {
						if writerDone.Load() && i >= 50 {
							return
						}
						// ErrDeleted is the expected outcome of losing a
						// race with the writer's Delete; anything else is
						// a failure.
						ids, err := s.ReverseKNN((g*37+i)%300, 5)
						if err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNN: %v", g, err)
							return
						}
						for _, id := range ids {
							if id < 0 {
								t.Errorf("reader %d: negative id %d", g, id)
								return
							}
						}
						if _, err := s.ReverseKNNPoint(q, 3); err != nil {
							t.Errorf("reader %d: ReverseKNNPoint: %v", g, err)
							return
						}
						if _, _, err := s.ReverseKNNStats(i%300, 4); err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNNStats: %v", g, err)
							return
						}
						if _, err := s.KNN(q, 5); err != nil {
							t.Errorf("reader %d: KNN: %v", g, err)
							return
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer writerDone.Store(true)
				extra := indextest.RandPoints(40, 3, 32)
				for i, p := range extra {
					if _, err := s.Insert(p); err != nil {
						t.Errorf("writer: Insert: %v", err)
						return
					}
					if i%2 == 0 {
						if _, err := s.Delete(i * 7 % 300); err != nil {
							t.Errorf("writer: Delete: %v", err)
							return
						}
					}
				}
			}()
			wg.Wait()
			if s.Len() != 300+40-20 {
				t.Errorf("Len after updates = %d, want %d", s.Len(), 300+40-20)
			}
		})
	}
}

// TestConcurrentBatchDuringUpdates races BatchReverseKNN calls against the
// writer; each batch must be internally consistent because it runs on one
// snapshot.
func TestConcurrentBatchDuringUpdates(t *testing.T) {
	pts := indextest.RandPoints(250, 3, 41)
	s, err := New(pts, WithScale(8))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qids := make([]int, 60)
	for i := range qids {
		qids[i] = i * 4
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.BatchReverseKNN(qids, 5, 3)
				if err != nil {
					t.Errorf("BatchReverseKNN: %v", err)
					return
				}
				if len(res) != len(qids) {
					t.Errorf("batch returned %d results, want %d", len(res), len(qids))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range indextest.RandPoints(30, 3, 42) {
			if _, err := s.Insert(p); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestBatchCancellation covers both cancellation shapes: a context
// cancelled before dispatch must abort without running anything, and one
// cancelled mid-flight must stop the pool promptly with ctx's error.
func TestBatchCancellation(t *testing.T) {
	pts := indextest.RandPoints(2000, 8, 51)
	s, err := New(pts, WithScale(12))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qids := make([]int, 2000)
	for i := range qids {
		qids[i] = i
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.BatchReverseKNNContext(ctx, qids, 10, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := s.BatchReverseKNNContext(ctx, qids, 10, 2)
		elapsed := time.Since(start)
		// The batch either finished before the cancel landed (fast
		// machine) or must report the cancellation; it must never hang
		// until all 2000 queries are done after a 2ms cancel.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled or nil", err)
		}
		if err == nil && elapsed > 10*time.Second {
			t.Errorf("batch ignored cancellation and ran %v", elapsed)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_, err := s.BatchReverseKNNContext(ctx, qids, 10, 1)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want context.DeadlineExceeded or nil", err)
		}
	})
}

// TestSnapshotIsolation pins the semantic heart of copy-on-write: results
// computed before an update are unaffected by it, and a deleted point
// disappears from subsequent results only.
func TestSnapshotIsolation(t *testing.T) {
	pts := indextest.RandPoints(120, 2, 61)
	s, err := New(pts, WithScale(100), WithPlainRDT())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before, err := s.ReverseKNN(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("query 10 has no reverse neighbors; pick another seed")
	}
	victim := before[0]
	if ok, err := s.Delete(victim); !ok || err != nil {
		t.Fatalf("Delete(%d) = (%v, %v)", victim, ok, err)
	}
	after, err := s.ReverseKNN(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == victim {
			t.Errorf("deleted point %d still in results %v", victim, after)
		}
	}
}

// TestShardedConcurrentQueriesDuringUpdates races 8 query goroutines
// (member, point, stats, and forward-kNN queries) against a writer doing
// inserts and deletes across the shards of each dynamic back-end. Per-shard
// snapshots plus the map-before-snapshot publication order must keep every
// read consistent; losing a race with Delete may surface only as ErrDeleted.
func TestShardedConcurrentQueriesDuringUpdates(t *testing.T) {
	for _, b := range []Backend{BackendCoverTree, BackendScan} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			pts := indextest.RandPoints(300, 3, 71)
			ss, err := NewSharded(pts, 3, WithBackend(b), WithScale(8))
			if err != nil {
				t.Fatalf("NewSharded: %v", err)
			}
			var writerDone atomic.Bool
			var wg sync.WaitGroup
			const readers = 8
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := []float64{0.3, 0.6, float64(g) / readers}
					for i := 0; ; i++ {
						if writerDone.Load() && i >= 40 {
							return
						}
						ids, err := ss.ReverseKNN((g*37+i)%300, 5)
						if err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNN: %v", g, err)
							return
						}
						for _, id := range ids {
							if id < 0 {
								t.Errorf("reader %d: negative id %d", g, id)
								return
							}
						}
						if _, err := ss.ReverseKNNPoint(q, 3); err != nil {
							t.Errorf("reader %d: ReverseKNNPoint: %v", g, err)
							return
						}
						if _, _, err := ss.ReverseKNNStats(i%300, 4); err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNNStats: %v", g, err)
							return
						}
						if _, err := ss.KNN(q, 5); err != nil {
							t.Errorf("reader %d: KNN: %v", g, err)
							return
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer writerDone.Store(true)
				extra := indextest.RandPoints(40, 3, 72)
				for i, p := range extra {
					if _, err := ss.Insert(p); err != nil {
						t.Errorf("writer: Insert: %v", err)
						return
					}
					if i%2 == 0 {
						if _, err := ss.Delete(i * 7 % 300); err != nil {
							t.Errorf("writer: Delete: %v", err)
							return
						}
					}
				}
			}()
			wg.Wait()
			if ss.Len() != 300+40-20 {
				t.Errorf("Len after updates = %d, want %d", ss.Len(), 300+40-20)
			}
			// Every shard's final snapshot must still verify against the
			// oracle: the exactness bar survives the race.
			total := 0
			for _, si := range ss.ShardStats() {
				if si.Points < 0 {
					t.Errorf("shard %d reports %d points", si.Shard, si.Points)
				}
				total += si.Points
			}
			if total != ss.Len() {
				t.Errorf("shard stats sum to %d points, Len says %d", total, ss.Len())
			}
		})
	}
}

// TestShardedConcurrentBatchDuringUpdates races sharded batch queries
// against a writer; each batch runs on one pinned set of shard snapshots
// and must return a full, internally consistent result set.
func TestShardedConcurrentBatchDuringUpdates(t *testing.T) {
	pts := indextest.RandPoints(250, 3, 73)
	ss, err := NewSharded(pts, 3, WithScale(8))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	qids := make([]int, 60)
	for i := range qids {
		qids[i] = i*4 + 1
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := ss.BatchReverseKNN(qids, 5, 3)
				if err != nil && !errors.Is(err, ErrDeleted) {
					t.Errorf("BatchReverseKNN: %v", err)
					return
				}
				if err == nil && len(res) != len(qids) {
					t.Errorf("batch returned %d results, want %d", len(res), len(qids))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range indextest.RandPoints(30, 3, 74) {
			if _, err := ss.Insert(p); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestShardedBatchCancellation cancels a sharded batch before and during
// flight; afterwards every shard snapshot must remain fully usable — the
// cancelled scatter may not leave any shard state behind.
func TestShardedBatchCancellation(t *testing.T) {
	pts := indextest.RandPoints(1200, 8, 75)
	ss, err := NewSharded(pts, 4, WithScale(12))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	qids := make([]int, 1200)
	for i := range qids {
		qids[i] = i
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ss.BatchReverseKNNContext(ctx, qids, 10, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, err := ss.BatchReverseKNNContext(ctx, qids, 10, 2)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled or nil", err)
		}
	})

	// The engine is undamaged: updates and exact queries still work on
	// every shard.
	if _, err := ss.Insert(indextest.RandPoints(1, 8, 76)[0]); err != nil {
		t.Fatalf("Insert after cancellation: %v", err)
	}
	if _, err := ss.ReverseKNN(17, 5); err != nil {
		t.Fatalf("ReverseKNN after cancellation: %v", err)
	}
	if _, err := ss.KNN(pts[3], 5); err != nil {
		t.Fatalf("KNN after cancellation: %v", err)
	}
}

// TestShardedSnapshotIsolation pins copy-on-write semantics across shards:
// a result computed before a delete is unaffected by it, and the deleted
// point disappears from subsequent results only.
func TestShardedSnapshotIsolation(t *testing.T) {
	pts := indextest.RandPoints(120, 2, 77)
	ss, err := NewSharded(pts, 3, WithScale(100), WithPlainRDT())
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	var victim, anchor int
	found := false
	for anchor = 0; anchor < 40 && !found; anchor++ {
		before, err := ss.ReverseKNN(anchor, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(before) > 0 {
			victim = before[0]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no anchor with reverse neighbors; pick another seed")
	}
	if ok, err := ss.Delete(victim); !ok || err != nil {
		t.Fatalf("Delete(%d) = (%v, %v)", victim, ok, err)
	}
	after, err := ss.ReverseKNN(anchor, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == victim {
			t.Errorf("deleted point %d still in results %v", victim, after)
		}
	}
}

// TestShardedConcurrentDurableWrites races logged writes with queries on a
// sharded durable store, then recovers and cross-checks the final state —
// the WAL ordering under concurrency must replay to exactly the in-memory
// outcome.
func TestShardedConcurrentDurableWrites(t *testing.T) {
	dir := t.TempDir()
	pts := indextest.RandPoints(150, 3, 79)
	ss, err := NewSharded(pts, 3, WithScale(100), WithPlainRDT())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurableSharded(dir, ss, WithWALSync(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := d.ReverseKNN((g*31+i)%150, 5); err != nil && !errors.Is(err, ErrDeleted) {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, p := range indextest.RandPoints(25, 3, 80) {
			if _, err := d.Insert(p); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if i%5 == 4 {
				if err := d.Snapshot(); err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
			}
			if i%3 == 0 {
				if _, err := d.Delete(i * 11 % 150); err != nil {
					t.Errorf("Delete: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	want := map[int][]int{}
	for qid := 0; qid < 175; qid += 6 {
		if ids, err := d.ReverseKNN(qid, 5); err == nil {
			want[qid] = ids
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := OpenSharded(dir)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer re.Close()
	for qid, ids := range want {
		got, err := re.ReverseKNN(qid, 5)
		if err != nil {
			t.Fatalf("recovered ReverseKNN(%d): %v", qid, err)
		}
		if !sameIDs(got, ids) {
			t.Errorf("recovered ReverseKNN(%d) = %v, pre-close %v", qid, got, ids)
		}
	}
}

// BenchmarkBatchReverseKNN measures batch throughput as the worker pool
// widens — the scaling evidence for the worker-pool rework (numbers are
// recorded in CHANGES.md).
func BenchmarkBatchReverseKNN(b *testing.B) {
	data := dataset.FCT(2000, 1)
	s, err := New(data.Points, WithScale(6))
	if err != nil {
		b.Fatal(err)
	}
	qids := make([]int, 256)
	for i := range qids {
		qids[i] = (i * 7) % data.Len()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.BatchReverseKNN(qids, 10, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(qids))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}
