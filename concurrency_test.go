// Concurrency tests for the snapshot-based Searcher. These are meaningful
// under the ordinary runner but are written for `go test -race`: queries on
// many goroutines race inserts and deletes on another, which the
// copy-on-write snapshot swap must make both data-race-free and
// semantically consistent (every query sees one frozen generation).
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/indextest"
)

// TestConcurrentQueriesDuringUpdates runs 8 query goroutines (member,
// point, stats, and forward-kNN queries) against a writer goroutine doing
// 40 inserts and 20 deletes on each dynamic back-end.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	for _, b := range []Backend{BackendCoverTree, BackendScan} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			pts := indextest.RandPoints(300, 3, 31)
			s, err := New(pts, WithBackend(b), WithScale(8))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var writerDone atomic.Bool
			var wg sync.WaitGroup
			const readers = 8
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := []float64{0.3, 0.6, float64(g) / readers}
					for i := 0; ; i++ {
						if writerDone.Load() && i >= 50 {
							return
						}
						// ErrDeleted is the expected outcome of losing a
						// race with the writer's Delete; anything else is
						// a failure.
						ids, err := s.ReverseKNN((g*37+i)%300, 5)
						if err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNN: %v", g, err)
							return
						}
						for _, id := range ids {
							if id < 0 {
								t.Errorf("reader %d: negative id %d", g, id)
								return
							}
						}
						if _, err := s.ReverseKNNPoint(q, 3); err != nil {
							t.Errorf("reader %d: ReverseKNNPoint: %v", g, err)
							return
						}
						if _, _, err := s.ReverseKNNStats(i%300, 4); err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("reader %d: ReverseKNNStats: %v", g, err)
							return
						}
						if _, err := s.KNN(q, 5); err != nil {
							t.Errorf("reader %d: KNN: %v", g, err)
							return
						}
					}
				}(g)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer writerDone.Store(true)
				extra := indextest.RandPoints(40, 3, 32)
				for i, p := range extra {
					if _, err := s.Insert(p); err != nil {
						t.Errorf("writer: Insert: %v", err)
						return
					}
					if i%2 == 0 {
						if _, err := s.Delete(i * 7 % 300); err != nil {
							t.Errorf("writer: Delete: %v", err)
							return
						}
					}
				}
			}()
			wg.Wait()
			if s.Len() != 300+40-20 {
				t.Errorf("Len after updates = %d, want %d", s.Len(), 300+40-20)
			}
		})
	}
}

// TestConcurrentBatchDuringUpdates races BatchReverseKNN calls against the
// writer; each batch must be internally consistent because it runs on one
// snapshot.
func TestConcurrentBatchDuringUpdates(t *testing.T) {
	pts := indextest.RandPoints(250, 3, 41)
	s, err := New(pts, WithScale(8))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qids := make([]int, 60)
	for i := range qids {
		qids[i] = i * 4
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.BatchReverseKNN(qids, 5, 3)
				if err != nil {
					t.Errorf("BatchReverseKNN: %v", err)
					return
				}
				if len(res) != len(qids) {
					t.Errorf("batch returned %d results, want %d", len(res), len(qids))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range indextest.RandPoints(30, 3, 42) {
			if _, err := s.Insert(p); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestBatchCancellation covers both cancellation shapes: a context
// cancelled before dispatch must abort without running anything, and one
// cancelled mid-flight must stop the pool promptly with ctx's error.
func TestBatchCancellation(t *testing.T) {
	pts := indextest.RandPoints(2000, 8, 51)
	s, err := New(pts, WithScale(12))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qids := make([]int, 2000)
	for i := range qids {
		qids[i] = i
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.BatchReverseKNNContext(ctx, qids, 10, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := s.BatchReverseKNNContext(ctx, qids, 10, 2)
		elapsed := time.Since(start)
		// The batch either finished before the cancel landed (fast
		// machine) or must report the cancellation; it must never hang
		// until all 2000 queries are done after a 2ms cancel.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled or nil", err)
		}
		if err == nil && elapsed > 10*time.Second {
			t.Errorf("batch ignored cancellation and ran %v", elapsed)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		_, err := s.BatchReverseKNNContext(ctx, qids, 10, 1)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want context.DeadlineExceeded or nil", err)
		}
	})
}

// TestSnapshotIsolation pins the semantic heart of copy-on-write: results
// computed before an update are unaffected by it, and a deleted point
// disappears from subsequent results only.
func TestSnapshotIsolation(t *testing.T) {
	pts := indextest.RandPoints(120, 2, 61)
	s, err := New(pts, WithScale(100), WithPlainRDT())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before, err := s.ReverseKNN(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("query 10 has no reverse neighbors; pick another seed")
	}
	victim := before[0]
	if ok, err := s.Delete(victim); !ok || err != nil {
		t.Fatalf("Delete(%d) = (%v, %v)", victim, ok, err)
	}
	after, err := s.ReverseKNN(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == victim {
			t.Errorf("deleted point %d still in results %v", victim, after)
		}
	}
}

// BenchmarkBatchReverseKNN measures batch throughput as the worker pool
// widens — the scaling evidence for the worker-pool rework (numbers are
// recorded in CHANGES.md).
func BenchmarkBatchReverseKNN(b *testing.B) {
	data := dataset.FCT(2000, 1)
	s, err := New(data.Points, WithScale(6))
	if err != nil {
		b.Fatal(err)
	}
	qids := make([]int, 256)
	for i := range qids {
		qids[i] = (i * 7) % data.Len()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.BatchReverseKNN(qids, 10, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(qids))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}
