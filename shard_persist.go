package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/vecmath"
)

// This file is the durable face of the sharded engine. A sharded store is
// a directory holding one persist.Store per populated shard plus a
// manifest naming the shard count:
//
//	dir/
//	  MANIFEST      "rknn-sharded-store v1" + the shard count
//	  shard-0/      persist.Store of shard 0 (snap-*.rknn, wal-*.log)
//	  shard-1/      ...
//
// Shards that never received a point have no directory. Nothing else needs
// persisting: the global<->(shard,local) mapping is a pure function of the
// global ID count and the shard count (index.RebuildShardMap), and the
// global count is the sum of the per-shard ID spans. Recovery therefore
// opens each shard store independently — snapshot, WAL replay, torn-tail
// discard, exactly as a single store recovers — rebuilds the map, and
// cross-checks that every shard's ID span matches the count the map
// assigns it, so a lost or truncated shard store fails loudly instead of
// silently renumbering the survivors. The manifest is written last during
// bootstrap, as the commit record: a crash mid-bootstrap leaves no
// manifest and the directory is not a sharded store.

const shardManifestName = "MANIFEST"
const shardManifestMagic = "rknn-sharded-store v1"

func shardDirName(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", shard))
}

// ShardedStoreExists reports whether dir contains a sharded store manifest
// that OpenSharded could try to recover.
func ShardedStoreExists(dir string) bool {
	_, err := readShardManifest(dir)
	return err == nil
}

func readShardManifest(dir string) (int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return 0, err
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != shardManifestMagic {
		return 0, fmt.Errorf("rknnd: %s is not a sharded store manifest", dir)
	}
	fields := strings.Fields(lines[1])
	if len(fields) != 2 || fields[0] != "shards" {
		return 0, fmt.Errorf("rknnd: malformed sharded store manifest in %s", dir)
	}
	shards, err := strconv.Atoi(fields[1])
	if err != nil || shards <= 0 {
		return 0, fmt.Errorf("rknnd: malformed shard count in %s manifest", dir)
	}
	return shards, nil
}

// writeShardManifest commits the manifest via temp-file + rename + dir
// fsync, the same crash discipline as the snapshot files.
func writeShardManifest(dir string, shards int) error {
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	content := fmt.Sprintf("%s\nshards %d\n", shardManifestMagic, shards)
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, shardManifestName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// DurableShardedSearcher is a ShardedSearcher whose shards each live in
// their own on-disk store: every Insert and Delete is write-ahead logged in
// the owning shard's log before being acknowledged, and Snapshot cuts a
// new generation in every shard store. Queries are served exactly as by
// the embedded ShardedSearcher. All mutations MUST go through the
// DurableShardedSearcher (they do automatically — the embedded engine's
// mutation hooks are rebound to the logs).
//
// Relaxed sync caveat: with WithWALSync(0) or n > 1, an OS crash (not a
// process crash — unsynced appends still reach the OS immediately) can
// lose unsynced log tails unevenly across shards. Recovery detects the
// skewed ID spans and refuses to open rather than silently renumbering
// survivors, so a sharded store under a relaxed policy trades its loss
// window for a manual restore-from-backup path. The default every-write
// sync can only lose the single torn final record — always the globally
// last write — which recovery discards consistently.
type DurableShardedSearcher struct {
	*ShardedSearcher

	dir      string
	walOpts  []StoreOption
	durables []*DurableSearcher // indexed by shard; nil until first point
	recovery []RecoveryInfo     // indexed by shard; zero-valued when absent
	closed   bool               // guarded by the embedded engine's mu
}

// NewDurableSharded binds an existing ShardedSearcher to a fresh sharded
// store in dir: one per-shard store with an initial snapshot for every
// populated shard, then the manifest as the commit record. It refuses to
// overwrite an existing store of either kind.
func NewDurableSharded(dir string, ss *ShardedSearcher, opts ...StoreOption) (*DurableShardedSearcher, error) {
	if ss == nil {
		return nil, errors.New("rknnd: nil sharded searcher")
	}
	if ShardedStoreExists(dir) {
		return nil, fmt.Errorf("rknnd: %s already holds a sharded store", dir)
	}
	if StoreExists(dir) {
		return nil, fmt.Errorf("rknnd: %s already holds a single-engine store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rknnd: create sharded store in %s: %w", dir, err)
	}
	d := &DurableShardedSearcher{
		ShardedSearcher: ss,
		dir:             dir,
		walOpts:         opts,
		durables:        make([]*DurableSearcher, ss.Shards()),
		recovery:        make([]RecoveryInfo, ss.Shards()),
	}
	for i, slot := range ss.slots {
		eng := slot.eng.Load()
		if eng == nil {
			continue
		}
		ds, err := NewDurable(shardDirName(dir, i), eng, opts...)
		if err != nil {
			d.closeStores()
			return nil, fmt.Errorf("rknnd: shard %d: %w", i, err)
		}
		d.durables[i] = ds
		d.recovery[i] = RecoveryInfo{Generation: 1}
	}
	if err := writeShardManifest(dir, ss.Shards()); err != nil {
		d.closeStores()
		return nil, fmt.Errorf("rknnd: commit sharded store manifest: %w", err)
	}
	d.bindHooks()
	return d, nil
}

// OpenSharded recovers a DurableShardedSearcher from the sharded store in
// dir: every shard store is recovered independently (newest intact
// snapshot, WAL replay with ID verification, torn final record
// discarded), the global ID mapping is rebuilt from the per-shard ID
// spans, and the engine configuration is cross-checked across shards.
// Nothing is re-estimated.
func OpenSharded(dir string, opts ...StoreOption) (*DurableShardedSearcher, error) {
	shards, err := readShardManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("rknnd: open sharded %s: %w", dir, ErrNoStore)
		}
		return nil, err
	}
	d := &DurableShardedSearcher{
		dir:      dir,
		walOpts:  opts,
		durables: make([]*DurableSearcher, shards),
		recovery: make([]RecoveryInfo, shards),
	}
	spans := make([]int, shards)
	total := 0
	var proto *Searcher
	for i := 0; i < shards; i++ {
		sd := shardDirName(dir, i)
		if !persist.Exists(sd) {
			continue
		}
		ds, err := Open(sd, opts...)
		if err != nil {
			d.closeStores()
			return nil, fmt.Errorf("rknnd: open sharded %s: shard %d: %w", dir, i, err)
		}
		d.durables[i] = ds
		d.recovery[i] = ds.Recovery()
		spans[i] = engineIDSpan(ds.Searcher)
		total += spans[i]
		if proto == nil {
			proto = ds.Searcher
		} else if err := sameEngineConfig(proto, ds.Searcher); err != nil {
			d.closeStores()
			return nil, fmt.Errorf("rknnd: open sharded %s: shard %d: %w", dir, i, err)
		}
	}
	if proto == nil {
		d.closeStores()
		return nil, fmt.Errorf("rknnd: open sharded %s: no shard holds a readable snapshot: %w", dir, ErrNoStore)
	}
	m, err := index.RebuildShardMap(shards, total)
	if err != nil {
		d.closeStores()
		return nil, fmt.Errorf("rknnd: open sharded %s: %w", dir, err)
	}
	for i := 0; i < shards; i++ {
		if m.ShardLen(i) != spans[i] {
			d.closeStores()
			return nil, fmt.Errorf("rknnd: open sharded %s: shard %d holds %d ids, the global mapping over %d ids expects %d — the store is inconsistent (a shard store was lost or truncated, or an OS crash under a relaxed -wal-sync policy lost log tails unevenly across shards; restore the affected shard from backup)",
				dir, i, spans[i], total, m.ShardLen(i))
		}
	}

	ss := &ShardedSearcher{
		scale:    proto.scale,
		plus:     proto.plus,
		adaptive: proto.adaptive,
		margin:   proto.margin,
		backend:  proto.backend,
		metric:   proto.snap.Load().ix.Metric(),
		dim:      proto.Dim(),
		slots:    make([]*shardSlot, shards),
	}
	for i := range ss.slots {
		ss.slots[i] = &shardSlot{}
		if ds := d.durables[i]; ds != nil {
			if !ss.dynamic {
				_, ss.dynamic = ds.snap.Load().ix.(index.Cloner)
			}
			ss.slots[i].eng.Store(ds.Searcher)
		}
	}
	ss.smap.Store(m)
	d.ShardedSearcher = ss
	d.bindHooks()
	return d, nil
}

// engineIDSpan returns the number of IDs a shard engine has ever assigned
// (live plus tombstoned).
func engineIDSpan(s *Searcher) int {
	ix := s.snap.Load().ix
	if lv, ok := ix.(index.Liveness); ok {
		return lv.IDSpan()
	}
	return ix.Len()
}

// sameEngineConfig verifies that two recovered shard engines carry the
// same engine configuration; shards of one store must be interchangeable.
func sameEngineConfig(a, b *Searcher) error {
	if a.scale != b.scale || a.plus != b.plus || a.adaptive != b.adaptive || a.margin != b.margin || a.backend != b.backend {
		return fmt.Errorf("shard engine configuration mismatch (scale %v/%v, backend %s/%s)", a.scale, b.scale, a.backend, b.backend)
	}
	if a.Dim() != b.Dim() {
		return fmt.Errorf("shard dimension mismatch: %d vs %d", a.Dim(), b.Dim())
	}
	// Distances computed under different metrics must never be merged: a
	// shard restored from the wrong store would silently corrupt every
	// query, so compare the persisted metric identities too.
	aID, aParam, errA := vecmath.IdentifyMetric(a.snap.Load().ix.Metric())
	bID, bParam, errB := vecmath.IdentifyMetric(b.snap.Load().ix.Metric())
	if errA != nil || errB != nil || aID != bID || aParam != bParam {
		return fmt.Errorf("shard metric mismatch (%d(%v) vs %d(%v))", aID, aParam, bID, bParam)
	}
	return nil
}

// bindHooks reroutes the embedded engine's mutations through the per-shard
// write-ahead logs.
func (d *DurableShardedSearcher) bindHooks() {
	d.ShardedSearcher.insertShard = d.durableInsert
	d.ShardedSearcher.createShard = d.durableCreate
	d.ShardedSearcher.deleteShard = d.durableDelete
	d.ShardedSearcher.insertShardBatch = d.durableInsertBatch
	d.ShardedSearcher.createShardBatch = d.durableCreateBatch
	d.ShardedSearcher.preflightInsert = d.durablePreflight
}

func (d *DurableShardedSearcher) closeStores() {
	for _, ds := range d.durables {
		if ds != nil {
			ds.Close()
		}
	}
}

// durableInsert applies an insert on a populated shard and logs it before
// acknowledging, with the same poisoning contract as DurableSearcher: a
// log failure disables the shard's store but the global ID assignment
// stands, matching the visible in-memory state.
func (d *DurableShardedSearcher) durableInsert(ctx context.Context, shard int, eng *Searcher, p []float64) (int, bool, error) {
	if d.closed {
		return 0, false, errClosed
	}
	ds := d.durables[shard]
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if err := ds.usable(); err != nil {
		return 0, false, err
	}
	id, err := ds.Searcher.InsertContext(ctx, p)
	if err != nil {
		return 0, false, err
	}
	if err := ds.store.AppendCtx(ctx, persist.WALRecord{Op: persist.WALInsert, ID: id, Point: p}); err != nil {
		return id, true, ds.disable(err)
	}
	return id, true, nil
}

// durableCreate populates a previously empty shard: a fresh single-point
// engine and a fresh shard store whose initial snapshot carries the point
// (no WAL record needed).
func (d *DurableShardedSearcher) durableCreate(ctx context.Context, shard int, p []float64) (*Searcher, error) {
	if d.closed {
		return nil, errClosed
	}
	// The new store's snapshot is fully fsynced the moment it exists.
	// Under a relaxed sync policy the sibling shards may still hold
	// unsynced WAL tails for earlier acknowledged writes; an OS crash
	// then would persist this (later) point while losing those (earlier)
	// ones, skewing the per-shard ID spans the recovery cross-check
	// relies on. Syncing every sibling log first keeps the durable state
	// a prefix of the acknowledged writes. (Callers hold the engine's
	// update lock, so no append races these syncs.)
	for i, ds := range d.durables {
		if ds == nil || ds.store == nil {
			continue
		}
		if err := ds.store.Sync(); err != nil {
			return nil, fmt.Errorf("rknnd: shard %d: syncing log before creating shard %d: %w", i, shard, err)
		}
	}
	eng, err := d.ShardedSearcher.plainCreate(ctx, shard, p)
	if err != nil {
		return nil, err
	}
	ds, err := NewDurable(shardDirName(d.dir, shard), eng, d.walOpts...)
	if err != nil {
		return nil, fmt.Errorf("rknnd: shard %d: %w", shard, err)
	}
	d.durables[shard] = ds
	d.recovery[shard] = RecoveryInfo{Generation: 1}
	return eng, nil
}

// durablePreflight verifies that every shard store a batch will touch can
// still accept writes, before any global ID is assigned — so a poisoned or
// closed store rejects the whole batch cleanly instead of tearing it.
func (d *DurableShardedSearcher) durablePreflight(shards []int) error {
	if d.closed {
		return errClosed
	}
	for _, s := range shards {
		ds := d.durables[s]
		if ds == nil {
			continue // shard store is created with the group
		}
		ds.wmu.Lock()
		err := ds.usable()
		ds.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("rknnd: shard %d: %w", s, err)
		}
	}
	return nil
}

// durableInsertBatch applies one shard's group of a batch insert and logs
// it as a single WAL append (at most one fsync), with the same poisoning
// contract as durableInsert. A process crash between the appends of
// different shards' groups can tear a multi-shard batch across logs;
// recovery then refuses to open (the ID-span cross-check) rather than
// renumber survivors.
func (d *DurableShardedSearcher) durableInsertBatch(ctx context.Context, shard int, eng *Searcher, pts [][]float64) ([]int, bool, error) {
	if d.closed {
		return nil, false, errClosed
	}
	ds := d.durables[shard]
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if err := ds.usable(); err != nil {
		return nil, false, err
	}
	ids, err := ds.Searcher.InsertBatchContext(ctx, pts)
	if err != nil {
		return nil, false, err
	}
	records := make([]persist.WALRecord, len(ids))
	for i, id := range ids {
		records[i] = persist.WALRecord{Op: persist.WALInsert, ID: id, Point: pts[i]}
	}
	if err := ds.store.AppendBatchCtx(ctx, records); err != nil {
		return ids, true, ds.disable(err)
	}
	return ids, true, nil
}

// durableCreateBatch populates a previously empty shard with a whole batch
// group: a fresh engine and a fresh shard store whose initial snapshot
// carries the points (no WAL records needed). The sibling-sync discipline
// of durableCreate applies unchanged.
func (d *DurableShardedSearcher) durableCreateBatch(ctx context.Context, shard int, pts [][]float64) (*Searcher, error) {
	if d.closed {
		return nil, errClosed
	}
	for i, ds := range d.durables {
		if ds == nil || ds.store == nil {
			continue
		}
		if err := ds.store.Sync(); err != nil {
			return nil, fmt.Errorf("rknnd: shard %d: syncing log before creating shard %d: %w", i, shard, err)
		}
	}
	eng, err := d.ShardedSearcher.plainCreateBatch(ctx, shard, pts)
	if err != nil {
		return nil, err
	}
	ds, err := NewDurable(shardDirName(d.dir, shard), eng, d.walOpts...)
	if err != nil {
		return nil, fmt.Errorf("rknnd: shard %d: %w", shard, err)
	}
	d.durables[shard] = ds
	d.recovery[shard] = RecoveryInfo{Generation: 1}
	return eng, nil
}

// durableDelete applies and logs a point deletion on its shard.
func (d *DurableShardedSearcher) durableDelete(ctx context.Context, shard int, eng *Searcher, local int) (bool, error) {
	if d.closed {
		return false, errClosed
	}
	ds := d.durables[shard]
	if ds == nil {
		return false, nil
	}
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if err := ds.usable(); err != nil {
		return false, err
	}
	ok, err := ds.Searcher.DeleteContext(ctx, local)
	if err != nil || !ok {
		return ok, err
	}
	if err := ds.store.AppendCtx(ctx, persist.WALRecord{Op: persist.WALDelete, ID: local}); err != nil {
		return false, ds.disable(err)
	}
	return true, nil
}

// Recovery returns what OpenSharded found on disk, indexed by shard
// (zero-valued entries for shards with no store).
func (d *DurableShardedSearcher) Recovery() []RecoveryInfo {
	out := make([]RecoveryInfo, len(d.recovery))
	copy(out, d.recovery)
	return out
}

// Generation returns the lowest snapshot generation across the populated
// shard stores — "every shard is durable at least to generation g". The
// per-shard detail is available from Generations.
func (d *DurableShardedSearcher) Generation() uint64 {
	var min uint64
	for _, ds := range d.durables {
		if ds == nil {
			continue
		}
		if g := ds.Generation(); min == 0 || g < min {
			min = g
		}
	}
	return min
}

// Generations returns the per-shard store generations (0 for shards with
// no store).
func (d *DurableShardedSearcher) Generations() []uint64 {
	out := make([]uint64, len(d.durables))
	for i, ds := range d.durables {
		if ds != nil {
			out[i] = ds.Generation()
		}
	}
	return out
}

// Snapshot cuts a new snapshot generation in every populated shard store.
// It holds the engine's update lock, so the set of cuts reflects one
// consistent prefix of the acknowledged writes.
func (d *DurableShardedSearcher) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	for i, ds := range d.durables {
		if ds == nil {
			continue
		}
		if err := ds.Snapshot(); err != nil {
			return fmt.Errorf("rknnd: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close syncs and closes every shard log. Further mutations fail; queries
// keep working against the in-memory state.
func (d *DurableShardedSearcher) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for _, ds := range d.durables {
		if ds == nil {
			continue
		}
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
