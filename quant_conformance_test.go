// Quantized-filter conformance: the pre-filter is a pure acceleration
// layer, so every answer the facade returns with WithQuantizedFilter must
// be byte-identical to the unfiltered engine — across metrics, after an
// insert/delete stream, through a save/load round trip, and under
// sharding — while the admission counters prove the filter actually ran.
package repro

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/indextest"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
)

// quantPair builds two scan-backed searchers over the same rows with
// identical configuration except the quantized filter. The moderate pinned
// scale keeps RDT+ verification active (a huge scale lazily accepts
// everything and the k-NN verify step — the filter's main consumer — never
// runs), and identity against the unfiltered engine holds at any scale.
func quantPair(t *testing.T, pts [][]float64, opts ...Option) (plain, filtered *Searcher) {
	t.Helper()
	base := append([]Option{WithBackend(BackendScan), WithScale(8)}, opts...)
	plain, err := New(pts, base...)
	if err != nil {
		t.Fatalf("New (plain): %v", err)
	}
	filtered, err = New(pts, append(base, WithQuantizedFilter())...)
	if err != nil {
		t.Fatalf("New (filtered): %v", err)
	}
	return plain, filtered
}

// TestQuantFilterFacadeByteIdentical drives reverse and forward queries
// through the public API with the filter on and off and requires exact
// agreement, for every metric the filter supports.
func TestQuantFilterFacadeByteIdentical(t *testing.T) {
	metrics := []Metric{Euclidean, Manhattan, Chebyshev}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			pts := indextest.ClusteredPoints(240, 5, 4, 31)
			plain, filtered := quantPair(t, pts, WithMetric(m))
			for _, k := range []int{1, 4, 9} {
				for qid := 0; qid < len(pts); qid += 13 {
					got, err := filtered.ReverseKNN(qid, k)
					if err != nil {
						t.Fatalf("ReverseKNN(%d, %d): %v", qid, k, err)
					}
					want, err := plain.ReverseKNN(qid, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("ReverseKNN(%d, %d) = %v, unfiltered %v", qid, k, got, want)
					}
				}
				q := indextest.RandPoints(1, 5, int64(300+k))[0]
				gn, err := filtered.KNN(q, k)
				if err != nil {
					t.Fatalf("KNN: %v", err)
				}
				wn, err := plain.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gn, wn) {
					t.Fatalf("KNN(k=%d) = %v, unfiltered %v", k, gn, wn)
				}
			}
			admitted, screened := filtered.QuantFilterStats()
			if admitted == 0 || screened == 0 {
				t.Fatalf("filter never ran: admitted=%d screened=%d", admitted, screened)
			}
			if !filtered.QuantFiltered() || plain.QuantFiltered() {
				t.Fatal("QuantFiltered flags inverted")
			}
			if pa, ps := plain.QuantFilterStats(); pa != 0 || ps != 0 {
				t.Fatalf("unfiltered engine reported filter stats %d/%d", pa, ps)
			}
		})
	}
}

// TestQuantFilterAfterUpdates repeats the equivalence after an interleaved
// insert/delete stream long enough to cross the compaction threshold, so
// the filter is held to the same bar through overlay folds — including
// inserts outside the trained codebook range.
func TestQuantFilterAfterUpdates(t *testing.T) {
	pts := indextest.RandPoints(150, 4, 51)
	plain, filtered := quantPair(t, pts)
	rng := rand.New(rand.NewSource(53))
	maxID := 149
	for i := 0; i < 400; i++ {
		if i%5 == 4 {
			id := rng.Intn(150)
			a, _ := filtered.Delete(id)
			b, _ := plain.Delete(id)
			if a != b {
				t.Fatalf("Delete(%d) diverged: %v vs %v", id, a, b)
			}
			continue
		}
		p := make([]float64, 4)
		for j := range p {
			p[j] = rng.Float64()*4 - 2 // well outside the trained [0,1) range
		}
		fid, err := filtered.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := plain.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if fid != pid {
			t.Fatalf("insert ids diverged: %d vs %d", fid, pid)
		}
		maxID = fid
	}
	// Fold the deltas deterministically (background compactions may still
	// be in flight) so the queries below run against filtered base rows.
	filtered.compactNow()
	plain.compactNow()
	if filtered.Compactions() == 0 {
		t.Fatal("stream never folded the delta overlay")
	}
	for _, k := range []int{2, 7} {
		for qid := 0; qid <= maxID; qid += 29 {
			got, gerr := filtered.ReverseKNN(qid, k)
			want, werr := plain.ReverseKNN(qid, k)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("ReverseKNN(%d, %d) errors diverged: %v vs %v", qid, k, gerr, werr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ReverseKNN(%d, %d) = %v, unfiltered %v", qid, k, got, want)
			}
		}
	}
	if admitted, screened := filtered.QuantFilterStats(); admitted == 0 || screened == 0 {
		t.Fatalf("filter never ran after updates: admitted=%d screened=%d", admitted, screened)
	}
}

// TestQuantFilterConstantDimension is the facade-level regression for the
// degenerate scale-0 codebook cell: a dimension that is constant at build
// time trains a zero-width grid there, rows inserted afterwards can take
// any value in it (every one encodes to cell 0), and queries beyond the
// trained constant must still answer byte-identically with the filter on.
// The old lookup table charged q−min against cell 0 in that dimension,
// which could screen out a true nearest neighbor (an MNIST-style border
// pixel that is constant in the training set but not in later inserts).
func TestQuantFilterConstantDimension(t *testing.T) {
	pts := indextest.RandPoints(120, 4, 101)
	for _, p := range pts {
		p[1] = 1.25 // constant at codebook training time
	}
	plain, filtered := quantPair(t, pts)
	rng := rand.New(rand.NewSource(103))
	maxID := len(pts) - 1
	var last []float64
	for i := 0; i < 60; i++ {
		p := make([]float64, 4)
		for j := range p {
			p[j] = rng.Float64()*4 - 2
		}
		p[1] = 1.25 + rng.Float64()*8 // far off the trained constant
		last = p
		fid, err := filtered.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := plain.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if fid != pid {
			t.Fatalf("insert ids diverged: %d vs %d", fid, pid)
		}
		maxID = fid
	}
	// Fold deterministically so the inserted rows sit in filtered base rows.
	filtered.compactNow()
	plain.compactNow()
	for _, k := range []int{1, 5} {
		for qid := 0; qid <= maxID; qid += 7 {
			got, gerr := filtered.ReverseKNN(qid, k)
			want, werr := plain.ReverseKNN(qid, k)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("ReverseKNN(%d, %d) errors diverged: %v vs %v", qid, k, gerr, werr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ReverseKNN(%d, %d) = %v, unfiltered %v", qid, k, got, want)
			}
		}
	}
	// Forward queries out past the trained constant, including exact matches
	// of inserted rows (distance 0 — the decisive case for the old bound).
	for trial := 0; trial < 21; trial++ {
		q := indextest.RandPoints(1, 4, int64(700+trial))[0]
		q[1] = 1.25 + rng.Float64()*8
		if trial == 20 {
			q = append([]float64(nil), last...)
		}
		got, err := filtered.KNN(q, 4)
		if err != nil {
			t.Fatalf("KNN: %v", err)
		}
		want, err := plain.KNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("KNN(%v) = %v, unfiltered %v", q, got, want)
		}
	}
	if admitted, _ := filtered.QuantFilterStats(); admitted == 0 {
		t.Fatal("filter never consulted on the constant-dimension workload")
	}
}

// TestQuantFilterSaveLoadRoundTrip checks the codebook travels with the
// snapshot: a load restores the filter with the original training bounds
// and answers byte-identically, and an unfiltered engine still writes the
// version-1 format.
func TestQuantFilterSaveLoadRoundTrip(t *testing.T) {
	pts := indextest.RandPoints(180, 4, 61)
	plain, filtered := quantPair(t, pts)

	var buf bytes.Buffer
	if err := filtered.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !restored.QuantFiltered() {
		t.Fatal("load dropped the quantized filter")
	}
	for qid := 0; qid < len(pts); qid += 11 {
		got, err := restored.ReverseKNN(qid, 5)
		if err != nil {
			t.Fatalf("ReverseKNN(%d): %v", qid, err)
		}
		want, err := filtered.ReverseKNN(qid, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored ReverseKNN(%d) = %v, original %v", qid, got, want)
		}
	}
	// Forward queries engage the filter deterministically (the reverse path
	// only reaches k-NN verification when lazy filtering cannot decide).
	for trial := 0; trial < 20; trial++ {
		q := indextest.RandPoints(1, 4, int64(500+trial))[0]
		got, err := restored.KNN(q, 6)
		if err != nil {
			t.Fatalf("KNN: %v", err)
		}
		want, err := filtered.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored KNN = %v, original %v", got, want)
		}
	}
	if admitted, screened := restored.QuantFilterStats(); admitted == 0 || screened == 0 {
		t.Fatalf("restored filter never ran: admitted=%d screened=%d", admitted, screened)
	}

	// An unfiltered engine must keep producing the original format bytes.
	var v1 bytes.Buffer
	if err := plain.Save(&v1); err != nil {
		t.Fatalf("Save (plain): %v", err)
	}
	back, err := Load(&v1)
	if err != nil {
		t.Fatalf("Load (plain): %v", err)
	}
	if back.QuantFiltered() {
		t.Fatal("unfiltered snapshot restored with a filter")
	}
}

// TestQuantFilterSharded checks the scatter-gather engine: per-shard
// filters, byte-identical merges, and counters summed across shards.
func TestQuantFilterSharded(t *testing.T) {
	pts := indextest.ClusteredPoints(260, 4, 3, 71)
	base := []Option{WithBackend(BackendScan), WithScale(8)}
	plain, err := NewSharded(pts, 3, base...)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	filtered, err := NewSharded(pts, 3, append(base, WithQuantizedFilter())...)
	if err != nil {
		t.Fatalf("NewSharded (filtered): %v", err)
	}
	for qid := 0; qid < len(pts); qid += 19 {
		got, err := filtered.ReverseKNN(qid, 6)
		if err != nil {
			t.Fatalf("ReverseKNN(%d): %v", qid, err)
		}
		want, err := plain.ReverseKNN(qid, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded ReverseKNN(%d) = %v, unfiltered %v", qid, got, want)
		}
	}
	if admitted, screened := filtered.QuantFilterStats(); admitted == 0 || screened == 0 {
		t.Fatalf("sharded filter never ran: admitted=%d screened=%d", admitted, screened)
	}
	if !filtered.QuantFiltered() || plain.QuantFiltered() {
		t.Fatal("sharded QuantFiltered flags inverted")
	}
}

// TestQuantFilterTelemetry checks the candidate counters appear on the
// scrape and advance with queries — the operational guard that filter
// admission is observable, not inferred.
func TestQuantFilterTelemetry(t *testing.T) {
	pts := indextest.RandPoints(200, 4, 81)
	reg := telemetry.NewRegistry()
	s, err := New(pts, WithBackend(BackendScan), WithScale(8),
		WithQuantizedFilter(), WithTelemetry(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.ReverseKNN(0, 5); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := indextest.RandPoints(1, 4, int64(600+trial))[0]
		if _, err := s.KNN(q, 5); err != nil {
			t.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, family := range []string{
		"rknn_candidates_quant_admitted_total",
		"rknn_candidates_quant_screened_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("scrape missing %s", family)
		}
	}
	admitted, _ := s.QuantFilterStats()
	if admitted == 0 {
		t.Fatal("no candidates admitted after a query")
	}
	if !strings.Contains(out, `rknn_candidates_quant_admitted_total{backend="scan"}`) {
		t.Error("admitted counter missing backend label")
	}
}

// TestQuantFilterRequiresScan checks the option fails loudly on back-ends
// without a row-scan layout instead of silently not filtering.
func TestQuantFilterRequiresScan(t *testing.T) {
	pts := indextest.RandPoints(60, 3, 91)
	if _, err := New(pts, WithBackend(BackendCoverTree), WithScale(10), WithQuantizedFilter()); err == nil {
		t.Fatal("New accepted WithQuantizedFilter on the cover tree")
	}
	if _, err := NewSharded(pts, 2, WithBackend(BackendCoverTree), WithScale(10), WithQuantizedFilter()); err == nil {
		t.Fatal("NewSharded accepted WithQuantizedFilter on the cover tree")
	}
	if _, err := New(pts, WithBackend(BackendScan), WithScale(10), WithMetric(vecmath.Minkowski{P: 3}), WithQuantizedFilter()); err == nil {
		t.Fatal("New accepted WithQuantizedFilter with an unsupported metric")
	}
}
