// Package bruteforce computes exact reverse k-nearest-neighbor results by
// definition, with no index support. It is the ground truth for every recall
// and exactness measurement in this repository, and doubles as the O(n²)
// baseline that the paper's methods are designed to beat.
//
// Conventions (see DESIGN.md): neighbor ranks exclude the object itself, and
// boundary ties are accepted — x is a reverse k-nearest neighbor of q if and
// only if fewer than k points y ∉ {x} satisfy d(x,y) < d(x,q). This matches
// the refinement test d_k(x) ≥ d(q,x) in Algorithm 1 of the paper.
package bruteforce

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/vecmath"
)

// Truth answers exact RkNN queries over a fixed dataset.
type Truth struct {
	points [][]float64
	metric vecmath.Metric
	dist   vecmath.DistanceFunc // resolved kernel; falls back to metric.Distance
}

// New constructs a Truth over points. The slice is retained by reference.
func New(points [][]float64, metric vecmath.Metric) (*Truth, error) {
	if metric == nil {
		return nil, errors.New("bruteforce: nil metric")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	dist := vecmath.KernelFor(metric)
	if dist == nil {
		dist = metric.Distance
	}
	return &Truth{points: points, metric: metric, dist: dist}, nil
}

// Len returns the dataset size.
func (t *Truth) Len() int { return len(t.points) }

// RkNNByID returns the exact reverse k-nearest neighbors of the dataset
// member qid, as a sorted slice of IDs.
func (t *Truth) RkNNByID(qid, k int) ([]int, error) {
	if qid < 0 || qid >= len(t.points) {
		return nil, fmt.Errorf("bruteforce: query id %d out of range [0,%d)", qid, len(t.points))
	}
	return t.rknn(t.points[qid], qid, k)
}

// RkNN returns the exact reverse k-nearest neighbors of an arbitrary query
// point q (not necessarily a dataset member), as a sorted slice of IDs.
func (t *Truth) RkNN(q []float64, k int) ([]int, error) {
	if err := vecmath.ValidateFor(t.metric, q); err != nil {
		return nil, err
	}
	if len(q) != len(t.points[0]) {
		return nil, vecmath.CheckDims(q, t.points[0])
	}
	return t.rknn(q, -1, k)
}

func (t *Truth) rknn(q []float64, skipID, k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bruteforce: k must be positive, got %d", k)
	}
	var result []int
	for x := range t.points {
		if x == skipID {
			continue
		}
		dxq := t.dist(t.points[x], q)
		closer := 0
		for y := range t.points {
			if y == x {
				continue
			}
			if t.dist(t.points[x], t.points[y]) < dxq {
				closer++
				if closer >= k {
					break
				}
			}
		}
		if closer < k {
			result = append(result, x)
		}
	}
	sort.Ints(result)
	return result, nil
}

// KNNDists returns, for every dataset member x, its distance to its k-th
// nearest neighbor among the other members (or to the farthest member if
// fewer than k exist). Exact baselines with heavy precomputation (RdNN-Tree,
// MRkNNCoP) consume this table; tests use it to validate index kNN output.
func (t *Truth) KNNDists(k int) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bruteforce: k must be positive, got %d", k)
	}
	out := make([]float64, len(t.points))
	dists := make([]float64, 0, len(t.points)-1)
	for x := range t.points {
		dists = dists[:0]
		for y := range t.points {
			if y == x {
				continue
			}
			dists = append(dists, t.dist(t.points[x], t.points[y]))
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		if idx < 0 {
			out[x] = 0
			continue
		}
		out[x] = dists[idx]
	}
	return out, nil
}

// Recall returns |got ∩ want| / |want|, the approximation-quality measure of
// the paper's time-accuracy tradeoff curves. An empty ground truth counts as
// recall 1.
func Recall(got, want []int) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int]bool, len(want))
	for _, id := range want {
		set[id] = true
	}
	hit := 0
	for _, id := range got {
		if set[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// Precision returns |got ∩ want| / |got|. An empty result counts as
// precision 1.
func Precision(got, want []int) float64 {
	if len(got) == 0 {
		return 1
	}
	set := make(map[int]bool, len(want))
	for _, id := range want {
		set[id] = true
	}
	hit := 0
	for _, id := range got {
		if set[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(got))
}
