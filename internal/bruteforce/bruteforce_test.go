package bruteforce

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vecmath"
)

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("accepted nil metric")
	}
}

// TestRkNNHandConstructed verifies the reverse-neighbor semantics on a
// 1-D configuration small enough to reason about by hand:
//
//	positions:  a=0  b=1  c=3  d=7
//
// With k=1: a's NN is b; b's NN is a; c's NN is b; d's NN is c.
// So R1NN(b) = {a, c}, R1NN(a) = {b}, R1NN(c) = {d}, R1NN(d) = {}.
func TestRkNNHandConstructed(t *testing.T) {
	pts := [][]float64{{0}, {1}, {3}, {7}}
	tr, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		qid  int
		want []int
	}{
		{0, []int{1}},
		{1, []int{0, 2}},
		{2, []int{3}},
		{3, nil},
	}
	for _, tc := range cases {
		got, err := tr.RkNNByID(tc.qid, 1)
		if err != nil {
			t.Fatalf("RkNNByID(%d): %v", tc.qid, err)
		}
		if !equalIDs(got, tc.want) {
			t.Errorf("R1NN(%d) = %v, want %v", tc.qid, got, tc.want)
		}
	}
}

// TestRkNNMatchesDefinition cross-checks the optimized loop against a direct
// O(n²) transcription of the definition via full kNN lists.
func TestRkNNMatchesDefinition(t *testing.T) {
	pts := randPoints(70, 3, 11)
	metric := vecmath.Euclidean{}
	tr, err := New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 15} {
		for qid := 0; qid < 20; qid++ {
			got, err := tr.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for x := range pts {
				if x == qid {
					continue
				}
				// q is a reverse neighbor of x iff fewer than k
				// other points are strictly closer to x.
				dxq := metric.Distance(pts[x], pts[qid])
				closer := 0
				for y := range pts {
					if y == x {
						continue
					}
					if metric.Distance(pts[x], pts[y]) < dxq {
						closer++
					}
				}
				if closer < k {
					want = append(want, x)
				}
			}
			sort.Ints(want)
			if !equalIDs(got, want) {
				t.Errorf("k=%d qid=%d: got %v, want %v", k, qid, got, want)
			}
		}
	}
}

func TestExternalQuery(t *testing.T) {
	pts := [][]float64{{0}, {10}}
	tr, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// An external query at 1 is closer to point 0 than point 10 is, so 0
	// is a reverse 1-NN of it; point 10's nearest is 0 (distance 9 < 10),
	// wait: d(10, q)=9 < d(10, 0)=10, so 10 is also a reverse 1-NN.
	got, err := tr.RkNN([]float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []int{0, 1}) {
		t.Errorf("got %v, want [0 1]", got)
	}
	if _, err := tr.RkNN([]float64{1, 2}, 1); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := tr.RkNN([]float64{1}, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestRkNNByIDErrors(t *testing.T) {
	tr, err := New(randPoints(5, 2, 1), vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RkNNByID(-1, 1); err == nil {
		t.Error("accepted negative id")
	}
	if _, err := tr.RkNNByID(5, 1); err == nil {
		t.Error("accepted out-of-range id")
	}
	if _, err := tr.RkNNByID(0, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestKNNDists(t *testing.T) {
	pts := [][]float64{{0}, {1}, {3}}
	tr, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := tr.KNNDists(1)
	if err != nil {
		t.Fatal(err)
	}
	want1 := []float64{1, 1, 2}
	for i := range want1 {
		if d1[i] != want1[i] {
			t.Errorf("d1[%d] = %g, want %g", i, d1[i], want1[i])
		}
	}
	// k beyond the dataset clamps to the farthest neighbor.
	d9, err := tr.KNNDists(9)
	if err != nil {
		t.Fatal(err)
	}
	want9 := []float64{3, 2, 3}
	for i := range want9 {
		if d9[i] != want9[i] {
			t.Errorf("d9[%d] = %g, want %g", i, d9[i], want9[i])
		}
	}
	if _, err := tr.KNNDists(0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestRecallPrecision(t *testing.T) {
	want := []int{1, 2, 3, 4}
	if r := Recall([]int{1, 2}, want); r != 0.5 {
		t.Errorf("Recall = %g, want 0.5", r)
	}
	if r := Recall(nil, want); r != 0 {
		t.Errorf("Recall(empty) = %g, want 0", r)
	}
	if r := Recall([]int{9}, nil); r != 1 {
		t.Errorf("Recall vs empty truth = %g, want 1", r)
	}
	if p := Precision([]int{1, 9}, want); p != 0.5 {
		t.Errorf("Precision = %g, want 0.5", p)
	}
	if p := Precision(nil, want); p != 1 {
		t.Errorf("Precision(empty) = %g, want 1", p)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
