package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinHeapOrdering(t *testing.T) {
	h := NewMin[string](4)
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		it, ok := h.Pop()
		if !ok || it.Value != w {
			t.Fatalf("Pop = (%v,%v), want %q", it, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
}

func TestMinHeapPeek(t *testing.T) {
	h := NewMin[int](0)
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
	h.Push(5, 50)
	h.Push(2, 20)
	it, ok := h.Peek()
	if !ok || it.Priority != 2 || it.Value != 20 {
		t.Errorf("Peek = %+v, want priority 2 value 20", it)
	}
	if h.Len() != 2 {
		t.Errorf("Peek consumed an item: len %d", h.Len())
	}
}

func TestMinHeapReset(t *testing.T) {
	h := NewMin[int](0)
	h.Push(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("len after Reset = %d", h.Len())
	}
}

// TestMinHeapSortsRandomInput property-checks that repeated Pop yields a
// non-decreasing priority sequence containing exactly the pushed items.
func TestMinHeapSortsRandomInput(t *testing.T) {
	property := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		h := NewMin[int](0)
		pushed := make([]float64, n)
		for i := 0; i < n; i++ {
			p := rng.Float64()
			pushed[i] = p
			h.Push(p, i)
		}
		var popped []float64
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			popped = append(popped, it.Priority)
		}
		if len(popped) != n {
			return false
		}
		if !sort.Float64sAreSorted(popped) {
			return false
		}
		sort.Float64s(pushed)
		for i := range pushed {
			if pushed[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopKKeepsSmallest(t *testing.T) {
	top := NewTopK[int](3)
	for i, p := range []float64{9, 1, 8, 2, 7, 3} {
		top.Offer(p, i)
	}
	got := top.Sorted()
	wantPriorities := []float64{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, it := range got {
		if it.Priority != wantPriorities[i] {
			t.Errorf("Sorted()[%d].Priority = %g, want %g", i, it.Priority, wantPriorities[i])
		}
	}
	if b, full := top.Bound(); !full || b != 3 {
		t.Errorf("Bound = (%g,%v), want (3,true)", b, full)
	}
}

func TestTopKUnderfill(t *testing.T) {
	top := NewTopK[int](5)
	top.Offer(1, 0)
	if top.Full() {
		t.Error("Full with 1/5 items")
	}
	if _, full := top.Bound(); full {
		t.Error("Bound reported full with 1/5 items")
	}
	if top.Len() != 1 {
		t.Errorf("Len = %d", top.Len())
	}
}

func TestTopKPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewTopK[int](0)
}

// TestTopKMatchesSort property-checks TopK against a full sort.
func TestTopKMatchesSort(t *testing.T) {
	property := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		top := NewTopK[int](k)
		all := make([]float64, n)
		for i := 0; i < n; i++ {
			p := rng.Float64()
			all[i] = p
			top.Offer(p, i)
		}
		sort.Float64s(all)
		got := top.Sorted()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		for i := range got {
			if got[i].Priority != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
