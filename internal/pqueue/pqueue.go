// Package pqueue provides the priority queues used by the index structures:
// a generic min-heap keyed by float64 priority, and a bounded max-heap for
// accumulating k nearest neighbors.
//
// The standard library's container/heap requires an interface-based
// implementation with per-operation allocations; the indexes in this module
// sit inside tight best-first search loops, so these heaps are implemented
// directly over generic slices.
package pqueue

// Item is a payload with a float64 priority.
type Item[T any] struct {
	Priority float64
	Value    T
}

// Min is a binary min-heap on Item.Priority. The zero value is an empty heap
// ready to use.
type Min[T any] struct {
	items []Item[T]
}

// NewMin returns an empty min-heap with the given initial capacity.
func NewMin[T any](capacity int) *Min[T] {
	return &Min[T]{items: make([]Item[T], 0, capacity)}
}

// Len returns the number of queued items.
func (h *Min[T]) Len() int { return len(h.items) }

// Push inserts value with the given priority.
func (h *Min[T]) Push(priority float64, value T) {
	h.items = append(h.items, Item[T]{Priority: priority, Value: value})
	h.up(len(h.items) - 1)
}

// Peek returns the minimum-priority item without removing it. The boolean is
// false when the heap is empty.
func (h *Min[T]) Peek() (Item[T], bool) {
	if len(h.items) == 0 {
		return Item[T]{}, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum-priority item. The boolean is false
// when the heap is empty.
func (h *Min[T]) Pop() (Item[T], bool) {
	if len(h.items) == 0 {
		return Item[T]{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero Item[T]
	h.items[last] = zero // release payload for GC
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

// Reset empties the heap, retaining capacity.
func (h *Min[T]) Reset() { h.items = h.items[:0] }

func (h *Min[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Priority <= h.items[i].Priority {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Min[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].Priority < h.items[smallest].Priority {
			smallest = l
		}
		if r < n && h.items[r].Priority < h.items[smallest].Priority {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
