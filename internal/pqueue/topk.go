package pqueue

import "sort"

// TopK accumulates the k smallest-priority items seen so far. It is the
// standard bounded max-heap used for kNN search: the root holds the current
// k-th smallest priority, so a candidate can be discarded in O(1) when it
// cannot improve the result.
type TopK[T any] struct {
	k     int
	items []Item[T] // max-heap on Priority
}

// NewTopK returns an accumulator for the k smallest items. It panics if
// k <= 0; callers validate k at the library boundary.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pqueue: TopK requires k > 0")
	}
	return &TopK[T]{k: k, items: make([]Item[T], 0, k)}
}

// Len returns the number of retained items (at most k).
func (t *TopK[T]) Len() int { return len(t.items) }

// Full reports whether k items have been accumulated.
func (t *TopK[T]) Full() bool { return len(t.items) == t.k }

// Bound returns the current k-th smallest priority, or +Inf semantics via
// (0, false) when fewer than k items have been offered.
func (t *TopK[T]) Bound() (float64, bool) {
	if len(t.items) < t.k {
		return 0, false
	}
	return t.items[0].Priority, true
}

// Offer considers (priority, value) for inclusion and reports whether it was
// retained.
func (t *TopK[T]) Offer(priority float64, value T) bool {
	if len(t.items) < t.k {
		t.items = append(t.items, Item[T]{Priority: priority, Value: value})
		t.up(len(t.items) - 1)
		return true
	}
	if priority >= t.items[0].Priority {
		return false
	}
	t.items[0] = Item[T]{Priority: priority, Value: value}
	t.down(0)
	return true
}

// Sorted returns the retained items in ascending priority order. The heap is
// left intact.
func (t *TopK[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(t.items))
	copy(out, t.items)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

func (t *TopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.items[parent].Priority >= t.items[i].Priority {
			return
		}
		t.items[parent], t.items[i] = t.items[i], t.items[parent]
		i = parent
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.items[l].Priority > t.items[largest].Priority {
			largest = l
		}
		if r < n && t.items[r].Priority > t.items[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		t.items[i], t.items[largest] = t.items[largest], t.items[i]
		i = largest
	}
}
