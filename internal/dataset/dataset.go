// Package dataset provides the workloads for the experiments: seeded
// synthetic surrogates for the five datasets of the paper's evaluation
// (Sequoia, ALOI, FCT, MNIST, Imagenet), plus generic generators of known
// intrinsic dimensionality used by tests and estimator validation.
//
// The environment is offline, so the real datasets are unavailable; DESIGN.md
// documents why seeded surrogates that match each dataset's representational
// dimension, intrinsic dimensionality and cluster structure preserve the
// behaviour the paper measures.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a named collection of points with uniform dimensionality.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Points holds the feature vectors; IDs are slice positions.
	Points [][]float64
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Dim returns the representational dimension, or 0 for an empty dataset.
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Compact re-lays the rows into one contiguous row-major block, in place,
// and returns the dataset. Generators build rows one at a time (each its
// own allocation); compacting them restores the spatial locality the
// engine's scan layers are designed around, so dataset-side passes
// (standardization, benchmark query loops) stream instead of chasing
// pointers. Row slices keep their identity — only the backing storage
// moves — and full-capacity reslicing keeps an append on one row from
// clobbering its neighbor.
func (d *Dataset) Compact() *Dataset {
	if len(d.Points) == 0 {
		return d
	}
	dim := len(d.Points[0])
	arena := make([]float64, 0, len(d.Points)*dim)
	for _, p := range d.Points {
		arena = append(arena, p...)
	}
	for i := range d.Points {
		d.Points[i] = arena[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return d
}

// SampleIDs draws count distinct point IDs uniformly at random, mirroring the
// paper's protocol of issuing RkNN queries from 100 randomly chosen dataset
// members. If count >= Len, all IDs are returned.
func (d *Dataset) SampleIDs(count int, rng *rand.Rand) []int {
	n := d.Len()
	if count >= n {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	perm := rng.Perm(n)
	ids := make([]int, count)
	copy(ids, perm[:count])
	return ids
}

// Subsample returns a uniformly down-sampled copy with the given name,
// matching the paper's Imagenet100/250/500 protocol (Section 7.3). If size
// >= Len the original points are reused.
func (d *Dataset) Subsample(name string, size int, rng *rand.Rand) *Dataset {
	if size >= d.Len() {
		return &Dataset{Name: name, Points: d.Points}
	}
	perm := rng.Perm(d.Len())
	pts := make([][]float64, size)
	for i := 0; i < size; i++ {
		pts[i] = d.Points[perm[i]]
	}
	return (&Dataset{Name: name, Points: pts}).Compact()
}

// Uniform generates n points uniformly in the d-dimensional unit cube. Its
// intrinsic dimensionality equals d, which makes it the calibration workload
// for the LID estimators.
func Uniform(name string, n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return (&Dataset{Name: name, Points: pts}).Compact()
}

// GaussianMixture generates n points from c spherical Gaussian clusters with
// the given per-coordinate standard deviation, centers uniform in the unit
// cube.
func GaussianMixture(name string, n, d, c int, sigma float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, c)
	for i := range centers {
		ctr := make([]float64, d)
		for j := range ctr {
			ctr[j] = rng.Float64()
		}
		centers[i] = ctr
	}
	pts := make([][]float64, n)
	for i := range pts {
		ctr := centers[rng.Intn(c)]
		p := make([]float64, d)
		for j := range p {
			p[j] = ctr[j] + rng.NormFloat64()*sigma
		}
		pts[i] = p
	}
	return (&Dataset{Name: name, Points: pts}).Compact()
}

// Manifold generates n points on a smooth latentDim-dimensional manifold
// nonlinearly embedded in ambientDim dimensions, with additive Gaussian
// observation noise. Each ambient coordinate is a random mixture of
// sinusoids of the latent variables, giving a manifold whose local intrinsic
// dimensionality is latentDim while its representational dimension is
// ambientDim — the regime the paper's dimensional test exploits.
func Manifold(name string, n, latentDim, ambientDim int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	lift := newLift(latentDim, ambientDim, rng)
	pts := make([][]float64, n)
	z := make([]float64, latentDim)
	for i := range pts {
		for j := range z {
			z[j] = rng.Float64()
		}
		p := lift.apply(z)
		for j := range p {
			p[j] += rng.NormFloat64() * noise
		}
		pts[i] = p
	}
	return (&Dataset{Name: name, Points: pts}).Compact()
}

// lift is a fixed random smooth map R^latent -> R^ambient. Coordinates are
// sums of sinusoids with random frequencies, phases and latent weights, so
// the image is a bounded curved manifold (no two coordinates collapse to the
// same function almost surely).
type lift struct {
	freq  [][]float64 // [ambient][latent]
	phase []float64   // [ambient]
	amp   []float64   // [ambient]
}

func newLift(latentDim, ambientDim int, rng *rand.Rand) *lift {
	l := &lift{
		freq:  make([][]float64, ambientDim),
		phase: make([]float64, ambientDim),
		amp:   make([]float64, ambientDim),
	}
	for i := 0; i < ambientDim; i++ {
		row := make([]float64, latentDim)
		for j := range row {
			row[j] = (rng.Float64()*2 - 1) * 3 // frequencies in [-3, 3]
		}
		l.freq[i] = row
		l.phase[i] = rng.Float64() * 2 * math.Pi
		l.amp[i] = 0.5 + rng.Float64()
	}
	return l
}

func (l *lift) apply(z []float64) []float64 {
	out := make([]float64, len(l.freq))
	for i := range out {
		var arg float64
		for j, f := range l.freq[i] {
			arg += f * z[j]
		}
		out[i] = l.amp[i] * math.Sin(arg+l.phase[i])
	}
	return out
}

// Standardize rescales every column to zero mean and unit variance in place,
// the normalization the paper applies to FCT ("we normalized each feature to
// standard scores"). Constant columns are left at zero.
func Standardize(pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	dim := len(pts[0])
	n := float64(len(pts))
	for j := 0; j < dim; j++ {
		var sum float64
		for _, p := range pts {
			sum += p[j]
		}
		mean := sum / n
		var varsum float64
		for _, p := range pts {
			d := p[j] - mean
			varsum += d * d
		}
		sd := math.Sqrt(varsum / n)
		if sd == 0 {
			for _, p := range pts {
				p[j] = 0
			}
			continue
		}
		for _, p := range pts {
			p[j] = (p[j] - mean) / sd
		}
	}
}

// Validate returns an error if the dataset is empty or rows disagree on
// dimensionality. Generators always produce valid datasets; this is for
// data loaded from files.
func (d *Dataset) Validate() error {
	if d.Len() == 0 {
		return fmt.Errorf("dataset %q: empty", d.Name)
	}
	dim := d.Dim()
	for i, p := range d.Points {
		if len(p) != dim {
			return fmt.Errorf("dataset %q: row %d has dim %d, want %d", d.Name, i, len(p), dim)
		}
	}
	return nil
}
