package dataset

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func TestUniformShape(t *testing.T) {
	d := Uniform("u", 100, 5, 1)
	if d.Len() != 100 || d.Dim() != 5 {
		t.Fatalf("Len/Dim = %d/%d", d.Len(), d.Dim())
	}
	for _, p := range d.Points {
		for _, x := range p {
			if x < 0 || x >= 1 {
				t.Fatalf("coordinate %g outside [0,1)", x)
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	gens := map[string]func(seed int64) *Dataset{
		"uniform":  func(s int64) *Dataset { return Uniform("u", 50, 3, s) },
		"gmm":      func(s int64) *Dataset { return GaussianMixture("g", 50, 3, 4, 0.1, s) },
		"manifold": func(s int64) *Dataset { return Manifold("m", 50, 2, 6, 0.01, s) },
		"sequoia":  func(s int64) *Dataset { return Sequoia(50, s) },
		"aloi":     func(s int64) *Dataset { return ALOI(20, s) },
		"fct":      func(s int64) *Dataset { return FCT(20, s) },
		"mnist":    func(s int64) *Dataset { return MNIST(20, s) },
		"imagenet": func(s int64) *Dataset { return Imagenet(20, 64, s) },
	}
	for name, gen := range gens {
		a, b := gen(42), gen(42)
		c := gen(43)
		if !pointsEqual(a.Points, b.Points) {
			t.Errorf("%s: same seed produced different data", name)
		}
		if pointsEqual(a.Points, c.Points) {
			t.Errorf("%s: different seeds produced identical data", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", name, err)
		}
		if err := vecmath.ValidateAll(a.Points); err != nil {
			t.Errorf("%s: invalid coordinates: %v", name, err)
		}
	}
}

func TestSurrogateDimensions(t *testing.T) {
	cases := []struct {
		name string
		ds   *Dataset
		dim  int
	}{
		{"sequoia", Sequoia(10, 1), 2},
		{"aloi", ALOI(10, 1), 641},
		{"fct", FCT(10, 1), 53},
		{"mnist", MNIST(10, 1), 784},
		{"imagenet", Imagenet(10, 128, 1), 128},
	}
	for _, tc := range cases {
		if tc.ds.Dim() != tc.dim {
			t.Errorf("%s dim = %d, want %d", tc.name, tc.ds.Dim(), tc.dim)
		}
	}
}

func TestSampleIDs(t *testing.T) {
	d := Uniform("u", 30, 2, 1)
	rng := rand.New(rand.NewSource(7))
	ids := d.SampleIDs(10, rng)
	if len(ids) != 10 {
		t.Fatalf("len = %d", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 30 {
			t.Errorf("id %d out of range", id)
		}
		if seen[id] {
			t.Errorf("duplicate id %d", id)
		}
		seen[id] = true
	}
	all := d.SampleIDs(100, rng)
	if len(all) != 30 {
		t.Errorf("oversized sample returned %d ids, want all 30", len(all))
	}
}

func TestSubsample(t *testing.T) {
	d := Uniform("u", 100, 2, 1)
	rng := rand.New(rand.NewSource(3))
	sub := d.Subsample("u100", 25, rng)
	if sub.Len() != 25 || sub.Name != "u100" {
		t.Fatalf("Subsample = %d points, name %q", sub.Len(), sub.Name)
	}
	same := d.Subsample("full", 200, rng)
	if same.Len() != 100 {
		t.Errorf("oversized Subsample = %d points", same.Len())
	}
}

func TestStandardize(t *testing.T) {
	pts := [][]float64{{1, 5, 7}, {3, 5, 9}, {5, 5, 11}}
	Standardize(pts)
	for j := 0; j < 3; j++ {
		var mean float64
		for _, p := range pts {
			mean += p[j]
		}
		mean /= 3
		if math.Abs(mean) > 1e-12 {
			t.Errorf("column %d mean = %g", j, mean)
		}
	}
	// Constant column becomes zero with no NaNs.
	for _, p := range pts {
		if p[1] != 0 {
			t.Errorf("constant column value = %g, want 0", p[1])
		}
	}
	var sd float64
	for _, p := range pts {
		sd += p[0] * p[0]
	}
	if math.Abs(sd/3-1) > 1e-12 {
		t.Errorf("column 0 variance = %g, want 1", sd/3)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Uniform("u", 20, 3, 9)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("u", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !pointsEqual(d.Points, back.Points) {
		t.Error("CSV round trip altered the data")
	}
}

func TestGobRoundTrip(t *testing.T) {
	d := Sequoia(20, 9)
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatalf("WriteGob: %v", err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatalf("ReadGob: %v", err)
	}
	if back.Name != "sequoia" || !pointsEqual(d.Points, back.Points) {
		t.Error("gob round trip altered the data")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("bad", bytes.NewBufferString("1,2\nx,4\n")); err == nil {
		t.Error("accepted non-numeric CSV")
	}
	if _, err := ReadCSV("empty", bytes.NewBufferString("")); err == nil {
		t.Error("accepted empty CSV")
	}
}

func pointsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestBinaryRoundTrip pins the current binary format (the checksummed
// persist framing) and the deprecated WriteGob alias writing it too.
func TestBinaryRoundTrip(t *testing.T) {
	d := FCT(25, 4)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("RKNNDATA")) {
		t.Error("binary format does not open with the persist magic")
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.Name != d.Name || !pointsEqual(d.Points, back.Points) {
		t.Error("binary round trip altered the data")
	}
	// Corruption anywhere must be detected — the property gob never had.
	mut := bytes.Clone(buf.Bytes())
	mut[len(mut)/2] ^= 0x20
	if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
		t.Error("ReadBinary accepted a corrupted stream")
	}
}

// TestBinaryReadsLegacyGob: files written before the persist format still
// load through the sniffing fallback.
func TestBinaryReadsLegacyGob(t *testing.T) {
	d := Sequoia(15, 3)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobDataset{Name: d.Name, Points: d.Points}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary(legacy gob): %v", err)
	}
	if back.Name != d.Name || !pointsEqual(d.Points, back.Points) {
		t.Error("legacy gob fallback altered the data")
	}
}
