package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"

	"repro/internal/persist"
)

// WriteCSV writes the dataset as rows of comma-separated coordinates.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	row := make([]string, d.Dim())
	for _, p := range d.Points {
		for j, x := range p {
			row[j] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from rows of comma-separated coordinates.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	var pts [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		p := make([]float64, len(rec))
		for j, field := range rec {
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", len(pts), j, err)
			}
			p[j] = x
		}
		pts = append(pts, p)
	}
	d := &Dataset{Name: name, Points: pts}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteBinary writes the dataset in the checksummed binary format of
// internal/persist (magic "RKNNDATA"): the same framing and corruption
// detection as engine snapshots, for bare named point sets. CSV remains
// the ingest path for external data; this is the compact interchange
// format between the tools.
func (d *Dataset) WriteBinary(w io.Writer) error {
	if err := persist.WriteDataset(w, d.Name, d.Points); err != nil {
		return fmt.Errorf("dataset: write binary: %w", err)
	}
	return nil
}

// ReadBinary parses a dataset written by WriteBinary. For compatibility
// with files produced before the persist format existed, a stream that
// does not open with the persist magic falls back to the legacy gob
// decoder.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := persist.DataMagic()
	head, err := br.Peek(len(magic))
	if err != nil || [8]byte(head) != magic {
		return readLegacyGob(br)
	}
	name, pts, err := persist.ReadDataset(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: read binary: %w", err)
	}
	d := &Dataset{Name: name, Points: pts}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// gobDataset is the legacy on-disk representation, kept only so ReadBinary
// can still ingest old files.
type gobDataset struct {
	Name   string
	Points [][]float64
}

func readLegacyGob(r io.Reader) (*Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: read gob: %w", err)
	}
	d := &Dataset{Name: g.Name, Points: g.Points}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteGob writes the dataset in the binary format.
//
// Deprecated: the gob encoding has been replaced by the checksummed
// persist format; WriteGob now writes that format. Use WriteBinary.
func (d *Dataset) WriteGob(w io.Writer) error { return d.WriteBinary(w) }

// ReadGob parses a dataset in the binary format (current or legacy gob).
//
// Deprecated: use ReadBinary.
func ReadGob(r io.Reader) (*Dataset, error) { return ReadBinary(r) }
