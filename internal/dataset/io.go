package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset as rows of comma-separated coordinates.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	row := make([]string, d.Dim())
	for _, p := range d.Points {
		for j, x := range p {
			row[j] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from rows of comma-separated coordinates.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	var pts [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		p := make([]float64, len(rec))
		for j, field := range rec {
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", len(pts), j, err)
			}
			p[j] = x
		}
		pts = append(pts, p)
	}
	d := &Dataset{Name: name, Points: pts}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// gobDataset is the on-disk representation for the binary format.
type gobDataset struct {
	Name   string
	Points [][]float64
}

// WriteGob writes the dataset in the compact binary format.
func (d *Dataset) WriteGob(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(gobDataset{Name: d.Name, Points: d.Points}); err != nil {
		return fmt.Errorf("dataset: write gob: %w", err)
	}
	return nil
}

// ReadGob parses a dataset written by WriteGob.
func ReadGob(r io.Reader) (*Dataset, error) {
	var g gobDataset
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: read gob: %w", err)
	}
	d := &Dataset{Name: g.Name, Points: g.Points}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
