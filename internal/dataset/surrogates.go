package dataset

import (
	"math"
	"math/rand"
)

// The generators in this file are the surrogates for the paper's evaluation
// datasets (Section 7.1 and 7.3). Each matches the original's
// representational dimension and approximate intrinsic dimensionality; see
// the substitution table in DESIGN.md.

// Sequoia generates a surrogate for the Sequoia dataset: n 2-D locations.
// California place locations hug a coastline and a central valley, so the
// surrogate draws points from anisotropic Gaussian clusters strung along a
// long curved arc, yielding an intrinsic dimensionality a little below 2
// (the paper estimates 1.8).
func Sequoia(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 40
	pts := make([][]float64, n)
	for i := range pts {
		// Pick a position along the arc, biased toward a few hot spots
		// (cities) by mixing uniform and clustered draws.
		var tpos float64
		if rng.Float64() < 0.6 {
			tpos = float64(rng.Intn(clusters)) / clusters
		} else {
			tpos = rng.Float64()
		}
		// Coastline-like arc through the unit square.
		cx := 0.1 + 0.8*tpos
		cy := 0.5 + 0.35*math.Sin(2.2*math.Pi*tpos)
		// Anisotropic jitter: tight across the arc, loose along it.
		along := rng.NormFloat64() * 0.02
		across := rng.NormFloat64() * 0.004
		pts[i] = []float64{cx + along, cy + across + 0.05*rng.NormFloat64()*rng.Float64()}
	}
	return (&Dataset{Name: "sequoia", Points: pts}).Compact()
}

// ALOI generates a surrogate for the Amsterdam Library of Object Images
// feature vectors: 641 non-negative histogram-like dimensions whose
// variation is driven by a ~4-dimensional latent space (object pose and
// illumination), matching the paper's GP/Takens ID estimates of ~2 and MLE
// of ~7.7.
func ALOI(n int, seed int64) *Dataset {
	d := latentHistogram(n, 4, 641, 0.01, seed)
	d.Name = "aloi"
	return d
}

// FCT generates a surrogate for the Forest Cover Type dataset: 53
// topographical attributes driven by a ~4-dimensional latent manifold
// (elevation, slope, moisture, soil mix), standardized to z-scores as in the
// paper (estimated ID ~3.5-3.9).
func FCT(n int, seed int64) *Dataset {
	d := Manifold("fct", n, 4, 53, 0.02, seed)
	Standardize(d.Points)
	return d
}

// MNIST generates a surrogate for the MNIST digit images: 784 dimensions,
// ten class clusters, each cluster a ~10-dimensional latent manifold
// (stroke-style variation), matching the paper's MLE estimate of ~12.
func MNIST(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const classes = 10
	const latentDim = 10
	const ambient = 784
	lifts := make([]*lift, classes)
	offsets := make([][]float64, classes)
	for c := range lifts {
		lifts[c] = newLift(latentDim, ambient, rng)
		off := make([]float64, ambient)
		for j := range off {
			off[j] = rng.NormFloat64() * 1.5
		}
		offsets[c] = off
	}
	pts := make([][]float64, n)
	z := make([]float64, latentDim)
	for i := range pts {
		c := rng.Intn(classes)
		for j := range z {
			z[j] = rng.Float64()
		}
		p := lifts[c].apply(z)
		for j := range p {
			p[j] = p[j] + offsets[c][j] + rng.NormFloat64()*0.05
		}
		pts[i] = p
	}
	return (&Dataset{Name: "mnist", Points: pts}).Compact()
}

// Imagenet generates a surrogate for the Imagenet deep-feature vectors used
// in the scalability experiments (Section 7.3): dim dimensions (the paper
// uses 4096; the experiments here default to a smaller dim for runtime, set
// by the caller), with many class clusters on moderate-dimensional latent
// manifolds and heavier observation noise, as is typical of late CNN
// activations.
func Imagenet(n, dim int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const classes = 100
	const latentDim = 8
	lifts := make([]*lift, classes)
	offsets := make([][]float64, classes)
	for c := range lifts {
		lifts[c] = newLift(latentDim, dim, rng)
		off := make([]float64, dim)
		for j := range off {
			off[j] = rng.NormFloat64()
		}
		offsets[c] = off
	}
	pts := make([][]float64, n)
	z := make([]float64, latentDim)
	for i := range pts {
		c := rng.Intn(classes)
		for j := range z {
			z[j] = rng.Float64()
		}
		p := lifts[c].apply(z)
		for j := range p {
			// ReLU-like clipping gives the sparse non-negative look
			// of CNN features.
			v := p[j] + offsets[c][j] + rng.NormFloat64()*0.1
			if v < 0 {
				v = 0
			}
			p[j] = v
		}
		pts[i] = p
	}
	return (&Dataset{Name: "imagenet", Points: pts}).Compact()
}

// latentHistogram produces non-negative rows that sum to ~1 (histogram-like
// features) driven by a low-dimensional latent variable.
func latentHistogram(n, latentDim, ambientDim int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	l := newLift(latentDim, ambientDim, rng)
	pts := make([][]float64, n)
	z := make([]float64, latentDim)
	for i := range pts {
		for j := range z {
			z[j] = rng.Float64()
		}
		p := l.apply(z)
		var sum float64
		for j := range p {
			// Shift sinusoids into the positive range and sharpen so
			// most mass concentrates in few bins, like a histogram.
			v := (p[j]/l.amp[j] + 1) / 2
			v = v * v * v
			v += math.Abs(rng.NormFloat64()) * noise
			p[j] = v
			sum += v
		}
		if sum > 0 {
			for j := range p {
				p[j] /= sum
			}
		}
		pts[i] = p
	}
	return (&Dataset{Name: "histogram", Points: pts}).Compact()
}
