package core

import (
	"math"
	"testing"

	"repro/internal/scan"
	"repro/internal/vecmath"
)

// TestOmegaTerminationHappens checks that the dimensional test — not the
// rank cap — is what stops the search at moderate t on well-behaved data,
// since that is the paper's actual mechanism.
func TestOmegaTerminationHappens(t *testing.T) {
	pts := randPoints(2000, 3, 23)
	ix := newScan(t, pts)
	qr, err := NewQuerier(ix, Params{K: 5, T: 6})
	if err != nil {
		t.Fatal(err)
	}
	omegaStops := 0
	for qid := 0; qid < 20; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TerminatedByOmega {
			omegaStops++
			if math.IsInf(res.Stats.Omega, 1) {
				t.Error("ω-terminated search reported infinite ω")
			}
		}
		if res.Stats.ScanDepth >= ix.Len()-1 {
			t.Errorf("qid=%d: search exhausted the dataset at t=6", qid)
		}
	}
	if omegaStops == 0 {
		t.Error("the dimensional test never terminated the search at t=6")
	}
}

// TestRankCapTermination checks the other exit: tiny t caps the scan at
// ⌊2^t·k⌋ retrieved neighbors.
func TestRankCapTermination(t *testing.T) {
	pts := randPoints(1000, 3, 29)
	ix := newScan(t, pts)
	k := 4
	tVal := 1.5
	qr, err := NewQuerier(ix, Params{K: k, T: tVal})
	if err != nil {
		t.Fatal(err)
	}
	cap := int(math.Pow(2, tVal) * float64(k))
	for qid := 0; qid < 10; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ScanDepth > cap {
			t.Errorf("qid=%d: scan depth %d exceeds rank cap %d", qid, res.Stats.ScanDepth, cap)
		}
	}
}

// TestWitnessCountsMatchDefinition re-derives W(x) from the definition
// W(x) = |{y ∈ F : d(x,y) < d(x,q)}| on a tiny instance and compares
// against the values implied by the stats. The instance is built so the
// search must exhaust it (t huge), making F the whole dataset minus q.
func TestWitnessCountsMatchDefinition(t *testing.T) {
	pts := randPoints(40, 2, 31)
	metric := vecmath.Euclidean{}
	ix, err := scan.New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	qr, err := NewQuerier(ix, Params{K: k, T: 64})
	if err != nil {
		t.Fatal(err)
	}
	for qid := 0; qid < 10; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ScanDepth != len(pts)-1 {
			t.Fatalf("qid=%d: search did not exhaust the dataset (depth %d)", qid, res.Stats.ScanDepth)
		}
		// Reconstruct the final witness counts from the definition
		// over F = S \ {q} (the search exhausted the dataset).
		q := pts[qid]
		rejects := 0
		for x := range pts {
			if x == qid {
				continue
			}
			dxq := metric.Distance(pts[x], q)
			w := 0
			for y := range pts {
				if y == x || y == qid {
					continue
				}
				if metric.Distance(pts[x], pts[y]) < dxq {
					w++
				}
			}
			if w >= k {
				rejects++
			}
		}
		if res.Stats.LazyRejects != rejects {
			t.Errorf("qid=%d: %d lazy rejects, definition gives %d",
				qid, res.Stats.LazyRejects, rejects)
		}
	}
}

// TestByPointEquivalentToByID checks that querying a member by coordinates
// (without the self exclusion) differs from ByID exactly by the member
// itself appearing as its own duplicate neighbor.
func TestByPointEquivalentToByID(t *testing.T) {
	pts := randPoints(120, 3, 37)
	ix := newScan(t, pts)
	k := 4
	qr, err := NewQuerier(ix, Params{K: k, T: 64})
	if err != nil {
		t.Fatal(err)
	}
	qid := 7
	byID, err := qr.ByID(qid)
	if err != nil {
		t.Fatal(err)
	}
	byPt, err := qr.ByPoint(pts[qid])
	if err != nil {
		t.Fatal(err)
	}
	// ByPoint sees the member itself at distance zero: it is trivially a
	// reverse neighbor (its own kNN ball contains the coincident query).
	wantSelf := false
	for _, id := range byPt.IDs {
		if id == qid {
			wantSelf = true
		}
	}
	if !wantSelf {
		t.Errorf("ByPoint on member coordinates did not report the member: %v", byPt.IDs)
	}
	// Every ByID answer must also be a ByPoint answer (the coincident
	// extra point can only push borderline ties out, never add misses
	// for k >= 2 ... with k=4 and random data ties are absent).
	set := map[int]bool{}
	for _, id := range byPt.IDs {
		set[id] = true
	}
	for _, id := range byID.IDs {
		if !set[id] {
			t.Errorf("ByID answer %d missing from ByPoint result", id)
		}
	}
}
