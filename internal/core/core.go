// Package core implements RDT and RDT+, the reverse k-nearest-neighbor
// algorithms of Casanova, Englmeier, Houle, Kröger, Nett, Schubert and Zimek:
// "Dimensional Testing for Reverse k-Nearest Neighbor Search", PVLDB 10(7),
// 2017 — the paper's primary contribution (Algorithm 1).
//
// RDT answers an RkNN query at q with a filter-refinement strategy:
//
//   - The filter phase expands a forward nearest-neighbor search outward
//     from q using any index supporting incremental NN queries. The search
//     is cut off by a *dimensional test*: assuming the scale parameter t
//     upper-bounds the local intrinsic dimensionality around the query, an
//     upper bound ω on the query distance of any undiscovered reverse
//     neighbor is maintained from the observed (rank, distance) pairs, and
//     the search stops once the expansion passes ω (Theorem 1).
//   - Witness counting settles most candidates without any further index
//     work: a candidate with k witnesses cannot be a reverse neighbor (lazy
//     reject, Assertion 1), and a candidate whose 2·d(q,x) ball has been
//     fully explored with fewer than k witnesses must be one (lazy accept,
//     Assertion 2).
//   - The refinement phase verifies each remaining candidate x with one
//     forward kNN query, accepting x iff d_k(x) ≥ d(q,x).
//
// RDT+ (paper Section 4.3) additionally excludes a newly retrieved point
// from the filter set when its first witness cycle already rejects it, which
// bounds the quadratic witness-maintenance cost at a small risk of false
// positives through lazy acceptance.
//
// Note on the paper's pseudocode: lines 10–15 of Algorithm 1 increment W(v)
// under the condition d(q,x) > d(v,x) and W(x) under d(q,v) > d(v,x), which
// is inconsistent with the witness definition W(x) = |{y ∈ F : d(x,y) <
// d(x,q)}| used by Assertions 1 and 2 (the counters are swapped). This
// implementation follows the definition: d(v,x) < d(q,x) makes v a witness
// of x, and d(v,x) < d(q,v) makes x a witness of v.
//
// Note on ties: following the pseudocode's refinement test d_k(v) ≥ d(q,v),
// a point tied exactly at its own k-NN ball boundary counts as a reverse
// neighbor (the convention of practical RkNN systems). The paper's formal
// rank definition instead assigns maximum rank to ties, under which such
// points are excluded — and Theorem 1's exactness threshold is derived for
// that convention. The two agree on tie-free data; on data with large
// duplicate clusters, a boundary-tied reverse neighbor beyond the ω horizon
// can require a scale parameter above MaxGED to be found (fuzzing produced
// a 14-point instance needing t ≈ 87). The unconditional invariants are:
// no false positives at any t (plain RDT), and exactness whenever the
// expanding search exhausts the dataset.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/trace"
	"repro/internal/vecmath"
)

// Params configures a Querier.
type Params struct {
	// K is the reverse neighbor rank: the query returns the points that
	// have q among their K nearest neighbors. Must be positive.
	K int

	// T is the scale parameter t > 0 of the dimensional test, trading
	// result quality for execution time. Theorem 1 guarantees an exact
	// result when T is at least the maximum generalized expansion
	// dimension MaxGED(S ∪ {q}, K); in practice T is set from an
	// intrinsic-dimensionality estimate (package lid, paper Section 6).
	T float64

	// Plus enables the RDT+ candidate-set reduction: points rejected in
	// their first witness cycle never enter the filter set.
	Plus bool
}

func (p Params) validate() error {
	if p.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", p.K)
	}
	if !(p.T > 0) { // also rejects NaN
		return fmt.Errorf("core: T must be positive, got %v", p.T)
	}
	return nil
}

// Stats reports what the filter and refinement phases did for one query.
// The harness aggregates these to reproduce Figure 7 of the paper.
type Stats struct {
	// ScanDepth is s, the number of forward neighbors retrieved before
	// the expanding search terminated.
	ScanDepth int
	// FilterSize is |F|, the number of candidates kept in the filter set.
	FilterSize int
	// Excluded counts candidates RDT+ refused to insert into F (zero for
	// plain RDT).
	Excluded int
	// LazyAccepts counts candidates accepted by Assertion 2.
	LazyAccepts int
	// LazyRejects counts candidates whose witness count reached K,
	// including RDT+ exclusions.
	LazyRejects int
	// Verified counts explicit forward-kNN verifications performed in
	// the refinement phase.
	Verified int
	// VerifiedHits counts verifications that confirmed a reverse
	// neighbor.
	VerifiedHits int
	// DistanceComps counts distance computations performed by the
	// witness machinery itself (index-internal work is not included).
	DistanceComps int64
	// Omega is the final value of the termination bound ω
	// (math.Inf(1) if it was never tightened).
	Omega float64
	// TerminatedByOmega records whether the search stopped because the
	// expansion passed ω (as opposed to hitting the 2^t·k rank cap or
	// exhausting the dataset).
	TerminatedByOmega bool
}

// Candidates returns the total number of points that entered the witness
// machinery (filter set plus RDT+ exclusions).
func (s Stats) Candidates() int { return s.FilterSize + s.Excluded }

// Result is the answer to one reverse k-nearest-neighbor query.
type Result struct {
	// IDs holds the reverse k-nearest neighbors found, sorted ascending.
	IDs []int
	// Stats describes the work performed.
	Stats Stats
}

// scaleStrategy yields the scale parameter in effect at each step of the
// expanding search. The fixed strategy realizes the paper's Algorithm 1;
// the adaptive strategy (adaptive.go) implements the dynamic adjustment the
// paper poses as future work (Section 9).
type scaleStrategy interface {
	// observe ingests the s-th retrieved neighbor distance and returns
	// the scale parameter to use for this step's dimensional test.
	observe(s int, dist float64) float64
}

// fixedScale is Algorithm 1's constant t.
type fixedScale struct{ t float64 }

func (f fixedScale) observe(int, float64) float64 { return f.t }

// Querier answers RkNN queries over a fixed index using RDT or RDT+. It is
// safe for concurrent use as long as the underlying index is.
type Querier struct {
	ix       index.Index
	metric   vecmath.Metric
	dist     vecmath.DistanceFunc // resolved kernel; falls back to metric.Distance
	params   Params
	newScale func() scaleStrategy // fresh per-query state
}

// resolveKernel picks the direct distance kernel for m so the witness cycle
// — the quadratic heart of Algorithm 1 — skips the per-pair interface call.
func resolveKernel(m vecmath.Metric) vecmath.DistanceFunc {
	if k := vecmath.KernelFor(m); k != nil {
		return k
	}
	return m.Distance
}

// NewQuerier validates the parameters and returns a Querier over ix.
func NewQuerier(ix index.Index, params Params) (*Querier, error) {
	if ix == nil {
		return nil, errors.New("core: nil index")
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	if ix.Len() == 0 {
		return nil, errors.New("core: empty index")
	}
	return &Querier{
		ix:       ix,
		metric:   ix.Metric(),
		dist:     resolveKernel(ix.Metric()),
		params:   params,
		newScale: func() scaleStrategy { return fixedScale{t: params.T} },
	}, nil
}

// Params returns the parameters the Querier was built with.
func (qr *Querier) Params() Params { return qr.params }

// ErrDeletedID reports a member query anchored at a tombstoned point.
// Callers racing deletes (the serving layer, streaming workloads) match it
// with errors.Is to tell "gone" from "never existed".
var ErrDeletedID = errors.New("query id is deleted")

// ByID answers the query for dataset member qid. The member itself is
// excluded from its own neighborhoods per the self-exclusion convention.
// On indexes with tombstoned deletes (index.Liveness) the live IDs are not
// the dense prefix [0, Len()), so validation goes through the ID span and
// rejects deleted members with ErrDeletedID.
func (qr *Querier) ByID(qid int) (*Result, error) {
	return qr.ByIDCtx(context.Background(), qid)
}

// ByIDCtx is ByID with a context. When ctx carries a trace span the query
// hangs a "core.rknn" span with scan/filter/verify stage children off it;
// an untraced context costs one nil check and nothing else.
func (qr *Querier) ByIDCtx(ctx context.Context, qid int) (*Result, error) {
	if lv, ok := qr.ix.(index.Liveness); ok {
		if qid < 0 || qid >= lv.IDSpan() {
			return nil, fmt.Errorf("core: query id %d out of range [0,%d)", qid, lv.IDSpan())
		}
		if !lv.Live(qid) {
			return nil, fmt.Errorf("core: query id %d: %w", qid, ErrDeletedID)
		}
	} else if qid < 0 || qid >= qr.ix.Len() {
		return nil, fmt.Errorf("core: query id %d out of range [0,%d)", qid, qr.ix.Len())
	}
	return qr.run(ctx, qr.ix.Point(qid), qid)
}

// ByPoint answers the query for an arbitrary point q, which need not be a
// dataset member.
func (qr *Querier) ByPoint(q []float64) (*Result, error) {
	return qr.ByPointCtx(context.Background(), q)
}

// ByPointCtx is ByPoint with a context, traced like ByIDCtx.
func (qr *Querier) ByPointCtx(ctx context.Context, q []float64) (*Result, error) {
	if err := vecmath.ValidateFor(qr.metric, q); err != nil {
		return nil, err
	}
	if len(q) != qr.ix.Dim() {
		return nil, fmt.Errorf("core: query dimension %d, index dimension %d: %w",
			len(q), qr.ix.Dim(), vecmath.ErrDimensionMismatch)
	}
	return qr.run(ctx, q, -1)
}

// candidate is one member of the filter set F.
type candidate struct {
	id       int
	point    []float64
	dq       float64 // d(q, x)
	w        int     // witness count W(x)
	accepted bool    // lazily accepted by Assertion 2
}

// filterPool recycles filter-set backing arrays across queries. The filter
// set is the dominant transient allocation of Algorithm 1, and a serving
// process answers queries in a steady stream; pooling keeps the per-query
// garbage near zero under concurrent load.
var filterPool = sync.Pool{New: func() any { return new([]candidate) }}

// ctxCursorIndex is an optional index capability: a cursor constructor
// receiving the query context, so layered indexes (the overlay) can hang
// their own spans off the query's trace. Only consulted when the query is
// actually traced.
type ctxCursorIndex interface {
	NewCursorCtx(ctx context.Context, q []float64, skipID int) index.Cursor
}

// traceFinisher is an optional cursor capability: called once after the
// expanding scan completes so the cursor can emit spans from durations it
// accumulated while being driven.
type traceFinisher interface{ FinishTrace() }

// run executes Algorithm 1. skipID excludes a member query from its own
// forward search; -1 disables the exclusion.
//
// When ctx carries a trace span, run opens "core.rknn" with the full
// Stats attached as attributes, plus three stage children: "core.scan"
// (cursor-driving time of the expanding forward search), "core.filter"
// (witness-cycle time, measured by accumulation since it interleaves with
// the scan) and "core.verify" (refinement). Untraced queries pay one nil
// check; all time.Now() reads are guarded behind it.
func (qr *Querier) run(ctx context.Context, q []float64, skipID int) (*Result, error) {
	k := qr.params.K
	scale := qr.newScale()
	n := qr.ix.Len()
	if skipID >= 0 {
		n-- // the query itself is not a candidate
	}

	qsp := trace.FromContext(ctx).Child("core.rknn")
	traced := qsp != nil

	stats := Stats{Omega: math.Inf(1)}
	omega := math.Inf(1)
	fp := filterPool.Get().(*[]candidate)
	filter := (*fp)[:0]
	defer func() {
		clear(filter) // drop point references so the pool pins no dataset
		*fp = filter[:0]
		filterPool.Put(fp)
	}()

	var cursor index.Cursor
	var scanStart time.Time
	var filterDur time.Duration
	if traced {
		if cix, ok := qr.ix.(ctxCursorIndex); ok {
			cursor = cix.NewCursorCtx(trace.With(ctx, qsp), q, skipID)
		}
		scanStart = time.Now()
	}
	if cursor == nil {
		cursor = qr.ix.NewCursor(q, skipID)
	}
	s := 0
	for {
		nb, ok := cursor.Next()
		if !ok {
			break // dataset exhausted
		}
		s++
		t := scale.observe(s, nb.Dist)
		v := candidate{id: nb.ID, point: qr.ix.Point(nb.ID), dq: nb.Dist}

		var cycleStart time.Time
		if traced {
			cycleStart = time.Now()
		}

		// Witness cycle (lines 8–19): compare v against every retained
		// candidate, updating both witness counters, and apply the
		// lazy-accept test to filter members.
		for i := range filter {
			x := &filter[i]
			dvx := qr.dist(v.point, x.point)
			stats.DistanceComps++
			if dvx < x.dq { // v witnesses x
				x.w++
			}
			if dvx < v.dq { // x witnesses v
				v.w++
			}
			if !x.accepted && x.w < k && v.dq >= 2*x.dq {
				x.accepted = true
				stats.LazyAccepts++
			}
		}

		// Line 20 with the RDT+ exclusion rule (Section 4.3): a point
		// already holding k witnesses after its first cycle is a
		// settled true negative; keeping it in F would only inflate
		// the quadratic witness cost. Never applied to the first k
		// candidates, which cannot have reached the threshold.
		if qr.params.Plus && s > k && v.w >= k {
			stats.Excluded++
		} else {
			filter = append(filter, v)
		}
		if traced {
			filterDur += time.Since(cycleStart)
		}

		// Dimensional test (lines 21–23): tighten the termination
		// bound ω from the observed (rank, distance) pair. Guarded by
		// s > k so the GED denominator is positive, and by d(q,v) > 0
		// to ignore duplicates of the query point.
		if s > k && nb.Dist > 0 {
			denom := math.Pow(float64(s)/float64(k), 1/t) - 1
			if denom > 0 {
				if w := nb.Dist / denom; w < omega {
					omega = w
				}
			}
		}

		// Loop exit (line 24). The rank cap min{n, ⌊2^t·k⌋} is
		// evaluated with the step's scale parameter, in floating
		// point so that large t saturates at n instead of
		// overflowing.
		if nb.Dist > omega {
			stats.TerminatedByOmega = true
			break
		}
		sMax := n
		if rankCap := math.Pow(2, t) * float64(k); rankCap < float64(n) {
			sMax = int(rankCap)
		}
		if s >= sMax {
			break
		}
	}

	stats.ScanDepth = s
	stats.FilterSize = len(filter)
	stats.Omega = omega

	// The scan and filter stages interleave inside one loop, so their
	// spans are retro-dated from accumulated durations: filter time is
	// the summed witness cycles, scan time is the rest of the loop
	// (cursor driving and termination tests).
	var vsp *trace.Span
	if traced {
		loopDur := time.Since(scanStart)
		ssp := qsp.ChildAt("core.scan", scanStart)
		ssp.SetInt("scan_depth", int64(s))
		ssp.SetBool("terminated_by_omega", stats.TerminatedByOmega)
		ssp.EndWithDuration(loopDur - filterDur)
		fsp := qsp.ChildAt("core.filter", scanStart)
		fsp.SetInt("filter_size", int64(len(filter)))
		fsp.SetInt("excluded", int64(stats.Excluded))
		fsp.SetInt("distance_comps", stats.DistanceComps)
		fsp.EndWithDuration(filterDur)
		if fin, ok := cursor.(traceFinisher); ok {
			fin.FinishTrace()
		}
		vsp = qsp.Child("core.verify")
	}

	// Refinement phase (lines 25–32): settle every candidate that is
	// neither lazily accepted nor lazily rejected with one forward kNN
	// verification.
	var ids []int
	for i := range filter {
		x := &filter[i]
		switch {
		case x.accepted:
			ids = append(ids, x.id)
		case x.w >= k:
			stats.LazyRejects++
		default:
			stats.Verified++
			if qr.verify(x) {
				stats.VerifiedHits++
				ids = append(ids, x.id)
			}
		}
	}
	stats.LazyRejects += stats.Excluded

	sort.Ints(ids)
	if traced {
		vsp.SetInt("verified", int64(stats.Verified))
		vsp.SetInt("verified_hits", int64(stats.VerifiedHits))
		vsp.SetInt("lazy_accepts", int64(stats.LazyAccepts))
		vsp.SetInt("lazy_rejects", int64(stats.LazyRejects))
		vsp.End()
		setStatsAttrs(qsp, k, stats)
		qsp.End()
	}
	return &Result{IDs: ids, Stats: stats}, nil
}

// setStatsAttrs attaches the full per-query Stats to a span, so a trace
// carries the same accounting the paper's experimental methodology
// aggregates (candidates, lazy settlements, verifications, ω).
func setStatsAttrs(sp *trace.Span, k int, st Stats) {
	sp.SetInt("k", int64(k))
	sp.SetInt("scan_depth", int64(st.ScanDepth))
	sp.SetInt("filter_size", int64(st.FilterSize))
	sp.SetInt("excluded", int64(st.Excluded))
	sp.SetInt("lazy_accepts", int64(st.LazyAccepts))
	sp.SetInt("lazy_rejects", int64(st.LazyRejects))
	sp.SetInt("verified", int64(st.Verified))
	sp.SetInt("verified_hits", int64(st.VerifiedHits))
	sp.SetInt("distance_comps", st.DistanceComps)
	if !math.IsInf(st.Omega, 1) {
		sp.SetFloat("omega", st.Omega)
	}
	sp.SetBool("terminated_by_omega", st.TerminatedByOmega)
}

// verify runs the explicit refinement test d_k(x) ≥ d(q,x) (lines 26–29)
// with one forward kNN query at x. A dataset holding fewer than k other
// points trivially accepts.
func (qr *Querier) verify(x *candidate) bool {
	nn := qr.ix.KNN(x.point, qr.params.K, x.id)
	if len(nn) < qr.params.K {
		return true
	}
	return nn[len(nn)-1].Dist >= x.dq
}
