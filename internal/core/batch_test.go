package core

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestBatchMatchesSequential(t *testing.T) {
	pts := randPoints(300, 4, 17)
	ix := newScan(t, pts)
	qr, err := NewQuerier(ix, Params{K: 5, T: 8, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	qids := make([]int, 40)
	for i := range qids {
		qids[i] = i * 7 % 300
	}
	batch, err := qr.BatchByID(qids, 4)
	if err != nil {
		t.Fatalf("BatchByID: %v", err)
	}
	if len(batch) != len(qids) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("entry %d: %v", i, br.Err)
		}
		if br.QueryID != qids[i] {
			t.Fatalf("entry %d out of order: qid %d, want %d", i, br.QueryID, qids[i])
		}
		seq, err := qr.ByID(qids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(br.Result.IDs, seq.IDs) {
			t.Fatalf("qid %d: batch %v, sequential %v", qids[i], br.Result.IDs, seq.IDs)
		}
	}
}

func TestBatchPerEntryErrors(t *testing.T) {
	ix := newScan(t, randPoints(50, 2, 3))
	qr, err := NewQuerier(ix, Params{K: 3, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := qr.BatchByID([]int{0, -1, 5, 999}, 2)
	if err != nil {
		t.Fatalf("BatchByID: %v", err)
	}
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Error("valid queries reported errors")
	}
	if batch[1].Err == nil || batch[3].Err == nil {
		t.Error("invalid queries did not report errors")
	}
}

func TestBatchEdgeCases(t *testing.T) {
	ix := newScan(t, randPoints(50, 2, 5))
	qr, err := NewQuerier(ix, Params{K: 3, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.BatchByID([]int{1}, -1); err == nil {
		t.Error("accepted negative workers")
	}
	empty, err := qr.BatchByID(nil, 0)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch = (%v, %v)", empty, err)
	}
	// workers defaulting to GOMAXPROCS and clamping to batch size.
	one, err := qr.BatchByID([]int{7}, 0)
	if err != nil || len(one) != 1 || one[0].Err != nil {
		t.Errorf("single-query batch failed: %v", err)
	}
}

// TestBatchWorkerCapBoundsGoroutines is the regression test for the worker
// pool sizing: a batch requesting far more workers than cores must run on
// at most GOMAXPROCS workers, so peak goroutine count stays bounded even
// when every worker itself fans out (the sharded scatter-gather path).
func TestBatchWorkerCapBoundsGoroutines(t *testing.T) {
	const procs = 4
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

	ix := newScan(t, randPoints(600, 6, 7))
	qr, err := NewQuerier(ix, Params{K: 8, T: 10, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	qids := make([]int, 256)
	for i := range qids {
		qids[i] = i * 2
	}

	before := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	if _, err := qr.BatchByID(qids, 512); err != nil {
		t.Fatalf("BatchByID: %v", err)
	}
	close(stop)
	<-sampled

	// The pool may add at most GOMAXPROCS workers plus the feeder; the
	// sampler itself and a little scheduler slack account for the rest.
	if extra := peak.Load() - int64(before); extra > procs+4 {
		t.Errorf("peak goroutines grew by %d with 512 requested workers, want <= %d (GOMAXPROCS=%d + feeder + slack)",
			extra, procs+4, procs)
	}
}
