package core

import (
	"container/heap"
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/index"
)

// This file is the scatter-gather substrate of the sharded engine: fanning
// one query out to every shard with cancellation, and merging the per-shard
// answers back into exactly the result a single index over the union of the
// shards would have produced. The merge functions are deliberately pure —
// no engine state — so they can be pinned by property-based tests against
// reference implementations (scatter_test.go).

// Gather runs fn once per shard on its own goroutine and waits for all of
// them. The first fn error cancels the context passed to the others and is
// returned (sibling cancellations it caused are not reported in its place);
// if ctx is cancelled from outside, Gather stops early and returns ctx's
// error. Shards whose fn was never started or was cancelled must be treated
// by the caller as having produced nothing.
func Gather(ctx context.Context, shards int, fn func(ctx context.Context, shard int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if gctx.Err() != nil {
				errs[i] = gctx.Err()
				return
			}
			if err := fn(gctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Prefer a real failure over the context.Canceled noise it induced in
	// sibling shards.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// neighborLess orders neighbors by (distance, ID): ascending distance, ties
// broken by the smaller ID. This is the one total order every merge in the
// sharded engine uses, so results are deterministic regardless of how the
// dataset is partitioned.
func neighborLess(a, b index.Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// mergeHeap is a min-heap of (list, position) cursors keyed by the current
// head neighbor of each list under neighborLess.
type mergeHeap struct {
	lists [][]index.Neighbor
	pos   []int
	order []int // heap of list indexes
}

func (h *mergeHeap) Len() int { return len(h.order) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.order[i], h.order[j]
	return neighborLess(h.lists[a][h.pos[a]], h.lists[b][h.pos[b]])
}
func (h *mergeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *mergeHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *mergeHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// MergeKNN k-way merges per-shard kNN result lists into the global top-k
// under the (distance, ID) order. Each input list must itself be sorted
// ascending by distance (the contract of every index.Index.KNN); equal
// distances within a list need not be ID-ordered — the merge re-sorts tie
// runs so the output order never depends on back-end tie behavior. IDs for
// which live returns false are dropped (nil accepts everything); duplicate
// IDs surface once, keeping their best-ordered occurrence.
func MergeKNN(lists [][]index.Neighbor, k int, live func(id int) bool) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	h := &mergeHeap{lists: make([][]index.Neighbor, 0, len(lists)), pos: make([]int, 0, len(lists))}
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		// Normalize tie runs to (dist, id) order so the heap's head
		// comparison sees each list in the global total order.
		if !sort.SliceIsSorted(l, func(i, j int) bool { return neighborLess(l[i], l[j]) }) {
			l = append([]index.Neighbor(nil), l...)
			sort.Slice(l, func(i, j int) bool { return neighborLess(l[i], l[j]) })
		}
		h.order = append(h.order, len(h.lists))
		h.lists = append(h.lists, l)
		h.pos = append(h.pos, 0)
	}
	heap.Init(h)
	out := make([]index.Neighbor, 0, k)
	var seen map[int]bool
	for h.Len() > 0 && len(out) < k {
		li := h.order[0]
		nb := h.lists[li][h.pos[li]]
		h.pos[li]++
		if h.pos[li] < len(h.lists[li]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
		if live != nil && !live(nb.ID) {
			continue
		}
		if seen[nb.ID] {
			continue
		}
		if seen == nil {
			seen = make(map[int]bool, k)
		}
		seen[nb.ID] = true
		out = append(out, nb)
	}
	return out
}

// MergeIDs unions per-shard RkNN result lists (each sorted ascending, the
// contract of core.Result.IDs) into one sorted, duplicate-free list,
// dropping IDs for which live returns false (nil accepts everything). For
// disjoint shards the union is exactly the global candidate set — see the
// merge-correctness argument in DESIGN.md.
func MergeIDs(lists [][]int, live func(id int) bool) []int {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	pos := make([]int, len(lists))
	out := make([]int, 0, total)
	for {
		best, bestList := 0, -1
		for li, l := range lists {
			if pos[li] >= len(l) {
				continue
			}
			if bestList < 0 || l[pos[li]] < best {
				best, bestList = l[pos[li]], li
			}
		}
		if bestList < 0 {
			return out
		}
		pos[bestList]++
		if len(out) > 0 && out[len(out)-1] == best {
			continue // duplicate across lists
		}
		if live != nil && !live(best) {
			continue
		}
		out = append(out, best)
	}
}
