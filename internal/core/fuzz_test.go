package core

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

// FuzzRDTPrecision decodes an arbitrary byte string into a small dataset,
// rank and scale parameter, and checks the precision invariant of plain RDT
// plus the exactness of the saturated configuration. Run with
// `go test -fuzz FuzzRDTPrecision ./internal/core` for continuous fuzzing;
// plain `go test` exercises the seed corpus.
func FuzzRDTPrecision(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		k := int(data[0]%5) + 1
		tParam := 0.5 + float64(data[1]%16)/2
		dim := int(data[2]%3) + 1
		// Decode the remaining bytes into coordinates; duplicates and
		// collinear layouts arise naturally.
		coords := data[3:]
		n := len(coords) / dim
		if n < k+2 {
			t.Skip()
		}
		if n > 40 {
			n = 40
		}
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for j := 0; j < dim; j++ {
				p[j] = float64(coords[i*dim+j]) / 16
			}
			pts[i] = p
		}
		ix, err := scan.New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatalf("scan.New on fuzz data: %v", err)
		}
		truth, err := bruteforce.New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatalf("bruteforce.New: %v", err)
		}
		qid := int(data[1]) % n
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatalf("truth: %v", err)
		}
		// Plain RDT at the fuzzed t: never a false positive.
		qr, err := NewQuerier(ix, Params{K: k, T: tParam})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatalf("ByID: %v", err)
		}
		if p := bruteforce.Precision(res.IDs, want); p != 1 {
			t.Fatalf("precision %v at k=%d t=%g on %d pts: got %v want %v",
				p, k, tParam, n, res.IDs, want)
		}
		// Saturated t: still perfect precision always; exact whenever
		// the expanding search exhausted the dataset. (Equality cannot
		// be demanded unconditionally: on duplicate-heavy fuzz inputs a
		// boundary-tied reverse neighbor beyond the ω horizon may need
		// t above any fixed constant — see the tie note in the package
		// documentation; the corpus retains such an instance.)
		exact, err := NewQuerier(ix, Params{K: k, T: 64})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		resE, err := exact.ByID(qid)
		if err != nil {
			t.Fatalf("ByID: %v", err)
		}
		if p := bruteforce.Precision(resE.IDs, want); p != 1 {
			t.Fatalf("saturated RDT precision %v: got %v want %v", p, resE.IDs, want)
		}
		if resE.Stats.ScanDepth == n-1 {
			if len(resE.IDs) != len(want) {
				t.Fatalf("exhausted search inexact at k=%d on %d pts: got %v want %v", k, n, resE.IDs, want)
			}
			for i := range want {
				if resE.IDs[i] != want[i] {
					t.Fatalf("exhausted search inexact: got %v want %v", resE.IDs, want)
				}
			}
		}
		// Sanity on the stats invariants under arbitrary data.
		st := res.Stats
		if st.LazyAccepts+st.VerifiedHits != len(res.IDs) {
			t.Fatalf("stats identity broken: %+v for %d results", st, len(res.IDs))
		}
		if math.IsNaN(st.Omega) {
			t.Fatal("ω is NaN")
		}
	})
}
