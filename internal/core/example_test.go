package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

// Example runs Algorithm 1 on a hand-checkable 1-D configuration:
// positions 0, 1, 3, 7. With k=1, point 1 is the nearest neighbor of both
// 0 and 2 (positions 0 and 3), so R1NN(point 1) = {0, 2}.
func Example() {
	points := [][]float64{{0}, {1}, {3}, {7}}
	ix, err := scan.New(points, vecmath.Euclidean{})
	if err != nil {
		log.Fatal(err)
	}
	qr, err := core.NewQuerier(ix, core.Params{K: 1, T: 8, Plus: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := qr.ByID(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.IDs)
	// Output: [0 2]
}
