package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query of a batch with its result or error.
type BatchResult struct {
	QueryID int
	Result  *Result
	Err     error
}

// BatchByID answers many member queries concurrently on a worker pool,
// returning results in input order. It is BatchByIDContext without
// cancellation.
func (qr *Querier) BatchByID(qids []int, workers int) ([]BatchResult, error) {
	return qr.BatchByIDContext(context.Background(), qids, workers)
}

// BatchByIDContext answers many member queries concurrently on a worker pool
// of the given size (0 selects one worker per core), returning results in
// input order. Individual query failures are reported per entry; the batch
// itself fails only on invalid arguments or when ctx is cancelled, in which
// case it stops dispatching, waits for in-flight queries to drain, and
// returns ctx's error.
//
// The paper's conclusion names parallelizable RkNN processing as an open
// problem for extreme scales; within one machine the problem is
// embarrassingly parallel because the Querier and every index back-end in
// this module are safe for concurrent readers.
func (qr *Querier) BatchByIDContext(ctx context.Context, qids []int, workers int) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 0 {
		return nil, fmt.Errorf("core: workers must be non-negative, got %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qids) {
		workers = len(qids)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(qids))
	if len(qids) == 0 {
		return out, nil
	}

	// The feeder owns the dispatch channel: it stops feeding the moment
	// ctx is cancelled, so workers drain at most one in-flight query each
	// before the pool winds down.
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range qids {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				res, err := qr.ByID(qids[i])
				out[i] = BatchResult{QueryID: qids[i], Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
