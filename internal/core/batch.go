package core

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query of a batch with its result or error.
type BatchResult struct {
	QueryID int
	Result  *Result
	Err     error
}

// BatchByID answers many member queries concurrently on a worker pool,
// returning results in input order. Individual query failures are reported
// per entry; the batch itself only fails on invalid arguments.
//
// The paper's conclusion names parallelizable RkNN processing as an open
// problem for extreme scales; within one machine the problem is
// embarrassingly parallel because the Querier and every index back-end in
// this module are safe for concurrent readers.
func (qr *Querier) BatchByID(qids []int, workers int) ([]BatchResult, error) {
	if workers < 0 {
		return nil, fmt.Errorf("core: workers must be non-negative, got %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qids) {
		workers = len(qids)
	}
	out := make([]BatchResult, len(qids))
	if len(qids) == 0 {
		return out, nil
	}
	next := make(chan int, len(qids))
	for i := range qids {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := qr.ByID(qids[i])
				out[i] = BatchResult{QueryID: qids[i], Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out, nil
}
