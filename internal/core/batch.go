package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query of a batch with its result or error.
type BatchResult struct {
	QueryID int
	Result  *Result
	Err     error
}

// BatchByID answers many member queries concurrently on a worker pool,
// returning results in input order. It is BatchByIDContext without
// cancellation.
func (qr *Querier) BatchByID(qids []int, workers int) ([]BatchResult, error) {
	return qr.BatchByIDContext(context.Background(), qids, workers)
}

// BatchByIDContext answers many member queries concurrently on a worker pool
// of the given size (0 selects one worker per core), returning results in
// input order. Individual query failures are reported per entry; the batch
// itself fails only on invalid arguments or when ctx is cancelled, in which
// case it stops dispatching, waits for in-flight queries to drain, and
// returns ctx's error.
//
// The paper's conclusion names parallelizable RkNN processing as an open
// problem for extreme scales; within one machine the problem is
// embarrassingly parallel because the Querier and every index back-end in
// this module are safe for concurrent readers.
func (qr *Querier) BatchByIDContext(ctx context.Context, qids []int, workers int) ([]BatchResult, error) {
	out := make([]BatchResult, len(qids))
	err := ForEach(ctx, len(qids), workers, func(ctx context.Context, i int) error {
		res, err := qr.ByIDCtx(ctx, qids[i])
		out[i] = BatchResult{QueryID: qids[i], Result: res, Err: err}
		return nil // per-entry errors are data, not pool failures
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on a worker pool of the given
// size (0 selects one worker per core) and waits for completion. The pool
// is capped at both n and GOMAXPROCS: more workers than tasks idle
// forever, and more workers than cores only add scheduler pressure — the
// cap matters most under sharded fan-out, where every worker scatters to S
// shard goroutines and an uncapped request would multiply goroutines
// quadratically. The first fn error stops dispatching and is returned
// (preferred over the context.Canceled noise it induces); an outside
// cancellation drains in-flight calls and returns ctx's error.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 0 {
		return fmt.Errorf("core: workers must be non-negative, got %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The feeder owns the dispatch channel: it stops feeding the moment
	// the pool context is cancelled, so workers drain at most one
	// in-flight task each before the pool winds down.
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-pctx.Done():
				return
			}
		}
	}()

	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if pctx.Err() != nil {
					return
				}
				if err := fn(pctx, i); err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
