package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/lid"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

// newScan builds a scan index over pts under the Euclidean metric, failing
// the test on error.
func newScan(t *testing.T, pts [][]float64) *scan.Index {
	t.Helper()
	ix, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("scan.New: %v", err)
	}
	return ix
}

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestNewQuerierValidation(t *testing.T) {
	pts := randPoints(10, 3, 1)
	ix := newScan(t, pts)
	cases := []struct {
		name   string
		ix     index.Index
		params Params
	}{
		{"nil index", nil, Params{K: 1, T: 2}},
		{"zero k", ix, Params{K: 0, T: 2}},
		{"negative k", ix, Params{K: -3, T: 2}},
		{"zero t", ix, Params{K: 1, T: 0}},
		{"negative t", ix, Params{K: 1, T: -1}},
		{"NaN t", ix, Params{K: 1, T: math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewQuerier(tc.ix, tc.params); err == nil {
				t.Fatalf("NewQuerier(%+v) succeeded, want error", tc.params)
			}
		})
	}
}

func TestQueryValidation(t *testing.T) {
	ix := newScan(t, randPoints(10, 3, 1))
	qr, err := NewQuerier(ix, Params{K: 2, T: 4})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	if _, err := qr.ByID(-1); err == nil {
		t.Error("ByID(-1) succeeded, want error")
	}
	if _, err := qr.ByID(10); err == nil {
		t.Error("ByID(10) succeeded, want error")
	}
	if _, err := qr.ByPoint([]float64{1, 2}); err == nil {
		t.Error("ByPoint with dim mismatch succeeded, want error")
	}
	if _, err := qr.ByPoint([]float64{1, 2, math.NaN()}); err == nil {
		t.Error("ByPoint with NaN succeeded, want error")
	}
}

// TestExactWithLargeT checks that RDT with a scale parameter large enough to
// disable both termination mechanisms degenerates to an exact algorithm, for
// both member and external queries.
func TestExactWithLargeT(t *testing.T) {
	for _, dim := range []int{2, 8} {
		for _, k := range []int{1, 3, 10} {
			pts := randPoints(120, dim, int64(dim*100+k))
			ix := newScan(t, pts)
			truth, err := bruteforce.New(pts, vecmath.Euclidean{})
			if err != nil {
				t.Fatalf("bruteforce.New: %v", err)
			}
			qr, err := NewQuerier(ix, Params{K: k, T: 64})
			if err != nil {
				t.Fatalf("NewQuerier: %v", err)
			}
			for qid := 0; qid < 20; qid++ {
				got, err := qr.ByID(qid)
				if err != nil {
					t.Fatalf("ByID(%d): %v", qid, err)
				}
				want, err := truth.RkNNByID(qid, k)
				if err != nil {
					t.Fatalf("truth: %v", err)
				}
				if !equalIDs(got.IDs, want) {
					t.Errorf("dim=%d k=%d qid=%d: got %v, want %v", dim, k, qid, got.IDs, want)
				}
			}
			// External query points as well.
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 5; i++ {
				q := make([]float64, dim)
				for j := range q {
					q[j] = rng.Float64()
				}
				got, err := qr.ByPoint(q)
				if err != nil {
					t.Fatalf("ByPoint: %v", err)
				}
				want, err := truth.RkNN(q, k)
				if err != nil {
					t.Fatalf("truth: %v", err)
				}
				if !equalIDs(got.IDs, want) {
					t.Errorf("dim=%d k=%d external #%d: got %v, want %v", dim, k, i, got.IDs, want)
				}
			}
		}
	}
}

// TestNoFalsePositivesRDT checks the soundness of plain RDT for any t: with
// the full filter set maintained, lazy accepts (Assertion 2), lazy rejects
// (Assertion 1) and explicit verification are all exact, so every reported
// ID must be a true reverse neighbor regardless of the scale parameter.
func TestNoFalsePositivesRDT(t *testing.T) {
	pts := randPoints(150, 4, 7)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	for _, k := range []int{1, 5} {
		for _, tt := range []float64{0.5, 1, 2, 4, 8} {
			qr, err := NewQuerier(ix, Params{K: k, T: tt})
			if err != nil {
				t.Fatalf("NewQuerier: %v", err)
			}
			for qid := 0; qid < 30; qid++ {
				got, err := qr.ByID(qid)
				if err != nil {
					t.Fatalf("ByID: %v", err)
				}
				want, err := truth.RkNNByID(qid, k)
				if err != nil {
					t.Fatalf("truth: %v", err)
				}
				if p := bruteforce.Precision(got.IDs, want); p != 1 {
					t.Errorf("k=%d t=%g qid=%d: precision %.3f, got %v want %v",
						k, tt, qid, p, got.IDs, want)
				}
			}
		}
	}
}

// TestRecallMonotoneInT checks that the candidate set — and therefore recall
// — grows monotonically with the scale parameter, the behaviour the paper's
// time-accuracy tradeoff curves rely on (Section 8.1).
func TestRecallMonotoneInT(t *testing.T) {
	pts := randPoints(200, 6, 11)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	k := 5
	ts := []float64{0.5, 1, 2, 3, 5, 8, 12}
	for qid := 0; qid < 15; qid++ {
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatalf("truth: %v", err)
		}
		prevRecall := -1.0
		prevDepth := -1
		for _, tt := range ts {
			qr, err := NewQuerier(ix, Params{K: k, T: tt})
			if err != nil {
				t.Fatalf("NewQuerier: %v", err)
			}
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			r := bruteforce.Recall(got.IDs, want)
			if r < prevRecall {
				t.Errorf("qid=%d: recall decreased from %.3f to %.3f at t=%g", qid, prevRecall, r, tt)
			}
			if got.Stats.ScanDepth < prevDepth {
				t.Errorf("qid=%d: scan depth decreased from %d to %d at t=%g", qid, prevDepth, got.Stats.ScanDepth, tt)
			}
			prevRecall, prevDepth = r, got.Stats.ScanDepth
		}
		if prevRecall != 1 {
			t.Errorf("qid=%d: recall at largest t is %.3f, want 1", qid, prevRecall)
		}
	}
}

// TestTheorem1ExactnessThreshold is the paper's central guarantee: RDT with
// t ≥ MaxGED(S ∪ {q}, k) returns the exact query result.
func TestTheorem1ExactnessThreshold(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		pts := randPoints(80, 3, seed)
		ix := newScan(t, pts)
		truth, err := bruteforce.New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatalf("bruteforce.New: %v", err)
		}
		k := 4
		maxged, err := lid.MaxGED(pts, vecmath.Euclidean{}, k)
		if err != nil {
			t.Fatalf("MaxGED: %v", err)
		}
		qr, err := NewQuerier(ix, Params{K: k, T: maxged})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		for qid := 0; qid < 25; qid++ {
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatalf("truth: %v", err)
			}
			if !equalIDs(got.IDs, want) {
				t.Errorf("seed=%d qid=%d t=MaxGED=%.3f: got %v, want %v",
					seed, qid, maxged, got.IDs, want)
			}
		}
	}
}

// TestExhaustedSearchIsExact checks the Case 1 invariant of Theorem 1's
// proof: whenever the expanding search consumed the entire dataset, the
// result equals the brute-force answer no matter what t was.
func TestExhaustedSearchIsExact(t *testing.T) {
	pts := randPoints(60, 5, 3)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	k := 3
	for _, tt := range []float64{1, 2, 4, 16} {
		qr, err := NewQuerier(ix, Params{K: k, T: tt})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		for qid := 0; qid < 20; qid++ {
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			if got.Stats.ScanDepth < ix.Len()-1 {
				continue // search terminated early; nothing to assert
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatalf("truth: %v", err)
			}
			if !equalIDs(got.IDs, want) {
				t.Errorf("t=%g qid=%d: exhausted search inexact: got %v, want %v", tt, qid, got.IDs, want)
			}
		}
	}
}

// TestRDTPlusSubsetOfRDT checks that RDT+ only loses candidates relative to
// RDT through its exclusion rule: every ID reported by RDT+ that is a true
// negative must stem from a lazy accept (the only unsound mechanism, paper
// Section 4.3), and the scan depth must be identical since the exclusion
// rule does not alter the termination condition.
func TestRDTPlusSubsetOfRDT(t *testing.T) {
	pts := randPoints(250, 8, 21)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	k := 5
	for _, tt := range []float64{2, 4, 8} {
		rdt, err := NewQuerier(ix, Params{K: k, T: tt})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		plus, err := NewQuerier(ix, Params{K: k, T: tt, Plus: true})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		for qid := 0; qid < 20; qid++ {
			a, err := rdt.ByID(qid)
			if err != nil {
				t.Fatalf("rdt.ByID: %v", err)
			}
			b, err := plus.ByID(qid)
			if err != nil {
				t.Fatalf("plus.ByID: %v", err)
			}
			if a.Stats.ScanDepth != b.Stats.ScanDepth {
				t.Errorf("t=%g qid=%d: scan depth differs: RDT %d, RDT+ %d",
					tt, qid, a.Stats.ScanDepth, b.Stats.ScanDepth)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatalf("truth: %v", err)
			}
			// All of RDT's answers are correct; RDT+ must find every
			// true answer RDT found (recall never drops from the
			// exclusion rule: excluded points are true negatives and
			// remaining candidates are still verified or accepted).
			if r := bruteforce.Recall(b.IDs, a.IDs); r < 1 {
				t.Errorf("t=%g qid=%d: RDT+ missed RDT answers: RDT %v, RDT+ %v", tt, qid, a.IDs, b.IDs)
			}
			_ = want
		}
	}
}

// TestStatsAccounting checks the bookkeeping identities that the harness
// depends on when reproducing Figure 7: every filter-set member is settled
// exactly once, and the excluded count is zero without Plus.
func TestStatsAccounting(t *testing.T) {
	pts := randPoints(300, 6, 31)
	ix := newScan(t, pts)
	for _, plus := range []bool{false, true} {
		qr, err := NewQuerier(ix, Params{K: 8, T: 6, Plus: plus})
		if err != nil {
			t.Fatalf("NewQuerier: %v", err)
		}
		for qid := 0; qid < 25; qid++ {
			res, err := qr.ByID(qid)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			st := res.Stats
			if !plus && st.Excluded != 0 {
				t.Errorf("plain RDT excluded %d candidates", st.Excluded)
			}
			settled := st.LazyAccepts + (st.LazyRejects - st.Excluded) + st.Verified
			if settled != st.FilterSize {
				t.Errorf("plus=%v qid=%d: accepts(%d) + in-filter rejects(%d) + verified(%d) = %d, want filter size %d",
					plus, qid, st.LazyAccepts, st.LazyRejects-st.Excluded, st.Verified, settled, st.FilterSize)
			}
			if st.Candidates() != st.FilterSize+st.Excluded {
				t.Errorf("Candidates() = %d, want %d", st.Candidates(), st.FilterSize+st.Excluded)
			}
			if got := st.LazyAccepts + st.VerifiedHits; got != len(res.IDs) {
				t.Errorf("plus=%v qid=%d: accepts(%d) + verified hits(%d) = %d, want |result| %d",
					plus, qid, st.LazyAccepts, st.VerifiedHits, got, len(res.IDs))
			}
			if st.ScanDepth < st.FilterSize+st.Excluded {
				t.Errorf("scan depth %d below candidate count %d", st.ScanDepth, st.FilterSize+st.Excluded)
			}
		}
	}
}

// TestDuplicatePoints exercises the d(q,v) > 0 guard of the dimensional test
// and the zero-distance lazy-accept path with coincident points.
func TestDuplicatePoints(t *testing.T) {
	base := randPoints(40, 3, 5)
	pts := make([][]float64, 0, 50)
	pts = append(pts, base...)
	for i := 0; i < 10; i++ { // ten exact duplicates of point 0
		pts = append(pts, vecmath.Clone(base[0]))
	}
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	k := 3
	qr, err := NewQuerier(ix, Params{K: k, T: 64})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	for _, qid := range []int{0, 45, 20} {
		got, err := qr.ByID(qid)
		if err != nil {
			t.Fatalf("ByID(%d): %v", qid, err)
		}
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatalf("truth: %v", err)
		}
		if !equalIDs(got.IDs, want) {
			t.Errorf("qid=%d with duplicates: got %v, want %v", qid, got.IDs, want)
		}
	}
}

// TestKLargerThanDataset checks the degenerate regime where every point is a
// reverse neighbor of every query.
func TestKLargerThanDataset(t *testing.T) {
	pts := randPoints(10, 2, 9)
	ix := newScan(t, pts)
	qr, err := NewQuerier(ix, Params{K: 50, T: 4})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	res, err := qr.ByID(0)
	if err != nil {
		t.Fatalf("ByID: %v", err)
	}
	if len(res.IDs) != 9 {
		t.Fatalf("got %d reverse neighbors, want all 9", len(res.IDs))
	}
}

// TestQuickExactnessProperty drives randomized instances through
// testing/quick: for random small datasets and ranks, RDT at t=64 must agree
// with brute force, and RDT at any t must have perfect precision.
func TestQuickExactnessProperty(t *testing.T) {
	property := func(seed int64, kRaw uint8, tRaw uint8) bool {
		k := int(kRaw%8) + 1
		tVal := 0.5 + float64(tRaw%12)
		pts := randPoints(60, 3, seed)
		ix, err := scan.New(pts, vecmath.Euclidean{})
		if err != nil {
			return false
		}
		truth, err := bruteforce.New(pts, vecmath.Euclidean{})
		if err != nil {
			return false
		}
		qid := int(uint(seed) % 60)
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			return false
		}
		exact, err := NewQuerier(ix, Params{K: k, T: 64})
		if err != nil {
			return false
		}
		re, err := exact.ByID(qid)
		if err != nil || !equalIDs(re.IDs, want) {
			return false
		}
		approx, err := NewQuerier(ix, Params{K: k, T: tVal})
		if err != nil {
			return false
		}
		ra, err := approx.ByID(qid)
		if err != nil {
			return false
		}
		return bruteforce.Precision(ra.IDs, want) == 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestClusteredWorkload runs RDT+ on a clustered surrogate dataset to cover
// the non-uniform density regime the dimensional test is designed for.
func TestClusteredWorkload(t *testing.T) {
	ds := dataset.Sequoia(400, 17)
	ix := newScan(t, ds.Points)
	truth, err := bruteforce.New(ds.Points, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	k := 10
	qr, err := NewQuerier(ix, Params{K: k, T: 10, Plus: true})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	var recallSum float64
	const queries = 25
	for qid := 0; qid < queries; qid++ {
		got, err := qr.ByID(qid)
		if err != nil {
			t.Fatalf("ByID: %v", err)
		}
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatalf("truth: %v", err)
		}
		recallSum += bruteforce.Recall(got.IDs, want)
	}
	if mean := recallSum / queries; mean < 0.95 {
		t.Errorf("mean recall %.3f on clustered data at t=10, want >= 0.95", mean)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
