package core

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/index"
)

// --- reference implementations the merges are property-tested against ---

// refMergeKNN concatenates, filters, sorts by (dist, id), dedups keeping the
// best occurrence, and truncates — the obviously-correct O(n log n) merge.
func refMergeKNN(lists [][]index.Neighbor, k int, live func(int) bool) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	var all []index.Neighbor
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return neighborLess(all[i], all[j]) })
	seen := map[int]bool{}
	var out []index.Neighbor
	for _, nb := range all {
		if live != nil && !live(nb.ID) {
			continue
		}
		if seen[nb.ID] {
			continue
		}
		seen[nb.ID] = true
		out = append(out, nb)
		if len(out) == k {
			break
		}
	}
	return out
}

// refMergeIDs is set union minus dead IDs, sorted.
func refMergeIDs(lists [][]int, live func(int) bool) []int {
	set := map[int]bool{}
	for _, l := range lists {
		for _, id := range l {
			if live == nil || live(id) {
				set[id] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func sameNeighbors(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randShardLists generates per-shard kNN-style lists: sorted ascending by
// distance, unique IDs within a list, with deliberate distance ties (both
// within and across lists) to exercise the ID tie-break.
func randShardLists(rng *rand.Rand, shards, maxLen int) [][]index.Neighbor {
	lists := make([][]index.Neighbor, shards)
	nextID := 0
	for s := range lists {
		n := rng.Intn(maxLen + 1)
		l := make([]index.Neighbor, n)
		d := 0.0
		for i := range l {
			if rng.Intn(3) > 0 { // ~1/3 chance of a tie with the previous
				d += float64(rng.Intn(4)) * 0.25
			}
			l[i] = index.Neighbor{ID: nextID, Dist: d}
			nextID++
		}
		// Shuffle IDs across shards so list order and ID order disagree.
		rng.Shuffle(len(l), func(i, j int) { l[i].ID, l[j].ID = l[j].ID, l[i].ID })
		sort.Slice(l, func(i, j int) bool { return l[i].Dist < l[j].Dist }) // distance-sorted only: tie runs in arbitrary ID order
		lists[s] = l
	}
	return lists
}

// TestMergeKNNProperty quick-checks the k-way merge against the reference
// on randomized shard lists: exact equality under the (dist, id) order,
// with tombstoned IDs never surfacing and no duplicates.
func TestMergeKNNProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		shards := 1 + rng.Intn(8)
		lists := randShardLists(rng, shards, 12)
		k := rng.Intn(20)
		var live func(int) bool
		dead := map[int]bool{}
		if rng.Intn(2) == 0 {
			for id := 0; id < 96; id += 1 + rng.Intn(5) {
				dead[id] = true
			}
			live = func(id int) bool { return !dead[id] }
		}
		got := MergeKNN(lists, k, live)
		want := refMergeKNN(lists, k, live)
		if !sameNeighbors(got, want) {
			t.Fatalf("trial %d (shards=%d, k=%d): merge %v, reference %v", trial, shards, k, got, want)
		}
		seen := map[int]bool{}
		for i, nb := range got {
			if dead[nb.ID] {
				t.Fatalf("trial %d: tombstoned id %d surfaced", trial, nb.ID)
			}
			if seen[nb.ID] {
				t.Fatalf("trial %d: duplicate id %d", trial, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 && neighborLess(nb, got[i-1]) {
				t.Fatalf("trial %d: output out of (dist,id) order at %d: %v", trial, i, got)
			}
		}
	}
}

// TestMergeIDsProperty quick-checks the sorted-union merge against the
// reference: sorted, duplicate-free, dead IDs filtered.
func TestMergeIDsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		shards := 1 + rng.Intn(8)
		lists := make([][]int, shards)
		for s := range lists {
			n := rng.Intn(15)
			set := map[int]bool{}
			for i := 0; i < n; i++ {
				set[rng.Intn(40)] = true // overlaps across lists are likely
			}
			for id := range set {
				lists[s] = append(lists[s], id)
			}
			sort.Ints(lists[s])
		}
		var live func(int) bool
		dead := map[int]bool{}
		if rng.Intn(2) == 0 {
			for id := 0; id < 40; id += 1 + rng.Intn(6) {
				dead[id] = true
			}
			live = func(id int) bool { return !dead[id] }
		}
		got := MergeIDs(lists, live)
		want := refMergeIDs(lists, live)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MergeIDs %v, reference %v (lists %v)", trial, got, want, lists)
		}
	}
}

// FuzzMergeKNN decodes arbitrary bytes into shard lists and cross-checks
// the heap merge against the reference merge, so the fuzzer can hunt for
// orderings the randomized trials miss.
func FuzzMergeKNN(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 2, 1, 0, 5}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 4, 0, 0, 0, 0, 2, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		if len(data) > 4096 {
			return
		}
		// Decode: first byte = shard count, then per neighbor one byte of
		// quantized distance; IDs are positional with a spread pattern.
		if len(data) == 0 {
			return
		}
		shards := int(data[0])%8 + 1
		data = data[1:]
		lists := make([][]index.Neighbor, shards)
		for i, b := range data {
			s := i % shards
			lists[s] = append(lists[s], index.Neighbor{
				ID:   int(binary.BigEndian.Uint16([]byte{byte(i % 3), byte(i)})),
				Dist: float64(b%16) * 0.5,
			})
		}
		for s := range lists {
			l := lists[s]
			sort.Slice(l, func(i, j int) bool { return l[i].Dist < l[j].Dist })
			// Dedup IDs within a list (the shard contract).
			seen := map[int]bool{}
			kept := l[:0]
			for _, nb := range l {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					kept = append(kept, nb)
				}
			}
			lists[s] = kept
		}
		live := func(id int) bool { return id%7 != 3 }
		got := MergeKNN(lists, int(k), live)
		want := refMergeKNN(lists, int(k), live)
		if !sameNeighbors(got, want) {
			t.Fatalf("merge %v, reference %v (lists %v, k=%d)", got, want, lists, k)
		}
	})
}

// --- Gather ---

func TestGatherRunsEveryShard(t *testing.T) {
	var ran atomic.Int64
	err := Gather(context.Background(), 9, func(ctx context.Context, shard int) error {
		ran.Add(1 << shard)
		return nil
	})
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	if ran.Load() != (1<<9)-1 {
		t.Errorf("shard bitmap %b, want all 9 set", ran.Load())
	}
}

func TestGatherFirstErrorWinsOverInducedCancellation(t *testing.T) {
	boom := errors.New("shard 3 exploded")
	err := Gather(context.Background(), 6, func(ctx context.Context, shard int) error {
		if shard == 3 {
			return boom
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Second):
			return errors.New("sibling was not cancelled")
		}
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the shard failure", err)
	}
}

func TestGatherHonorsOuterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Gather(ctx, 4, func(ctx context.Context, shard int) error {
		t.Error("fn ran after pre-cancellation")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel2()
	}()
	err = Gather(ctx2, 3, func(ctx context.Context, shard int) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-flight err = %v, want context.Canceled", err)
	}
}

func TestGatherZeroShards(t *testing.T) {
	if err := Gather(context.Background(), 0, nil); err != nil {
		t.Errorf("Gather over zero shards: %v", err)
	}
}
