package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/index"
)

// AdaptiveParams configures the adaptive-scale variant of RDT+, which the
// paper poses as future work (Section 9: "it would be interesting to study
// the behavior of RDT and RDT+ when the value of t is dynamically adjusted
// during the execution of individual queries").
//
// Instead of a user-supplied t, each step of the expanding search sets the
// scale parameter from the maximum-likelihood (Hill) estimate of local
// intrinsic dimensionality over the distances observed so far from this
// very query — the same estimator the paper uses offline (Section 6), but
// evaluated online on the neighborhood actually being explored, so the
// termination bound adapts to the local dimensional structure instead of a
// global average.
type AdaptiveParams struct {
	// K is the reverse neighbor rank.
	K int
	// Multiplier scales the online estimate before use; values above 1
	// add a recall safety margin (default 1).
	Multiplier float64
	// MinT and MaxT clamp the scale parameter; MaxT also serves as the
	// scale during the warm-up steps before the estimate stabilizes.
	// Defaults 1 and 24.
	MinT, MaxT float64
	// Warmup is the number of retrieved neighbors before the estimate is
	// trusted; until then MaxT is used (search generously). Default 2·K.
	Warmup int
	// Plus enables the RDT+ candidate-set reduction.
	Plus bool
}

func (p *AdaptiveParams) setDefaults() {
	if p.Multiplier == 0 {
		p.Multiplier = 1
	}
	if p.MinT == 0 {
		p.MinT = 1
	}
	if p.MaxT == 0 {
		p.MaxT = 24
	}
	if p.Warmup == 0 {
		p.Warmup = 2 * p.K
	}
}

func (p AdaptiveParams) validate() error {
	if p.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", p.K)
	}
	if !(p.Multiplier > 0) {
		return fmt.Errorf("core: Multiplier must be positive, got %v", p.Multiplier)
	}
	if !(p.MinT > 0) || !(p.MaxT >= p.MinT) {
		return fmt.Errorf("core: need 0 < MinT <= MaxT, got %v, %v", p.MinT, p.MaxT)
	}
	if p.Warmup < 0 {
		return fmt.Errorf("core: Warmup must be non-negative, got %d", p.Warmup)
	}
	return nil
}

// hillScale adapts the scale parameter online: over the observed neighbor
// distances d_1 ≤ … ≤ d_s it maintains the Hill estimate
//
//	ID ≈ −cnt / ( Σ ln d_i − cnt·ln d_s )
//
// in O(1) per step (only the running log-sum is stored), clamps it to
// [MinT, MaxT] after the multiplier, and reports MaxT during warm-up.
type hillScale struct {
	p      AdaptiveParams
	logSum float64
	count  int
}

func (h *hillScale) observe(s int, dist float64) float64 {
	if dist > 0 {
		h.logSum += math.Log(dist)
		h.count++
	}
	if s < h.p.Warmup || h.count < 2 {
		return h.p.MaxT
	}
	denom := h.logSum - float64(h.count)*math.Log(dist)
	// denom <= 0 since every prior distance is at most dist; zero means
	// all observed distances are equal (no dimensional signal yet).
	if denom >= 0 {
		return h.p.MaxT
	}
	t := h.p.Multiplier * (-float64(h.count) / denom)
	if t < h.p.MinT {
		return h.p.MinT
	}
	if t > h.p.MaxT {
		return h.p.MaxT
	}
	return t
}

// NewAdaptiveQuerier returns a Querier whose dimensional test re-estimates
// the scale parameter at every step of the expanding search.
func NewAdaptiveQuerier(ix index.Index, params AdaptiveParams) (*Querier, error) {
	if ix == nil {
		return nil, errors.New("core: nil index")
	}
	params.setDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	if ix.Len() == 0 {
		return nil, errors.New("core: empty index")
	}
	return &Querier{
		ix:     ix,
		metric: ix.Metric(),
		dist:   resolveKernel(ix.Metric()),
		// The embedded fixed parameters carry K and Plus; T records
		// the ceiling for introspection.
		params:   Params{K: params.K, T: params.MaxT, Plus: params.Plus},
		newScale: func() scaleStrategy { return &hillScale{p: params} },
	}, nil
}
