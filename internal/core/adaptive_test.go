package core

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestAdaptiveValidation(t *testing.T) {
	ix := newScan(t, randPoints(20, 2, 1))
	if _, err := NewAdaptiveQuerier(nil, AdaptiveParams{K: 1}); err == nil {
		t.Error("accepted nil index")
	}
	if _, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: 0}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: 1, Multiplier: -1}); err == nil {
		t.Error("accepted negative multiplier")
	}
	if _, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: 1, MinT: 5, MaxT: 2}); err == nil {
		t.Error("accepted MinT > MaxT")
	}
	if _, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: 1, Warmup: -3}); err == nil {
		t.Error("accepted negative warmup")
	}
}

// TestAdaptiveNoFalsePositives: the adaptive scale changes only the
// termination of the expanding search, never the accept logic, so plain
// adaptive RDT keeps perfect precision.
func TestAdaptiveNoFalsePositives(t *testing.T) {
	pts := randPoints(200, 5, 13)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	qr, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: k})
	if err != nil {
		t.Fatal(err)
	}
	for qid := 0; qid < 30; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		if p := bruteforce.Precision(res.IDs, want); p != 1 {
			t.Errorf("qid=%d: precision %.3f", qid, p)
		}
	}
}

// TestAdaptiveRecallOnSurrogates: with the default safety settings the
// online estimate must reach high recall on the clustered workloads without
// any user-supplied t.
func TestAdaptiveRecallOnSurrogates(t *testing.T) {
	for _, ds := range []*struct {
		name string
		pts  [][]float64
	}{
		{"sequoia", dataset.Sequoia(800, 3).Points},
		{"fct", dataset.FCT(800, 3).Points},
	} {
		ix := newScan(t, ds.pts)
		truth, err := bruteforce.New(ds.pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		k := 10
		qr, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: k, Multiplier: 2, Plus: true})
		if err != nil {
			t.Fatal(err)
		}
		var recallSum float64
		const queries = 20
		for qid := 0; qid < queries; qid++ {
			res, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			recallSum += bruteforce.Recall(res.IDs, want)
		}
		if mean := recallSum / queries; mean < 0.9 {
			t.Errorf("%s: adaptive mean recall %.3f, want >= 0.9", ds.name, mean)
		}
	}
}

// TestAdaptiveScansLessThanCeiling: the point of adapting is to stop
// earlier than a fixed t at the ceiling would.
func TestAdaptiveScansLessThanCeiling(t *testing.T) {
	pts := dataset.Sequoia(2000, 5).Points
	ix := newScan(t, pts)
	k := 10
	adaptive, err := NewAdaptiveQuerier(ix, AdaptiveParams{K: k, MaxT: 24, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewQuerier(ix, Params{K: k, T: 24, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	var adaptiveDepth, fixedDepth int
	for qid := 0; qid < 15; qid++ {
		ra, err := adaptive.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := fixed.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveDepth += ra.Stats.ScanDepth
		fixedDepth += rf.Stats.ScanDepth
	}
	if adaptiveDepth >= fixedDepth {
		t.Errorf("adaptive scanned %d, fixed-at-ceiling scanned %d; adaptation saved nothing",
			adaptiveDepth, fixedDepth)
	}
}

// TestHillScaleUnit exercises the online estimator in isolation.
func TestHillScaleUnit(t *testing.T) {
	h := &hillScale{p: AdaptiveParams{K: 2, Multiplier: 1, MinT: 1, MaxT: 24, Warmup: 0}}
	// All-equal distances carry no signal: stays at the ceiling.
	if got := h.observe(1, 1); got != 24 {
		t.Errorf("first observation: t=%g, want ceiling", got)
	}
	if got := h.observe(2, 1); got != 24 {
		t.Errorf("equal distances: t=%g, want ceiling", got)
	}
	// A geometric distance sequence d_i = 2^i has Hill estimate
	// -cnt / Σ ln(d_i/d_max) -> cnt / ((cnt-1+...+1)·ln2) ~ 2/ln2 for
	// large cnt; just require the estimate to move off the ceiling and
	// stay within the clamp.
	h2 := &hillScale{p: AdaptiveParams{K: 2, Multiplier: 1, MinT: 1, MaxT: 24, Warmup: 0}}
	var got float64
	for i := 1; i <= 20; i++ {
		got = h2.observe(i, float64(int(1)<<i))
	}
	if got >= 24 || got < 1 {
		t.Errorf("geometric distances: t=%g, want inside (1, 24)", got)
	}
	// Zero distances are skipped, not logged.
	h3 := &hillScale{p: AdaptiveParams{K: 2, Multiplier: 1, MinT: 1, MaxT: 24, Warmup: 0}}
	if got := h3.observe(1, 0); got != 24 {
		t.Errorf("zero distance: t=%g, want ceiling", got)
	}
}
