// Package benchjson maintains the repo's benchmark artifact files
// (BENCH_core.json, BENCH_shard.json): small JSON documents with one
// top-level key per benchmark family, refreshed in place by whichever
// benchmark ran last without clobbering its siblings' measurements.
package benchjson

import (
	"encoding/json"
	"os"
)

// Merge read-modify-writes one top-level key of the benchmark file at
// path. A missing or unparsable file starts fresh. Files written before
// the keyed schema existed hold one benchmark's payload at the top level;
// such a flat document is adopted under legacyKey rather than dropped, so
// the last pre-migration measurement survives the first keyed write.
func Merge(path, key, legacyKey string, payload any) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil || doc[key] == nil && len(doc) > 0 && doc["benchmark"] != nil {
			doc = map[string]any{legacyKey: json.RawMessage(raw)}
		}
	}
	doc[key] = payload
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
