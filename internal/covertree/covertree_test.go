package covertree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/vecmath"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(pts [][]float64, m vecmath.Metric) (index.Index, error) {
		return New(pts, m)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{1}}, vecmath.SquaredEuclidean{}); err == nil {
		t.Error("accepted a non-metric distance")
	}
	if _, err := New([][]float64{{math.NaN()}}, vecmath.Euclidean{}); err == nil {
		t.Error("accepted NaN coordinates")
	}
}

func TestInvariantsAfterBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts := indextest.ClusteredPoints(300, 4, 6, seed)
		tree, err := New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestInvariantsProperty drives random build orders and dimension choices
// through the structural checker.
func TestInvariantsProperty(t *testing.T) {
	property := func(seed int64, dimRaw, nRaw uint8) bool {
		dim := int(dimRaw%6) + 1
		n := int(nRaw%150) + 2
		pts := indextest.RandPoints(n, dim, seed)
		tree, err := New(pts, vecmath.Euclidean{})
		if err != nil {
			return false
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDynamicInsert(t *testing.T) {
	pts := indextest.RandPoints(50, 3, 9)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a far-away point to force a root raise.
	id, err := tree.Insert([]float64{100, 100, 100})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 50 || tree.Len() != 51 {
		t.Fatalf("Insert id %d len %d", id, tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	nn := tree.KNN([]float64{101, 101, 101}, 1, -1)
	if len(nn) != 1 || nn[0].ID != 50 {
		t.Errorf("KNN after insert = %v, want id 50", nn)
	}
	if _, err := tree.Insert([]float64{1, 2}); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := tree.Insert([]float64{math.Inf(1), 0, 0}); err == nil {
		t.Error("accepted Inf coordinate")
	}
}

func TestDelete(t *testing.T) {
	pts := indextest.RandPoints(40, 2, 11)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Delete(5) {
		t.Fatal("Delete(5) = false")
	}
	if tree.Delete(5) {
		t.Error("double delete = true")
	}
	if tree.Delete(-1) || tree.Delete(99) {
		t.Error("out-of-range delete = true")
	}
	if tree.Len() != 39 {
		t.Errorf("Len = %d, want 39", tree.Len())
	}
	// The deleted point must not appear in any query result.
	q := pts[5]
	for _, nb := range tree.KNN(q, 40, -1) {
		if nb.ID == 5 {
			t.Error("KNN returned deleted id")
		}
	}
	if got := tree.CountRange(q, 0, -1); got != 0 {
		t.Errorf("CountRange at deleted point = %d, want 0", got)
	}
	cur := tree.NewCursor(q, -1)
	count := 0
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.ID == 5 {
			t.Error("cursor returned deleted id")
		}
		count++
	}
	if count != 39 {
		t.Errorf("cursor yielded %d, want 39", count)
	}
}

// TestInsertDeleteInterleaved checks that the index remains consistent under
// a mixed update stream, mirroring the dynamic scenario of the paper
// (Section 1: data warehouses, data streams).
func TestInsertDeleteInterleaved(t *testing.T) {
	pts := indextest.RandPoints(30, 3, 13)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	alive := make(map[int]bool)
	for i := range pts {
		alive[i] = true
	}
	extra := indextest.RandPoints(30, 3, 14)
	for i, p := range extra {
		id, err := tree.Insert(p)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		alive[id] = true
		if i%2 == 0 {
			victim := i // delete an original point
			if tree.Delete(victim) {
				delete(alive, victim)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tree.Len() != len(alive) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(alive))
	}
	cur := tree.NewCursor(extra[0], -1)
	got := 0
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if !alive[nb.ID] {
			t.Errorf("cursor returned dead id %d", nb.ID)
		}
		got++
	}
	if got != len(alive) {
		t.Errorf("cursor yielded %d, want %d", got, len(alive))
	}
}

func TestLevelFor(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{1, 0},
		{1.5, 1},
		{2, 1},
		{3, 2},
		{0.5, -1},
		{0.3, -1},
	}
	for _, tc := range cases {
		if got := levelFor(tc.d); got != tc.want {
			t.Errorf("levelFor(%g) = %d, want %d", tc.d, got, tc.want)
		}
	}
	if got := levelFor(0); math.Exp2(float64(got)) != 0 {
		t.Errorf("levelFor(0) should give an underflowing level, got %d", got)
	}
}
