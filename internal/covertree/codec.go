package covertree

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vecmath"
)

// Structure codec: the cover tree's node topology (IDs, levels, maxDist
// bounds, child lists) serialized separately from the points, so a
// persisted tree restores by reattaching nodes to the stored point rows
// instead of paying the O(n log n) distance computations of a re-insertion
// build. The blob is embedded as the backend-native section of a snapshot
// (internal/persist); both directions are iterative, so adversarial inputs
// cannot overflow the stack, and the decoder validates every invariant it
// can check without distance computations.
//
// Node record, little-endian, preorder: u32 id, u32 level (two's
// complement), f64 maxDist, u32 child count.

const nodeRecordSize = 20

// EncodeStructure serializes the tree's node topology. It returns nil for
// an empty tree.
func (t *Tree) EncodeStructure() []byte {
	if t.root == nil {
		return nil
	}
	buf := make([]byte, 0, nodeRecordSize*len(t.points))
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = appendNode(buf, n)
		// Push children in reverse so they pop in order (preorder).
		for i := len(n.children) - 1; i >= 0; i-- {
			stack = append(stack, n.children[i])
		}
	}
	return buf
}

func appendNode(b []byte, n *node) []byte {
	b = appendU32(b, uint32(n.id))
	b = appendU32(b, uint32(int32(n.level)))
	b = appendU64(b, math.Float64bits(n.maxDist))
	return appendU32(b, uint32(len(n.children)))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// Restore rebuilds a tree from its point rows, tombstoned IDs, and an
// encoded structure, without a single distance computation. It validates
// that the structure is a well-formed tree containing every point exactly
// once with strictly decreasing levels and sane bounds; it returns an error
// (never panics) on malformed input, so callers can fall back to a
// re-insertion build.
func Restore(points [][]float64, metric vecmath.Metric, deleted []int, structure []byte) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("covertree: nil metric")
	}
	if !metric.Metricity() {
		return nil, errors.New("covertree: metric must satisfy the triangle inequality")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	root, err := decodeStructure(points, structure)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		points:  points,
		metric:  metric,
		dim:     len(points[0]),
		root:    root,
		deleted: make(map[int]bool, len(deleted)),
		alive:   len(points),
	}
	for _, id := range deleted {
		if id < 0 || id >= len(points) || t.deleted[id] {
			return nil, fmt.Errorf("covertree: invalid tombstone id %d", id)
		}
		t.deleted[id] = true
		t.alive--
	}
	return t, nil
}

// decodeStructure parses the preorder node stream with an explicit stack.
func decodeStructure(points [][]float64, blob []byte) (*node, error) {
	want := len(points)
	if len(blob) != want*nodeRecordSize {
		return nil, fmt.Errorf("covertree: structure of %d bytes does not match %d points", len(blob), want)
	}
	if want == 0 {
		return nil, nil
	}
	seen := make([]bool, want)
	off := 0
	readNode := func() (*node, int, error) {
		rec := blob[off : off+nodeRecordSize]
		off += nodeRecordSize
		id := int(int32(getU32(rec)))
		if id < 0 || id >= want {
			return nil, 0, fmt.Errorf("covertree: structure node id %d out of range", id)
		}
		if seen[id] {
			return nil, 0, fmt.Errorf("covertree: structure repeats node id %d", id)
		}
		seen[id] = true
		maxDist := math.Float64frombits(getU64(rec[8:]))
		if math.IsNaN(maxDist) || math.IsInf(maxDist, 0) || maxDist < 0 {
			return nil, 0, fmt.Errorf("covertree: structure node %d has invalid maxDist", id)
		}
		nchildren := int(getU32(rec[16:]))
		if nchildren > want {
			return nil, 0, fmt.Errorf("covertree: structure node %d claims %d children", id, nchildren)
		}
		return &node{id: id, level: int(int32(getU32(rec[4:]))), maxDist: maxDist}, nchildren, nil
	}

	root, rootKids, err := readNode()
	if err != nil {
		return nil, err
	}
	type frame struct {
		n         *node
		remaining int
	}
	stack := []frame{{root, rootKids}}
	decoded := 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.remaining == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		top.remaining--
		if decoded == want {
			return nil, errors.New("covertree: structure claims more nodes than points")
		}
		child, kids, err := readNode()
		if err != nil {
			return nil, err
		}
		if child.level >= top.n.level {
			return nil, fmt.Errorf("covertree: structure child %d level not below parent %d", child.id, top.n.id)
		}
		top.n.children = append(top.n.children, child)
		decoded++
		stack = append(stack, frame{child, kids})
	}
	if decoded != want || off != len(blob) {
		return nil, errors.New("covertree: structure does not cover every point")
	}
	return root, nil
}
