package covertree

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/vecmath"
)

func randomPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestStructureRoundTrip encodes a built tree's topology and restores it:
// the restored tree must satisfy the cover tree invariants and answer
// queries identically — all without a single distance computation during
// the restore.
func TestStructureRoundTrip(t *testing.T) {
	pts := randomPoints(300, 4, 1)
	orig, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{3, 17, 42} {
		if !orig.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}

	blob := orig.EncodeStructure()
	restored, err := Restore(pts, vecmath.Euclidean{}, []int{3, 17, 42}, blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored tree invariants: %v", err)
	}
	if restored.Len() != orig.Len() {
		t.Errorf("restored Len %d, want %d", restored.Len(), orig.Len())
	}
	for qid := 0; qid < 20; qid++ {
		want := orig.KNN(pts[qid], 10, qid)
		got := restored.KNN(pts[qid], 10, qid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("KNN(%d) differs after restore:\ngot  %v\nwant %v", qid, got, want)
		}
	}
	// The restored tree must keep absorbing inserts correctly.
	id, err := restored.Insert([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 300 {
		t.Errorf("insert after restore assigned id %d, want 300", id)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-restore insert: %v", err)
	}
}

// TestStructureRoundTripDuplicates covers the deep-chain case: duplicate
// points descend into linear chains, which the iterative codec must handle
// without recursion limits.
func TestStructureRoundTripDuplicates(t *testing.T) {
	pts := make([][]float64, 2000)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	orig, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(pts, vecmath.Euclidean{}, nil, orig.EncodeStructure())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := restored.KNN(pts[0], 3, -1); len(got) != 3 {
		t.Errorf("KNN over duplicates returned %d results", len(got))
	}
}

func TestRestoreRejectsMalformed(t *testing.T) {
	pts := randomPoints(50, 3, 2)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	blob := tree.EncodeStructure()

	cases := map[string][]byte{
		"empty":     nil,
		"truncated": blob[:len(blob)-1],
		"extended":  append(bytes.Clone(blob), blob[:nodeRecordSize]...),
	}
	for name, b := range cases {
		if _, err := Restore(pts, vecmath.Euclidean{}, nil, b); err == nil {
			t.Errorf("%s: Restore succeeded", name)
		}
	}
	// Flip every byte: Restore must error or produce a tree that is at
	// least structurally safe (never panic). Many flips hit float bounds
	// that remain decodable; the hard guarantee is no panic and no
	// acceptance of out-of-range IDs.
	for i := 0; i < len(blob); i++ {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x10
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at %d: Restore panicked: %v", i, r)
				}
			}()
			Restore(pts, vecmath.Euclidean{}, nil, mut)
		}()
	}
	if _, err := Restore(pts, vecmath.Euclidean{}, []int{50}, blob); err == nil {
		t.Error("Restore accepted out-of-range tombstone")
	}
	if _, err := Restore(pts, vecmath.SquaredEuclidean{}, nil, blob); err == nil {
		t.Error("Restore accepted a non-metric")
	}
}

func FuzzRestoreStructure(f *testing.F) {
	pts := randomPoints(20, 2, 3)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tree.EncodeStructure())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		restored, err := Restore(pts, vecmath.Euclidean{}, nil, blob)
		if err != nil {
			return
		}
		// Whatever decodes must be a complete, well-formed tree.
		if got := restored.KNN(pts[0], 5, -1); len(got) != 5 {
			t.Fatalf("restored tree answered %d of 5 neighbors", len(got))
		}
	})
}
