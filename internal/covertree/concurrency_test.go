package covertree

import (
	"sync"
	"testing"

	"repro/internal/indextest"
	"repro/internal/vecmath"
)

// TestConcurrentReaders backs the documented claim that queries may run
// concurrently on an immutable tree (run with -race).
func TestConcurrentReaders(t *testing.T) {
	pts := indextest.ClusteredPoints(800, 4, 6, 1)
	tree, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qid := (g*131 + i*7) % len(pts)
				q := pts[qid]
				nn := tree.KNN(q, 5, qid)
				if len(nn) != 5 {
					errs <- errKNNShort
					return
				}
				cur := tree.NewCursor(q, qid)
				for j := 0; j < 10; j++ {
					if _, ok := cur.Next(); !ok {
						errs <- errCursorShort
						return
					}
				}
				_ = tree.CountRange(q, 0.1, qid)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var (
	errKNNShort    = errString("KNN returned fewer than k results")
	errCursorShort = errString("cursor ended prematurely")
)

type errString string

func (e errString) Error() string { return string(e) }
