// Package covertree implements a simplified cover tree (Beygelzimer, Kakade,
// Langford 2006; simplified single-node-per-point variant following Izbicki
// and Shelton 2015) over an arbitrary metric, with incremental
// nearest-neighbor traversal, batch kNN, range queries, and dynamic insert
// and delete.
//
// The paper under reproduction uses the cover tree as the incremental
// forward-kNN back-end for its low- and medium-dimensional datasets
// (Section 7.1), precisely because the structure needs only metric
// properties — no coordinate-wise bounding geometry — and supports the
// expanding ring search RDT is built on.
//
// # Invariants
//
// Every node n at integer level ℓ(n) satisfies
//
//  1. covering: every child c has d(n, c) ≤ covdist(n) = 2^ℓ(n), and
//     ℓ(c) < ℓ(n);
//  2. bounding: MaxDist(n) is an upper bound on d(n, x) for every
//     descendant point x of n.
//
// Query correctness relies only on these two; the classic separation
// invariant is a performance property maintained heuristically by the
// insertion order (each point descends to its nearest covering child).
package covertree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

type node struct {
	id       int
	level    int
	maxDist  float64
	children []*node
}

func (n *node) covdist() float64 { return math.Exp2(float64(n.level)) }

// Tree is a cover tree. It implements index.Index and index.Dynamic.
// Readers may run concurrently; mutation requires external synchronization.
type Tree struct {
	points  [][]float64
	metric  vecmath.Metric
	dim     int
	root    *node
	deleted map[int]bool
	alive   int
}

var _ index.Cloner = (*Tree)(nil)

// New builds a cover tree over points by repeated insertion. The points
// slice is retained by reference. The metric must satisfy the triangle
// inequality.
func New(points [][]float64, metric vecmath.Metric) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("covertree: nil metric")
	}
	if !metric.Metricity() {
		return nil, errors.New("covertree: metric must satisfy the triangle inequality")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	t := &Tree{
		points:  points,
		metric:  metric,
		dim:     len(points[0]),
		deleted: make(map[int]bool),
	}
	for id := range points {
		t.insertID(id)
	}
	t.alive = len(points)
	return t, nil
}

// Builder constructs cover trees; it implements index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric)
}

// Name implements index.Builder.
func (Builder) Name() string { return "covertree" }

// Len implements index.Index; deleted points are excluded.
func (t *Tree) Len() int { return t.alive }

// Dim implements index.Index.
func (t *Tree) Dim() int { return t.dim }

// Point implements index.Index.
func (t *Tree) Point(id int) []float64 { return t.points[id] }

// Metric implements index.Index.
func (t *Tree) Metric() vecmath.Metric { return t.metric }

// Insert implements index.Dynamic.
func (t *Tree) Insert(p []float64) (int, error) {
	if err := vecmath.ValidateFor(t.metric, p); err != nil {
		return 0, err
	}
	if len(p) != t.dim {
		return 0, vecmath.CheckDims(p, t.points[0])
	}
	t.points = append(t.points, p)
	id := len(t.points) - 1
	t.insertID(id)
	t.alive++
	return id, nil
}

// Clone implements index.Cloner with a deep copy of the node structure:
// insertion mutates maxDist, children, and possibly the root level anywhere
// along its descent path, so nodes cannot be shared between a frozen
// snapshot and its mutable successor. Point coordinate slices are immutable
// and stay shared; the walk is O(n).
func (t *Tree) Clone() index.Dynamic {
	points := make([][]float64, len(t.points), len(t.points)+1)
	copy(points, t.points)
	deleted := make(map[int]bool, len(t.deleted))
	for id := range t.deleted {
		deleted[id] = true
	}
	return &Tree{
		points:  points,
		metric:  t.metric,
		dim:     t.dim,
		root:    cloneNode(t.root),
		deleted: deleted,
		alive:   t.alive,
	}
}

func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	c := &node{id: n.id, level: n.level, maxDist: n.maxDist}
	if len(n.children) > 0 {
		c.children = make([]*node, len(n.children))
		for i, child := range n.children {
			c.children[i] = cloneNode(child)
		}
	}
	return c
}

// Delete implements index.Dynamic with a tombstone: the point keeps serving
// as a routing object (the covering invariant must not be disturbed) but is
// filtered from all query results.
func (t *Tree) Delete(id int) bool {
	if id < 0 || id >= len(t.points) || t.deleted[id] {
		return false
	}
	t.deleted[id] = true
	t.alive--
	return true
}

// IDSpan implements index.Liveness.
func (t *Tree) IDSpan() int { return len(t.points) }

// Live implements index.Liveness.
func (t *Tree) Live(id int) bool { return id >= 0 && id < len(t.points) && !t.deleted[id] }

// insertID threads the point with the given id into the tree.
func (t *Tree) insertID(id int) {
	p := t.points[id]
	if t.root == nil {
		t.root = &node{id: id, level: 0}
		return
	}
	d := t.metric.Distance(p, t.points[t.root.id])
	if d > t.root.covdist() {
		// Lazy root raise: lift the root's level until its cover
		// radius reaches the new point. Children remain covered (the
		// radius only grew) and keep strictly smaller levels.
		t.root.level = levelFor(d)
	}
	cur := t.root
	for {
		dCur := t.metric.Distance(p, t.points[cur.id])
		if dCur > cur.maxDist {
			cur.maxDist = dCur
		}
		// Descend into the nearest child whose cover radius reaches p.
		var best *node
		bestDist := math.Inf(1)
		for _, c := range cur.children {
			dc := t.metric.Distance(p, t.points[c.id])
			if dc <= c.covdist() && dc < bestDist {
				best, bestDist = c, dc
			}
		}
		if best == nil {
			cur.children = append(cur.children, &node{id: id, level: cur.level - 1})
			return
		}
		cur = best
	}
}

// levelFor returns the smallest integer ℓ with 2^ℓ >= d.
func levelFor(d float64) int {
	if d <= 0 {
		return math.MinInt32 / 2 // duplicates: any level covers
	}
	l := int(math.Ceil(math.Log2(d)))
	return l
}

// queueEntry is a tree node queued for expansion, with its exact distance to
// the query (used both to emit the node's own point and to bound children).
type queueEntry struct {
	n    *node
	dist float64 // d(q, n.point)
}

// lowerBound returns the least possible distance from the query to any point
// in the entry's subtree.
func (e queueEntry) lowerBound() float64 {
	lb := e.dist - e.n.maxDist
	if lb < 0 {
		return 0
	}
	return lb
}

// cursor implements index.Cursor by interleaving two heaps: pending subtrees
// keyed by their lower bound, and already-resolved points keyed by exact
// distance. A point is emitted only once no pending subtree could contain
// anything closer, which yields a globally non-decreasing stream.
type cursor struct {
	t      *Tree
	q      []float64
	skipID int
	nodes  *pqueue.Min[queueEntry]
	ready  *pqueue.Min[int]
}

// NewCursor implements index.Index.
func (t *Tree) NewCursor(q []float64, skipID int) index.Cursor {
	c := &cursor{
		t:      t,
		q:      q,
		skipID: skipID,
		nodes:  pqueue.NewMin[queueEntry](64),
		ready:  pqueue.NewMin[int](64),
	}
	if t.root != nil {
		d := t.metric.Distance(q, t.points[t.root.id])
		c.nodes.Push(entryPriority(t.root, d), queueEntry{n: t.root, dist: d})
	}
	return c
}

func entryPriority(n *node, dist float64) float64 {
	lb := dist - n.maxDist
	if lb < 0 {
		return 0
	}
	return lb
}

func (c *cursor) Next() (index.Neighbor, bool) {
	for {
		readyTop, hasReady := c.ready.Peek()
		nodeTop, hasNode := c.nodes.Peek()
		if hasReady && (!hasNode || readyTop.Priority <= nodeTop.Priority) {
			it, _ := c.ready.Pop()
			return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
		}
		if !hasNode {
			return index.Neighbor{}, false
		}
		it, _ := c.nodes.Pop()
		e := it.Value
		if e.n.id != c.skipID && !c.t.deleted[e.n.id] {
			c.ready.Push(e.dist, e.n.id)
		}
		for _, child := range e.n.children {
			d := c.t.metric.Distance(c.q, c.t.points[child.id])
			c.nodes.Push(entryPriority(child, d), queueEntry{n: child, dist: d})
		}
	}
}

// KNN implements index.Index with best-first search and bound pruning.
func (t *Tree) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	nodes := pqueue.NewMin[queueEntry](64)
	d := t.metric.Distance(q, t.points[t.root.id])
	nodes.Push(entryPriority(t.root, d), queueEntry{n: t.root, dist: d})
	for {
		it, ok := nodes.Pop()
		if !ok {
			break
		}
		if bound, full := top.Bound(); full && it.Priority > bound {
			break // nothing left can improve the result
		}
		e := it.Value
		if e.n.id != skipID && !t.deleted[e.n.id] {
			top.Offer(e.dist, e.n.id)
		}
		bound, full := top.Bound()
		for _, child := range e.n.children {
			dc := t.metric.Distance(q, t.points[child.id])
			lb := entryPriority(child, dc)
			if full && lb > bound {
				continue
			}
			nodes.Push(lb, queueEntry{n: child, dist: dc})
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index by pruning subtrees whose lower bound exceeds
// the radius.
func (t *Tree) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	t.forEachInRange(q, r, skipID, func(id int, d float64) {
		out = append(out, index.Neighbor{ID: id, Dist: d})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index.
func (t *Tree) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	t.forEachInRange(q, r, skipID, func(int, float64) { count++ })
	return count
}

func (t *Tree) forEachInRange(q []float64, r float64, skipID int, emit func(id int, d float64)) {
	if t.root == nil {
		return
	}
	var visit func(n *node, d float64)
	visit = func(n *node, d float64) {
		if d-n.maxDist > r {
			return
		}
		if d <= r && n.id != skipID && !t.deleted[n.id] {
			emit(n.id, d)
		}
		for _, c := range n.children {
			visit(c, t.metric.Distance(q, t.points[c.id]))
		}
	}
	visit(t.root, t.metric.Distance(q, t.points[t.root.id]))
}

// CheckInvariants walks the tree verifying the covering and bounding
// invariants; tests call it after builds and mutations. It returns nil on a
// healthy tree.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if len(t.points) > 0 {
			return errors.New("covertree: non-empty tree with nil root")
		}
		return nil
	}
	seen := make(map[int]bool, len(t.points))
	// check returns the IDs of all points in n's subtree, verifying the
	// covering and level invariants on the way down and the exact maxDist
	// bound against every descendant on the way up.
	var check func(n *node) ([]int, error)
	check = func(n *node) ([]int, error) {
		if seen[n.id] {
			return nil, errors.New("covertree: point appears twice")
		}
		seen[n.id] = true
		ids := []int{n.id}
		for _, c := range n.children {
			if c.level >= n.level {
				return nil, errors.New("covertree: child level not below parent level")
			}
			d := t.metric.Distance(t.points[n.id], t.points[c.id])
			if d > n.covdist()*(1+1e-9) {
				return nil, errors.New("covertree: covering invariant violated")
			}
			sub, err := check(c)
			if err != nil {
				return nil, err
			}
			ids = append(ids, sub...)
		}
		for _, id := range ids {
			if d := t.metric.Distance(t.points[n.id], t.points[id]); d > n.maxDist+1e-9 {
				return nil, errors.New("covertree: maxDist bound violated")
			}
		}
		return ids, nil
	}
	if _, err := check(t.root); err != nil {
		return err
	}
	if len(seen) != len(t.points) {
		return errors.New("covertree: tree does not contain every point")
	}
	return nil
}
