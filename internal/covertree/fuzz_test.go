package covertree

import (
	"testing"

	"repro/internal/vecmath"
)

// FuzzTreeInvariants decodes arbitrary bytes into an insertion sequence
// (with interleaved deletes) and checks the structural invariants plus kNN
// agreement with a linear scan. Run with `go test -fuzz FuzzTreeInvariants`
// for continuous fuzzing; plain `go test` exercises the seed corpus.
func FuzzTreeInvariants(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{200, 1, 200, 1, 200, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		const dim = 2
		n := len(data) / dim
		if n < 2 {
			t.Skip()
		}
		if n > 60 {
			n = 60
		}
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = []float64{float64(data[i*dim]) / 8, float64(data[i*dim+1]) / 8}
		}
		tree, err := New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after build: %v", err)
		}
		// Interleave a delete and an insert driven by the data.
		victim := int(data[0]) % n
		tree.Delete(victim)
		if _, err := tree.Insert([]float64{float64(data[1]), float64(data[2])}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after mutation: %v", err)
		}
		// kNN must agree with a brute-force pass over alive points.
		q := pts[int(data[1])%n]
		nn := tree.KNN(q, 3, -1)
		metric := vecmath.Euclidean{}
		best := -1.0
		for _, nb := range nn {
			if nb.Dist < best {
				t.Fatal("kNN out of order")
			}
			best = nb.Dist
			if nb.ID == victim {
				t.Fatal("kNN returned deleted point")
			}
			if got := metric.Distance(q, tree.Point(nb.ID)); got != nb.Dist {
				t.Fatalf("kNN distance mismatch: %g vs %g", got, nb.Dist)
			}
		}
	})
}
