package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vecmath"
)

// The decoders must never panic and never allocate memory disproportionate
// to the input, whatever the bytes. These fuzz targets are also run as a
// short smoke pass in CI.

func FuzzReadSnapshot(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteSnapshot(&valid, &Snapshot{
		MetricID: vecmath.MetricIDEuclidean,
		Backend:  "scan",
		Scale:    4,
		Dim:      2,
		Points:   [][]float64{{1, 2}, {3, 4}},
		Deleted:  []int{0},
		Native:   []byte{1, 2, 3},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte("RKNNSNAP"))
	f.Add([]byte{})
	// A header that claims a huge point count on a tiny stream.
	huge := bytes.Clone(valid.Bytes())
	for i := range huge {
		huge[i] ^= byte(i)
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must satisfy the structural invariants
		// downstream code relies on.
		if s.Dim < 1 || s.Dim > maxDim {
			t.Fatalf("decoded dim %d out of range", s.Dim)
		}
		if len(s.Points) == 0 {
			t.Fatal("decoded snapshot with no points")
		}
		for _, p := range s.Points {
			if len(p) != s.Dim {
				t.Fatalf("decoded ragged point of dim %d", len(p))
			}
		}
		if len(s.Deleted) > len(s.Points) {
			t.Fatal("decoded more tombstones than points")
		}
		for i, id := range s.Deleted {
			if id < 0 || id >= len(s.Points) {
				t.Fatalf("decoded tombstone %d out of range", id)
			}
			if i > 0 && id <= s.Deleted[i-1] {
				t.Fatal("decoded unsorted tombstones")
			}
		}
	})
}

func FuzzReadDataset(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteDataset(&valid, "fuzz", [][]float64{{1}, {2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("RKNNDATA"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		name, pts, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(name) > maxNameLen {
			t.Fatalf("decoded name of %d bytes", len(name))
		}
		if len(pts) == 0 {
			t.Fatal("decoded dataset with no points")
		}
		for _, p := range pts {
			if len(p) != len(pts[0]) {
				t.Fatal("decoded ragged dataset")
			}
		}
	})
}

func FuzzReplayWAL(f *testing.F) {
	var valid []byte
	for _, r := range []WALRecord{
		{Op: WALInsert, ID: 0, Point: []float64{1, 2}},
		{Op: WALDelete, ID: 0},
	} {
		b, err := encodeWALRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, b...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		n := 0
		valid, _, err := ReplayWAL(path, func(r WALRecord) error {
			n++
			if r.Op != WALInsert && r.Op != WALDelete {
				t.Fatalf("replayed unknown op %d", r.Op)
			}
			if r.ID < 0 {
				t.Fatalf("replayed negative id %d", r.ID)
			}
			if r.Op == WALInsert && (len(r.Point) == 0 || len(r.Point) > maxDim) {
				t.Fatalf("replayed insert with dim %d", len(r.Point))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ReplayWAL returned error on arbitrary bytes: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
	})
}
