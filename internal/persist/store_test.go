package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func openCollect(t *testing.T, dir string) (*Store, *Snapshot, []WALRecord, Recovery) {
	t.Helper()
	var recs []WALRecord
	st, snap, info, err := Open(dir, DefaultSync(), func(r WALRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, snap, recs, info
}

func TestStoreCreateOpenCycle(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("empty dir reported as store")
	}
	st, err := Create(dir, testSnapshot(), DefaultSync())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !Exists(dir) {
		t.Fatal("created store not detected")
	}
	if _, err := Create(dir, testSnapshot(), DefaultSync()); err == nil {
		t.Fatal("Create overwrote an existing store")
	}
	recs := testRecords()
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st.Close()

	st2, snap, got, info := openCollect(t, dir)
	defer st2.Close()
	if !reflect.DeepEqual(snap, testSnapshot()) {
		t.Errorf("recovered snapshot mismatch")
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("recovered records %+v", got)
	}
	if info.Gen != 1 || info.WALRecords != len(recs) || info.WALTorn {
		t.Errorf("recovery info %+v", info)
	}
}

func TestStoreCutRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSnapshot(), DefaultSync())
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testRecords()[0])
	next := testSnapshot()
	next.Points = append(next.Points, []float64{9, 9, 9})
	if err := st.Cut(next); err != nil {
		t.Fatalf("Cut: %v", err)
	}
	if st.Gen() != 2 {
		t.Errorf("generation %d after cut, want 2", st.Gen())
	}
	// Old generation files are retired.
	if _, err := os.Stat(snapPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("generation 1 snapshot still present after cut")
	}
	if _, err := os.Stat(walPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("generation 1 wal still present after cut")
	}
	st.Append(testRecords()[1])
	st.Close()

	st2, snap, got, info := openCollect(t, dir)
	defer st2.Close()
	if info.Gen != 2 {
		t.Errorf("recovered generation %d, want 2", info.Gen)
	}
	if len(snap.Points) != 5 {
		t.Errorf("recovered %d points, want 5", len(snap.Points))
	}
	if !reflect.DeepEqual(got, testRecords()[1:2]) {
		t.Errorf("recovered records %+v, want only the post-cut one", got)
	}
}

// TestStoreOpenSkipsCorruptNewerSnapshot: when the newest snapshot file is
// unreadable, recovery falls back to the previous intact generation and
// new generations are numbered past the corrupt file.
func TestStoreOpenSkipsCorruptNewerSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSnapshot(), DefaultSync())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := os.WriteFile(snapPath(dir, 2), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, snap, _, info := openCollect(t, dir)
	if info.Gen != 1 || len(info.SkippedSnapshots) != 1 {
		t.Errorf("recovery info %+v", info)
	}
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}
	if err := st2.Cut(testSnapshot()); err != nil {
		t.Fatalf("Cut: %v", err)
	}
	if st2.Gen() != 3 {
		t.Errorf("next generation %d, want 3 (numbered past the corrupt file)", st2.Gen())
	}
	st2.Close()
	// The unreadable file is preserved as forensic evidence under a
	// .corrupt name that generation cleanup never touches.
	if len(info.SkippedSnapshots) == 1 {
		if _, err := os.Stat(info.SkippedSnapshots[0]); err != nil {
			t.Errorf("skipped snapshot not preserved: %v", err)
		}
	}
}

// TestStoreAllSnapshotsCorrupt: when nothing loads, Open fails with
// ErrNoStore but leaves every file in place, so the directory still
// registers as a store and cannot be silently bootstrapped over.
func TestStoreAllSnapshotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(snapPath(dir, 1), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(dir, DefaultSync(), func(WALRecord) error { return nil })
	if !errors.Is(err, ErrNoStore) {
		t.Fatalf("Open = %v, want ErrNoStore", err)
	}
	if !Exists(dir) {
		t.Error("store no longer detected after failed Open")
	}
	if _, err := os.Stat(snapPath(dir, 1)); err != nil {
		t.Errorf("corrupt snapshot was moved on a failed Open: %v", err)
	}
}

func TestStoreOpenEmptyDir(t *testing.T) {
	_, _, _, err := Open(t.TempDir(), DefaultSync(), func(WALRecord) error { return nil })
	if !errors.Is(err, ErrNoStore) {
		t.Errorf("Open(empty) = %v, want ErrNoStore", err)
	}
}

// TestStoreOpenCleansTempFiles: a crash mid-snapshot leaves a .tmp file;
// Open must remove it and recover the previous generation.
func TestStoreOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSnapshot(), DefaultSync())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	stale := filepath.Join(dir, "snap-123456.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _, _, _ := openCollect(t, dir)
	st2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale .tmp file survived Open")
	}
}

// TestStoreTornWALRecovery: a torn tail on the store's log is discarded at
// Open and subsequent appends extend the intact prefix.
func TestStoreTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, testSnapshot(), DefaultSync())
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testRecords()[0])
	st.Close()
	f, err := os.OpenFile(walPath(dir, 1), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()

	st2, _, got, info := openCollect(t, dir)
	if !info.WALTorn {
		t.Error("torn tail not reported")
	}
	if !reflect.DeepEqual(got, testRecords()[:1]) {
		t.Errorf("recovered records %+v", got)
	}
	st2.Append(testRecords()[1])
	st2.Close()

	st3, _, got3, info3 := openCollect(t, dir)
	st3.Close()
	if info3.WALTorn {
		t.Error("log still torn after truncating recovery")
	}
	if !reflect.DeepEqual(got3, testRecords()[:2]) {
		t.Errorf("after reopen, records %+v", got3)
	}
}

func TestSnapshotFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	if err := writeSnapshotFile(dir, 7, testSnapshot()); err != nil {
		t.Fatalf("writeSnapshotFile: %v", err)
	}
	f, err := os.Open(snapPath(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, testSnapshot()) {
		t.Error("on-disk snapshot mismatch")
	}
}
