package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []WALRecord {
	return []WALRecord{
		{Op: WALInsert, ID: 4, Point: []float64{1, 2}},
		{Op: WALDelete, ID: 2},
		{Op: WALInsert, ID: 5, Point: []float64{-3, 0.5}},
		{Op: WALDelete, ID: 4},
	}
}

func writeWAL(t *testing.T, path string, recs []WALRecord, policy SyncPolicy) {
	t.Helper()
	w, err := OpenWAL(path, 0, policy)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func replayAll(t *testing.T, path string) ([]WALRecord, int64, bool) {
	t.Helper()
	var got []WALRecord
	valid, torn, err := ReplayWAL(path, func(r WALRecord) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	return got, valid, torn
}

func TestWALRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{{Every: 1}, {Every: 0}, {Every: 3}} {
		path := filepath.Join(t.TempDir(), "wal.log")
		writeWAL(t, path, testRecords(), policy)
		got, valid, torn := replayAll(t, path)
		if torn {
			t.Errorf("policy %+v: clean log reported torn", policy)
		}
		if !reflect.DeepEqual(got, testRecords()) {
			t.Errorf("policy %+v: replay = %+v", policy, got)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if valid != info.Size() {
			t.Errorf("policy %+v: valid offset %d, file size %d", policy, valid, info.Size())
		}
	}
}

func TestWALMissingFileReplaysEmpty(t *testing.T) {
	got, valid, torn := replayAll(t, filepath.Join(t.TempDir(), "absent.log"))
	if len(got) != 0 || valid != 0 || torn {
		t.Errorf("missing file replay = %v, %d, %v", got, valid, torn)
	}
}

// TestWALTornTail simulates a crash mid-append: every proper prefix of the
// final record must replay all earlier records, report torn, and give the
// offset where the intact prefix ends.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	writeWAL(t, full, testRecords(), DefaultSync())
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := 0
	{
		prefix := filepath.Join(dir, "prefix.log")
		writeWAL(t, prefix, testRecords()[:len(testRecords())-1], DefaultSync())
		pb, err := os.ReadFile(prefix)
		if err != nil {
			t.Fatal(err)
		}
		lastStart = len(pb)
	}
	for cut := lastStart + 1; cut < len(blob); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, valid, torn := replayAll(t, path)
		if !torn {
			t.Fatalf("cut at %d: not reported torn", cut)
		}
		if valid != int64(lastStart) {
			t.Fatalf("cut at %d: valid = %d, want %d", cut, valid, lastStart)
		}
		if !reflect.DeepEqual(got, testRecords()[:len(testRecords())-1]) {
			t.Fatalf("cut at %d: replayed %+v", cut, got)
		}
	}
}

// TestWALCorruptTail flips a byte in the final record: the prefix must
// survive, the tail must be discarded.
func TestWALCorruptTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	writeWAL(t, full, testRecords(), DefaultSync())
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(blob)
	mut[len(mut)-1] ^= 0xFF
	path := filepath.Join(dir, "corrupt.log")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, torn := replayAll(t, path)
	if !torn {
		t.Error("corrupt tail not reported torn")
	}
	if !reflect.DeepEqual(got, testRecords()[:len(testRecords())-1]) {
		t.Errorf("replayed %+v", got)
	}
}

// TestWALTruncateOnOpen: opening at the valid offset discards the torn
// tail and appends continue cleanly from there.
func TestWALTruncateOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeWAL(t, path, testRecords(), DefaultSync())
	// Simulate a torn append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, valid, torn := replayAll(t, path)
	if !torn {
		t.Fatal("garbage tail not reported torn")
	}
	w, err := OpenWAL(path, valid, DefaultSync())
	if err != nil {
		t.Fatal(err)
	}
	extra := WALRecord{Op: WALInsert, ID: 6, Point: []float64{7, 7}}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, _, torn := replayAll(t, path)
	if torn {
		t.Error("log torn after truncate + append")
	}
	want := append(testRecords(), extra)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay = %+v, want %+v", got, want)
	}
}

func TestWALRejectsBadRecords(t *testing.T) {
	bad := []WALRecord{
		{Op: 0},
		{Op: WALInsert, ID: -1, Point: []float64{1}},
		{Op: WALInsert, ID: 1, Point: nil},
		{Op: WALDelete, ID: -5},
	}
	for _, r := range bad {
		if _, err := encodeWALRecord(r); err == nil {
			t.Errorf("encoded invalid record %+v", r)
		}
	}
}
