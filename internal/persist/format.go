// Package persist is the durability layer of the engine: a versioned,
// CRC-checksummed binary snapshot format for index state, an append-only
// write-ahead log for online updates, and a generation-numbered on-disk
// store that combines the two with atomic snapshot cuts and crash recovery.
//
// The layer deliberately knows nothing about query algorithms. A Snapshot
// is pure data — metric identity, engine configuration, the point rows and
// tombstone set of an index.State, plus an optional backend-native blob —
// and the repro facade converts between Snapshot and a live Searcher (see
// DESIGN.md, "Durable persistence").
//
// Every decoder in this package must uphold two properties regardless of
// input bytes: never panic, and never allocate memory disproportionate to
// the input actually consumed (length prefixes are sanity-capped and large
// sections are read incrementally). The fuzz tests pin both.
package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// formatVersion is the snapshot/WAL format version. Bump only with a
// migration path for existing files.
const formatVersion = 1

// snapVersionQuant is the snapshot format revision that appends a
// quantized-filter codebook section. Snapshots without a codebook are
// still written as formatVersion, so files produced by engines that never
// enable the filter are byte-identical to version-1 files; ReadSnapshot
// accepts both revisions.
const snapVersionQuant = 2

// Sanity caps on length prefixes: a decoder must reject anything beyond
// these before allocating, so malformed or adversarial inputs cannot
// request absurd allocations.
const (
	maxDim        = 1 << 20 // coordinates per point
	maxHeaderLen  = 1 << 12 // bytes in a snapshot or dataset header
	maxBackendLen = 64      // bytes in a backend name
	maxNameLen    = 1 << 10 // bytes in a dataset name
	maxWALPayload = 1 << 26 // bytes in one WAL record payload (one point)
	maxNativeLen  = 1 << 30 // bytes in a backend-native structure blob
	maxQuantLen   = 1 << 20 // bytes in a quantized-filter codebook blob
)

// trailerMagic terminates every snapshot and dataset file, distinguishing a
// complete file from one truncated after its last checksummed section.
const trailerMagic uint32 = 0x454E4B52 // "RKNE"

var (
	snapMagic = [8]byte{'R', 'K', 'N', 'N', 'S', 'N', 'A', 'P'}
	dataMagic = [8]byte{'R', 'K', 'N', 'N', 'D', 'A', 'T', 'A'}
)

// crcTable selects CRC-32C (Castagnoli), hardware-accelerated on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports that persisted bytes failed validation — bad magic,
// checksum mismatch, truncation, or an out-of-range length prefix. Match
// with errors.Is.
var ErrCorrupt = errors.New("persist: corrupt or truncated data")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// ---- little-endian append helpers (encode side) ----

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

// ---- decode-side helpers ----

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

func getF64(b []byte) float64 { return math.Float64frombits(getU64(b)) }

// byteCursor walks a fully-read buffer (a checksummed header) with bounds
// checking instead of panics.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, corruptf("header field overruns header (%d bytes at offset %d of %d)", n, c.off, len(c.b))
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *byteCursor) u8() (uint8, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return getU32(b), nil
}

func (c *byteCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return getU64(b), nil
}

func (c *byteCursor) f64() (float64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return getF64(b), nil
}

func (c *byteCursor) done() error {
	if c.off != len(c.b) {
		return corruptf("%d trailing bytes after header fields", len(c.b)-c.off)
	}
	return nil
}

// readFull reads exactly len(b) bytes, converting a clean EOF mid-field
// into ErrCorrupt (truncation).
func readFull(r io.Reader, b []byte) error {
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("unexpected end of data")
		}
		return err
	}
	return nil
}

func readU32(r io.Reader, scratch []byte) (uint32, error) {
	if err := readFull(r, scratch[:4]); err != nil {
		return 0, err
	}
	return getU32(scratch), nil
}

// writePointsSection streams count×dim float64 rows followed by a CRC-32C
// of the raw bytes.
func writePointsSection(w io.Writer, points [][]float64, dim int) error {
	crc := crc32.New(crcTable)
	out := io.MultiWriter(w, crc)
	row := make([]byte, 0, dim*8)
	for _, p := range points {
		if len(p) != dim {
			return fmt.Errorf("persist: point dimension %d, expected %d", len(p), dim)
		}
		row = row[:0]
		for _, x := range p {
			row = appendF64(row, x)
		}
		if _, err := out.Write(row); err != nil {
			return err
		}
	}
	var tail []byte
	tail = appendU32(tail, crc.Sum32())
	_, err := w.Write(tail)
	return err
}

// readPointsSection reads count rows of dim float64s and verifies the
// trailing CRC. Rows are allocated as they are read, so a bogus count on a
// short stream fails without a large allocation; each row's backing array
// is separate so callers may retain rows independently.
func readPointsSection(r io.Reader, count uint64, dim int) ([][]float64, error) {
	crc := crc32.New(crcTable)
	rowBytes := make([]byte, dim*8)
	points := make([][]float64, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		if err := readFull(r, rowBytes); err != nil {
			return nil, err
		}
		crc.Write(rowBytes)
		p := make([]float64, dim)
		for j := range p {
			p[j] = getF64(rowBytes[j*8:])
		}
		points = append(points, p)
	}
	var scratch [4]byte
	sum, err := readU32(r, scratch[:])
	if err != nil {
		return nil, err
	}
	if sum != crc.Sum32() {
		return nil, corruptf("point data checksum mismatch")
	}
	return points, nil
}

// readChecksummedBlob reads a length-known byte section followed by its
// CRC, in bounded chunks so a large claimed length on a short stream fails
// early.
func readChecksummedBlob(r io.Reader, length uint64) ([]byte, error) {
	crc := crc32.New(crcTable)
	blob := make([]byte, 0, min(length, 1<<16))
	chunk := make([]byte, 1<<16)
	for remaining := length; remaining > 0; {
		n := min(remaining, uint64(len(chunk)))
		if err := readFull(r, chunk[:n]); err != nil {
			return nil, err
		}
		crc.Write(chunk[:n])
		blob = append(blob, chunk[:n]...)
		remaining -= n
	}
	var scratch [4]byte
	sum, err := readU32(r, scratch[:])
	if err != nil {
		return nil, err
	}
	if sum != crc.Sum32() {
		return nil, corruptf("blob checksum mismatch")
	}
	return blob, nil
}

// writeChecksummedBlob is the encode counterpart of readChecksummedBlob.
func writeChecksummedBlob(w io.Writer, blob []byte) error {
	if _, err := w.Write(blob); err != nil {
		return err
	}
	var tail []byte
	tail = appendU32(tail, crc32.Checksum(blob, crcTable))
	_, err := w.Write(tail)
	return err
}
