package persist

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/vecmath"
)

// Snapshot is the complete serializable state of a Searcher: metric
// identity, engine configuration (so a restore never re-estimates the scale
// parameter), the index content of an index.State, and an optional
// backend-native structure blob (the cover tree serializes its node
// topology so a restore skips the O(n log n) re-insertion build).
type Snapshot struct {
	MetricID    vecmath.MetricID
	MetricParam float64
	Backend     string

	Plus     bool    // RDT+ candidate reduction enabled
	Adaptive bool    // online per-query scale estimation
	Scale    float64 // pinned/estimated scale t (0 when Adaptive)
	Margin   float64 // scale margin / adaptive multiplier minus one

	Dim     int
	Points  [][]float64 // all IDs ever assigned, in ID order
	Deleted []int       // tombstoned IDs, ascending
	Native  []byte      // optional backend-native structure (may be nil)
	Quant   []byte      // optional quantized-filter codebook (may be nil)
}

// flag bits in the header.
const (
	flagPlus     = 1 << 0
	flagAdaptive = 1 << 1
)

// File layout (all integers little-endian):
//
//	magic   [8]byte  "RKNNSNAP"
//	version u32      = 1 or 2
//	header  u32 len | fields | u32 CRC-32C(fields)
//	points  len(Points)×Dim f64 rows | u32 CRC-32C(raw row bytes)
//	deleted len(Deleted)×u64 | u32 CRC-32C
//	native  len(Native) bytes | u32 CRC-32C
//	quant   len(Quant) bytes | u32 CRC-32C      (version 2 only)
//	trailer u32      "RKNE"
//
// Header fields, in order: u8 metric ID, f64 metric param, u8 backend name
// length + bytes, u8 flags, f64 scale, f64 margin, u32 dim, u64 point
// count, u64 deleted count, u64 native length, u64 quant length (version 2
// only). A snapshot without a codebook is written as version 1, so engines
// that never enable the quantized filter produce files bit-identical to
// the original format.

// WriteSnapshot encodes s. The writer is buffered internally; callers that
// need durability must sync the underlying file themselves (the Store
// does).
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if err := validateSnapshot(s); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)

	version := uint32(formatVersion)
	if len(s.Quant) > 0 {
		version = snapVersionQuant
	}
	var head []byte
	head = append(head, snapMagic[:]...)
	head = appendU32(head, version)

	var h []byte
	h = appendU8(h, uint8(s.MetricID))
	h = appendF64(h, s.MetricParam)
	h = appendU8(h, uint8(len(s.Backend)))
	h = append(h, s.Backend...)
	var flags uint8
	if s.Plus {
		flags |= flagPlus
	}
	if s.Adaptive {
		flags |= flagAdaptive
	}
	h = appendU8(h, flags)
	h = appendF64(h, s.Scale)
	h = appendF64(h, s.Margin)
	h = appendU32(h, uint32(s.Dim))
	h = appendU64(h, uint64(len(s.Points)))
	h = appendU64(h, uint64(len(s.Deleted)))
	h = appendU64(h, uint64(len(s.Native)))
	if version >= snapVersionQuant {
		h = appendU64(h, uint64(len(s.Quant)))
	}

	head = appendU32(head, uint32(len(h)))
	head = append(head, h...)
	head = appendU32(head, crc32.Checksum(h, crcTable))
	if _, err := bw.Write(head); err != nil {
		return err
	}

	if err := writePointsSection(bw, s.Points, s.Dim); err != nil {
		return err
	}

	var del []byte
	for _, id := range s.Deleted {
		del = appendU64(del, uint64(id))
	}
	if err := writeChecksummedBlob(bw, del); err != nil {
		return err
	}

	if err := writeChecksummedBlob(bw, s.Native); err != nil {
		return err
	}

	if version >= snapVersionQuant {
		if err := writeChecksummedBlob(bw, s.Quant); err != nil {
			return err
		}
	}

	var tail []byte
	tail = appendU32(tail, trailerMagic)
	if _, err := bw.Write(tail); err != nil {
		return err
	}
	return bw.Flush()
}

// validateSnapshot rejects states the format cannot represent before any
// bytes are written.
func validateSnapshot(s *Snapshot) error {
	if s.MetricID == vecmath.MetricIDInvalid {
		return fmt.Errorf("persist: snapshot has no metric ID")
	}
	if len(s.Backend) == 0 || len(s.Backend) > maxBackendLen {
		return fmt.Errorf("persist: backend name length %d out of range [1, %d]", len(s.Backend), maxBackendLen)
	}
	if s.Dim < 1 || s.Dim > maxDim {
		return fmt.Errorf("persist: dimension %d out of range [1, %d]", s.Dim, maxDim)
	}
	if len(s.Points) == 0 {
		return fmt.Errorf("persist: snapshot has no points")
	}
	if len(s.Deleted) > len(s.Points) {
		return fmt.Errorf("persist: %d tombstones exceed %d points", len(s.Deleted), len(s.Points))
	}
	if uint64(len(s.Native)) > maxNativeLen {
		return fmt.Errorf("persist: native blob of %d bytes exceeds cap", len(s.Native))
	}
	if uint64(len(s.Quant)) > maxQuantLen {
		return fmt.Errorf("persist: quant codebook blob of %d bytes exceeds cap", len(s.Quant))
	}
	return nil
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot, verifying magic,
// version, every section checksum, and all structural invariants (sorted
// in-range tombstones, capped lengths). Any malformed input yields an error
// wrapping ErrCorrupt; decoding never panics and never allocates memory
// disproportionate to the bytes actually present.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte

	if err := readFull(br, scratch[:8]); err != nil {
		return nil, err
	}
	if [8]byte(scratch[:8]) != snapMagic {
		return nil, corruptf("bad snapshot magic")
	}
	version, err := readU32(br, scratch[:])
	if err != nil {
		return nil, err
	}
	if version != formatVersion && version != snapVersionQuant {
		return nil, corruptf("unsupported snapshot format version %d", version)
	}

	headerLen, err := readU32(br, scratch[:])
	if err != nil {
		return nil, err
	}
	if headerLen > maxHeaderLen {
		return nil, corruptf("header length %d exceeds cap", headerLen)
	}
	h := make([]byte, headerLen)
	if err := readFull(br, h); err != nil {
		return nil, err
	}
	sum, err := readU32(br, scratch[:])
	if err != nil {
		return nil, err
	}
	if sum != crc32.Checksum(h, crcTable) {
		return nil, corruptf("header checksum mismatch")
	}

	s := &Snapshot{}
	cur := &byteCursor{b: h}
	mid, err := cur.u8()
	if err != nil {
		return nil, err
	}
	s.MetricID = vecmath.MetricID(mid)
	if s.MetricParam, err = cur.f64(); err != nil {
		return nil, err
	}
	blen, err := cur.u8()
	if err != nil {
		return nil, err
	}
	if blen == 0 || int(blen) > maxBackendLen {
		return nil, corruptf("backend name length %d out of range", blen)
	}
	bname, err := cur.take(int(blen))
	if err != nil {
		return nil, err
	}
	s.Backend = string(bname)
	flags, err := cur.u8()
	if err != nil {
		return nil, err
	}
	s.Plus = flags&flagPlus != 0
	s.Adaptive = flags&flagAdaptive != 0
	if s.Scale, err = cur.f64(); err != nil {
		return nil, err
	}
	if s.Margin, err = cur.f64(); err != nil {
		return nil, err
	}
	dim, err := cur.u32()
	if err != nil {
		return nil, err
	}
	if dim < 1 || dim > maxDim {
		return nil, corruptf("dimension %d out of range", dim)
	}
	s.Dim = int(dim)
	count, err := cur.u64()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, corruptf("snapshot with zero points")
	}
	deletedCount, err := cur.u64()
	if err != nil {
		return nil, err
	}
	if deletedCount > count {
		return nil, corruptf("%d tombstones exceed %d points", deletedCount, count)
	}
	nativeLen, err := cur.u64()
	if err != nil {
		return nil, err
	}
	if nativeLen > maxNativeLen {
		return nil, corruptf("native blob length %d exceeds cap", nativeLen)
	}
	var quantLen uint64
	if version >= snapVersionQuant {
		if quantLen, err = cur.u64(); err != nil {
			return nil, err
		}
		if quantLen > maxQuantLen {
			return nil, corruptf("quant codebook length %d exceeds cap", quantLen)
		}
	}
	if err := cur.done(); err != nil {
		return nil, err
	}
	if math.IsNaN(s.MetricParam) || math.IsNaN(s.Margin) {
		return nil, corruptf("NaN in header parameters")
	}

	if s.Points, err = readPointsSection(br, count, s.Dim); err != nil {
		return nil, err
	}

	delBlob, err := readChecksummedBlob(br, deletedCount*8)
	if err != nil {
		return nil, err
	}
	if deletedCount > 0 {
		s.Deleted = make([]int, deletedCount)
		for i := range s.Deleted {
			id := getU64(delBlob[i*8:])
			if id >= count {
				return nil, corruptf("tombstoned id %d out of range [0, %d)", id, count)
			}
			if i > 0 && int(id) <= s.Deleted[i-1] {
				return nil, corruptf("tombstone ids not strictly ascending")
			}
			s.Deleted[i] = int(id)
		}
	}

	if s.Native, err = readChecksummedBlob(br, nativeLen); err != nil {
		return nil, err
	}
	if nativeLen == 0 {
		s.Native = nil
	}

	if version >= snapVersionQuant {
		if s.Quant, err = readChecksummedBlob(br, quantLen); err != nil {
			return nil, err
		}
		if quantLen == 0 {
			s.Quant = nil
		}
	}

	tm, err := readU32(br, scratch[:])
	if err != nil {
		return nil, err
	}
	if tm != trailerMagic {
		return nil, corruptf("bad trailer magic")
	}
	return s, nil
}
