package persist

import (
	"bufio"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/trace"
)

// WAL operation codes.
const (
	WALInsert byte = 1
	WALDelete byte = 2
)

// WALRecord is one logged mutation. Insert records carry the point and the
// ID the engine assigned (IDs are dense and assigned in order, so replay
// verifies each insert lands on the ID it was given originally — a cheap
// end-to-end integrity check on the snapshot+log pair). Delete records
// carry only the ID.
type WALRecord struct {
	Op    byte
	ID    int
	Point []float64
}

// SyncPolicy controls how often the WAL fsyncs. Every=1 (the default used
// by DefaultSync) syncs after each record: an acknowledged write survives
// an OS crash. Every=0 never fsyncs: records still reach the OS on each
// append (the WAL is unbuffered in process), so they survive a process
// crash but the tail may be lost to an OS crash. Every=n>1 syncs each n-th
// record, bounding the loss window to n-1 acknowledged writes.
type SyncPolicy struct {
	Every int
}

// DefaultSync is the safe policy: fsync every record.
func DefaultSync() SyncPolicy { return SyncPolicy{Every: 1} }

// WAL is an append-only write-ahead log. Appends are not internally
// synchronized; callers serialize them (the facade already serializes all
// writers through one mutex).
type WAL struct {
	f      *os.File
	policy SyncPolicy
	since  int // appends since the last fsync
}

// Record framing, little-endian:
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// Payload: u8 op, then for WALInsert u64 id + u32 dim + dim×f64, for
// WALDelete u64 id. A record is written with a single Write call so a
// crashed process can tear at most the final record, never interleave.

// encodeWALRecord frames rec into a single buffer.
func encodeWALRecord(rec WALRecord) ([]byte, error) {
	var p []byte
	p = appendU8(p, rec.Op)
	switch rec.Op {
	case WALInsert:
		if rec.ID < 0 {
			return nil, fmt.Errorf("persist: negative insert id %d", rec.ID)
		}
		if len(rec.Point) == 0 || len(rec.Point) > maxDim {
			return nil, fmt.Errorf("persist: insert dimension %d out of range [1, %d]", len(rec.Point), maxDim)
		}
		p = appendU64(p, uint64(rec.ID))
		p = appendU32(p, uint32(len(rec.Point)))
		for _, x := range rec.Point {
			p = appendF64(p, x)
		}
	case WALDelete:
		if rec.ID < 0 {
			return nil, fmt.Errorf("persist: negative delete id %d", rec.ID)
		}
		p = appendU64(p, uint64(rec.ID))
	default:
		return nil, fmt.Errorf("persist: unknown WAL op %d", rec.Op)
	}
	out := make([]byte, 0, 8+len(p))
	out = appendU32(out, uint32(len(p)))
	out = appendU32(out, crc32.Checksum(p, crcTable))
	return append(out, p...), nil
}

// decodeWALPayload parses a CRC-verified payload.
func decodeWALPayload(p []byte) (WALRecord, error) {
	cur := &byteCursor{b: p}
	op, err := cur.u8()
	if err != nil {
		return WALRecord{}, err
	}
	rec := WALRecord{Op: op}
	switch op {
	case WALInsert:
		id, err := cur.u64()
		if err != nil {
			return WALRecord{}, err
		}
		dim, err := cur.u32()
		if err != nil {
			return WALRecord{}, err
		}
		if dim < 1 || dim > maxDim {
			return WALRecord{}, corruptf("insert dimension %d out of range", dim)
		}
		raw, err := cur.take(int(dim) * 8)
		if err != nil {
			return WALRecord{}, err
		}
		rec.ID = int(id)
		if rec.ID < 0 || uint64(rec.ID) != id {
			return WALRecord{}, corruptf("insert id %d overflows int", id)
		}
		rec.Point = make([]float64, dim)
		for j := range rec.Point {
			rec.Point[j] = getF64(raw[j*8:])
		}
	case WALDelete:
		id, err := cur.u64()
		if err != nil {
			return WALRecord{}, err
		}
		rec.ID = int(id)
		if rec.ID < 0 || uint64(rec.ID) != id {
			return WALRecord{}, corruptf("delete id %d overflows int", id)
		}
	default:
		return WALRecord{}, corruptf("unknown WAL op %d", op)
	}
	if err := cur.done(); err != nil {
		return WALRecord{}, err
	}
	return rec, nil
}

// ReplayWAL streams the intact prefix of the log at path through apply and
// returns the byte offset of the end of the last intact record. torn
// reports whether trailing bytes past that offset failed validation — the
// expected signature of a crash mid-append — in which case the opener
// truncates the file to valid and recovery proceeds; a missing file replays
// as empty. An error from apply aborts the replay and is returned as is.
func ReplayWAL(path string, apply func(WALRecord) error) (valid int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	var scratch [8]byte
	for {
		// Record header: any failure from here to the payload CRC check
		// is a torn or corrupt tail, not an error — recovery keeps the
		// intact prefix.
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return valid, err != io.EOF, nil
		}
		payloadLen, sum := getU32(scratch[:]), getU32(scratch[4:])
		if payloadLen == 0 || payloadLen > maxWALPayload {
			return valid, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, true, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return valid, true, nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return valid, true, nil
		}
		if err := apply(rec); err != nil {
			return valid, false, err
		}
		valid += int64(8 + payloadLen)
	}
}

// OpenWAL opens (creating if absent) the log at path for appending,
// truncating it to size first — the opener passes the valid offset from
// ReplayWAL, which discards a torn tail.
func OpenWAL(path string, size int64, policy SyncPolicy) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, policy: policy}, nil
}

// Append frames and writes one record with a single write syscall, then
// syncs according to the policy. An acknowledged Append is at least in the
// OS page cache; with the default policy it is on disk.
func (w *WAL) Append(rec WALRecord) error {
	buf, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.since++
	if w.policy.Every > 0 && w.since >= w.policy.Every {
		return w.Sync()
	}
	return nil
}

// AppendBatch frames all records into one buffer and writes it with a
// single write syscall, counting every record toward the sync policy but
// syncing at most once — the amortization behind the bulk-ingest path. A
// crash can tear only the final record of the batch; earlier members of the
// write remain individually framed and replayable.
func (w *WAL) AppendBatch(records []WALRecord) error {
	if len(records) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range records {
		frame, err := encodeWALRecord(rec)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.since += len(records)
	if w.policy.Every > 0 && w.since >= w.policy.Every {
		return w.Sync()
	}
	return nil
}

// AppendCtx is Append for traced writes: when ctx carries a span, the
// record lands under a "wal.append" span (payload bytes attached) with a
// "wal.fsync" child if the sync policy fires on this record. An untraced
// context takes the plain path unchanged.
func (w *WAL) AppendCtx(ctx context.Context, rec WALRecord) error {
	sp := trace.FromContext(ctx)
	if sp == nil {
		return w.Append(rec)
	}
	asp := sp.Child("wal.append")
	defer asp.End()
	buf, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	asp.SetInt("bytes", int64(len(buf)))
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.since++
	return w.maybeSyncTraced(asp)
}

// AppendBatchCtx is AppendBatch for traced writes, spanned like AppendCtx
// with the record count attached.
func (w *WAL) AppendBatchCtx(ctx context.Context, records []WALRecord) error {
	sp := trace.FromContext(ctx)
	if sp == nil {
		return w.AppendBatch(records)
	}
	if len(records) == 0 {
		return nil
	}
	asp := sp.Child("wal.append")
	defer asp.End()
	var buf []byte
	for _, rec := range records {
		frame, err := encodeWALRecord(rec)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	asp.SetInt("records", int64(len(records)))
	asp.SetInt("bytes", int64(len(buf)))
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	w.since += len(records)
	return w.maybeSyncTraced(asp)
}

// maybeSyncTraced applies the sync policy under a "wal.fsync" span.
func (w *WAL) maybeSyncTraced(asp *trace.Span) error {
	if w.policy.Every <= 0 || w.since < w.policy.Every {
		return nil
	}
	fsp := asp.Child("wal.fsync")
	defer fsp.End()
	return w.Sync()
}

// Sync forces the log to stable storage.
func (w *WAL) Sync() error {
	w.since = 0
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: wal sync: %w", err)
	}
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
