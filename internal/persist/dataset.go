package persist

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
)

// Dataset binary format: the same framing discipline as snapshots (magic,
// version, checksummed header, checksummed point rows, trailer) for bare
// named point sets with no engine state. internal/dataset builds its binary
// import/export on these two functions, replacing its earlier ad-hoc gob
// encoding.
//
// Layout (little-endian):
//
//	magic   [8]byte  "RKNNDATA"
//	version u32      = 1
//	header  u32 len | u16 name length + bytes, u32 dim, u64 count | u32 CRC
//	points  count×dim f64 rows | u32 CRC
//	trailer u32      "RKNE"

// DataMagic returns the dataset file magic, letting readers sniff the
// format before committing to a decoder.
func DataMagic() [8]byte { return dataMagic }

// WriteDataset encodes a named point set. Points must share one dimension.
func WriteDataset(w io.Writer, name string, points [][]float64) error {
	if len(name) > maxNameLen {
		return fmt.Errorf("persist: dataset name of %d bytes exceeds cap %d", len(name), maxNameLen)
	}
	if len(points) == 0 {
		return fmt.Errorf("persist: dataset has no points")
	}
	dim := len(points[0])
	if dim < 1 || dim > maxDim {
		return fmt.Errorf("persist: dimension %d out of range [1, %d]", dim, maxDim)
	}
	bw := bufio.NewWriterSize(w, 1<<16)

	var head []byte
	head = append(head, dataMagic[:]...)
	head = appendU32(head, formatVersion)

	var h []byte
	h = append(h, byte(len(name)), byte(len(name)>>8))
	h = append(h, name...)
	h = appendU32(h, uint32(dim))
	h = appendU64(h, uint64(len(points)))

	head = appendU32(head, uint32(len(h)))
	head = append(head, h...)
	head = appendU32(head, crc32.Checksum(h, crcTable))
	if _, err := bw.Write(head); err != nil {
		return err
	}
	if err := writePointsSection(bw, points, dim); err != nil {
		return err
	}
	var tail []byte
	tail = appendU32(tail, trailerMagic)
	if _, err := bw.Write(tail); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDataset decodes a point set written by WriteDataset, with the same
// no-panic, bounded-allocation guarantees as ReadSnapshot.
func ReadDataset(r io.Reader) (name string, points [][]float64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var scratch [8]byte

	if err := readFull(br, scratch[:8]); err != nil {
		return "", nil, err
	}
	if [8]byte(scratch[:8]) != dataMagic {
		return "", nil, corruptf("bad dataset magic")
	}
	version, err := readU32(br, scratch[:])
	if err != nil {
		return "", nil, err
	}
	if version != formatVersion {
		return "", nil, corruptf("unsupported dataset format version %d", version)
	}

	headerLen, err := readU32(br, scratch[:])
	if err != nil {
		return "", nil, err
	}
	if headerLen > maxHeaderLen {
		return "", nil, corruptf("header length %d exceeds cap", headerLen)
	}
	h := make([]byte, headerLen)
	if err := readFull(br, h); err != nil {
		return "", nil, err
	}
	sum, err := readU32(br, scratch[:])
	if err != nil {
		return "", nil, err
	}
	if sum != crc32.Checksum(h, crcTable) {
		return "", nil, corruptf("header checksum mismatch")
	}

	cur := &byteCursor{b: h}
	nl, err := cur.take(2)
	if err != nil {
		return "", nil, err
	}
	nameLen := int(nl[0]) | int(nl[1])<<8
	if nameLen > maxNameLen {
		return "", nil, corruptf("dataset name length %d exceeds cap", nameLen)
	}
	nameBytes, err := cur.take(nameLen)
	if err != nil {
		return "", nil, err
	}
	name = string(nameBytes)
	dim, err := cur.u32()
	if err != nil {
		return "", nil, err
	}
	if dim < 1 || dim > maxDim {
		return "", nil, corruptf("dimension %d out of range", dim)
	}
	count, err := cur.u64()
	if err != nil {
		return "", nil, err
	}
	if count == 0 {
		return "", nil, corruptf("dataset with zero points")
	}
	if err := cur.done(); err != nil {
		return "", nil, err
	}

	points, err = readPointsSection(br, count, int(dim))
	if err != nil {
		return "", nil, err
	}
	tm, err := readU32(br, scratch[:])
	if err != nil {
		return "", nil, err
	}
	if tm != trailerMagic {
		return "", nil, corruptf("bad trailer magic")
	}
	return name, points, nil
}
