package persist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store is a durable home for one engine: a directory holding the latest
// snapshot generation plus the write-ahead log of mutations applied since
// that snapshot was cut. File layout:
//
//	snap-<gen>.rknn   snapshot of generation <gen> (16 hex digits)
//	wal-<gen>.log     mutations applied after snapshot <gen>
//
// Snapshots are written to a temporary file, fsynced, and renamed into
// place, then the directory is fsynced — a crash at any point leaves
// either the old or the new generation fully intact, never a partial file
// under a live name. Cutting generation g+1 deletes generation g's files;
// recovery loads the newest readable snapshot and replays its log,
// discarding a torn final record.
//
// A Store assumes a single process: it does not lock the directory.
type Store struct {
	dir     string
	policy  SyncPolicy
	gen     uint64
	nextGen uint64
	wal     *WAL
}

// ErrNoStore reports that a directory holds no readable snapshot.
var ErrNoStore = errors.New("persist: no readable snapshot in store directory")

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.rknn", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", gen))
}

// parseGen extracts the generation from a store file name, or ok=false.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexa := name[len(prefix) : len(name)-len(suffix)]
	if len(hexa) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Exists reports whether dir contains at least one snapshot file (readable
// or not); Open decides which one actually loads.
func Exists(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if _, ok := parseGen(e.Name(), "snap-", ".rknn"); ok {
			return true
		}
	}
	return false
}

// Create initializes a new store in dir (created if missing) with snap as
// generation 1 and an empty log. It refuses to overwrite an existing store.
func Create(dir string, snap *Snapshot, policy SyncPolicy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("persist: store already exists in %s", dir)
	}
	if err := writeSnapshotFile(dir, 1, snap); err != nil {
		return nil, err
	}
	wal, err := OpenWAL(walPath(dir, 1), 0, policy)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, policy: policy, gen: 1, nextGen: 2, wal: wal}, nil
}

// Recovery describes what Open found on disk.
type Recovery struct {
	// Gen is the snapshot generation recovered.
	Gen uint64
	// WALRecords is the number of intact log records replayed on top.
	WALRecords int
	// WALTorn reports that the log ended in a torn or corrupt record,
	// which was discarded (the expected signature of a crash mid-append).
	WALTorn bool
	// SkippedSnapshots lists newer snapshot files that failed to load and
	// were passed over for an older intact generation. Each is renamed to
	// a ".corrupt" suffix so generation cleanup can never delete the
	// evidence; new generations are numbered past them.
	SkippedSnapshots []string
}

// Open recovers the store in dir: it loads the newest readable snapshot,
// replays the intact prefix of that generation's log through apply (in
// append order), truncates any torn tail, and leaves the store ready for
// further appends. Stale temporary files and superseded generations are
// cleaned up. Returns ErrNoStore when no snapshot loads.
func Open(dir string, policy SyncPolicy, apply func(WALRecord) error) (*Store, *Snapshot, Recovery, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, Recovery{}, err
	}
	var gens []uint64
	maxSeen := uint64(0)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // stale partial write
			continue
		}
		if gen, ok := parseGen(name, "snap-", ".rknn"); ok {
			gens = append(gens, gen)
			if gen > maxSeen {
				maxSeen = gen
			}
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })

	var (
		snap    *Snapshot
		rec     Recovery
		current uint64
	)
	var skipped []uint64
	for _, gen := range gens {
		f, err := os.Open(snapPath(dir, gen))
		if err != nil {
			skipped = append(skipped, gen)
			continue
		}
		s, err := ReadSnapshot(f)
		f.Close()
		if err != nil {
			skipped = append(skipped, gen)
			continue
		}
		snap, current = s, gen
		break
	}
	if snap == nil {
		// Nothing readable: leave every file untouched (so the store
		// still registers via Exists and cannot be bootstrapped over)
		// and report the failures.
		for _, gen := range skipped {
			rec.SkippedSnapshots = append(rec.SkippedSnapshots, snapPath(dir, gen))
		}
		return nil, nil, rec, ErrNoStore
	}
	rec.Gen = current
	for _, gen := range skipped {
		// Set each unreadable newer file aside under a name generation
		// cleanup never touches, so the forensic evidence outlives later
		// Cuts.
		name := snapPath(dir, gen)
		if err := os.Rename(name, name+".corrupt"); err == nil {
			name += ".corrupt"
		}
		rec.SkippedSnapshots = append(rec.SkippedSnapshots, name)
	}

	valid, torn, err := ReplayWAL(walPath(dir, current), func(r WALRecord) error {
		rec.WALRecords++
		return apply(r)
	})
	if err != nil {
		return nil, nil, rec, err
	}
	rec.WALTorn = torn

	wal, err := OpenWAL(walPath(dir, current), valid, policy)
	if err != nil {
		return nil, nil, rec, err
	}
	st := &Store{dir: dir, policy: policy, gen: current, nextGen: maxSeen + 1, wal: wal}
	st.removeGenerationsBelow(current)
	return st, snap, rec, nil
}

// Append logs one mutation.
func (st *Store) Append(r WALRecord) error { return st.wal.Append(r) }

// AppendBatch logs many mutations with one write and at most one sync.
func (st *Store) AppendBatch(records []WALRecord) error { return st.wal.AppendBatch(records) }

// AppendCtx logs one mutation, spanned under ctx's trace when present.
func (st *Store) AppendCtx(ctx context.Context, r WALRecord) error {
	return st.wal.AppendCtx(ctx, r)
}

// AppendBatchCtx logs many mutations with one write and at most one sync,
// spanned under ctx's trace when present.
func (st *Store) AppendBatchCtx(ctx context.Context, records []WALRecord) error {
	return st.wal.AppendBatchCtx(ctx, records)
}

// Sync forces the log to stable storage regardless of policy.
func (st *Store) Sync() error { return st.wal.Sync() }

// Gen returns the current snapshot generation.
func (st *Store) Gen() uint64 { return st.gen }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Cut atomically installs snap as the next generation and starts a fresh
// log, then retires the previous generation's files. The caller must pass
// a snapshot reflecting every mutation it has appended (the facade holds
// its writer lock across capture and Cut).
//
// The new log is opened BEFORE the new snapshot is renamed into place: once
// snap-(g+1) exists, Open prefers it and replays wal-(g+1), so installing
// the snapshot while unable to log to the new generation would silently
// orphan every later write still going to wal-g. A failed Cut must leave no
// trace of generation g+1.
func (st *Store) Cut(snap *Snapshot) error {
	gen := st.nextGen
	wal, err := OpenWAL(walPath(st.dir, gen), 0, st.policy)
	if err != nil {
		return err
	}
	if err := writeSnapshotFile(st.dir, gen, snap); err != nil {
		wal.Close()
		os.Remove(walPath(st.dir, gen))
		return err
	}
	oldWAL := st.wal
	st.gen, st.nextGen, st.wal = gen, gen+1, wal
	oldWAL.Close()
	st.removeGenerationsBelow(gen)
	return nil
}

// removeGenerationsBelow deletes snapshot and log files older than keep.
// Best-effort: a leftover file is re-collected at the next Open or Cut.
func (st *Store) removeGenerationsBelow(keep uint64) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if gen, ok := parseGen(name, "snap-", ".rknn"); ok && gen < keep {
			os.Remove(filepath.Join(st.dir, name))
		}
		if gen, ok := parseGen(name, "wal-", ".log"); ok && gen < keep {
			os.Remove(filepath.Join(st.dir, name))
		}
	}
}

// Close syncs and closes the log. The store must not be used afterwards.
func (st *Store) Close() error {
	if st.wal == nil {
		return nil
	}
	err := st.wal.Close()
	st.wal = nil
	return err
}

// writeSnapshotFile writes snap to dir under generation gen with the
// temp-file + fsync + rename + directory-fsync discipline.
func writeSnapshotFile(dir string, gen uint64, snap *Snapshot) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if err := WriteSnapshot(tmp, snap); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, snapPath(dir, gen)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Sync failures are ignored: several filesystems reject directory
// syncs, and durability then falls back to the filesystem's own ordering.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
