package persist

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/vecmath"
)

func testSnapshot() *Snapshot {
	return &Snapshot{
		MetricID:    vecmath.MetricIDMinkowski,
		MetricParam: 2.5,
		Backend:     "covertree",
		Plus:        true,
		Scale:       8.25,
		Margin:      0.5,
		Dim:         3,
		Points: [][]float64{
			{1, 2, 3},
			{4, 5, 6},
			{7, 8, math.Pi},
			{-1, 0, 1e-300},
		},
		Deleted: []int{1, 3},
		Native:  []byte("opaque backend blob"),
	}
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := ReadSnapshot(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRoundTripAdaptiveNoNative(t *testing.T) {
	want := testSnapshot()
	want.Adaptive = true
	want.Scale = 0
	want.Native = nil
	want.Deleted = nil
	got, err := ReadSnapshot(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSnapshotDetectsCorruption flips every byte of a valid snapshot in
// turn; each mutated stream must fail to decode (every region of the file
// is covered by magic, version, a checksum, or the trailer) — or, if the
// flip lands in a checksum field itself, still fail because the checksum no
// longer matches.
func TestSnapshotDetectsCorruption(t *testing.T) {
	blob := encode(t, testSnapshot())
	for i := range blob {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x40
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d of %d decoded successfully", i, len(blob))
		}
	}
}

func TestSnapshotDetectsTruncation(t *testing.T) {
	blob := encode(t, testSnapshot())
	for cut := 0; cut < len(blob); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(blob[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestWriteSnapshotRejectsInvalid(t *testing.T) {
	cases := map[string]func(*Snapshot){
		"no metric":        func(s *Snapshot) { s.MetricID = vecmath.MetricIDInvalid },
		"empty backend":    func(s *Snapshot) { s.Backend = "" },
		"zero dim":         func(s *Snapshot) { s.Dim = 0 },
		"huge dim":         func(s *Snapshot) { s.Dim = maxDim + 1 },
		"no points":        func(s *Snapshot) { s.Points = nil },
		"too many deletes": func(s *Snapshot) { s.Deleted = []int{0, 1, 2, 3, 0} },
		"ragged point":     func(s *Snapshot) { s.Points[1] = []float64{1} },
	}
	for name, mutate := range cases {
		s := testSnapshot()
		mutate(s)
		if err := WriteSnapshot(&bytes.Buffer{}, s); err == nil {
			t.Errorf("%s: WriteSnapshot succeeded", name)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 4}, {-5, 1e12}}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, "unit-test", points); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	name, got, err := ReadDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	if name != "unit-test" || !reflect.DeepEqual(got, points) {
		t.Errorf("round trip = %q, %v", name, got)
	}

	for cut := 0; cut < buf.Len(); cut++ {
		if _, _, err := ReadDataset(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("dataset truncation at %d decoded", cut)
		}
	}
}
