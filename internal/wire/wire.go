// Package wire is the compact binary framing of the scatter-gather fan-out
// protocol: the encoding a coordinator speaks to `rknn shard-serve` daemons
// when the JSON API's encode/decode cost would dominate loopback fan-out
// traffic. It is a single POST endpoint's request/response format
// (internal/server's /v1/binary), deliberately tiny: one version byte, one
// op byte, then fixed-width little-endian fields — the same byte
// conventions as internal/persist, so a hex dump of either reads alike.
//
// Frame layout (all integers little-endian):
//
//	request  := version u8, op u8, payload
//	response := version u8, status u8, payload
//
//	op 1 (rknn)      flags u8 (bit0 byID), k u32, id u64 | vec
//	op 2 (knn batch) count u32, { k u32, skip i64, vec } × count
//	op 3 (points)    count u32, id u64 × count
//
//	status 0 (ok)    op-specific payload (below)
//	status ≠0        error: code is the status byte, msg u16-len + bytes
//
//	rknn ok      n u32, id u64 × n, stats (7 × u64, omega f64-bits)
//	knn ok       count u32, { n u32, (dist f64-bits, id u64) × n } × count
//	points ok    count u32, { present u8, vec if present } × count
//
//	vec := enc u8 (0 float64, 1 float32), dim u32, coords
//
// Vectors use a dual encoding: the encoder emits float32 coordinates only
// when every coordinate round-trips through float32 losslessly, and falls
// back to float64 otherwise. The engine computes in float64 end to end, so
// an unconditional float32 wire format would break the metamorphic
// byte-identity guarantee across transports; the flag byte keeps the
// compact form for data that genuinely is float32 while never rounding
// anything. Result rows carry float64 distances for the same reason: the
// coordinator's k-way merge orders by (distance, ID) and must see exactly
// the bits the shard computed.
//
// Decoders are fuzzed (FuzzDecodeRequest/FuzzDecodeResponse): every count
// is validated against the remaining frame length before allocation, and
// malformed input yields an error, never a panic.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ContentType is the media type of both request and response frames.
// internal/server rejects /v1/binary posts with any other Content-Type
// (415) before touching the decoder.
const ContentType = "application/x-rknn-frame"

// Version is the only frame version in existence. A version bump means the
// byte layout changed incompatibly; decoders reject anything else.
const Version = 1

// Op selects the operation of a request frame.
type Op uint8

// Request operations. OpRkNN answers one reverse-kNN query (by local
// member ID or by point) with the shard's work counters; OpKNNBatch
// answers many forward-kNN probes, each with an optional excluded member,
// against one pinned snapshot; OpPoints resolves member IDs to
// coordinates.
const (
	OpRkNN     Op = 1
	OpKNNBatch Op = 2
	OpPoints   Op = 3
)

// ErrCode classifies an error response so the coordinator can map remote
// failures onto the same sentinel errors the in-process engine returns.
type ErrCode uint8

// Error codes carried in the response status byte.
const (
	ErrBadRequest  ErrCode = 1 // invalid arguments (dimension, rank, range)
	ErrDeleted     ErrCode = 2 // member query anchored at a tombstoned point
	ErrUnsupported ErrCode = 3 // the engine lacks the required surface
	ErrInternal    ErrCode = 4 // anything else
)

// RemoteError is a decoded error response: the shard answered, but with an
// application-level failure.
type RemoteError struct {
	Code ErrCode
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

// Stats mirrors the engine's per-query work counters on the wire. The
// package cannot import the repro facade (the facade's remote client
// imports this package), so the fields are restated here; the coordinator
// converts.
type Stats struct {
	ScanDepth     int
	FilterSize    int
	Excluded      int
	LazyAccepts   int
	LazyRejects   int
	Verified      int
	DistanceComps int64
	Omega         float64
}

// Neighbor is one (distance, local ID) result row of a forward-kNN probe.
type Neighbor struct {
	ID   int
	Dist float64
}

// KNNQuery is one forward-kNN probe of a batch: the query point, the rank,
// and an optional local member ID to exclude (-1 for none). The explicit
// skip exists because "fetch k+1 and drop the member" is not equivalent
// under duplicate-point distance ties — the backend's tie-breaking could
// settle the truncation differently than in-process self-exclusion does,
// breaking byte-identity.
type KNNQuery struct {
	Point []float64
	K     int
	Skip  int
}

// Request is a decoded request frame; exactly the field named by Op is
// populated.
type Request struct {
	Op Op

	// OpRkNN: ByID selects the member form (ID is a local member ID);
	// otherwise Point is the query point. K is the reverse-neighbor rank.
	ByID  bool
	ID    int
	Point []float64
	K     int

	// OpKNNBatch
	KNN []KNNQuery

	// OpPoints
	IDs []int
}

// Vector encodings: the enc byte of a vec.
const (
	vecF64 = 0
	vecF32 = 1
)

// statsSize is the fixed byte length of an encoded stats block.
const statsSize = 8 * 8

const rknnFlagByID = 1

// --- encoding ---

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendVec encodes one vector with the dual float32/float64 encoding.
func AppendVec(dst []byte, p []float64) []byte {
	enc := byte(vecF32)
	for _, v := range p {
		if float64(float32(v)) != v && !(math.IsNaN(v) && math.IsNaN(float64(float32(v)))) {
			enc = vecF64
			break
		}
	}
	dst = append(dst, enc)
	dst = appendU32(dst, uint32(len(p)))
	if enc == vecF32 {
		for _, v := range p {
			dst = appendU32(dst, math.Float32bits(float32(v)))
		}
		return dst
	}
	for _, v := range p {
		dst = appendU64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendRkNNIDRequest encodes an OpRkNN request anchored at local member id.
func AppendRkNNIDRequest(dst []byte, id, k int) []byte {
	dst = append(dst, Version, byte(OpRkNN), rknnFlagByID)
	dst = appendU32(dst, uint32(k))
	return appendU64(dst, uint64(id))
}

// AppendRkNNPointRequest encodes an OpRkNN request for an arbitrary point.
func AppendRkNNPointRequest(dst []byte, q []float64, k int) []byte {
	dst = append(dst, Version, byte(OpRkNN), 0)
	dst = appendU32(dst, uint32(k))
	return AppendVec(dst, q)
}

// AppendKNNBatchRequest encodes an OpKNNBatch request.
func AppendKNNBatchRequest(dst []byte, qs []KNNQuery) []byte {
	dst = append(dst, Version, byte(OpKNNBatch))
	dst = appendU32(dst, uint32(len(qs)))
	for _, q := range qs {
		dst = appendU32(dst, uint32(q.K))
		dst = appendU64(dst, uint64(int64(q.Skip)))
		dst = AppendVec(dst, q.Point)
	}
	return dst
}

// AppendPointsRequest encodes an OpPoints request.
func AppendPointsRequest(dst []byte, ids []int) []byte {
	dst = append(dst, Version, byte(OpPoints))
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	return dst
}

// AppendError encodes an error response.
func AppendError(dst []byte, code ErrCode, msg string) []byte {
	if code == 0 {
		code = ErrInternal
	}
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	dst = append(dst, Version, byte(code))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// AppendRkNNResponse encodes a successful OpRkNN response.
func AppendRkNNResponse(dst []byte, ids []int, st Stats) []byte {
	dst = append(dst, Version, 0)
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	dst = appendU64(dst, uint64(st.ScanDepth))
	dst = appendU64(dst, uint64(st.FilterSize))
	dst = appendU64(dst, uint64(st.Excluded))
	dst = appendU64(dst, uint64(st.LazyAccepts))
	dst = appendU64(dst, uint64(st.LazyRejects))
	dst = appendU64(dst, uint64(st.Verified))
	dst = appendU64(dst, uint64(st.DistanceComps))
	return appendU64(dst, math.Float64bits(st.Omega))
}

// AppendKNNBatchResponse encodes a successful OpKNNBatch response.
func AppendKNNBatchResponse(dst []byte, lists [][]Neighbor) []byte {
	dst = append(dst, Version, 0)
	dst = appendU32(dst, uint32(len(lists)))
	for _, nn := range lists {
		dst = appendU32(dst, uint32(len(nn)))
		for _, nb := range nn {
			dst = appendU64(dst, math.Float64bits(nb.Dist))
			dst = appendU64(dst, uint64(nb.ID))
		}
	}
	return dst
}

// AppendPointsResponse encodes a successful OpPoints response. A nil row
// marks an ID with no live point (deleted, or never applied).
func AppendPointsResponse(dst []byte, rows [][]float64) []byte {
	dst = append(dst, Version, 0)
	dst = appendU32(dst, uint32(len(rows)))
	for _, p := range rows {
		if p == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = AppendVec(dst, p)
	}
	return dst
}

// --- decoding ---

// reader consumes a frame with error-latching bounds checks: after the
// first failure every further read returns zero values, and the caller
// checks err once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail("wire: truncated frame at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.remaining() < 2 {
		r.fail("wire: truncated frame at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail("wire: truncated frame at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail("wire: truncated frame at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// id reads a non-negative integer ID.
func (r *reader) id() int {
	v := r.u64()
	if v > math.MaxInt32 {
		r.fail("wire: id %d out of range", v)
		return 0
	}
	return int(v)
}

// count reads a u32 element count and validates it against the remaining
// frame length, given the minimal encoded size of one element — so a
// hostile count cannot trigger a huge allocation.
func (r *reader) count(minElemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minElemSize) > int64(r.remaining()) {
		r.fail("wire: count %d exceeds frame", n)
		return 0
	}
	return int(n)
}

// vec decodes one dual-encoded vector.
func (r *reader) vec() []float64 {
	enc := r.u8()
	size := 8
	switch enc {
	case vecF64:
	case vecF32:
		size = 4
	default:
		r.fail("wire: unknown vector encoding %d", enc)
		return nil
	}
	dim := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(dim)*int64(size) > int64(r.remaining()) {
		r.fail("wire: vector dimension %d exceeds frame", dim)
		return nil
	}
	p := make([]float64, dim)
	if enc == vecF32 {
		for i := range p {
			p[i] = float64(math.Float32frombits(r.u32()))
		}
		return p
	}
	for i := range p {
		p[i] = r.f64()
	}
	return p
}

// header consumes and validates the two-byte frame header, returning the
// second byte (op or status).
func (r *reader) header() byte {
	if v := r.u8(); r.err == nil && v != Version {
		r.fail("wire: unsupported frame version %d", v)
	}
	return r.u8()
}

// done rejects trailing garbage: a valid frame is consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after frame", r.remaining())
	}
	return nil
}

// DecodeRequest decodes a request frame.
func DecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	op := Op(r.header())
	req := &Request{Op: op}
	switch op {
	case OpRkNN:
		flags := r.u8()
		req.K = int(r.u32())
		if flags&rknnFlagByID != 0 {
			req.ByID = true
			req.ID = r.id()
		} else {
			req.Point = r.vec()
		}
	case OpKNNBatch:
		n := r.count(1 + 4 + 8 + 4) // k, skip, minimal empty vec
		qs := make([]KNNQuery, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			k := int(r.u32())
			skip := int64(r.u64())
			if skip < -1 || skip > math.MaxInt32 {
				r.fail("wire: skip %d out of range", skip)
				break
			}
			qs = append(qs, KNNQuery{K: k, Skip: int(skip), Point: r.vec()})
		}
		req.KNN = qs
	case OpPoints:
		n := r.count(8)
		ids := make([]int, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ids = append(ids, r.id())
		}
		req.IDs = ids
	default:
		if r.err == nil {
			r.fail("wire: unknown op %d", op)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// respPayload validates a response header, returning the reader positioned
// at the payload, or the decoded RemoteError.
func respPayload(b []byte) (*reader, error) {
	r := &reader{b: b}
	status := r.header()
	if r.err != nil {
		return nil, r.err
	}
	if status == 0 {
		return r, nil
	}
	n := int(r.u16())
	if r.err != nil || n > r.remaining() {
		return nil, fmt.Errorf("wire: truncated error message")
	}
	msg := string(r.b[r.off : r.off+n])
	r.off += n
	if err := r.done(); err != nil {
		return nil, err
	}
	return nil, &RemoteError{Code: ErrCode(status), Msg: msg}
}

// DecodeRkNNResponse decodes an OpRkNN response. An application-level
// failure surfaces as *RemoteError.
func DecodeRkNNResponse(b []byte) ([]int, Stats, error) {
	r, err := respPayload(b)
	if err != nil {
		return nil, Stats{}, err
	}
	n := r.count(8)
	ids := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		ids = append(ids, r.id())
	}
	st := Stats{
		ScanDepth:     int(r.u64()),
		FilterSize:    int(r.u64()),
		Excluded:      int(r.u64()),
		LazyAccepts:   int(r.u64()),
		LazyRejects:   int(r.u64()),
		Verified:      int(r.u64()),
		DistanceComps: int64(r.u64()),
		Omega:         r.f64(),
	}
	if err := r.done(); err != nil {
		return nil, Stats{}, err
	}
	return ids, st, nil
}

// DecodeKNNBatchResponse decodes an OpKNNBatch response.
func DecodeKNNBatchResponse(b []byte) ([][]Neighbor, error) {
	r, err := respPayload(b)
	if err != nil {
		return nil, err
	}
	n := r.count(4)
	lists := make([][]Neighbor, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m := r.count(16)
		nn := make([]Neighbor, 0, m)
		for j := 0; j < m && r.err == nil; j++ {
			d := r.f64()
			nn = append(nn, Neighbor{Dist: d, ID: r.id()})
		}
		lists = append(lists, nn)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return lists, nil
}

// DecodePointsResponse decodes an OpPoints response; absent rows are nil.
func DecodePointsResponse(b []byte) ([][]float64, error) {
	r, err := respPayload(b)
	if err != nil {
		return nil, err
	}
	n := r.count(1)
	rows := make([][]float64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		switch r.u8() {
		case 0:
			rows = append(rows, nil)
		case 1:
			rows = append(rows, r.vec())
		default:
			r.fail("wire: invalid presence byte")
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rows, nil
}
