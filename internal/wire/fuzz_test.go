package wire

import "testing"

// The decoders face bytes from the network; they must reject malformed
// frames with an error, never a panic or an unbounded allocation.

func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRkNNIDRequest(nil, 3, 5))
	f.Add(AppendRkNNPointRequest(nil, []float64{1, 2.5}, 2))
	f.Add(AppendKNNBatchRequest(nil, []KNNQuery{{Point: []float64{0.5}, K: 3, Skip: -1}}))
	f.Add(AppendPointsRequest(nil, []int{0, 1, 2}))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err == nil && req == nil {
			t.Fatal("nil request without error")
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendRkNNResponse(nil, []int{1, 2}, Stats{Omega: 0.5}))
	f.Add(AppendKNNBatchResponse(nil, [][]Neighbor{{{ID: 1, Dist: 0.25}}}))
	f.Add(AppendPointsResponse(nil, [][]float64{{1, 2}, nil}))
	f.Add(AppendError(nil, ErrDeleted, "gone"))
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeRkNNResponse(b)
		DecodeKNNBatchResponse(b)
		DecodePointsResponse(b)
	})
}
