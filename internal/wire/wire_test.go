package wire

import (
	"math"
	"reflect"
	"testing"
)

func TestRkNNRequestRoundTrip(t *testing.T) {
	b := AppendRkNNIDRequest(nil, 42, 7)
	req, err := DecodeRequest(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Op != OpRkNN || !req.ByID || req.ID != 42 || req.K != 7 {
		t.Fatalf("round trip mismatch: %+v", req)
	}

	q := []float64{1.5, -2.25, 0, math.Pi}
	b = AppendRkNNPointRequest(nil, q, 3)
	req, err = DecodeRequest(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Op != OpRkNN || req.ByID || req.K != 3 || !reflect.DeepEqual(req.Point, q) {
		t.Fatalf("round trip mismatch: %+v", req)
	}
}

func TestVecEncodingExactness(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3},                   // lossless float32
		{0.5, -0.25, 1024},          // lossless float32
		{math.Pi, 0.1},              // needs float64
		{math.Copysign(0, -1), 0},   // signed zero survives float32
		{1e300, -1e-300},            // out of float32 range
		{math.Inf(1), math.Inf(-1)}, // infinities survive float32
		{},                          // empty
		{math.Nextafter(1, 2)},      // 1+ulp needs float64
	}
	for _, q := range cases {
		b := AppendVec(nil, q)
		r := &reader{b: b}
		got := r.vec()
		if err := r.done(); err != nil {
			t.Fatalf("vec %v: %v", q, err)
		}
		if len(got) != len(q) {
			t.Fatalf("vec %v: got %v", q, got)
		}
		for i := range q {
			if math.Float64bits(got[i]) != math.Float64bits(q[i]) {
				t.Fatalf("vec %v: coordinate %d not bit-identical: got %v", q, i, got[i])
			}
		}
	}
}

func TestKNNBatchRoundTrip(t *testing.T) {
	qs := []KNNQuery{
		{Point: []float64{1, 2}, K: 5, Skip: -1},
		{Point: []float64{0.1, 0.2}, K: 1, Skip: 17},
	}
	req, err := DecodeRequest(AppendKNNBatchRequest(nil, qs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Op != OpKNNBatch || !reflect.DeepEqual(req.KNN, qs) {
		t.Fatalf("round trip mismatch: %+v", req.KNN)
	}

	lists := [][]Neighbor{
		{{ID: 3, Dist: 0.5}, {ID: 9, Dist: 1.25}},
		{},
	}
	got, err := DecodeKNNBatchResponse(AppendKNNBatchResponse(nil, lists))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], lists[0]) || len(got[1]) != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPointsRoundTrip(t *testing.T) {
	req, err := DecodeRequest(AppendPointsRequest(nil, []int{0, 5, 2}))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Op != OpPoints || !reflect.DeepEqual(req.IDs, []int{0, 5, 2}) {
		t.Fatalf("round trip mismatch: %+v", req)
	}

	rows := [][]float64{{1, 2}, nil, {math.Pi}}
	got, err := DecodePointsResponse(AppendPointsResponse(nil, rows))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRkNNResponseRoundTrip(t *testing.T) {
	st := Stats{
		ScanDepth: 10, FilterSize: 4, Excluded: 2, LazyAccepts: 1,
		LazyRejects: 3, Verified: 4, DistanceComps: 123, Omega: 0.75,
	}
	ids, got, err := DecodeRkNNResponse(AppendRkNNResponse(nil, []int{7, 1, 9}, st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(ids, []int{7, 1, 9}) || got != st {
		t.Fatalf("round trip mismatch: %v %+v", ids, got)
	}

	// Empty result with an infinite bound — the empty-shard case JSON
	// cannot represent.
	st = Stats{Omega: math.Inf(1)}
	ids, got, err = DecodeRkNNResponse(AppendRkNNResponse(nil, nil, st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(ids) != 0 || !math.IsInf(got.Omega, 1) {
		t.Fatalf("round trip mismatch: %v %+v", ids, got)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	b := AppendError(nil, ErrDeleted, "query id is deleted")
	_, _, err := DecodeRkNNResponse(b)
	re, ok := err.(*RemoteError)
	if !ok || re.Code != ErrDeleted || re.Msg != "query id is deleted" {
		t.Fatalf("want RemoteError(deleted), got %#v", err)
	}
	if _, err := DecodeKNNBatchResponse(b); err == nil {
		t.Fatal("error frame must fail every response decoder")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {9, byte(OpRkNN), 0, 1, 0, 0, 0},
		"unknown op":       {Version, 99},
		"truncated rknn":   AppendRkNNIDRequest(nil, 1, 2)[:5],
		"trailing bytes":   append(AppendPointsRequest(nil, []int{1}), 0xFF),
		"huge count":       {Version, byte(OpPoints), 0xFF, 0xFF, 0xFF, 0xFF},
		"huge dim":         {Version, byte(OpRkNN), 0, 1, 0, 0, 0, vecF64, 0xFF, 0xFF, 0xFF, 0xFF},
		"bad vec encoding": {Version, byte(OpRkNN), 0, 1, 0, 0, 0, 7, 0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := DecodeRequest(b); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	if _, _, err := DecodeRkNNResponse([]byte{Version, 0, 1, 0, 0, 0}); err == nil {
		t.Error("truncated rknn response: expected decode error")
	}
	if _, err := DecodePointsResponse([]byte{Version, 0, 1, 0, 0, 0, 9}); err == nil {
		t.Error("bad presence byte: expected decode error")
	}
	if _, _, err := DecodeRkNNResponse([]byte{Version, 2, 5, 0, 'h', 'i'}); err == nil {
		t.Error("truncated error message: expected decode error")
	}
}
