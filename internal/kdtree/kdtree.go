// Package kdtree implements a bucketed k-d tree with incremental
// nearest-neighbor traversal, batch kNN and range queries.
//
// The k-d tree serves as an additional low-dimensional back-end for RDT's
// forward search (the ablation benches compare it against the cover tree and
// sequential scan). It requires a metric that can lower-bound distances to
// axis-aligned boxes (vecmath.BoxDistancer), so it supports the Lp family
// but not arbitrary metrics.
package kdtree

import (
	"errors"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// leafSize is the bucket capacity below which splitting stops. Small enough
// to keep pruning effective, large enough to amortize traversal overhead.
const leafSize = 16

type node struct {
	// Interior nodes split on dimension dim at value split.
	dim   int
	split float64
	left  *node
	right *node
	// Leaves hold point IDs directly.
	ids []int
	// lo/hi is the tight bounding box of all points in the subtree.
	lo, hi []float64
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is an immutable k-d tree over a point set. It implements index.Index
// and is safe for concurrent readers.
type Tree struct {
	points [][]float64
	metric vecmath.Metric
	boxer  vecmath.BoxDistancer
	dim    int
	root   *node
}

var _ index.Index = (*Tree)(nil)

// New builds a k-d tree over points. The metric must implement
// vecmath.BoxDistancer.
func New(points [][]float64, metric vecmath.Metric) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("kdtree: nil metric")
	}
	boxer, ok := metric.(vecmath.BoxDistancer)
	if !ok {
		return nil, errors.New("kdtree: metric cannot bound box distances; use covertree or scan")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	t := &Tree{points: points, metric: metric, boxer: boxer, dim: len(points[0])}
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	t.root = t.build(ids)
	return t, nil
}

// Builder constructs k-d trees; it implements index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric)
}

// Name implements index.Builder.
func (Builder) Name() string { return "kdtree" }

func (t *Tree) build(ids []int) *node {
	n := &node{lo: make([]float64, t.dim), hi: make([]float64, t.dim)}
	copy(n.lo, t.points[ids[0]])
	copy(n.hi, t.points[ids[0]])
	for _, id := range ids[1:] {
		p := t.points[id]
		for j := 0; j < t.dim; j++ {
			if p[j] < n.lo[j] {
				n.lo[j] = p[j]
			}
			if p[j] > n.hi[j] {
				n.hi[j] = p[j]
			}
		}
	}
	if len(ids) <= leafSize {
		n.ids = ids
		return n
	}
	// Split at the median of the widest dimension.
	widest, width := 0, n.hi[0]-n.lo[0]
	for j := 1; j < t.dim; j++ {
		if w := n.hi[j] - n.lo[j]; w > width {
			widest, width = j, w
		}
	}
	if width == 0 {
		// All points coincide; keep them in one (oversized) leaf.
		n.ids = ids
		return n
	}
	n.dim = widest
	sort.Slice(ids, func(a, b int) bool {
		return t.points[ids[a]][widest] < t.points[ids[b]][widest]
	})
	mid := len(ids) / 2
	// Shift the cut so equal keys never straddle the boundary, which
	// would otherwise recurse forever on heavily duplicated data. Walk up
	// first; if the upper half is one equal run, walk down instead (the
	// positive width guarantees a strictly smaller key exists below).
	for mid < len(ids) && t.points[ids[mid]][widest] == t.points[ids[mid-1]][widest] {
		mid++
	}
	if mid == len(ids) {
		mid = len(ids) / 2
		for mid > 0 && t.points[ids[mid]][widest] == t.points[ids[mid-1]][widest] {
			mid--
		}
	}
	n.split = t.points[ids[mid]][widest]
	n.left = t.build(ids[:mid])
	n.right = t.build(ids[mid:])
	return n
}

// Len implements index.Index.
func (t *Tree) Len() int { return len(t.points) }

// Dim implements index.Index.
func (t *Tree) Dim() int { return t.dim }

// Point implements index.Index.
func (t *Tree) Point(id int) []float64 { return t.points[id] }

// Metric implements index.Index.
func (t *Tree) Metric() vecmath.Metric { return t.metric }

// cursor interleaves a node frontier (keyed by box lower bound) with
// resolved points (keyed by exact distance); see covertree for the scheme.
type cursor struct {
	t      *Tree
	q      []float64
	skipID int
	nodes  *pqueue.Min[*node]
	ready  *pqueue.Min[int]
}

// NewCursor implements index.Index.
func (t *Tree) NewCursor(q []float64, skipID int) index.Cursor {
	c := &cursor{t: t, q: q, skipID: skipID,
		nodes: pqueue.NewMin[*node](64), ready: pqueue.NewMin[int](64)}
	if t.root != nil {
		c.nodes.Push(t.boxer.BoxDistance(q, t.root.lo, t.root.hi), t.root)
	}
	return c
}

func (c *cursor) Next() (index.Neighbor, bool) {
	for {
		readyTop, hasReady := c.ready.Peek()
		nodeTop, hasNode := c.nodes.Peek()
		if hasReady && (!hasNode || readyTop.Priority <= nodeTop.Priority) {
			it, _ := c.ready.Pop()
			return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
		}
		if !hasNode {
			return index.Neighbor{}, false
		}
		it, _ := c.nodes.Pop()
		n := it.Value
		if n.isLeaf() {
			for _, id := range n.ids {
				if id == c.skipID {
					continue
				}
				c.ready.Push(c.t.metric.Distance(c.q, c.t.points[id]), id)
			}
			continue
		}
		c.nodes.Push(c.t.boxer.BoxDistance(c.q, n.left.lo, n.left.hi), n.left)
		c.nodes.Push(c.t.boxer.BoxDistance(c.q, n.right.lo, n.right.hi), n.right)
	}
}

// KNN implements index.Index with best-first descent and bound pruning.
func (t *Tree) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	nodes := pqueue.NewMin[*node](64)
	nodes.Push(t.boxer.BoxDistance(q, t.root.lo, t.root.hi), t.root)
	for {
		it, ok := nodes.Pop()
		if !ok {
			break
		}
		if bound, full := top.Bound(); full && it.Priority > bound {
			break
		}
		n := it.Value
		if n.isLeaf() {
			for _, id := range n.ids {
				if id == skipID {
					continue
				}
				d := t.metric.Distance(q, t.points[id])
				if bound, full := top.Bound(); !full || d < bound {
					top.Offer(d, id)
				}
			}
			continue
		}
		bound, full := top.Bound()
		for _, child := range [2]*node{n.left, n.right} {
			lb := t.boxer.BoxDistance(q, child.lo, child.hi)
			if full && lb > bound {
				continue
			}
			nodes.Push(lb, child)
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index.
func (t *Tree) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	t.forEachInRange(q, r, skipID, func(id int, d float64) {
		out = append(out, index.Neighbor{ID: id, Dist: d})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index.
func (t *Tree) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	t.forEachInRange(q, r, skipID, func(int, float64) { count++ })
	return count
}

func (t *Tree) forEachInRange(q []float64, r float64, skipID int, emit func(id int, d float64)) {
	var visit func(n *node)
	visit = func(n *node) {
		if t.boxer.BoxDistance(q, n.lo, n.hi) > r {
			return
		}
		if n.isLeaf() {
			for _, id := range n.ids {
				if id == skipID {
					continue
				}
				if d := t.metric.Distance(q, t.points[id]); d <= r {
					emit(id, d)
				}
			}
			return
		}
		visit(n.left)
		visit(n.right)
	}
	if t.root != nil {
		visit(t.root)
	}
}
