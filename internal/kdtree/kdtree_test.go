package kdtree

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/vecmath"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(pts [][]float64, m vecmath.Metric) (index.Index, error) {
		return New(pts, m)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{math.NaN()}}, vecmath.Euclidean{}); err == nil {
		t.Error("accepted NaN coordinates")
	}
	// Angular cannot bound distances to boxes, so the k-d tree must
	// refuse it rather than return wrong results.
	if _, err := New([][]float64{{1, 0}}, vecmath.Angular{}); err == nil {
		t.Error("accepted a metric without box bounds")
	}
}

func TestChebyshevBackend(t *testing.T) {
	pts := indextest.RandPoints(120, 3, 5)
	ix, err := New(pts, vecmath.Chebyshev{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Spot-check kNN against scan-style brute force under L∞.
	m := vecmath.Chebyshev{}
	q := pts[11]
	got := ix.KNN(q, 5, 11)
	best := math.Inf(1)
	for id, p := range pts {
		if id == 11 {
			continue
		}
		if d := m.Distance(q, p); d < best {
			best = d
		}
	}
	if len(got) != 5 || math.Abs(got[0].Dist-best) > 1e-12 {
		t.Errorf("KNN under L∞: first dist %g, want %g", got[0].Dist, best)
	}
}

// TestAllPointsIdentical exercises the zero-width split fallback.
func TestAllPointsIdentical(t *testing.T) {
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{1, 2, 3}
	}
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nn := ix.KNN([]float64{1, 2, 3}, 10, -1)
	if len(nn) != 10 {
		t.Fatalf("KNN = %d items, want 10", len(nn))
	}
	for _, nb := range nn {
		if nb.Dist != 0 {
			t.Errorf("distance %g, want 0", nb.Dist)
		}
	}
	if got := ix.CountRange([]float64{1, 2, 3}, 0, -1); got != 100 {
		t.Errorf("CountRange = %d, want 100", got)
	}
}

// TestHalfDuplicatedDimension stresses the median shift when one side of the
// cut is a long run of equal keys.
func TestHalfDuplicatedDimension(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 60; i++ {
		pts = append(pts, []float64{5, float64(i)})
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{float64(i) / 100, 0})
	}
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cur := ix.NewCursor([]float64{5, 30}, -1)
	count := 0
	prev := -1.0
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.Dist < prev {
			t.Fatal("cursor out of order")
		}
		prev = nb.Dist
		count++
	}
	if count != 100 {
		t.Errorf("cursor yielded %d, want 100", count)
	}
}
