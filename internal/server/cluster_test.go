// Cluster conformance: the networked scatter-gather (shard daemons behind
// a Coordinator) against the in-process sharded engine. The bar is
// byte-identity of HTTP response bodies — same answers, same stats, same
// error strings — across {unsharded, in-process S=1, in-process S=3,
// networked S=3} and across both shard-RPC framings (binary and JSON),
// held through interleaved inserts and deletes routed through the
// coordinator. Plus the distributed-tracing join (coordinator trace IDs
// resolve on the daemons), replica failover under a mid-stream kill, and
// the binary endpoint's Content-Type gate.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// splitShards replays the cluster hash assignment over the dataset and
// returns each shard's points in local-ID order — what `rknn shard-serve`
// computes for its own partition.
func splitShards(t testing.TB, pts [][]float64, shards int) [][][]float64 {
	t.Helper()
	m, err := index.NewShardMap(shards)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]float64, shards)
	for range pts {
		g, s, _ := m.Assign()
		out[s] = append(out[s], pts[g])
	}
	return out
}

// cluster is one networked test cluster: per-shard daemons (each replica
// its own HTTP server over the shard's engine), the coordinator, and the
// coordinator's own HTTP server.
type cluster struct {
	co      *repro.Coordinator
	ts      *httptest.Server     // coordinator HTTP server
	daemons [][]*httptest.Server // [shard][replica]
	engines []*repro.Searcher    // per-shard engine (shared by its replicas)
}

// startCluster partitions pts over S daemons (replicas HTTP servers per
// shard, all replicas of a shard serving the same engine) and fronts them
// with a Coordinator. Daemon tracing runs at sample 0 so retention of
// coordinator traces proves upstream-sampling propagation, not local luck.
func startCluster(t testing.TB, pts [][]float64, S, replicas int, jsonFraming bool, coOpts ...repro.CoordinatorOption) *cluster {
	t.Helper()
	parts := splitShards(t, pts, S)
	c := &cluster{daemons: make([][]*httptest.Server, S), engines: make([]*repro.Searcher, S)}
	specs := make([]repro.ShardSpec, S)
	for s := 0; s < S; s++ {
		eng, err := repro.New(parts[s], repro.WithScale(100))
		if err != nil {
			t.Fatalf("shard %d engine: %v", s, err)
		}
		c.engines[s] = eng
		for r := 0; r < replicas; r++ {
			ring := trace.NewRing(64)
			ds := httptest.NewServer(New(eng,
				WithShardRole(s, S),
				WithTracing(ring, 0),
				WithSlowLog(0, 64)).Handler())
			t.Cleanup(ds.Close)
			c.daemons[s] = append(c.daemons[s], ds)
			specs[s].Addrs = append(specs[s].Addrs, ds.URL)
		}
	}
	opts := []repro.CoordinatorOption{repro.WithHealthInterval(0)}
	if jsonFraming {
		opts = append(opts, repro.WithJSONFraming())
	}
	opts = append(opts, coOpts...)
	co, err := repro.NewCoordinator(context.Background(), specs, opts...)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	c.co = co

	reg := telemetry.NewRegistry()
	co.EnableTelemetry(reg)
	coRing := trace.NewRing(64)
	c.ts = httptest.NewServer(New(co, WithRegistry(reg), WithTracing(coRing, 1)).Handler())
	t.Cleanup(c.ts.Close)
	return c
}

// rawCall performs one HTTP exchange and returns the status and the exact
// response body bytes — the unit of comparison for the whole suite.
func rawCall(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// identical sends one request to every server and fails unless every
// response (status and body bytes) is identical to the first server's.
func identical(t *testing.T, servers map[string]string, method, path, body string) {
	t.Helper()
	var (
		refName string
		refCode int
		refBody []byte
	)
	for name, base := range servers {
		code, b := rawCall(t, method, base+path, body)
		if refName == "" {
			refName, refCode, refBody = name, code, b
			continue
		}
		if code != refCode || !bytes.Equal(b, refBody) {
			t.Errorf("%s %s %s: %s answered %d %q, %s answered %d %q",
				method, path, body, refName, refCode, refBody, name, code, b)
		}
	}
}

// TestClusterByteIdentity is the tentpole conformance test: for both shard
// RPC framings, the networked cluster's /v1 responses are byte-identical
// to the in-process sharded engine's at the same shard count — and all
// shard counts agree on the answer bodies — before and after a write
// sequence (inserts, a batch, deletes) applied identically through every
// server's own HTTP API.
func TestClusterByteIdentity(t *testing.T) {
	for _, framing := range []string{"binary", "json"} {
		t.Run(framing, func(t *testing.T) {
			pts := indextest.RandPoints(120, 3, 17)

			single, err := repro.New(pts, repro.WithScale(100))
			if err != nil {
				t.Fatal(err)
			}
			singleTS := httptest.NewServer(New(single).Handler())
			t.Cleanup(singleTS.Close)

			sharded1, err := repro.NewSharded(pts, 1, repro.WithScale(100))
			if err != nil {
				t.Fatal(err)
			}
			sharded1TS := httptest.NewServer(New(sharded1).Handler())
			t.Cleanup(sharded1TS.Close)

			sharded3, err := repro.NewSharded(pts, 3, repro.WithScale(100))
			if err != nil {
				t.Fatal(err)
			}
			sharded3TS := httptest.NewServer(New(sharded3).Handler())
			t.Cleanup(sharded3TS.Close)

			cl1 := startCluster(t, pts, 1, 1, framing == "json")
			cl3 := startCluster(t, pts, 3, 1, framing == "json")

			// Answer bodies must agree everywhere; stats bodies only within a
			// shard count (work counters sum per shard, so S=1 and S=3
			// legitimately report different scan depths for the same answer).
			all := map[string]string{
				"unsharded": singleTS.URL,
				"sharded-1": sharded1TS.URL,
				"sharded-3": sharded3TS.URL,
				"cluster-1": cl1.ts.URL,
				"cluster-3": cl3.ts.URL,
			}
			s1 := map[string]string{"unsharded": singleTS.URL, "sharded-1": sharded1TS.URL, "cluster-1": cl1.ts.URL}
			s3 := map[string]string{"sharded-3": sharded3TS.URL, "cluster-3": cl3.ts.URL}

			compare := func(t *testing.T) {
				t.Helper()
				for _, qid := range []int{0, 7, 42, 99, 119} {
					identical(t, all, "POST", "/v1/rknn", fmt.Sprintf(`{"id":%d,"k":5}`, qid))
				}
				identical(t, all, "POST", "/v1/rknn", `{"point":[0.4,0.5,0.6],"k":4}`)
				identical(t, all, "POST", "/v1/knn", `{"point":[0.1,0.9,0.2],"k":6}`)
				// Error surfaces must match byte for byte too.
				identical(t, all, "POST", "/v1/rknn", `{"id":3}`)
				identical(t, all, "POST", "/v1/rknn", `{"id":-5,"k":3}`)
				identical(t, all, "POST", "/v1/rknn", `{"id":99999,"k":3}`)
				identical(t, all, "POST", "/v1/knn", `{"point":[0.1],"k":3}`)
				// Stats ride along within a shard count.
				for _, qid := range []int{7, 42} {
					identical(t, s1, "POST", "/v1/rknn", fmt.Sprintf(`{"id":%d,"k":5,"stats":true}`, qid))
					identical(t, s3, "POST", "/v1/rknn", fmt.Sprintf(`{"id":%d,"k":5,"stats":true}`, qid))
				}
				identical(t, s3, "POST", "/v1/rknn", `{"point":[0.2,0.2,0.8],"k":5,"stats":true}`)
			}
			compare(t)
			if t.Failed() {
				t.Fatal("pre-mutation conformance failed; skipping mutations")
			}

			// The same write sequence through every server's public API: the
			// write responses (assigned IDs) must agree, and so must every
			// query afterwards — including querying a deleted member.
			ins := indextest.RandPoints(5, 3, 101)
			for _, p := range ins {
				raw, _ := json.Marshal(map[string]any{"point": p})
				identical(t, all, "POST", "/v1/points", string(raw))
			}
			batch := indextest.RandPoints(6, 3, 202)
			rawBatch, _ := json.Marshal(map[string]any{"points": batch})
			identical(t, all, "POST", "/v1/points/batch", string(rawBatch))
			identical(t, all, "DELETE", "/v1/points/3", "")
			identical(t, all, "DELETE", "/v1/points/124", "")
			identical(t, all, "DELETE", "/v1/points/3", "")    // already gone: 404 everywhere
			identical(t, all, "DELETE", "/v1/points/9999", "") // never assigned

			compare(t)
			identical(t, all, "POST", "/v1/rknn", `{"id":3,"k":5}`)   // deleted member
			identical(t, all, "POST", "/v1/rknn", `{"id":124,"k":5}`) // deleted insert
			for _, qid := range []int{120, 125, 130} {                // inserted members
				identical(t, all, "POST", "/v1/rknn", fmt.Sprintf(`{"id":%d,"k":5}`, qid))
			}

			// The coordinator's view of the cluster size tracks the writes.
			wantLen := 120 + 11 - 2
			if got := cl3.co.Len(); got != wantLen {
				t.Errorf("cluster Len = %d, want %d", got, wantLen)
			}
		})
	}
}

// TestClusterTracePropagation pins the distributed-tracing join: a
// ?debug=1 query on the coordinator returns a span tree whose shard.scatter
// spans carry remote.call children, and the coordinator's trace ID resolves
// on every shard daemon's trace ring (the daemons joined the same trace via
// the propagated traceparent, and honored the propagated X-Request-ID).
func TestClusterTracePropagation(t *testing.T) {
	pts := indextest.RandPoints(150, 3, 23)
	cl := startCluster(t, pts, 3, 1, false)

	resp, err := http.Post(cl.ts.URL+"/v1/rknn?debug=1", "application/json",
		strings.NewReader(`{"id":5,"k":8}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("coordinator response missing X-Request-ID")
	}
	var out struct {
		IDs   []int            `json:"ids"`
		Trace *trace.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?debug=1 response carries no trace")
	}
	scatters := findJSONSpans(out.Trace.Root, "shard.scatter")
	if len(scatters) != 3 {
		t.Fatalf("shard.scatter spans = %d, want 3", len(scatters))
	}
	for _, sp := range scatters {
		if len(findJSONSpans(sp, "remote.call")) == 0 {
			t.Errorf("shard.scatter span (shard %v) has no remote.call child", sp.Attrs["shard"])
		}
	}
	if got := len(findJSONSpans(out.Trace.Root, "remote.call")); got < 3 {
		t.Errorf("remote.call spans = %d, want >= 3", got)
	}

	// The same trace ID must resolve on every daemon: the coordinator's
	// fan-out carried a sampled traceparent, so each daemon (tracing at
	// sample 0) retained its half of the distributed trace.
	for s, reps := range cl.daemons {
		var full trace.TraceJSON
		if got := call(t, http.MethodGet, reps[0].URL+"/v1/admin/traces/"+out.Trace.TraceID, nil, &full); got != http.StatusOK {
			t.Errorf("shard %d: coordinator trace %s does not resolve: status %d", s, out.Trace.TraceID, got)
			continue
		}
		if full.Root.Name != "http./v1/binary" {
			t.Errorf("shard %d: daemon trace root %q, want http./v1/binary", s, full.Root.Name)
		}

		// X-Request-ID propagated too: the daemon's slowlog entries for this
		// trace carry the coordinator's request ID, not a fresh one.
		var slowlog struct {
			Entries []struct {
				TraceID   string `json:"trace_id"`
				RequestID string `json:"request_id"`
			} `json:"entries"`
		}
		if got := call(t, http.MethodGet, reps[0].URL+"/v1/admin/slowlog", nil, &slowlog); got != http.StatusOK {
			t.Fatalf("shard %d: GET slowlog: status %d", s, got)
		}
		matched := false
		for _, e := range slowlog.Entries {
			if e.TraceID == out.Trace.TraceID {
				matched = true
				if e.RequestID != reqID {
					t.Errorf("shard %d: daemon request id %q, coordinator sent %q", s, e.RequestID, reqID)
				}
			}
		}
		if !matched {
			t.Errorf("shard %d: no slowlog entry for trace %s", s, out.Trace.TraceID)
		}
	}
}

// TestClusterReplicaFailover kills one replica in the middle of a query
// stream: with per-request retry across replicas, not one query may fail,
// and the health gauge must report the dead replica down once the health
// loop notices.
func TestClusterReplicaFailover(t *testing.T) {
	pts := indextest.RandPoints(140, 3, 31)
	cl := startCluster(t, pts, 2, 2, false,
		repro.WithHealthInterval(25*time.Millisecond),
		repro.WithRetries(3, 2*time.Millisecond))

	ss, err := repro.NewSharded(pts, 2, repro.WithScale(100))
	if err != nil {
		t.Fatal(err)
	}
	ask := func(qid int) {
		t.Helper()
		got, err := cl.co.ReverseKNN(qid, 5)
		if err != nil {
			t.Fatalf("query %d failed after replica kill: %v", qid, err)
		}
		want, err := ss.ReverseKNN(qid, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %d = %v, in-process %v", qid, got, want)
		}
	}
	for qid := 0; qid < 40; qid++ {
		ask(qid)
	}
	// Kill shard 0's read replica mid-stream. Round-robin guarantees later
	// reads pick the dead address; they must fail over, not fail.
	cl.daemons[0][1].CloseClientConnections()
	cl.daemons[0][1].Close()
	for qid := 40; qid < 120; qid++ {
		ask(qid)
	}

	// The health loop marks the dead replica down, and the gauge says so.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, body := rawCall(t, http.MethodGet, cl.ts.URL+"/metrics", "")
		down := false
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "rknn_remote_replica_healthy") &&
				strings.Contains(line, `shard="0"`) && strings.Contains(line, `replica="1"`) &&
				strings.HasSuffix(strings.TrimSpace(line), " 0") {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health gauge never reported the killed replica down")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fan-out telemetry saw the retries.
	_, body := rawCall(t, http.MethodGet, cl.ts.URL+"/metrics", "")
	for _, want := range []string{
		"rknn_remote_shard_requests_total",
		"rknn_remote_shard_request_duration_seconds",
		"rknn_remote_shard_retries_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("coordinator /metrics missing %s", want)
		}
	}
}

// TestBinaryEndpointContentType pins the 415 gate: a request without the
// wire Content-Type must be refused before the frame decoder ever runs,
// and a well-typed but malformed frame is a clean 400.
func TestBinaryEndpointContentType(t *testing.T) {
	s, _, ts := newTestServer(t)
	_ = s

	resp, err := http.Post(ts.URL+"/v1/binary", "application/json", strings.NewReader(`{"id":1,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("JSON body on /v1/binary: status %d, want 415", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, wire.ContentType) {
		t.Errorf("415 body %q should name the expected Content-Type (decode err %v)", e.Error, err)
	}

	resp2, err := http.Post(ts.URL+"/v1/binary", wire.ContentType, bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage frame: status %d, want 400", resp2.StatusCode)
	}

	// Missing Content-Type entirely: also 415.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/binary", bytes.NewReader(wire.AppendRkNNIDRequest(nil, 1, 3)))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("untyped frame: status %d, want 415", resp3.StatusCode)
	}
}

// TestCoordinatorHandshake pins the startup cross-checks: daemons wired up
// in the wrong order, or a coordinator configured for a different cluster
// size than the daemons serve, are refused with a diagnosable error.
func TestCoordinatorHandshake(t *testing.T) {
	pts := indextest.RandPoints(100, 3, 41)
	parts := splitShards(t, pts, 2)
	specs := make([]repro.ShardSpec, 2)
	for s := 0; s < 2; s++ {
		eng, err := repro.New(parts[s], repro.WithScale(100))
		if err != nil {
			t.Fatal(err)
		}
		ds := httptest.NewServer(New(eng, WithShardRole(s, 2)).Handler())
		t.Cleanup(ds.Close)
		specs[s] = repro.ShardSpec{Addrs: []string{ds.URL}}
	}

	if _, err := repro.NewCoordinator(context.Background(), []repro.ShardSpec{specs[1], specs[0]},
		repro.WithHealthInterval(0)); err == nil || !strings.Contains(err.Error(), "serves shard") {
		t.Errorf("swapped shard order: err = %v, want a shard-order error", err)
	}
	if _, err := repro.NewCoordinator(context.Background(), specs[:1],
		repro.WithHealthInterval(0)); err == nil || !strings.Contains(err.Error(), "2-shard cluster") {
		t.Errorf("truncated cluster: err = %v, want a cluster-size error", err)
	}

	// A healthy handshake, for contrast — and the daemons' self-reported
	// spans reconstruct the shard map the coordinator scatters over.
	co, err := repro.NewCoordinator(context.Background(), specs, repro.WithHealthInterval(0))
	if err != nil {
		t.Fatalf("well-formed cluster refused: %v", err)
	}
	defer co.Close()
	if co.Len() != 100 || co.Shards() != 2 {
		t.Errorf("Len=%d Shards=%d, want 100/2", co.Len(), co.Shards())
	}
}
