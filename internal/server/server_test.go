package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	repro "repro"
	"repro/internal/bruteforce"
	"repro/internal/indextest"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
)

// newTestServer indexes a small random dataset and returns the engine, the
// exact oracle, and an httptest server over the full route table.
func newTestServer(t *testing.T) (*repro.Searcher, *bruteforce.Truth, *httptest.Server) {
	t.Helper()
	pts := indextest.RandPoints(200, 3, 7)
	s, err := repro.New(pts, repro.WithScale(100))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	ts := httptest.NewServer(New(s).Handler())
	t.Cleanup(ts.Close)
	return s, truth, ts
}

// call posts body to path and decodes the JSON response into out, reporting
// the HTTP status.
func call(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestRkNNEndpoint(t *testing.T) {
	_, truth, ts := newTestServer(t)
	for _, qid := range []int{0, 17, 42, 199} {
		var resp struct {
			IDs []int `json:"ids"`
		}
		status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": qid, "k": 5}, &resp)
		if status != http.StatusOK {
			t.Fatalf("rknn(%d) status %d", qid, status)
		}
		want, err := truth.RkNNByID(qid, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(resp.IDs, want) {
			t.Errorf("rknn(%d) = %v, oracle %v", qid, resp.IDs, want)
		}
	}
}

func TestRkNNEndpointByPointAndStats(t *testing.T) {
	_, truth, ts := newTestServer(t)
	q := []float64{0.5, 0.5, 0.5}
	var resp struct {
		IDs []int `json:"ids"`
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"point": q, "k": 4}, &resp); status != http.StatusOK {
		t.Fatalf("rknn by point: status %d", status)
	}
	want, err := truth.RkNN(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want == nil {
		want = []int{}
	}
	if !reflect.DeepEqual(resp.IDs, want) {
		t.Errorf("rknn(point) = %v, oracle %v", resp.IDs, want)
	}

	var withStats struct {
		IDs   []int        `json:"ids"`
		Stats *repro.Stats `json:"stats"`
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 3, "k": 5, "stats": true}, &withStats); status != http.StatusOK {
		t.Fatalf("rknn with stats: status %d", status)
	}
	if withStats.Stats == nil || withStats.Stats.ScanDepth == 0 {
		t.Errorf("stats missing or empty: %+v", withStats.Stats)
	}

	withStats.Stats = nil
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"point": q, "k": 5, "stats": true}, &withStats); status != http.StatusOK {
		t.Fatalf("rknn by point with stats: status %d", status)
	}
	if withStats.Stats == nil || withStats.Stats.ScanDepth == 0 {
		t.Errorf("point-query stats missing or empty: %+v", withStats.Stats)
	}
}

func TestRkNNEndpointErrors(t *testing.T) {
	_, _, ts := newTestServer(t)
	cases := []struct {
		name string
		body any
	}{
		{"neither-id-nor-point", map[string]any{"k": 5}},
		{"both-id-and-point", map[string]any{"id": 1, "point": []float64{1, 2, 3}, "k": 5}},
		{"bad-k", map[string]any{"id": 1, "k": 0}},
		{"id-out-of-range", map[string]any{"id": 10000, "k": 5}},
		{"wrong-dimension", map[string]any{"point": []float64{1}, "k": 5}},
		{"unknown-field", map[string]any{"id": 1, "k": 5, "bogus": true}},
	}
	for _, c := range cases {
		var resp struct {
			Error string `json:"error"`
		}
		if status := call(t, "POST", ts.URL+"/v1/rknn", c.body, &resp); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, status)
		}
		if resp.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, truth, ts := newTestServer(t)
	qids := []int{0, 5, 9, 100, 150}
	var resp struct {
		Results [][]int `json:"results"`
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn/batch", map[string]any{"ids": qids, "k": 5, "workers": 3}, &resp); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if len(resp.Results) != len(qids) {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), len(qids))
	}
	for i, qid := range qids {
		want, err := truth.RkNNByID(qid, 5)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(resp.Results[i], want) {
			t.Errorf("batch[%d] (qid %d) = %v, oracle %v", i, qid, resp.Results[i], want)
		}
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn/batch", map[string]any{"ids": []int{-1}, "k": 5}, nil); status != http.StatusBadRequest {
		t.Errorf("batch with bad id: status %d, want 400", status)
	}
}

func TestKNNEndpoint(t *testing.T) {
	s, _, ts := newTestServer(t)
	q := []float64{0.2, 0.8, 0.1}
	var resp struct {
		Neighbors []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if status := call(t, "POST", ts.URL+"/v1/knn", map[string]any{"point": q, "k": 7}, &resp); status != http.StatusOK {
		t.Fatalf("knn status %d", status)
	}
	want, err := s.KNN(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != len(want) {
		t.Fatalf("knn returned %d neighbors, want %d", len(resp.Neighbors), len(want))
	}
	for i := range want {
		if resp.Neighbors[i].ID != want[i].ID || resp.Neighbors[i].Dist != want[i].Dist {
			t.Errorf("knn[%d] = %+v, want %+v", i, resp.Neighbors[i], want[i])
		}
	}
	if status := call(t, "POST", ts.URL+"/v1/knn", map[string]any{"point": []float64{1}, "k": 3}, nil); status != http.StatusBadRequest {
		t.Errorf("knn wrong dim: status %d, want 400", status)
	}
}

func TestPointsInsertDelete(t *testing.T) {
	s, _, ts := newTestServer(t)
	before := s.Len()
	var ins struct {
		ID int `json:"id"`
	}
	if status := call(t, "POST", ts.URL+"/v1/points", map[string]any{"point": []float64{0.5, 0.5, 0.5}}, &ins); status != http.StatusCreated {
		t.Fatalf("insert status %d, want 201", status)
	}
	if ins.ID != before {
		t.Errorf("insert id = %d, want %d", ins.ID, before)
	}
	if s.Len() != before+1 {
		t.Errorf("Len after insert = %d, want %d", s.Len(), before+1)
	}

	var del struct {
		Deleted bool `json:"deleted"`
	}
	if status := call(t, "DELETE", fmt.Sprintf("%s/v1/points/%d", ts.URL, ins.ID), nil, &del); status != http.StatusOK {
		t.Fatalf("delete status %d", status)
	}
	if !del.Deleted || s.Len() != before {
		t.Errorf("delete = %+v, Len = %d, want %d", del, s.Len(), before)
	}
	// A deleted member is rejected as a query anchor, while the highest
	// surviving ID (above Len() once tombstones exist) still answers.
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": ins.ID, "k": 3}, nil); status != http.StatusBadRequest {
		t.Errorf("rknn on deleted id: status %d, want 400", status)
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 199, "k": 3}, nil); status != http.StatusOK {
		t.Errorf("rknn on highest live id: status %d, want 200", status)
	}
	// Deleting again is a 404, as is an unparsable id.
	if status := call(t, "DELETE", fmt.Sprintf("%s/v1/points/%d", ts.URL, ins.ID), nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete status %d, want 404", status)
	}
	if status := call(t, "DELETE", ts.URL+"/v1/points/xyzzy", nil, nil); status != http.StatusBadRequest {
		t.Errorf("bad id delete status %d, want 400", status)
	}
	// An insert with the wrong dimension is rejected.
	if status := call(t, "POST", ts.URL+"/v1/points", map[string]any{"point": []float64{1}}, nil); status != http.StatusBadRequest {
		t.Errorf("bad insert status %d, want 400", status)
	}
}

// queryOnly hides every optional surface of an Engine, leaving just the
// required interface — the shape of a hypothetical third-party engine.
type queryOnly struct{ Engine }

func TestPointsBatchInsert(t *testing.T) {
	s, _, ts := newTestServer(t)
	before := s.Len()
	batch := [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}, {0.7, 0.8, 0.9}}
	var resp struct {
		IDs []int `json:"ids"`
	}
	if status := call(t, "POST", ts.URL+"/v1/points/batch", map[string]any{"points": batch}, &resp); status != http.StatusCreated {
		t.Fatalf("batch insert status %d, want 201", status)
	}
	if want := []int{before, before + 1, before + 2}; !reflect.DeepEqual(resp.IDs, want) {
		t.Errorf("batch ids = %v, want %v", resp.IDs, want)
	}
	if s.Len() != before+3 {
		t.Errorf("Len after batch = %d, want %d", s.Len(), before+3)
	}
	// A batch with any invalid member is rejected whole: nothing lands.
	bad := [][]float64{{0.1, 0.2, 0.3}, {1}}
	if status := call(t, "POST", ts.URL+"/v1/points/batch", map[string]any{"points": bad}, nil); status != http.StatusBadRequest {
		t.Errorf("bad batch status %d, want 400", status)
	}
	if s.Len() != before+3 {
		t.Errorf("Len after rejected batch = %d, want %d (atomic batch)", s.Len(), before+3)
	}
	if status := call(t, "POST", ts.URL+"/v1/points/batch", map[string]any{"points": [][]float64{}}, nil); status != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400", status)
	}

	// The new points answer queries immediately (they live in the overlay
	// memtable until the background compactor folds them).
	if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": resp.IDs[2], "k": 3}, nil); status != http.StatusOK {
		t.Errorf("rknn on batch-inserted id: status %d, want 200", status)
	}

	// An engine without a batch write path answers 501.
	plain := httptest.NewServer(New(queryOnly{s}).Handler())
	defer plain.Close()
	if status := call(t, "POST", plain.URL+"/v1/points/batch", map[string]any{"points": batch}, nil); status != http.StatusNotImplemented {
		t.Errorf("batch on query-only engine: status %d, want 501", status)
	}
}

func TestHealthAndStats(t *testing.T) {
	s, _, ts := newTestServer(t)
	var health struct {
		Status string `json:"status"`
		Points int    `json:"points"`
		Dim    int    `json:"dim"`
	}
	if status := call(t, "GET", ts.URL+"/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if health.Status != "ok" || health.Points != s.Len() || health.Dim != s.Dim() {
		t.Errorf("healthz = %+v", health)
	}

	// Generate traffic, including one failure, then check the counters and
	// the histogram-derived latency quantiles.
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 1, "k": 3}, nil)
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"k": 3}, nil)
	var stats struct {
		Endpoints map[string]struct {
			Requests int64   `json:"requests"`
			Errors   int64   `json:"errors"`
			P50US    float64 `json:"p50_us"`
			P95US    float64 `json:"p95_us"`
			P99US    float64 `json:"p99_us"`
			MeanUS   float64 `json:"mean_us"`
		} `json:"endpoints"`
		Engine struct {
			Points         int     `json:"points"`
			Scale          float64 `json:"scale"`
			MemtablePoints *int    `json:"memtable_points"`
			Compactions    *int64  `json:"compactions"`
		} `json:"engine"`
	}
	if status := call(t, "GET", ts.URL+"/statsz", nil, &stats); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	// The incremental write path surfaces its memtable and compaction
	// counters for any engine exposing them (all repro engines do).
	if stats.Engine.MemtablePoints == nil || stats.Engine.Compactions == nil {
		t.Errorf("statsz engine missing memtable_points/compactions: %+v", stats.Engine)
	}
	rknn := stats.Endpoints["/v1/rknn"]
	if rknn.Requests < 2 || rknn.Errors < 1 {
		t.Errorf("statsz /v1/rknn = %+v, want >=2 requests and >=1 error", rknn)
	}
	if !(rknn.P50US > 0) || rknn.P99US < rknn.P50US || !(rknn.MeanUS > 0) {
		t.Errorf("statsz /v1/rknn quantiles = %+v, want p50 > 0 and p99 >= p50", rknn)
	}
	if stats.Engine.Points != s.Len() || stats.Engine.Scale != s.Scale() {
		t.Errorf("statsz engine = %+v", stats.Engine)
	}
}

// TestConcurrentTraffic hammers the server with parallel query and update
// requests — the serving-layer face of the snapshot guarantee. Run under
// -race this is an end-to-end data-race check on the full HTTP path.
func TestConcurrentTraffic(t *testing.T) {
	_, _, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var resp struct {
					IDs []int `json:"ids"`
				}
				if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": (g*31 + i) % 200, "k": 4}, &resp); status != http.StatusOK {
					t.Errorf("goroutine %d: rknn status %d", g, status)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			p := []float64{float64(i) / 20, 0.5, 0.5}
			if status := call(t, "POST", ts.URL+"/v1/points", map[string]any{"point": p}, nil); status != http.StatusCreated {
				t.Errorf("insert %d: status %d", i, status)
				return
			}
		}
	}()
	wg.Wait()
}

// TestBatchHonorsRequestCancellation checks that a cancelled request context
// aborts a batch: the handler surfaces the context error as a 400 rather
// than completing the full batch.
func TestBatchHonorsRequestCancellation(t *testing.T) {
	_, _, ts := newTestServer(t)
	qids := make([]int, 200)
	for i := range qids {
		qids[i] = i
	}
	body, err := json.Marshal(map[string]any{"ids": qids, "k": 5, "workers": 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: server must abort, not serve
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/rknn/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Error("request with cancelled context succeeded")
	}
}

// TestSnapshotEndpointWithoutStore: an in-memory engine answers 501 on the
// admin snapshot route.
func TestSnapshotEndpointWithoutStore(t *testing.T) {
	_, _, ts := newTestServer(t)
	var errResp map[string]string
	if status := call(t, "POST", ts.URL+"/v1/admin/snapshot", nil, &errResp); status != http.StatusNotImplemented {
		t.Errorf("snapshot on in-memory engine: status %d, want 501", status)
	}
	if errResp["error"] == "" {
		t.Error("501 response carries no error message")
	}
}

// TestSnapshotEndpointDurable: with a durable engine the route cuts a new
// generation, reports it, and is counted in /statsz.
func TestSnapshotEndpointDurable(t *testing.T) {
	pts := indextest.RandPoints(100, 2, 9)
	s, err := repro.New(pts, repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	d, err := repro.NewDurable(t.TempDir(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ts := httptest.NewServer(New(d).Handler())
	t.Cleanup(ts.Close)

	var resp struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Points     int    `json:"points"`
	}
	if status := call(t, "POST", ts.URL+"/v1/admin/snapshot", nil, &resp); status != http.StatusOK {
		t.Fatalf("snapshot status %d", status)
	}
	if resp.Status != "ok" || resp.Generation != 2 || resp.Points != 100 {
		t.Errorf("snapshot response %+v", resp)
	}

	var stats struct {
		Endpoints map[string]map[string]any `json:"endpoints"`
		Engine    map[string]any            `json:"engine"`
	}
	if status := call(t, "GET", ts.URL+"/statsz", nil, &stats); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	if got, _ := stats.Endpoints["/v1/admin/snapshot"]["requests"].(float64); got != 1 {
		t.Errorf("statsz counted %v snapshot requests, want 1", got)
	}
	if gen, ok := stats.Engine["generation"].(float64); !ok || gen != 2 {
		t.Errorf("statsz engine generation = %v", stats.Engine["generation"])
	}
}

// TestShardedEngineEndToEnd serves a ShardedSearcher through the full route
// table: queries agree with the oracle, writes route to the right shards,
// and /statsz reports the per-shard counters.
func TestShardedEngineEndToEnd(t *testing.T) {
	pts := indextest.RandPoints(180, 3, 15)
	ss, err := repro.NewSharded(pts, 3, repro.WithScale(100), repro.WithPlainRDT())
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(ss).Handler())
	t.Cleanup(ts.Close)

	for _, qid := range []int{0, 59, 179} {
		var resp struct {
			IDs []int `json:"ids"`
		}
		if status := call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": qid, "k": 5}, &resp); status != http.StatusOK {
			t.Fatalf("rknn(%d) status %d", qid, status)
		}
		want, err := truth.RkNNByID(qid, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != 0 && !reflect.DeepEqual(resp.IDs, want) {
			t.Errorf("rknn(%d) = %v, oracle %v", qid, resp.IDs, want)
		}
	}

	var batch struct {
		Results [][]int `json:"results"`
	}
	if status := call(t, "POST", ts.URL+"/v1/rknn/batch", map[string]any{"ids": []int{1, 2, 3, 4}, "k": 4}, &batch); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("batch returned %d results", len(batch.Results))
	}

	var ins struct {
		ID int `json:"id"`
	}
	if status := call(t, "POST", ts.URL+"/v1/points", map[string]any{"point": []float64{0.5, 0.5, 0.5}}, &ins); status != http.StatusCreated {
		t.Fatalf("insert status %d", status)
	}
	if ins.ID != 180 {
		t.Errorf("insert assigned global id %d, want 180", ins.ID)
	}
	if status := call(t, "DELETE", fmt.Sprintf("%s/v1/points/%d", ts.URL, ins.ID), nil, nil); status != http.StatusOK {
		t.Errorf("delete status %d", status)
	}

	var stats struct {
		Engine struct {
			ShardCount int `json:"shard_count"`
			Shards     []struct {
				Shard   int   `json:"shard"`
				Points  int   `json:"points"`
				Queries int64 `json:"queries"`
			} `json:"shards"`
		} `json:"engine"`
	}
	if status := call(t, "GET", ts.URL+"/statsz", nil, &stats); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	if stats.Engine.ShardCount != 3 || len(stats.Engine.Shards) != 3 {
		t.Fatalf("statsz shards = %+v", stats.Engine)
	}
	totalPts, totalQ := 0, int64(0)
	for _, sh := range stats.Engine.Shards {
		totalPts += sh.Points
		totalQ += sh.Queries
	}
	if totalPts != 180 {
		t.Errorf("statsz shard points sum to %d, want 180", totalPts)
	}
	if totalQ == 0 {
		t.Error("statsz reports zero shard queries after serving traffic")
	}
}

// TestMetricsEndpoint scrapes /metrics on a server sharing its registry
// with the engine: the exposition must carry both the HTTP latency
// histograms and the engine's pruning counters, and every line must be
// well-formed Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	pts := indextest.RandPoints(150, 3, 21)
	reg := telemetry.NewRegistry()
	s, err := repro.New(pts, repro.WithScale(100), repro.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(s, WithRegistry(reg)).Handler())
	t.Cleanup(ts.Close)

	var withStats struct {
		Stats *repro.Stats `json:"stats"`
	}
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 3, "k": 5, "stats": true}, &withStats)
	if withStats.Stats == nil {
		t.Fatal("no stats in response")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Line-by-line shape check: every non-comment line is name{labels} value.
	sampleLine := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed exposition line %d: %q", i+1, line)
		}
	}

	for _, want := range []string{
		`rknn_queries_total{backend="covertree",op="rknn"} 1`,
		fmt.Sprintf(`rknn_candidates_excluded_total{backend="covertree"} %d`, withStats.Stats.Excluded),
		fmt.Sprintf(`rknn_candidates_lazy_settled_total{backend="covertree"} %d`,
			withStats.Stats.LazyAccepts+withStats.Stats.LazyRejects),
		`rknn_http_requests_total{route="/v1/rknn"} 1`,
		`rknn_http_request_duration_seconds_bucket{route="/v1/rknn",le="+Inf"} 1`,
		"rknn_points 150",
		"# TYPE rknn_http_request_duration_seconds histogram",
		"# TYPE rknn_pruning_ratio gauge",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// sampleValue extracts one sample from a registry by family name and label
// set, failing the test when absent.
func sampleValue(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) float64 {
	t.Helper()
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
	samples:
		for _, s := range f.Samples {
			for _, want := range labels {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					continue samples
				}
			}
			return s.Value
		}
	}
	t.Fatalf("no sample %s%v in registry", name, labels)
	return 0
}

// TestBatchTelemetryRecordsSuccessesOnMemberFailure pins the batch
// accounting bugfix end to end: a batch whose members partly fail makes the
// HTTP layer count one route error, while the engine still records every
// member that succeeded before the failure surfaced — previously the error
// return skipped the telemetry block and the successes vanished.
func TestBatchTelemetryRecordsSuccessesOnMemberFailure(t *testing.T) {
	pts := indextest.RandPoints(150, 3, 29)
	reg := telemetry.NewRegistry()
	s, err := repro.New(pts, repro.WithScale(100), repro.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(s, WithRegistry(reg)).Handler())
	t.Cleanup(ts.Close)

	// Manufacture a member that fails mid-batch: a tombstoned ID.
	deleted := 42
	if ok, err := s.Delete(deleted); !ok || err != nil {
		t.Fatalf("Delete(%d) = (%v, %v)", deleted, ok, err)
	}
	var errResp map[string]string
	status := call(t, "POST", ts.URL+"/v1/rknn/batch",
		map[string]any{"ids": []int{0, 1, deleted, 2}, "k": 5}, &errResp)
	if status != http.StatusBadRequest {
		t.Fatalf("batch with deleted member: status %d, want 400", status)
	}
	if !strings.Contains(errResp["error"], "query") {
		t.Errorf("error %q does not name the failing query", errResp["error"])
	}

	backend := telemetry.Label{Name: "backend", Value: "covertree"}
	if got := sampleValue(t, reg, "rknn_queries_total", backend,
		telemetry.Label{Name: "op", Value: "batch"}); got != 3 {
		t.Errorf("rknn_queries_total{op=batch} = %v, want 3 successful members", got)
	}
	if got := sampleValue(t, reg, "rknn_http_request_errors_total",
		telemetry.Label{Name: "route", Value: "/v1/rknn/batch"}); got != 1 {
		t.Errorf("route errors = %v, want 1", got)
	}
	if got := sampleValue(t, reg, "rknn_http_requests_total",
		telemetry.Label{Name: "route", Value: "/v1/rknn/batch"}); got != 1 {
		t.Errorf("route requests = %v, want 1", got)
	}
}

// TestRequestBodyLimit: a body past the decoder bound gets a 413 with a
// JSON error instead of being buffered.
func TestRequestBodyLimit(t *testing.T) {
	_, _, ts := newTestServer(t)
	huge := append([]byte(`{"k":5,"point":[`), bytes.Repeat([]byte("0.1,"), 1<<19)...)
	huge = append(huge, []byte("0.1]}")...)
	resp, err := http.Post(ts.URL+"/v1/rknn", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var errResp map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if errResp["error"] == "" {
		t.Error("413 response carries no error message")
	}
}

// TestSlowlogEndpoint: with a zero threshold every request is retained,
// newest first, with its route, latency and (for failures) error.
func TestSlowlogEndpoint(t *testing.T) {
	pts := indextest.RandPoints(120, 2, 5)
	s, err := repro.New(pts, repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(s, WithSlowLog(0, 4)).Handler())
	t.Cleanup(ts.Close)

	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 1, "k": 3}, nil)
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"k": 3}, nil) // error entry

	var slowlog struct {
		ThresholdUS int64 `json:"threshold_us"`
		Capacity    int   `json:"capacity"`
		Total       int64 `json:"total"`
		Entries     []struct {
			Route      string `json:"route"`
			Detail     string `json:"detail"`
			DurationUS int64  `json:"duration_us"`
			Error      string `json:"error"`
		} `json:"entries"`
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/slowlog", nil, &slowlog); status != http.StatusOK {
		t.Fatalf("slowlog status %d", status)
	}
	if slowlog.Capacity != 4 || slowlog.ThresholdUS != 0 {
		t.Errorf("slowlog config = %+v", slowlog)
	}
	if slowlog.Total != 2 || len(slowlog.Entries) != 2 {
		t.Fatalf("slowlog recorded %d/%d entries, want 2", slowlog.Total, len(slowlog.Entries))
	}
	// Newest first: the failing request came last.
	if slowlog.Entries[0].Error == "" || slowlog.Entries[1].Error != "" {
		t.Errorf("slowlog order/errors wrong: %+v", slowlog.Entries)
	}
	for _, e := range slowlog.Entries {
		if e.Route != "/v1/rknn" || e.Detail != "POST /v1/rknn" {
			t.Errorf("slowlog entry = %+v", e)
		}
	}
}

// TestApproximateMarker pins the honesty contract of the approximate tier:
// an LSH-backed engine marks every query response and /statsz with
// "approximate": true, while exact engines omit the marker entirely.
func TestApproximateMarker(t *testing.T) {
	pts := indextest.ClusteredPoints(300, 4, 4, 19)
	approx, err := repro.New(pts, repro.WithBackend(repro.BackendLSH), repro.WithScale(8))
	if err != nil {
		t.Fatalf("New(lsh): %v", err)
	}
	ats := httptest.NewServer(New(approx).Handler())
	t.Cleanup(ats.Close)

	var rknn map[string]json.RawMessage
	if status := call(t, "POST", ats.URL+"/v1/rknn", map[string]any{"id": 1, "k": 5}, &rknn); status != http.StatusOK {
		t.Fatalf("rknn status %d", status)
	}
	if string(rknn["approximate"]) != "true" {
		t.Errorf(`rknn response approximate = %s, want true`, rknn["approximate"])
	}
	var batch map[string]json.RawMessage
	if status := call(t, "POST", ats.URL+"/v1/rknn/batch", map[string]any{"ids": []int{1, 2}, "k": 5}, &batch); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if string(batch["approximate"]) != "true" {
		t.Errorf(`batch response approximate = %s, want true`, batch["approximate"])
	}
	var knn map[string]json.RawMessage
	if status := call(t, "POST", ats.URL+"/v1/knn", map[string]any{"point": pts[0], "k": 3}, &knn); status != http.StatusOK {
		t.Fatalf("knn status %d", status)
	}
	if string(knn["approximate"]) != "true" {
		t.Errorf(`knn response approximate = %s, want true`, knn["approximate"])
	}
	var stats struct {
		Engine map[string]json.RawMessage `json:"engine"`
	}
	if status := call(t, "GET", ats.URL+"/statsz", nil, &stats); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	if string(stats.Engine["approximate"]) != "true" {
		t.Errorf(`statsz engine.approximate = %s, want true`, stats.Engine["approximate"])
	}

	// Exact engine: the marker is omitted from responses (omitempty) and
	// /statsz reports false.
	_, _, ets := newTestServer(t)
	var exact map[string]json.RawMessage
	if status := call(t, "POST", ets.URL+"/v1/rknn", map[string]any{"id": 1, "k": 5}, &exact); status != http.StatusOK {
		t.Fatalf("exact rknn status %d", status)
	}
	if _, present := exact["approximate"]; present {
		t.Error("exact engine response carries an approximate marker")
	}
	var estats struct {
		Engine map[string]json.RawMessage `json:"engine"`
	}
	call(t, "GET", ets.URL+"/statsz", nil, &estats)
	if string(estats.Engine["approximate"]) != "false" {
		t.Errorf(`exact statsz engine.approximate = %s, want false`, estats.Engine["approximate"])
	}
}

// promHistogram parses one route's cumulative histogram out of the
// /metrics exposition into a telemetry.HistSnapshot, so statsz quantiles
// can be recomputed from exactly what a Prometheus scraper would see.
func promHistogram(t *testing.T, exposition, name, route string) *telemetry.HistSnapshot {
	t.Helper()
	snap := &telemetry.HistSnapshot{}
	var cum []float64
	prevCount := 0.0
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+"_bucket") || !strings.Contains(line, `route="`+route+`"`) {
			if strings.HasPrefix(line, name+"_sum") && strings.Contains(line, `route="`+route+`"`) {
				fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &snap.Sum)
			}
			continue
		}
		le := line[strings.Index(line, `le="`)+4:]
		le = le[:strings.Index(le, `"`)]
		var v float64
		fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v)
		delta := v - prevCount
		prevCount = v
		if le == "+Inf" {
			snap.Counts = append(snap.Counts, uint64(delta))
			continue
		}
		var bound float64
		fmt.Sscanf(le, "%g", &bound)
		cum = append(cum, bound)
		snap.Counts = append(snap.Counts, uint64(delta))
	}
	snap.Bounds = cum
	for _, c := range snap.Counts {
		snap.Count += c
	}
	return snap
}

// TestStatszQuantilesMatchMetricsInDegenerateRegimes pins that /statsz and
// /metrics describe the same distribution in the two regimes the histogram
// layout cannot resolve: every observation in the +Inf overflow bucket,
// and no observations at all. The statsz quantiles must be finite,
// JSON-encodable, and equal to the quantiles recomputed from the /metrics
// bucket counts.
func TestStatszQuantilesMatchMetricsInDegenerateRegimes(t *testing.T) {
	pts := indextest.RandPoints(60, 2, 3)
	s, err := repro.New(pts, repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(s)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Overflow regime: feed the /v1/rknn route observations far beyond the
	// highest finite latency bound (~21s) straight into its histogram.
	for i := 0; i < 5; i++ {
		srv.stats["/v1/rknn"].latency.Observe(100)
		srv.stats["/v1/rknn"].requests.Inc()
	}

	var statsz struct {
		Endpoints map[string]map[string]float64 `json:"endpoints"`
	}
	if status := call(t, "GET", ts.URL+"/statsz", nil, &statsz); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(raw)

	ep, ok := statsz.Endpoints["/v1/rknn"]
	if !ok {
		t.Fatal("statsz missing /v1/rknn")
	}
	fromMetrics := promHistogram(t, exposition, "rknn_http_request_duration_seconds", "/v1/rknn")
	if fromMetrics.Count != 5 {
		t.Fatalf("metrics histogram count %d, want 5", fromMetrics.Count)
	}
	for _, q := range []struct {
		key string
		q   float64
	}{{"p50_us", 0.50}, {"p95_us", 0.95}, {"p99_us", 0.99}} {
		got := ep[q.key]
		want := fromMetrics.Quantile(q.q) * 1e6
		if got != want {
			t.Errorf("overflow regime: statsz %s = %v, metrics-derived %v", q.key, got, want)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("overflow regime: statsz %s = %v, want finite", q.key, got)
		}
	}

	// Empty regime: a route that served nothing omits its quantile keys
	// (nothing to report beats reporting a fabricated zero), and the whole
	// document decoded cleanly above — both surfaces JSON/text-encodable.
	if ep, ok := statsz.Endpoints["/v1/knn"]; ok {
		if _, present := ep["p50_us"]; present {
			t.Error("empty regime: statsz fabricated quantiles for an unserved route")
		}
	}
	if h := promHistogram(t, exposition, "rknn_http_request_duration_seconds", "/v1/knn"); h.Count != 0 {
		t.Errorf("empty regime: metrics histogram count %d, want 0", h.Count)
	}
}
