// Shard-serving surface: the endpoints an `rknn shard-serve` daemon adds
// so a remote coordinator can drive the scatter-gather verification
// against it — the compact binary protocol of internal/wire on
// POST /v1/binary, the cluster handshake on GET /v1/shard/info, a
// remote-safe point fetch on GET /v1/points/{id}, and a "skip" parameter
// on /v1/knn for member self-exclusion. All of it is ordinary public API
// on any server whose engine exposes the ShardServing methods.

package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/wire"
)

// ShardServing is the optional shard-daemon surface of an Engine
// (*repro.Searcher and the durable wrapper implement it): batched
// forward-kNN probes with explicit self-exclusion, batched member-point
// resolution that never panics on hostile IDs, the assignment span behind
// the coordinator's shard-map rebuild, and the metric identity behind its
// configuration cross-check.
type ShardServing interface {
	KNNSkipBatch(qs []repro.KNNQuery) ([][]repro.Neighbor, error)
	MemberPoints(ids ...int) [][]float64
	IDSpan() int
	MetricIdentity() (uint8, float64, error)
}

// maxBinaryBody bounds /v1/binary request frames. Verification batches
// carry up to a few thousand float64 vectors, well under this; anything
// larger is a confused or hostile client.
const maxBinaryBody = 16 << 20

// handleBinary answers one frame of the binary shard protocol. Framing
// errors are HTTP errors (415 for a missing Content-Type, 400 for a
// malformed frame); application errors travel INSIDE a wire error frame
// with HTTP 200, so the remote client has exactly one place to look for
// engine semantics (deleted members, bad K) regardless of transport
// health.
func (srv *Server) handleBinary(w http.ResponseWriter, r *http.Request) error {
	// A strict Content-Type gate, not a decode attempt: feeding a JSON
	// body (or anything else) to the binary decoder must answer 415, never
	// reach the frame parser.
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, wire.ContentType) {
		return &apiError{
			status: http.StatusUnsupportedMediaType,
			err:    fmt.Errorf("binary endpoint wants Content-Type %s, got %q", wire.ContentType, ct),
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBinaryBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request frame exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("reading request frame: %v", err)
	}
	req, err := wire.DecodeRequest(body)
	if err != nil {
		return badRequest("malformed frame: %v", err)
	}

	var frame []byte
	switch req.Op {
	case wire.OpRkNN:
		var (
			ids []int
			st  repro.Stats
		)
		if req.ByID {
			ids, st, err = srv.s.ReverseKNNStatsContext(r.Context(), req.ID, req.K)
		} else {
			ids, st, err = srv.s.ReverseKNNPointStatsContext(r.Context(), req.Point, req.K)
		}
		if err != nil {
			frame = appendWireError(err)
			break
		}
		frame = wire.AppendRkNNResponse(nil, ids, wire.Stats{
			ScanDepth:     st.ScanDepth,
			FilterSize:    st.FilterSize,
			Excluded:      st.Excluded,
			LazyAccepts:   st.LazyAccepts,
			LazyRejects:   st.LazyRejects,
			Verified:      st.Verified,
			DistanceComps: st.DistanceComps,
			Omega:         st.Omega,
		})
	case wire.OpKNNBatch:
		sv, ok := srv.s.(ShardServing)
		if !ok {
			frame = wire.AppendError(nil, wire.ErrUnsupported, "engine has no shard-serving surface")
			break
		}
		qs := make([]repro.KNNQuery, len(req.KNN))
		for i, q := range req.KNN {
			qs[i] = repro.KNNQuery{Point: q.Point, K: q.K, Skip: q.Skip}
		}
		lists, err := sv.KNNSkipBatch(qs)
		if err != nil {
			frame = appendWireError(err)
			break
		}
		wl := make([][]wire.Neighbor, len(lists))
		for i, nn := range lists {
			wn := make([]wire.Neighbor, len(nn))
			for j, nb := range nn {
				wn[j] = wire.Neighbor{ID: nb.ID, Dist: nb.Dist}
			}
			wl[i] = wn
		}
		frame = wire.AppendKNNBatchResponse(nil, wl)
	case wire.OpPoints:
		sv, ok := srv.s.(ShardServing)
		if !ok {
			frame = wire.AppendError(nil, wire.ErrUnsupported, "engine has no shard-serving surface")
			break
		}
		frame = wire.AppendPointsResponse(nil, sv.MemberPoints(req.IDs...))
	default:
		return badRequest("unknown op %d", req.Op)
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frame)
	return nil
}

// appendWireError maps an engine error to a wire error frame, preserving
// the message (the coordinator reconstructs the exact in-process error
// string from it) and classifying deleted-member queries for errors.Is on
// the far side.
func appendWireError(err error) []byte {
	code := wire.ErrBadRequest
	if errors.Is(err, repro.ErrDeleted) {
		code = wire.ErrDeleted
	}
	return wire.AppendError(nil, code, err.Error())
}

// handleShardInfo is the cluster handshake: the daemon's role (shard
// number and count, from WithShardRole), the engine shape a coordinator
// must cross-check (dimension, scale, back-end, metric identity), and the
// two counts the shard-map rebuild needs (live points and assignment
// span).
func (srv *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) error {
	sv, ok := srv.s.(ShardServing)
	if !ok {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("engine has no shard-serving surface"),
		}
	}
	mid, mparam, err := sv.MetricIdentity()
	if err != nil {
		return fmt.Errorf("metric identity: %w", err)
	}
	info := map[string]any{
		"shard":        srv.shard,
		"shards":       srv.shards,
		"points":       srv.s.Len(),
		"id_span":      sv.IDSpan(),
		"dim":          srv.s.Dim(),
		"scale":        srv.s.Scale(),
		"metric_id":    mid,
		"metric_param": mparam,
	}
	if bk, ok := srv.s.(interface{ Backend() repro.Backend }); ok {
		info["backend"] = string(bk.Backend())
	}
	if srv.approx {
		info["approximate"] = true
	}
	return writeJSON(w, http.StatusOK, info)
}

// handlePointGet resolves one member ID to its coordinates — the
// remote-safe read behind the JSON framing's candidate fetch. Dead or
// never-assigned IDs answer 404.
func (srv *Server) handlePointGet(w http.ResponseWriter, r *http.Request) error {
	sv, ok := srv.s.(ShardServing)
	if !ok {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("engine has no shard-serving surface"),
		}
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return badRequest("invalid point id %q", r.PathValue("id"))
	}
	rows := sv.MemberPoints(id)
	if len(rows) != 1 || rows[0] == nil {
		return &apiError{status: http.StatusNotFound, err: fmt.Errorf("point %d not found", id)}
	}
	return writeJSON(w, http.StatusOK, map[string]any{"id": id, "point": rows[0]})
}
