package server

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	repro "repro"
	"repro/internal/benchjson"
	"repro/internal/dataset"
)

// BenchmarkNetworked measures scatter-gather batch throughput over a
// 3-daemon loopback cluster, JSON framing against the compact binary
// framing — the number the binary protocol exists for. JSON pays one HTTP
// round trip per candidate point and per verification probe; the binary
// protocol batches both into one frame per shard, so its queries/s should
// sit well above JSON's (the acceptance floor for this repo is 1.3x).
// Every run refreshes the "networked" section of BENCH_shard.json next to
// the in-process "sharded" numbers from BenchmarkSharded.
func BenchmarkNetworked(b *testing.B) {
	data := dataset.FCT(2000, 1)
	qids := make([]int, 64)
	for i := range qids {
		qids[i] = (i * 7) % data.Len()
	}
	qps := map[string]float64{}
	for _, framing := range []string{"json", "binary"} {
		cl := startClusterBench(b, data.Points, 3, framing == "json")
		b.Run("framing="+framing, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cl.co.BatchReverseKNNContext(context.Background(), qids, 10, 0); err != nil {
					b.Fatal(err)
				}
			}
			q := float64(len(qids)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(q, "queries/s")
			qps[framing] = q
		})
	}
	if len(qps) == 2 {
		payload := map[string]any{
			"benchmark":          "BenchmarkNetworked",
			"dataset":            "fct-2000",
			"shards":             3,
			"transport":          "loopback-http",
			"batch":              len(qids),
			"k":                  10,
			"gomaxprocs":         runtime.GOMAXPROCS(0),
			"queries_per_second": qps,
		}
		if qps["json"] > 0 {
			payload["binary_vs_json"] = qps["binary"] / qps["json"]
		}
		if err := benchjson.Merge("../../BENCH_shard.json", "networked", "sharded", payload); err != nil {
			b.Logf("could not write BENCH_shard.json: %v", err)
		}
	}
}

// startClusterBench is startCluster minus the tracing and slowlog layers
// the tests hang diagnostics off — the daemons here run the production
// fast path, so the framing comparison measures the protocols, not the
// test harness.
func startClusterBench(b *testing.B, pts [][]float64, S int, jsonFraming bool) *cluster {
	b.Helper()
	parts := splitShards(b, pts, S)
	specs := make([]repro.ShardSpec, S)
	out := &cluster{}
	for s := 0; s < S; s++ {
		eng, err := repro.New(parts[s], repro.WithScale(6))
		if err != nil {
			b.Fatalf("shard %d engine: %v", s, err)
		}
		ds := httptest.NewServer(New(eng, WithShardRole(s, S)).Handler())
		b.Cleanup(ds.Close)
		specs[s].Addrs = []string{ds.URL}
	}
	opts := []repro.CoordinatorOption{repro.WithHealthInterval(0)}
	if jsonFraming {
		opts = append(opts, repro.WithJSONFraming())
	}
	co, err := repro.NewCoordinator(context.Background(), specs, opts...)
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}
	b.Cleanup(func() { co.Close() })
	out.co = co
	return out
}
