package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/indextest"
	"repro/internal/trace"
)

// newTracedShardedServer serves a 2-shard engine with tracing enabled at
// the given head-sampling rate, sharing one ring with the engine.
func newTracedShardedServer(t *testing.T, sample float64) (*trace.Ring, *httptest.Server) {
	t.Helper()
	ss, err := repro.NewSharded(indextest.RandPoints(300, 4, 11), 2, repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(16)
	ss.EnableTracing(ring)
	ts := httptest.NewServer(New(ss, WithTracing(ring, sample), WithSlowLog(0, 8)).Handler())
	t.Cleanup(ts.Close)
	return ring, ts
}

func findJSONSpans(sp trace.SpanJSON, name string) []trace.SpanJSON {
	var out []trace.SpanJSON
	if sp.Name == name {
		out = append(out, sp)
	}
	for _, c := range sp.Children {
		out = append(out, findJSONSpans(c, name)...)
	}
	return out
}

// TestDebugExplainResponse pins the ?debug=1 contract on a sharded engine:
// the normal answer plus an inline span tree whose root is the HTTP span
// and whose scatter spans carry per-shard core stages, response headers
// naming the request and trace, and retention in the ring regardless of
// the sampling rate.
func TestDebugExplainResponse(t *testing.T) {
	ring, ts := newTracedShardedServer(t, 0) // sample 0: only debug/slow/upstream retain
	resp, err := http.Post(ts.URL+"/v1/rknn?debug=1", "application/json",
		strings.NewReader(`{"id":5,"k":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
	tp := resp.Header.Get("Traceparent")
	if _, _, ok := trace.ParseTraceparent(tp); !ok {
		t.Errorf("response Traceparent %q does not parse", tp)
	}
	var out struct {
		IDs   []int            `json:"ids"`
		Trace *trace.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?debug=1 response carries no trace")
	}
	if out.Trace.Root.Name != "http./v1/rknn" {
		t.Errorf("root span %q, want http./v1/rknn", out.Trace.Root.Name)
	}
	if got := len(findJSONSpans(out.Trace.Root, "shard.scatter")); got != 2 {
		t.Errorf("shard.scatter spans = %d, want 2", got)
	}
	if got := len(findJSONSpans(out.Trace.Root, "core.rknn")); got != 2 {
		t.Errorf("core.rknn spans = %d, want 2", got)
	}

	// Debug requests are always retained: the same trace is in the ring.
	found := false
	for _, tr := range ring.Snapshot() {
		if tr.ID() == out.Trace.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("debug trace %s not retained in the ring", out.Trace.TraceID)
	}
}

// TestTracesEndpoints drives a query through /v1/rknn, then reads it back
// through the admin surface: the summary listing and the full span tree by
// ID, which must contain the core stage spans with stats attributes.
func TestTracesEndpoints(t *testing.T) {
	_, ts := newTracedShardedServer(t, 1) // sample 1: everything retained
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/rknn", "application/json", strings.NewReader(`{"id":7,"k":5}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var listing struct {
		Capacity int             `json:"capacity"`
		Total    uint64          `json:"total"`
		Traces   []trace.Summary `json:"traces"`
	}
	if got := call(t, http.MethodGet, ts.URL+"/v1/admin/traces", nil, &listing); got != http.StatusOK {
		t.Fatalf("GET /v1/admin/traces: status %d", got)
	}
	if listing.Capacity != 16 || listing.Total != 3 || len(listing.Traces) != 3 {
		t.Fatalf("listing = cap %d, total %d, %d traces; want 16/3/3",
			listing.Capacity, listing.Total, len(listing.Traces))
	}
	if listing.Traces[0].Root != "http./v1/rknn" {
		t.Errorf("summary root %q, want http./v1/rknn", listing.Traces[0].Root)
	}

	var full trace.TraceJSON
	if got := call(t, http.MethodGet, ts.URL+"/v1/admin/traces/"+listing.Traces[0].TraceID, nil, &full); got != http.StatusOK {
		t.Fatalf("GET trace by id: status %d", got)
	}
	cores := findJSONSpans(full.Root, "core.rknn")
	if len(cores) != 2 {
		t.Fatalf("core.rknn spans = %d, want 2", len(cores))
	}
	if _, ok := cores[0].Attrs["scan_depth"]; !ok {
		t.Errorf("core.rknn span missing scan_depth attr: %+v", cores[0].Attrs)
	}

	var errOut map[string]string
	if got := call(t, http.MethodGet, ts.URL+"/v1/admin/traces/ffffffffffffffffffffffffffffffff", nil, &errOut); got != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", got)
	}
}

// TestTraceparentRoundTrip sends a sampled W3C traceparent and requires the
// response to continue the same trace ID and the ring to retain it even at
// sampling rate zero (upstream made the sampling decision).
func TestTraceparentRoundTrip(t *testing.T) {
	ring, ts := newTracedShardedServer(t, 0)
	const upstreamID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/rknn", strings.NewReader(`{"id":3,"k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+upstreamID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tp := resp.Header.Get("Traceparent")
	if !strings.Contains(tp, upstreamID) {
		t.Errorf("response traceparent %q does not continue upstream trace %s", tp, upstreamID)
	}
	if tr := ring.Get(upstreamID); tr == nil {
		t.Error("upstream-sampled trace was not retained in the ring")
	}
}

// TestSlowlogTraceLinkage pins the slowlog <-> trace join: with a zero
// threshold every request is slow, so its entry must carry the trace and
// request IDs that resolve against the trace ring.
func TestSlowlogTraceLinkage(t *testing.T) {
	ring, ts := newTracedShardedServer(t, 0)
	resp, err := http.Post(ts.URL+"/v1/rknn", "application/json", strings.NewReader(`{"id":9,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var slowlog struct {
		Entries []struct {
			Route     string `json:"route"`
			TraceID   string `json:"trace_id"`
			RequestID string `json:"request_id"`
		} `json:"entries"`
	}
	if got := call(t, http.MethodGet, ts.URL+"/v1/admin/slowlog", nil, &slowlog); got != http.StatusOK {
		t.Fatalf("GET slowlog: status %d", got)
	}
	var entry *struct {
		Route     string `json:"route"`
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
	}
	for i := range slowlog.Entries {
		if slowlog.Entries[i].Route == "/v1/rknn" {
			entry = &slowlog.Entries[i]
		}
	}
	if entry == nil {
		t.Fatalf("no /v1/rknn slowlog entry in %+v", slowlog.Entries)
	}
	if entry.TraceID == "" || entry.RequestID == "" {
		t.Fatalf("slowlog entry lacks trace linkage: %+v", *entry)
	}
	// A zero threshold marks the request slow, so tail capture must have
	// retained its trace in the ring despite the zero sampling rate.
	if tr := ring.Get(entry.TraceID); tr == nil {
		t.Errorf("slowlog trace %s not resolvable in the ring", entry.TraceID)
	}
}

// TestTracingDisabledSurface pins the untraced server: admin trace routes
// answer 501 and data-plane responses carry no tracing headers.
func TestTracingDisabledSurface(t *testing.T) {
	_, _, ts := newTestServer(t)
	var errOut map[string]string
	if got := call(t, http.MethodGet, ts.URL+"/v1/admin/traces", nil, &errOut); got != http.StatusNotImplemented {
		t.Errorf("GET /v1/admin/traces without tracing: status %d, want 501", got)
	}
	resp, err := http.Post(ts.URL+"/v1/rknn", "application/json", strings.NewReader(`{"id":1,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") != "" || resp.Header.Get("Traceparent") != "" {
		t.Error("untraced server emitted tracing headers")
	}
}

// TestHeadSamplingZeroKeepsFastTraces pins that at sample 0 a fast,
// non-debug, non-upstream-sampled request leaves nothing in the ring —
// the property the production overhead bound rests on.
func TestHeadSamplingZeroKeepsFastTraces(t *testing.T) {
	ss, err := repro.NewSharded(indextest.RandPoints(200, 3, 5), 2, repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(8)
	// Threshold high enough that no test query is "slow".
	ts := httptest.NewServer(New(ss, WithTracing(ring, 0), WithSlowLog(time.Hour, 8)).Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/rknn", "application/json", strings.NewReader(`{"id":2,"k":3}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if n := ring.Total(); n != 0 {
		t.Errorf("ring retained %d traces at sample 0, want 0", n)
	}
}
