package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/indextest"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newLiveServer builds a telemetry-enabled engine behind the full route
// table, optionally with an SLO and tracing — the live-operations test
// fixture: windowed /statsz, /v1/admin/slo, /v1/admin/analytics and
// OpenMetrics exemplars all need the same wiring.
func newLiveServer(t *testing.T, extra ...Option) (*telemetry.Registry, *httptest.Server) {
	t.Helper()
	pts := indextest.RandPoints(200, 3, 7)
	reg := telemetry.NewRegistry()
	s, err := repro.New(pts, repro.WithScale(100), repro.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(s, append([]Option{WithRegistry(reg)}, extra...)...).Handler())
	t.Cleanup(ts.Close)
	return reg, ts
}

func TestStatszWindowedViews(t *testing.T) {
	_, ts := newLiveServer(t)
	for i := 0; i < 12; i++ {
		call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": i, "k": 5}, nil)
	}
	var stats struct {
		Endpoints map[string]struct {
			Requests float64 `json:"requests"`
			Windows  map[string]struct {
				Count float64 `json:"count"`
				QPS   float64 `json:"qps"`
				P50US float64 `json:"p50_us"`
				P99US float64 `json:"p99_us"`
			} `json:"windows"`
		} `json:"endpoints"`
		Engine struct {
			Ops map[string]map[string]struct {
				Count float64 `json:"count"`
			} `json:"ops"`
			Windows map[string]struct {
				Generated    float64 `json:"candidates_generated"`
				PruningRatio float64 `json:"pruning_ratio"`
				Recall       float64 `json:"recall_estimate"`
			} `json:"windows"`
		} `json:"engine"`
	}
	if status := call(t, "GET", ts.URL+"/statsz", nil, &stats); status != http.StatusOK {
		t.Fatalf("statsz status %d", status)
	}
	ep, ok := stats.Endpoints["/v1/rknn"]
	if !ok {
		t.Fatal("statsz missing /v1/rknn")
	}
	for _, win := range []string{"1m", "5m"} {
		w, ok := ep.Windows[win]
		if !ok {
			t.Fatalf("route windows missing %q: %+v", win, ep.Windows)
		}
		// The 12 requests just happened, so they are inside both windows.
		if w.Count != 12 || w.QPS <= 0 {
			t.Fatalf("%s window = %+v, want count 12 with a positive rate", win, w)
		}
		if w.P99US < w.P50US || w.P50US <= 0 {
			t.Fatalf("%s window quantiles not ordered: %+v", win, w)
		}
	}
	opWin, ok := stats.Engine.Ops["rknn"]
	if !ok {
		t.Fatalf("engine ops missing rknn: %v", stats.Engine.Ops)
	}
	if opWin["1m"].Count != 12 {
		t.Fatalf("engine op 1m count = %v, want 12", opWin["1m"].Count)
	}
	ew, ok := stats.Engine.Windows["1m"]
	if !ok {
		t.Fatal("engine windows missing 1m")
	}
	if ew.Generated <= 0 {
		t.Fatalf("windowed candidates_generated = %v, want > 0", ew.Generated)
	}
	if ew.PruningRatio < 0 || ew.PruningRatio > 1 {
		t.Fatalf("pruning_ratio = %v, want within [0,1]", ew.PruningRatio)
	}
	// Exact engine: no recall estimator, reported as the -1 sentinel.
	if ew.Recall != -1 {
		t.Fatalf("recall_estimate = %v, want -1 on an exact engine", ew.Recall)
	}
}

func TestSlowlogRuntimeRetune(t *testing.T) {
	_, ts := newLiveServer(t, WithSlowLog(0, 8))
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 1, "k": 3}, nil)

	// The threshold-0 log records every route, including the admin GETs
	// this test itself issues, so all assertions count /v1/rknn entries.
	var slowlog struct {
		ThresholdUS int64 `json:"threshold_us"`
		Entries     []struct {
			Route string `json:"route"`
		} `json:"entries"`
	}
	rknnEntries := func() int {
		n := 0
		for _, e := range slowlog.Entries {
			if e.Route == "/v1/rknn" {
				n++
			}
		}
		return n
	}
	call(t, "GET", ts.URL+"/v1/admin/slowlog", nil, &slowlog)
	if rknnEntries() != 1 {
		t.Fatalf("rknn entries before retune = %d, want 1", rknnEntries())
	}

	// Raise the threshold at runtime: recorded entries survive, and a fast
	// request no longer qualifies.
	if status := call(t, "PUT", ts.URL+"/v1/admin/slowlog", map[string]any{"threshold_us": int64(time.Hour / time.Microsecond)}, &slowlog); status != http.StatusOK {
		t.Fatalf("PUT slowlog status %d", status)
	}
	if slowlog.ThresholdUS != int64(time.Hour/time.Microsecond) {
		t.Fatalf("threshold after retune = %d", slowlog.ThresholdUS)
	}
	if rknnEntries() != 1 {
		t.Fatalf("retune dropped entries: %d, want 1 (ring must be preserved)", rknnEntries())
	}
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 2, "k": 3}, nil)
	call(t, "GET", ts.URL+"/v1/admin/slowlog", nil, &slowlog)
	if rknnEntries() != 1 {
		t.Fatalf("hour threshold admitted a fast request: rknn entries = %d", rknnEntries())
	}
	// And back down to record-everything.
	call(t, "PUT", ts.URL+"/v1/admin/slowlog", map[string]any{"threshold_us": 0}, nil)
	call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": 3, "k": 3}, nil)
	call(t, "GET", ts.URL+"/v1/admin/slowlog", nil, &slowlog)
	if rknnEntries() != 2 {
		t.Fatalf("rknn entries after lowering threshold = %d, want 2", rknnEntries())
	}

	// Malformed retunes are rejected without touching the threshold.
	for name, body := range map[string]any{
		"missing field": map[string]any{},
		"negative":      map[string]any{"threshold_us": -5},
	} {
		if status := call(t, "PUT", ts.URL+"/v1/admin/slowlog", body, nil); status != http.StatusBadRequest {
			t.Errorf("%s: PUT status %d, want 400", name, status)
		}
	}
}

func TestSLOEndpointAndHealthDegradation(t *testing.T) {
	slo, err := telemetry.NewSLO(telemetry.SLOConfig{
		Objectives: []telemetry.SLOObjective{telemetry.AvailabilityObjective(0.999)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newLiveServer(t, WithSLO(slo))

	// Before any traffic: healthy, budget untouched.
	if status := call(t, "GET", ts.URL+"/healthz?slo=1", nil, nil); status != http.StatusOK {
		t.Fatalf("healthz before traffic = %d", status)
	}

	// An all-failing burst on a data-plane route: burn 1000x the budget in
	// both windows — the multi-window fast-burn rule must trip.
	for i := 0; i < 30; i++ {
		call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"k": 3}, nil) // missing id: 400
	}
	var sloResp struct {
		FastBurn   float64 `json:"fast_burn_threshold"`
		Degraded   bool    `json:"degraded"`
		Objectives []struct {
			Name            string             `json:"name"`
			Requests        int64              `json:"requests"`
			BadEvents       int64              `json:"bad_events"`
			BudgetRemaining float64            `json:"error_budget_remaining_ratio"`
			BurnRates       map[string]float64 `json:"burn_rates"`
			Degraded        bool               `json:"degraded"`
		} `json:"objectives"`
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/slo", nil, &sloResp); status != http.StatusOK {
		t.Fatalf("slo status %d", status)
	}
	if !sloResp.Degraded || len(sloResp.Objectives) != 1 {
		t.Fatalf("slo response = %+v, want degraded with one objective", sloResp)
	}
	obj := sloResp.Objectives[0]
	if obj.Name != "availability" || obj.BadEvents != 30 {
		t.Fatalf("objective = %+v", obj)
	}
	if obj.BudgetRemaining >= 0 {
		t.Fatalf("budget remaining = %v, want overspent (negative)", obj.BudgetRemaining)
	}
	if obj.BurnRates["1m"] < sloResp.FastBurn || obj.BurnRates["5m"] < sloResp.FastBurn {
		t.Fatalf("burn rates %v below the fast-burn threshold %v", obj.BurnRates, sloResp.FastBurn)
	}

	// /healthz?slo=1 degrades to 503; plain /healthz stays liveness-only.
	var health struct {
		Status string `json:"status"`
	}
	if status := call(t, "GET", ts.URL+"/healthz?slo=1", nil, &health); status != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz?slo=1 = %d, want 503", status)
	}
	if health.Status != "degraded" {
		t.Fatalf("health body = %+v", health)
	}
	if status := call(t, "GET", ts.URL+"/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("plain healthz during degradation = %d, want 200 (liveness only)", status)
	}

	// A server without an SLO reports 501, not an empty status.
	_, ts2 := newLiveServer(t)
	if status := call(t, "GET", ts2.URL+"/v1/admin/slo", nil, nil); status != http.StatusNotImplemented {
		t.Fatalf("slo without configuration = %d, want 501", status)
	}
}

func TestAnalyticsEndpoint(t *testing.T) {
	_, ts := newLiveServer(t)
	for i := 0; i < 20; i++ {
		call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": i % 4, "k": 5}, nil)
	}
	var ana struct {
		Window string `json:"window"`
		Top    []struct {
			Signature     string         `json:"signature"`
			Count         uint64         `json:"count"`
			MeanLatency   float64        `json:"mean_latency_seconds"`
			MeanScanDepth float64        `json:"mean_scan_depth"`
			Window        map[string]any `json:"window"`
		} `json:"top"`
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/analytics", nil, &ana); status != http.StatusOK {
		t.Fatalf("analytics status %d", status)
	}
	if ana.Window != "1m" || len(ana.Top) == 0 {
		t.Fatalf("analytics = %+v, want non-empty 1m top", ana)
	}
	var total uint64
	for _, e := range ana.Top {
		if !strings.Contains(e.Signature, "k=5") || !strings.Contains(e.Signature, "@") {
			t.Fatalf("signature %q missing k/grid-cell parts", e.Signature)
		}
		if e.MeanLatency <= 0 || e.MeanScanDepth <= 0 {
			t.Fatalf("entry accumulators empty: %+v", e)
		}
		if e.Window["count"] == nil {
			t.Fatalf("entry missing windowed digest: %+v", e)
		}
		total += e.Count
	}
	if total != 20 {
		t.Fatalf("count mass = %d, want 20", total)
	}
	// ?n bounds the list; bad parameters are rejected.
	if status := call(t, "GET", ts.URL+"/v1/admin/analytics?n=1&window=5m", nil, &ana); status != http.StatusOK || len(ana.Top) != 1 || ana.Window != "5m" {
		t.Fatalf("bounded analytics = %d %+v", status, ana)
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/analytics?n=0", nil, nil); status != http.StatusBadRequest {
		t.Fatalf("n=0 status %d, want 400", status)
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/analytics?window=2h", nil, nil); status != http.StatusBadRequest {
		t.Fatalf("window=2h status %d, want 400", status)
	}

	// An engine without telemetry has no sketch: 501, not an empty list.
	plain, err := repro.New(indextest.RandPoints(50, 2, 3), repro.WithScale(50))
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(New(queryOnly{plain}).Handler())
	t.Cleanup(pts.Close)
	if status := call(t, "GET", pts.URL+"/v1/admin/analytics", nil, nil); status != http.StatusNotImplemented {
		t.Fatalf("analytics without telemetry = %d, want 501", status)
	}
}

func TestOpenMetricsNegotiationAndExemplarResolution(t *testing.T) {
	ring := trace.NewRing(16)
	_, ts := newLiveServer(t, WithTracing(ring, 1))
	for i := 0; i < 5; i++ {
		call(t, "POST", ts.URL+"/v1/rknn", map[string]any{"id": i, "k": 5}, nil)
	}

	get := func(accept string) (string, string) {
		req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics (accept %q) status %d", accept, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw), resp.Header.Get("Content-Type")
	}

	// Without negotiation: the 0.0.4 exposition, no exemplar syntax.
	text004, ct := get("")
	if ct != telemetry.ContentType {
		t.Fatalf("default Content-Type = %q", ct)
	}
	if strings.Contains(text004, "# {") || strings.Contains(text004, "# EOF") {
		t.Fatal("0.0.4 exposition leaked OpenMetrics syntax")
	}

	// With negotiation: OpenMetrics, terminated, exemplar present.
	om, ct := get("application/openmetrics-text;version=1.0.0")
	if ct != telemetry.OpenMetricsContentType {
		t.Fatalf("negotiated Content-Type = %q, want %q", ct, telemetry.OpenMetricsContentType)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF terminator")
	}
	exRe := regexp.MustCompile(`rknn_http_request_duration_seconds_bucket\{[^}]*\} [0-9.e+-]+ # \{trace_id="([0-9a-f]{32})"\}`)
	m := exRe.FindStringSubmatch(om)
	if m == nil {
		t.Fatalf("no exemplar on the request-duration buckets:\n%s", om)
	}

	// The advertised trace must resolve: the exemplar is only set after the
	// trace is retained in the ring, so this lookup can never 404.
	var tr struct {
		TraceID string `json:"trace_id"`
	}
	if status := call(t, "GET", ts.URL+"/v1/admin/traces/"+m[1], nil, &tr); status != http.StatusOK {
		t.Fatalf("exemplar trace %s did not resolve: status %d", m[1], status)
	}
	if tr.TraceID != m[1] {
		t.Fatalf("resolved trace id = %q, want %q", tr.TraceID, m[1])
	}
}
