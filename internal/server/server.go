// Package server exposes a Searcher over HTTP/JSON — the serving layer of
// the `rknn serve` daemon. It is a thin, dependency-free stateless shell:
// all concurrency control lives in the snapshot machinery of the facade
// (see DESIGN.md), so handlers simply call into the engine and any number
// of requests may run in parallel, including point updates racing queries.
//
// Endpoints:
//
//	POST   /v1/rknn            {"id":3,"k":10} or {"point":[...],"k":10}
//	POST   /v1/rknn/batch      {"ids":[1,2,3],"k":10,"workers":0}
//	POST   /v1/knn             {"point":[...],"k":5}
//	POST   /v1/points          {"point":[...]}            (insert)
//	POST   /v1/points/batch    {"points":[[...],[...]]}   (bulk insert)
//	DELETE /v1/points/{id}                                (delete)
//	POST   /v1/admin/snapshot                             (cut a durable snapshot)
//	GET    /v1/admin/slowlog                              (recent slow requests)
//	PUT    /v1/admin/slowlog                              (retune the slow threshold live)
//	GET    /v1/admin/traces                               (recent trace summaries)
//	GET    /v1/admin/traces/{id}                          (one full span tree)
//	GET    /v1/admin/slo                                  (error budgets and burn rates)
//	GET    /v1/admin/analytics                            (hot query regions)
//	GET    /healthz                                       (?slo=1 degrades on fast burn)
//	GET    /statsz                                        (lifetime and windowed stats)
//	GET    /metrics                                       (Prometheus / OpenMetrics exposition)
//
// Every response is JSON except /metrics (Prometheus text format); errors
// are {"error":"..."} with a 4xx/5xx status. Request bodies are bounded
// (oversized bodies get a 413). Batch queries honor request cancellation:
// a client disconnect aborts the remaining queries of its batch. The admin
// snapshot endpoint requires an engine with a durable store (a
// repro.DurableSearcher); on a purely in-memory engine it answers 501.
// Bulk insert requires an engine with a batch write path (BulkInserter);
// engines without one likewise answer 501, steering clients to the
// single-point endpoint.
//
// Tracing: with WithTracing, every data-plane request (the /v1 query and
// write routes; observability routes are exempt) runs under a per-request
// span tree that the engine layers extend — scatter, per-shard scan/filter/
// verify, overlay reads, WAL appends. Completed traces enter a bounded
// lock-free ring when head sampling selects them, when the request crossed
// the slow-log threshold (tail capture), when the client sent a sampled W3C
// traceparent, or when it asked for ?debug=1 — which also returns the span
// tree inline with the normal /v1/rknn response. Responses echo or assign
// X-Request-ID and carry a traceparent header naming the trace.
//
// Observability: every route records request/error counters and a
// log-bucket latency histogram in an internal/telemetry Registry — its own
// by default, or one shared with the engine via WithRegistry, in which
// case /metrics also exposes the engine's pruning counters
// (rknn_candidates_*_total; see the repro facade). /statsz derives its
// latency quantiles from the same histograms that /metrics exposes, and a
// bounded ring buffer retains the slowest recent requests for
// /v1/admin/slowlog.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	repro "repro"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Engine is the query/update surface the server exposes. *repro.Searcher
// implements it; *repro.DurableSearcher adds write-ahead logging underneath
// the same methods (and unlocks the admin snapshot endpoint via Durable).
type Engine interface {
	Len() int
	Dim() int
	Scale() float64
	ReverseKNNContext(ctx context.Context, qid, k int) ([]int, error)
	ReverseKNNStatsContext(ctx context.Context, qid, k int) ([]int, repro.Stats, error)
	ReverseKNNPointContext(ctx context.Context, q []float64, k int) ([]int, error)
	ReverseKNNPointStatsContext(ctx context.Context, q []float64, k int) ([]int, repro.Stats, error)
	BatchReverseKNNContext(ctx context.Context, qids []int, k, workers int) ([][]int, error)
	KNNContext(ctx context.Context, q []float64, k int) ([]repro.Neighbor, error)
	InsertContext(ctx context.Context, p []float64) (int, error)
	DeleteContext(ctx context.Context, id int) (bool, error)
}

// Durable is the optional durability surface of an Engine: cutting an
// on-disk snapshot and reporting the store generation.
type Durable interface {
	Snapshot() error
	Generation() uint64
}

// Sharded is the optional sharding surface of an Engine
// (*repro.ShardedSearcher implements it): /statsz reports the shard count
// and the per-shard point and traffic counters when present.
type Sharded interface {
	Shards() int
	ShardStats() []repro.ShardInfo
}

// BulkInserter is the optional bulk-ingest surface of an Engine
// (*repro.Searcher, *repro.DurableSearcher and the sharded variants
// implement it): many points enter under one lock acquisition and — on a
// durable engine — one WAL write and at most one sync.
type BulkInserter interface {
	InsertBatchContext(ctx context.Context, pts [][]float64) ([]int, error)
}

// Incremental is the optional incremental-write-path surface of an Engine:
// the delta-overlay memtable size and the number of compactions folded so
// far, reported in /statsz alongside the engine shape.
type Incremental interface {
	MemtableLen() int
	Compactions() int64
}

// Approximate is the optional approximation surface of an Engine
// (*repro.Searcher and *repro.ShardedSearcher implement it). When it
// reports true, query responses carry "approximate": true and /statsz
// marks the engine approximate, so clients can never mistake an
// approximate answer for an exact one.
type Approximate interface {
	Approximate() bool
}

// LiveWindows is the optional live-operations surface of an Engine
// (*repro.Searcher and *repro.ShardedSearcher implement it when telemetry
// is enabled): per-operation windowed latency digests and windowed pruning
// aggregates, reported in /statsz next to the lifetime numbers.
type LiveWindows interface {
	QueryWindowStats() map[string]map[string]telemetry.WindowStats
	EngineWindowStats() map[string]repro.EngineWindow
}

// WorkloadAnalytics is the optional hot-region surface of an Engine: the
// Space-Saving sketch over query signatures behind /v1/admin/analytics.
type WorkloadAnalytics interface {
	WorkloadTopK(k int, window time.Duration) []telemetry.WorkloadStat
}

// Server wraps an Engine with HTTP handlers and request-level telemetry.
// All methods are safe for concurrent use.
type Server struct {
	s     Engine
	start time.Time
	reg   *telemetry.Registry
	slow  *telemetry.SlowLog
	stats map[string]*endpointStats // fixed key set, populated at New
	// approx is resolved once at New: whether the engine's answers are
	// approximate (see the Approximate interface).
	approx bool
	// ring/sample: per-request tracing (WithTracing). ring retains completed
	// traces; sample is the head-sampling probability for ring admission.
	// A nil ring disables tracing entirely.
	ring   *trace.Ring
	sample float64
	// slo tracks the configured service-level objectives against the
	// data-plane request stream (WithSLO); nil disables the SLO surfaces.
	slo *telemetry.SLO
	// shard/shards is the daemon's cluster role (WithShardRole), reported
	// by GET /v1/shard/info. Default 0-of-1: a standalone server.
	shard, shards int
}

// endpointStats holds one route's telemetry instruments, resolved once at
// New so the per-request path is lock-free. win wraps the same latency
// histogram with the sliding-window ring, so one Observe feeds both the
// lifetime exposition and the last-1m/5m views in /statsz.
type endpointStats struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
	win      *telemetry.Windowed
}

// routes is the fixed set of stats keys, one per endpoint.
var routes = []string{
	"/v1/rknn", "/v1/rknn/batch", "/v1/knn", "/v1/points", "/v1/points/batch", "/v1/binary",
	"/v1/shard/info", "/v1/admin/snapshot",
	"/v1/admin/slowlog", "/v1/admin/traces", "/v1/admin/slo", "/v1/admin/analytics",
	"/healthz", "/statsz", "/metrics",
}

// statszWindows are the trailing windows /statsz and /v1/admin/analytics
// report, mirroring the engine's statsWindows keys.
var statszWindows = map[string]time.Duration{
	"1m": time.Minute,
	"5m": 5 * time.Minute,
}

// tracedRoutes is the data plane: requests here run under a span tree when
// tracing is enabled. Observability routes are exempt — tracing a /metrics
// scrape would fill the ring with scrapes and bury the queries it exists
// to explain.
var tracedRoutes = map[string]bool{
	"/v1/rknn": true, "/v1/rknn/batch": true, "/v1/knn": true,
	"/v1/points": true, "/v1/points/batch": true, "/v1/binary": true,
}

// Slow-log defaults: requests at or above the threshold enter the ring.
const (
	DefaultSlowLogThreshold = 250 * time.Millisecond
	DefaultSlowLogSize      = 128
)

// Option configures New.
type Option func(*options)

type options struct {
	reg           *telemetry.Registry
	slowThreshold time.Duration
	slowSize      int
	ring          *trace.Ring
	sample        float64
	slo           *telemetry.SLO
	shard, shards int
}

// WithRegistry shares a telemetry Registry with the server instead of
// letting it create a private one. Pass the registry the engine was built
// with (repro.WithTelemetry) so /metrics exposes engine and HTTP series
// together.
func WithRegistry(reg *telemetry.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithSlowLog sets the slow-query log's recording threshold and capacity
// (entries); capacity < 1 keeps a single entry. A zero threshold records
// every request.
func WithSlowLog(threshold time.Duration, capacity int) Option {
	return func(o *options) { o.slowThreshold = threshold; o.slowSize = capacity }
}

// WithTracing enables per-request tracing: completed traces land in ring
// when head sampling (probability sample, clamped to [0,1]) selects them —
// slow requests, ?debug=1 requests, and requests carrying a sampled
// upstream traceparent are retained regardless. Pass the same ring to the
// engine's EnableTracing so background compaction traces land beside the
// request traces.
func WithTracing(ring *trace.Ring, sample float64) Option {
	return func(o *options) { o.ring = ring; o.sample = sample }
}

// WithSLO attaches a service-level-objective engine: every data-plane
// request is classified against its objectives, the burn-rate and
// error-budget gauges are registered on the server's registry, GET
// /v1/admin/slo reports the live status, and /healthz?slo=1 degrades when
// the multi-window fast-burn rule trips.
func WithSLO(slo *telemetry.SLO) Option {
	return func(o *options) { o.slo = slo }
}

// WithShardRole declares the daemon's place in a shard cluster: it
// serves shard `shard` of `shards` (reported by GET /v1/shard/info, and
// cross-checked by the coordinator against its own configuration). The
// default role is 0 of 1 — a standalone server.
func WithShardRole(shard, shards int) Option {
	return func(o *options) { o.shard = shard; o.shards = shards }
}

// New returns a Server over s.
func New(s Engine, opts ...Option) *Server {
	o := options{slowThreshold: DefaultSlowLogThreshold, slowSize: DefaultSlowLogSize, shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.reg == nil {
		o.reg = telemetry.NewRegistry()
	}
	if o.sample < 0 {
		o.sample = 0
	} else if o.sample > 1 {
		o.sample = 1
	}
	srv := &Server{
		s:      s,
		start:  time.Now(),
		reg:    o.reg,
		slow:   telemetry.NewSlowLog(o.slowThreshold, o.slowSize),
		stats:  make(map[string]*endpointStats, len(routes)),
		ring:   o.ring,
		sample: o.sample,
		slo:    o.slo,
		shard:  o.shard,
		shards: o.shards,
	}
	if a, ok := s.(Approximate); ok {
		srv.approx = a.Approximate()
	}
	requests := o.reg.CounterVec("rknn_http_requests_total", "HTTP requests served, by route.", "route")
	errs := o.reg.CounterVec("rknn_http_request_errors_total", "HTTP requests that failed, by route.", "route")
	latency := o.reg.HistogramVec("rknn_http_request_duration_seconds",
		"Handler latency, by route.", telemetry.DefaultLatencyBuckets, "route")
	for _, r := range routes {
		lh := latency.With(r)
		srv.stats[r] = &endpointStats{
			requests: requests.With(r),
			errors:   errs.With(r),
			latency:  lh,
			win:      telemetry.NewDefaultWindowed(lh),
		}
	}
	srv.slo.Register(o.reg)
	srv.registerEngineGauges()
	telemetry.RegisterRuntimeMetrics(o.reg)
	return srv
}

// registerEngineGauges exposes the engine's live shape as scrape-time
// gauges, including the optional durability and sharding surfaces.
func (srv *Server) registerEngineGauges() {
	s := srv.s
	srv.reg.GaugeFunc("rknn_points", "Live points in the engine.", func() float64 { return float64(s.Len()) })
	srv.reg.GaugeFunc("rknn_scale", "Scale parameter t in effect (0 when adaptive).", s.Scale)
	if d, ok := s.(Durable); ok {
		srv.reg.GaugeFunc("rknn_store_generation", "Current durable snapshot generation.",
			func() float64 { return float64(d.Generation()) })
	}
	if sh, ok := s.(Sharded); ok {
		srv.reg.GaugeFunc("rknn_shards", "Shard count of the scatter-gather engine.",
			func() float64 { return float64(sh.Shards()) })
	}
}

// Registry returns the telemetry registry backing /metrics.
func (srv *Server) Registry() *telemetry.Registry { return srv.reg }

// Handler returns the route table. The returned handler is safe for
// concurrent use and may be wrapped with middleware by the caller.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rknn", srv.instrument("/v1/rknn", srv.handleRkNN))
	mux.HandleFunc("POST /v1/rknn/batch", srv.instrument("/v1/rknn/batch", srv.handleRkNNBatch))
	mux.HandleFunc("POST /v1/knn", srv.instrument("/v1/knn", srv.handleKNN))
	mux.HandleFunc("POST /v1/points", srv.instrument("/v1/points", srv.handleInsert))
	mux.HandleFunc("POST /v1/points/batch", srv.instrument("/v1/points/batch", srv.handleInsertBatch))
	mux.HandleFunc("GET /v1/points/{id}", srv.instrument("/v1/points", srv.handlePointGet))
	mux.HandleFunc("DELETE /v1/points/{id}", srv.instrument("/v1/points", srv.handleDelete))
	mux.HandleFunc("POST /v1/binary", srv.instrument("/v1/binary", srv.handleBinary))
	mux.HandleFunc("GET /v1/shard/info", srv.instrument("/v1/shard/info", srv.handleShardInfo))
	mux.HandleFunc("POST /v1/admin/snapshot", srv.instrument("/v1/admin/snapshot", srv.handleSnapshot))
	mux.HandleFunc("GET /v1/admin/slowlog", srv.instrument("/v1/admin/slowlog", srv.handleSlowlog))
	mux.HandleFunc("PUT /v1/admin/slowlog", srv.instrument("/v1/admin/slowlog", srv.handleSlowlogPut))
	mux.HandleFunc("GET /v1/admin/traces", srv.instrument("/v1/admin/traces", srv.handleTraces))
	mux.HandleFunc("GET /v1/admin/traces/{id}", srv.instrument("/v1/admin/traces", srv.handleTraceGet))
	mux.HandleFunc("GET /v1/admin/slo", srv.instrument("/v1/admin/slo", srv.handleSLO))
	mux.HandleFunc("GET /v1/admin/analytics", srv.instrument("/v1/admin/analytics", srv.handleAnalytics))
	mux.HandleFunc("GET /healthz", srv.instrument("/healthz", srv.handleHealth))
	mux.HandleFunc("GET /statsz", srv.instrument("/statsz", srv.handleStats))
	mux.HandleFunc("GET /metrics", srv.instrument("/metrics", srv.handleMetrics))
	return mux
}

// apiError carries the HTTP status a handler failure maps to.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// instrument adapts an error-returning handler, recording per-endpoint
// request and error counters, a latency histogram observation, and a
// slow-log entry when the request crosses the threshold, and rendering
// failures as JSON.
func (srv *Server) instrument(route string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	st := srv.stats[route]
	traced := tracedRoutes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		var (
			tr       *trace.Trace
			upstream bool
			debug    bool
		)
		if traced && srv.ring != nil {
			// Every data-plane request runs under a trace; whether the ring
			// retains it is decided at the end, when the latency is known
			// (tail capture needs the spans of requests it could not predict
			// would be slow). Span recording costs allocations only.
			name := "http." + route
			if id, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				tr = trace.NewWithID(id, name, sampled)
				upstream = sampled
			} else {
				tr = trace.New(name, true)
			}
			debug = r.URL.Query().Get("debug") == "1"
			root := tr.Root()
			root.SetStr("method", r.Method)
			root.SetStr("path", r.URL.Path)
			rid := r.Header.Get("X-Request-ID")
			if rid == "" {
				rid = tr.ID()
			}
			root.SetStr("request_id", rid)
			w.Header().Set("X-Request-ID", rid)
			w.Header().Set("Traceparent", tr.Traceparent())
			// The span and the request ID ride the context so engines that
			// fan out over the network (the coordinator) can propagate both
			// to the next hop.
			r = r.WithContext(trace.WithRequestID(trace.With(r.Context(), root), rid))
		}
		err := h(w, r)
		elapsed := time.Since(begin)
		// end is the completion timestamp every windowed instrument banks
		// against — derived from the latency measurement, not a second
		// clock read.
		end := begin.Add(elapsed)
		st.requests.Inc()
		// One observation feeds the cumulative histogram /metrics exposes
		// and the slice ring behind the /statsz windows.
		st.win.Observe(elapsed.Seconds(), end)
		if traced {
			// SLO accounting covers the data plane only: a slow /metrics
			// scrape is not a user-visible latency violation.
			srv.slo.Observe(elapsed.Seconds(), err != nil, end)
		}
		entry := telemetry.SlowEntry{
			Time:     begin,
			Route:    route,
			Detail:   r.Method + " " + r.URL.Path,
			Duration: elapsed,
		}
		if err != nil {
			entry.Err = err.Error()
		}
		if tr != nil {
			root := tr.Root()
			if err != nil {
				root.SetStr("error", err.Error())
			}
			root.EndWithDuration(elapsed)
			entry.TraceID = tr.ID()
			entry.RequestID = w.Header().Get("X-Request-ID")
			slow := elapsed >= srv.slow.Threshold()
			if slow || debug || upstream || rand.Float64() < srv.sample {
				srv.ring.Put(tr)
				// Retain the trace as this latency bucket's exemplar only
				// after it enters the ring, so the OpenMetrics trace_id
				// always resolves via /v1/admin/traces/{id}.
				st.latency.SetExemplar(elapsed.Seconds(), tr.ID(), end)
			}
		}
		srv.slow.Observe(entry)
		if err == nil {
			return
		}
		st.errors.Inc()
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(err, &ae) {
			status = ae.status
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
}

// writeJSON commits the response. Encode failures after the header is sent
// mean the client went away mid-body; there is no useful recovery and
// returning them would make instrument write a second header and count a
// served query as an endpoint error, so they are dropped here.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	return nil
}

// maxRequestBody bounds every JSON request body. 1 MiB fits batches of
// ~10^5 query IDs and points of ~10^5 dimensions — far past any legitimate
// request — while keeping a hostile stream from buffering unbounded input.
const maxRequestBody = 1 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// rknnRequest selects a query by member ID or by arbitrary point (exactly
// one of the two), at reverse-neighbor rank K.
type rknnRequest struct {
	ID        *int      `json:"id,omitempty"`
	Point     []float64 `json:"point,omitempty"`
	K         int       `json:"k"`
	WithStats bool      `json:"stats,omitempty"`
}

type rknnResponse struct {
	IDs []int `json:"ids"`
	// Approximate marks answers from an approximate engine (LSH back-end):
	// the ID list may miss true reverse neighbors. Omitted (false) on exact
	// engines.
	Approximate bool         `json:"approximate,omitempty"`
	Stats       *repro.Stats `json:"stats,omitempty"`
	// Trace is the EXPLAIN-style span tree of this very request, present
	// only under ?debug=1 on a tracing-enabled server.
	Trace *trace.TraceJSON `json:"trace,omitempty"`
}

func (srv *Server) handleRkNN(w http.ResponseWriter, r *http.Request) error {
	var req rknnRequest
	if err := decode(w, r, &req); err != nil {
		return err
	}
	if (req.ID == nil) == (req.Point == nil) {
		return badRequest("exactly one of id and point must be given")
	}
	var (
		ids []int
		st  repro.Stats
		err error
	)
	ctx := r.Context()
	switch {
	case req.ID != nil && req.WithStats:
		ids, st, err = srv.s.ReverseKNNStatsContext(ctx, *req.ID, req.K)
	case req.ID != nil:
		ids, err = srv.s.ReverseKNNContext(ctx, *req.ID, req.K)
	case req.WithStats:
		ids, st, err = srv.s.ReverseKNNPointStatsContext(ctx, req.Point, req.K)
	default:
		ids, err = srv.s.ReverseKNNPointContext(ctx, req.Point, req.K)
	}
	if err != nil {
		return badRequest("%v", err)
	}
	resp := rknnResponse{IDs: emptyNotNull(ids), Approximate: srv.approx}
	if req.WithStats {
		resp.Stats = &st
	}
	if r.URL.Query().Get("debug") == "1" {
		if tr := trace.FromContext(ctx).Trace(); tr != nil {
			// Exported before the root span ends; the export clamps open
			// spans to now, so the tree reads as "time spent so far".
			tj := tr.Export()
			resp.Trace = &tj
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

type batchRequest struct {
	IDs     []int `json:"ids"`
	K       int   `json:"k"`
	Workers int   `json:"workers,omitempty"`
}

type batchResponse struct {
	Results [][]int `json:"results"`
	// Approximate as in rknnResponse, once for the whole batch.
	Approximate bool `json:"approximate,omitempty"`
}

func (srv *Server) handleRkNNBatch(w http.ResponseWriter, r *http.Request) error {
	var req batchRequest
	if err := decode(w, r, &req); err != nil {
		return err
	}
	results, err := srv.s.BatchReverseKNNContext(r.Context(), req.IDs, req.K, req.Workers)
	if err != nil {
		// A cancelled request context is the client disconnecting or
		// timing out, not a bad request: there is nobody to answer and
		// counting it as an endpoint error would bury real 400s.
		if r.Context().Err() != nil {
			return nil
		}
		return badRequest("%v", err)
	}
	for i := range results {
		results[i] = emptyNotNull(results[i])
	}
	return writeJSON(w, http.StatusOK, batchResponse{Results: results, Approximate: srv.approx})
}

type knnRequest struct {
	Point []float64 `json:"point"`
	K     int       `json:"k"`
	// Skip excludes one member ID from the result — the self-exclusion a
	// member verification needs, made explicit because "fetch k+1 and
	// drop the member" is not equivalent under duplicate-point distance
	// ties. Requires an engine with the shard-serving surface.
	Skip *int `json:"skip,omitempty"`
}

type knnResponse struct {
	Neighbors []neighbor `json:"neighbors"`
	// Approximate as in rknnResponse.
	Approximate bool `json:"approximate,omitempty"`
}

type neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

func (srv *Server) handleKNN(w http.ResponseWriter, r *http.Request) error {
	var req knnRequest
	if err := decode(w, r, &req); err != nil {
		return err
	}
	var (
		nn  []repro.Neighbor
		err error
	)
	if req.Skip != nil && *req.Skip >= 0 {
		sv, ok := srv.s.(ShardServing)
		if !ok {
			return &apiError{
				status: http.StatusNotImplemented,
				err:    errors.New(`engine has no shard-serving surface (drop "skip")`),
			}
		}
		var lists [][]repro.Neighbor
		lists, err = sv.KNNSkipBatch([]repro.KNNQuery{{Point: req.Point, K: req.K, Skip: *req.Skip}})
		if err == nil {
			nn = lists[0]
		}
	} else {
		nn, err = srv.s.KNNContext(r.Context(), req.Point, req.K)
	}
	if err != nil {
		return badRequest("%v", err)
	}
	out := make([]neighbor, len(nn))
	for i, nb := range nn {
		out[i] = neighbor{ID: nb.ID, Dist: nb.Dist}
	}
	return writeJSON(w, http.StatusOK, knnResponse{Neighbors: out, Approximate: srv.approx})
}

type insertRequest struct {
	Point []float64 `json:"point"`
}

func (srv *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req insertRequest
	if err := decode(w, r, &req); err != nil {
		return err
	}
	id, err := srv.s.InsertContext(r.Context(), req.Point)
	if err != nil {
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

type insertBatchRequest struct {
	Points [][]float64 `json:"points"`
}

// handleInsertBatch ingests many points through the engine's batch write
// path. The batch is atomic on a single engine (all points land or none);
// IDs come back in request order.
func (srv *Server) handleInsertBatch(w http.ResponseWriter, r *http.Request) error {
	bi, ok := srv.s.(BulkInserter)
	if !ok {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("engine has no batch write path (use POST /v1/points)"),
		}
	}
	var req insertBatchRequest
	if err := decode(w, r, &req); err != nil {
		return err
	}
	if len(req.Points) == 0 {
		return badRequest("points must be non-empty")
	}
	ids, err := bi.InsertBatchContext(r.Context(), req.Points)
	if err != nil {
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusCreated, map[string][]int{"ids": emptyNotNull(ids)})
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return badRequest("invalid point id %q", r.PathValue("id"))
	}
	ok, err := srv.s.DeleteContext(r.Context(), id)
	if err != nil {
		return badRequest("%v", err)
	}
	if !ok {
		return &apiError{status: http.StatusNotFound, err: fmt.Errorf("point %d not found", id)}
	}
	return writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// handleSnapshot cuts a durable snapshot generation on engines that have a
// store attached (see repro.DurableSearcher.Snapshot).
func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	d, ok := srv.s.(Durable)
	if !ok {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("no durable store attached (start the server with -data-dir)"),
		}
	}
	if err := d.Snapshot(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": d.Generation(),
		"points":     srv.s.Len(),
	})
}

// handleHealth reports liveness; with ?slo=1 on an SLO-configured server
// it additionally turns 503 while the multi-window fast-burn rule trips,
// so a load balancer can shed traffic from an instance actively burning
// its error budget.
func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	body := map[string]any{
		"status":         "ok",
		"points":         srv.s.Len(),
		"dim":            srv.s.Dim(),
		"uptime_seconds": time.Since(srv.start).Seconds(),
	}
	status := http.StatusOK
	if r.URL.Query().Get("slo") == "1" && srv.slo.Degraded() {
		body["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	return writeJSON(w, status, body)
}

// statsz reports per-endpoint request counters and latency quantiles plus
// the engine parameters, the observability surface behind capacity
// planning for the daemon. The quantiles are estimated from the same
// log-bucket histograms /metrics exposes, so the two surfaces can never
// disagree.
func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	now := time.Now()
	endpoints := make(map[string]map[string]any, len(srv.stats))
	for route, st := range srv.stats {
		ep := map[string]any{
			"requests": st.requests.Value(),
			"errors":   st.errors.Value(),
		}
		// One snapshot per route, so the reported quantiles all describe
		// the same moment even while requests keep landing.
		if snap := st.latency.Snapshot(); snap.Count > 0 {
			ep["p50_us"] = snap.Quantile(0.50) * 1e6
			ep["p95_us"] = snap.Quantile(0.95) * 1e6
			ep["p99_us"] = snap.Quantile(0.99) * 1e6
			ep["mean_us"] = snap.Sum / float64(snap.Count) * 1e6
			// The windowed views next to the lifetime quantiles: what the
			// route looked like over the last minute and five.
			wins := make(map[string]any, len(statszWindows))
			active := false
			for key, d := range statszWindows {
				ws := st.win.StatsAt(d, now)
				wins[key] = windowJSON(ws)
				active = active || ws.Count > 0
			}
			if active {
				ep["windows"] = wins
			}
		}
		endpoints[route] = ep
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rt := map[string]any{
		"goroutines":       runtime.NumGoroutine(),
		"heap_alloc_bytes": ms.HeapAlloc,
		"gc_cycles":        ms.NumGC,
	}
	engine := map[string]any{
		"points":      srv.s.Len(),
		"dim":         srv.s.Dim(),
		"scale":       srv.s.Scale(),
		"approximate": srv.approx,
	}
	if d, ok := srv.s.(Durable); ok {
		engine["generation"] = d.Generation()
	}
	if inc, ok := srv.s.(Incremental); ok {
		engine["memtable_points"] = inc.MemtableLen()
		engine["compactions"] = inc.Compactions()
	}
	if sh, ok := srv.s.(Sharded); ok {
		engine["shard_count"] = sh.Shards()
		engine["shards"] = sh.ShardStats()
	}
	if lw, ok := srv.s.(LiveWindows); ok {
		if ops := lw.QueryWindowStats(); len(ops) > 0 {
			byOp := make(map[string]any, len(ops))
			for op, wins := range ops {
				byWin := make(map[string]any, len(wins))
				for key, ws := range wins {
					byWin[key] = windowJSON(ws)
				}
				byOp[op] = byWin
			}
			engine["ops"] = byOp
		}
		if wins := lw.EngineWindowStats(); len(wins) > 0 {
			engine["windows"] = wins
		}
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"endpoints": endpoints,
		"engine":    engine,
		"runtime":   rt,
	})
}

// windowJSON renders one window digest in /statsz's unit conventions
// (microsecond quantiles, q/s rate).
func windowJSON(ws telemetry.WindowStats) map[string]any {
	return map[string]any{
		"count":   ws.Count,
		"qps":     ws.QPS,
		"mean_us": ws.Mean * 1e6,
		"p50_us":  ws.P50 * 1e6,
		"p95_us":  ws.P95 * 1e6,
		"p99_us":  ws.P99 * 1e6,
	}
}

// handleMetrics serves the Prometheus text exposition of the server's
// registry — including the engine's pruning counters when the engine was
// built over the same registry. A scraper negotiating OpenMetrics via the
// Accept header gets the 1.0 exposition instead, which carries the
// trace-ID exemplars on histogram buckets; the 0.0.4 output is untouched
// by that feature. Encoding errors after the header is sent mean the
// scraper went away; as in writeJSON, they are dropped.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
		_ = srv.reg.WriteOpenMetrics(w)
		return nil
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = srv.reg.WritePrometheus(w)
	return nil
}

// slowEntry is the JSON shape of one slow-log record.
type slowEntry struct {
	Time       time.Time `json:"time"`
	Route      string    `json:"route"`
	Detail     string    `json:"detail,omitempty"`
	DurationUS int64     `json:"duration_us"`
	Error      string    `json:"error,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	RequestID  string    `json:"request_id,omitempty"`
}

// slowlogBody renders the slow log's current state — shared by GET and
// PUT so a retune response reflects exactly what a subsequent GET would.
func (srv *Server) slowlogBody() map[string]any {
	snap := srv.slow.Snapshot()
	entries := make([]slowEntry, len(snap))
	for i, e := range snap {
		entries[i] = slowEntry{
			Time:       e.Time,
			Route:      e.Route,
			Detail:     e.Detail,
			DurationUS: e.Duration.Microseconds(),
			Error:      e.Err,
			TraceID:    e.TraceID,
			RequestID:  e.RequestID,
		}
	}
	return map[string]any{
		"threshold_us": srv.slow.Threshold().Microseconds(),
		"capacity":     srv.slow.Cap(),
		"total":        srv.slow.Total(),
		"entries":      entries,
	}
}

// handleSlowlog reports the retained slow requests, newest first, plus the
// log's configuration and lifetime total.
func (srv *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, http.StatusOK, srv.slowlogBody())
}

// handleSlowlogPut retunes the slow-query threshold on the live daemon —
// chasing an incident means lowering the bar without a restart, and a
// restart would lose the ring. Retained entries are preserved; the
// response reflects the now-active threshold and mirrors the GET shape.
func (srv *Server) handleSlowlogPut(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		ThresholdUS *int64 `json:"threshold_us"`
	}
	if err := decode(w, r, &req); err != nil {
		return err
	}
	if req.ThresholdUS == nil {
		return badRequest("threshold_us must be given")
	}
	if *req.ThresholdUS < 0 {
		return badRequest("threshold_us must be non-negative, got %d", *req.ThresholdUS)
	}
	srv.slow.SetThreshold(time.Duration(*req.ThresholdUS) * time.Microsecond)
	return writeJSON(w, http.StatusOK, srv.slowlogBody())
}

// handleSLO reports the live error budgets and burn rates of the
// configured objectives.
func (srv *Server) handleSLO(w http.ResponseWriter, r *http.Request) error {
	if srv.slo == nil {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("no SLO configured (start the server with -slo-latency or -slo-availability)"),
		}
	}
	now := time.Now()
	short, long := srv.slo.Windows()
	return writeJSON(w, http.StatusOK, map[string]any{
		"fast_burn_threshold":  srv.slo.FastBurn(),
		"short_window_seconds": short.Seconds(),
		"long_window_seconds":  long.Seconds(),
		"degraded":             srv.slo.DegradedAt(now),
		"objectives":           srv.slo.StatusAt(now),
	})
}

// analyticsEntry is one hot region in the /v1/admin/analytics response:
// the sketch's digest plus the windowed latency view in /statsz units.
type analyticsEntry struct {
	telemetry.WorkloadStat
	Window map[string]any `json:"window"`
}

// handleAnalytics reports the hottest query-region signatures: the
// operator-facing readout of workload locality. ?n bounds the list
// (default 10), ?window selects the latency window ("1m" default, "5m").
func (srv *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) error {
	wa, ok := srv.s.(WorkloadAnalytics)
	if !ok {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("engine has no workload analytics (enable telemetry)"),
		}
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			return badRequest("invalid n %q", v)
		}
		n = parsed
	}
	winKey := r.URL.Query().Get("window")
	if winKey == "" {
		winKey = "1m"
	}
	window, ok := statszWindows[winKey]
	if !ok {
		return badRequest("unknown window %q (want 1m or 5m)", winKey)
	}
	top := wa.WorkloadTopK(n, window)
	entries := make([]analyticsEntry, len(top))
	for i, ws := range top {
		entries[i] = analyticsEntry{WorkloadStat: ws, Window: windowJSON(ws.Window)}
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"window": winKey,
		"top":    entries,
	})
}

// handleTraces reports summaries of the retained traces, newest first.
func (srv *Server) handleTraces(w http.ResponseWriter, r *http.Request) error {
	if srv.ring == nil {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("tracing is not enabled (start the server with -trace-sample)"),
		}
	}
	snap := srv.ring.Snapshot()
	sums := make([]trace.Summary, len(snap))
	for i, tr := range snap {
		sums[i] = tr.Summarize()
	}
	return writeJSON(w, http.StatusOK, map[string]any{
		"capacity": srv.ring.Cap(),
		"total":    srv.ring.Total(),
		"traces":   sums,
	})
}

// handleTraceGet returns one retained trace's full span tree by hex ID.
func (srv *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) error {
	if srv.ring == nil {
		return &apiError{
			status: http.StatusNotImplemented,
			err:    errors.New("tracing is not enabled (start the server with -trace-sample)"),
		}
	}
	id := r.PathValue("id")
	tr := srv.ring.Get(id)
	if tr == nil {
		return &apiError{status: http.StatusNotFound, err: fmt.Errorf("trace %q not found (evicted or never retained)", id)}
	}
	return writeJSON(w, http.StatusOK, tr.Export())
}

// emptyNotNull keeps empty result lists serializing as [] rather than null.
func emptyNotNull(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}
