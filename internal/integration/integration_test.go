// Package integration cross-checks every RkNN method in the repository on
// shared workloads: run exactly (saturating parameters), all six methods
// must return identical answers; run approximately, the approximation
// semantics documented for each method must hold.
package integration

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/covertree"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/mrknncop"
	"repro/internal/rdnntree"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/sft"
	"repro/internal/tpl"
	"repro/internal/vecmath"
)

// method is one RkNN implementation under a fixed (dataset, k).
type method struct {
	name  string
	query func(qid int) ([]int, error)
}

// buildAll constructs every method in exact configuration over the points.
func buildAll(t *testing.T, pts [][]float64, k int) []method {
	t.Helper()
	metric := vecmath.Euclidean{}
	fwd, err := scan.New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := covertree.New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	rdt, err := core.NewQuerier(fwd, core.Params{K: k, T: 64})
	if err != nil {
		t.Fatal(err)
	}
	rdtCover, err := core.NewQuerier(ct, core.Params{K: k, T: 64})
	if err != nil {
		t.Fatal(err)
	}
	sftQ, err := sft.NewQuerier(fwd, sft.Params{K: k, Alpha: float64(len(pts)) / float64(k)})
	if err != nil {
		t.Fatal(err)
	}
	cop, err := mrknncop.New(pts, metric, k+1, fwd)
	if err != nil {
		t.Fatal(err)
	}
	rdnn, err := rdnntree.New(pts, metric, k, fwd)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rtree.New(pts, metric, nil)
	if err != nil {
		t.Fatal(err)
	}
	tplQ, err := tpl.New(rt, k)
	if err != nil {
		t.Fatal(err)
	}
	return []method{
		{"RDT(scan,t=64)", func(q int) ([]int, error) { r, err := rdt.ByID(q); return resultIDs(r, err) }},
		{"RDT(cover,t=64)", func(q int) ([]int, error) { r, err := rdtCover.ByID(q); return resultIDs(r, err) }},
		{"SFT(α=n/k)", func(q int) ([]int, error) { r, err := sftQ.ByID(q); return sftIDs(r, err) }},
		{"MRkNNCoP", func(q int) ([]int, error) { r, err := cop.Query(q, k); return copIDs(r, err) }},
		{"RdNN-Tree", rdnn.Query},
		{"TPL", func(q int) ([]int, error) { r, err := tplQ.ByID(q); return tplIDs(r, err) }},
	}
}

func resultIDs(r *core.Result, err error) ([]int, error) {
	if err != nil {
		return nil, err
	}
	return r.IDs, nil
}

func sftIDs(r *sft.Result, err error) ([]int, error) {
	if err != nil {
		return nil, err
	}
	return r.IDs, nil
}

func copIDs(r *mrknncop.Result, err error) ([]int, error) {
	if err != nil {
		return nil, err
	}
	return r.IDs, nil
}

func tplIDs(r *tpl.Result, err error) ([]int, error) {
	if err != nil {
		return nil, err
	}
	return r.IDs, nil
}

// TestAllMethodsAgreeExactly is the capstone consistency check: on several
// workload shapes and ranks, every method in exact configuration must match
// the brute-force answer (and therefore each other).
func TestAllMethodsAgreeExactly(t *testing.T) {
	workloads := []struct {
		name string
		pts  [][]float64
	}{
		{"sequoia", dataset.Sequoia(300, 1).Points},
		{"fct", dataset.FCT(250, 2).Points},
		{"uniform-8d", dataset.Uniform("u", 250, 8, 3).Points},
		{"gaussmix", dataset.GaussianMixture("g", 300, 5, 6, 0.05, 4).Points},
	}
	for _, w := range workloads {
		w := w
		for _, k := range []int{1, 7} {
			k := k
			t.Run(fmt.Sprintf("%s/k=%d", w.name, k), func(t *testing.T) {
				truth, err := bruteforce.New(w.pts, vecmath.Euclidean{})
				if err != nil {
					t.Fatal(err)
				}
				methods := buildAll(t, w.pts, k)
				for qid := 0; qid < 12; qid++ {
					want, err := truth.RkNNByID(qid, k)
					if err != nil {
						t.Fatal(err)
					}
					for _, m := range methods {
						got, err := m.query(qid)
						if err != nil {
							t.Fatalf("%s qid=%d: %v", m.name, qid, err)
						}
						if !equalIDs(got, want) {
							t.Errorf("%s qid=%d: got %v, want %v", m.name, qid, got, want)
						}
					}
				}
			})
		}
	}
}

// TestApproximateSemantics pins the documented behaviour of the approximate
// configurations: perfect precision for plain RDT and SFT at any parameter,
// and recall that saturates as the parameter grows.
func TestApproximateSemantics(t *testing.T) {
	pts := dataset.FCT(400, 9).Points
	metric := vecmath.Euclidean{}
	fwd, err := scan.New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.New(pts, metric)
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	for qid := 0; qid < 10; qid++ {
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, tv := range []float64{0.5, 2, 6} {
			qr, err := core.NewQuerier(fwd, core.Params{K: k, T: tv})
			if err != nil {
				t.Fatal(err)
			}
			res, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			if p := bruteforce.Precision(res.IDs, want); p != 1 {
				t.Errorf("RDT t=%g qid=%d: precision %.3f", tv, qid, p)
			}
		}
		for _, alpha := range []float64{1, 4} {
			qr, err := sft.NewQuerier(fwd, sft.Params{K: k, Alpha: alpha})
			if err != nil {
				t.Fatal(err)
			}
			res, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			if p := bruteforce.Precision(res.IDs, want); p != 1 {
				t.Errorf("SFT α=%g qid=%d: precision %.3f", alpha, qid, p)
			}
		}
	}
}

// TestMethodsShareForwardIndex checks that one index instance can serve
// several methods concurrently — the deployment mode the harness uses.
func TestMethodsShareForwardIndex(t *testing.T) {
	pts := dataset.Sequoia(400, 5).Points
	var fwd index.Index
	fwd, err := covertree.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	rdt, err := core.NewQuerier(fwd, core.Params{K: k, T: 32, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	sftQ, err := sft.NewQuerier(fwd, sft.Params{K: k, Alpha: 80})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		for qid := 0; qid < 30; qid++ {
			if _, err := rdt.ByID(qid); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for qid := 0; qid < 30; qid++ {
			if _, err := sftQ.ByID(qid); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
