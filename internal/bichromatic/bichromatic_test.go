package bichromatic

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/indextest"
	"repro/internal/kdtree"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func build(t *testing.T, services, clients [][]float64, kmax int) *Index {
	t.Helper()
	svc, err := scan.New(services, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(svc, clients, kmax)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ix
}

// bruteBichromatic computes the reference answer: clients whose distance to
// q is within their k-th nearest service distance.
func bruteBichromatic(services, clients [][]float64, q []float64, k int) []int {
	m := vecmath.Euclidean{}
	var out []int
	for c, cp := range clients {
		dists := make([]float64, len(services))
		for s, sp := range services {
			dists[s] = m.Distance(cp, sp)
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		if m.Distance(cp, q) <= dists[idx] {
			out = append(out, c)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	services := indextest.RandPoints(20, 2, 1)
	clients := indextest.RandPoints(30, 2, 2)
	svc, err := scan.New(services, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, clients, 3); err == nil {
		t.Error("accepted nil service index")
	}
	if _, err := New(svc, nil, 3); err == nil {
		t.Error("accepted empty clients")
	}
	if _, err := New(svc, clients, 0); err == nil {
		t.Error("accepted kmax=0")
	}
	if _, err := New(svc, indextest.RandPoints(5, 3, 3), 3); err == nil {
		t.Error("accepted dimension mismatch")
	}
}

func TestExactness(t *testing.T) {
	services := indextest.RandPoints(40, 2, 3)
	clients := indextest.ClusteredPoints(400, 2, 6, 4)
	ix := build(t, services, clients, 5)
	for _, k := range []int{1, 3, 5} {
		for qid := 0; qid < len(services); qid += 7 {
			got, err := ix.Query(qid, k)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			want := bruteBichromatic(services, clients, services[qid], k)
			if !equalIDs(got, want) {
				t.Errorf("k=%d service=%d: got %v, want %v", k, qid, got, want)
			}
		}
	}
}

func TestQueryPointProspectiveSite(t *testing.T) {
	services := indextest.RandPoints(30, 2, 5)
	clients := indextest.RandPoints(300, 2, 6)
	ix := build(t, services, clients, 3)
	q := []float64{0.5, 0.5}
	got, err := ix.QueryPoint(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBichromatic(services, clients, q, 3)
	if !equalIDs(got, want) {
		t.Errorf("prospective site: got %d clients, want %d", len(got), len(want))
	}
	if _, err := ix.QueryPoint([]float64{1}, 2); err == nil {
		t.Error("accepted dimension mismatch")
	}
}

func TestQueryErrors(t *testing.T) {
	ix := build(t, indextest.RandPoints(10, 2, 7), indextest.RandPoints(20, 2, 8), 4)
	if _, err := ix.Query(-1, 2); err == nil {
		t.Error("accepted negative service id")
	}
	if _, err := ix.Query(10, 2); err == nil {
		t.Error("accepted out-of-range service id")
	}
	if _, err := ix.Query(0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := ix.Query(0, 5); err == nil {
		t.Error("accepted k above KMax")
	}
}

func TestKMaxClampedToServiceCount(t *testing.T) {
	ix := build(t, indextest.RandPoints(3, 2, 9), indextest.RandPoints(10, 2, 10), 50)
	if ix.KMax() != 3 {
		t.Errorf("KMax = %d, want clamped 3", ix.KMax())
	}
	if ix.PrecomputeTime <= 0 {
		t.Error("PrecomputeTime not recorded")
	}
	if d := ix.ServiceDist(0, 3); d <= 0 {
		t.Errorf("ServiceDist = %g", d)
	}
}

func TestWithTreeServiceIndex(t *testing.T) {
	// The service index can be any back-end; use a k-d tree here.
	services := indextest.RandPoints(50, 3, 11)
	clients := indextest.RandPoints(200, 3, 12)
	svc, err := kdtree.New(services, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(svc, clients, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBichromatic(services, clients, services[5], 4)
	if !equalIDs(got, want) {
		t.Errorf("kdtree services: got %v, want %v", got, want)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
