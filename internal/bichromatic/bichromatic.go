// Package bichromatic implements bichromatic reverse k-nearest neighbor
// queries: the data is partitioned into services and clients, and the
// reverse neighbors of a service q are the clients that have q among their
// k nearest *services* (paper Section 1, citing Korn & Muthukrishnan's
// influence sets: "one object type represents services, and the other
// represents clients").
//
// The structure precomputes, for every client, its distances to its KMax
// nearest services (one forward kNN query per client against a service
// index), and stores the clients in an R-tree whose interior entries
// aggregate the subtree maximum of the k-th service distance per rank.
// A query for service q at rank k then reduces to a pruned range-style
// traversal: report the clients c with d(q, c) ≤ d_k^services(c), cutting
// any subtree whose bounding box lies farther from q than its most generous
// k-th service distance — the RdNN-Tree idea transplanted to the
// bichromatic setting, made rank-flexible by storing all ranks up to KMax.
package bichromatic

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/rtree"
	"repro/internal/vecmath"
)

// Index answers bichromatic RkNN queries for any rank up to KMax.
type Index struct {
	services index.Index
	clients  [][]float64
	metric   vecmath.Metric
	kmax     int
	// kdist[c][k-1] is client c's distance to its k-th nearest service.
	kdist [][]float64
	// trees[k-1] is the client R-tree augmented with rank-k distances.
	// Built lazily per rank on first use to keep construction linear in
	// the ranks actually queried.
	trees []*rtree.Tree
	// PrecomputeTime records the kNN table cost.
	PrecomputeTime time.Duration
}

// New precomputes the client-to-service kNN distance table. services must
// index the service points under the same metric used for clients; kmax
// bounds the supported ranks.
func New(services index.Index, clients [][]float64, kmax int) (*Index, error) {
	if services == nil {
		return nil, errors.New("bichromatic: nil service index")
	}
	if kmax <= 0 {
		return nil, fmt.Errorf("bichromatic: KMax must be positive, got %d", kmax)
	}
	if err := vecmath.ValidateAllFor(services.Metric(), clients); err != nil {
		return nil, err
	}
	if len(clients[0]) != services.Dim() {
		return nil, fmt.Errorf("bichromatic: client dimension %d, service dimension %d: %w",
			len(clients[0]), services.Dim(), vecmath.ErrDimensionMismatch)
	}
	if kmax > services.Len() {
		kmax = services.Len()
	}
	start := time.Now()
	kdist := make([][]float64, len(clients))
	for c, p := range clients {
		nn := services.KNN(p, kmax, -1)
		row := make([]float64, kmax)
		for i := 0; i < kmax; i++ {
			if i < len(nn) {
				row[i] = nn[i].Dist
			} else {
				row[i] = row[i-1]
			}
		}
		kdist[c] = row
	}
	return &Index{
		services:       services,
		clients:        clients,
		metric:         services.Metric(),
		kmax:           kmax,
		kdist:          kdist,
		trees:          make([]*rtree.Tree, kmax),
		PrecomputeTime: time.Since(start),
	}, nil
}

// KMax returns the largest supported rank.
func (ix *Index) KMax() int { return ix.kmax }

// ServiceDist returns client c's distance to its k-th nearest service.
func (ix *Index) ServiceDist(c, k int) float64 { return ix.kdist[c][k-1] }

// tree returns the rank-k client R-tree, building it on first use.
func (ix *Index) tree(k int) (*rtree.Tree, error) {
	if t := ix.trees[k-1]; t != nil {
		return t, nil
	}
	vals := make([]float64, len(ix.clients))
	for c := range ix.clients {
		vals[c] = ix.kdist[c][k-1]
	}
	t, err := rtree.New(ix.clients, ix.metric, vals)
	if err != nil {
		return nil, err
	}
	ix.trees[k-1] = t
	return t, nil
}

// Query returns the clients that count service qid among their k nearest
// services, sorted ascending by client ID.
func (ix *Index) Query(qid, k int) ([]int, error) {
	if qid < 0 || qid >= ix.services.Len() {
		return nil, fmt.Errorf("bichromatic: service id %d out of range [0,%d)", qid, ix.services.Len())
	}
	return ix.query(ix.services.Point(qid), k)
}

// QueryPoint answers the query for a prospective service location not yet
// in the service set: the clients that would adopt it among their k nearest
// services — the influence set driving facility placement.
func (ix *Index) QueryPoint(q []float64, k int) ([]int, error) {
	if err := vecmath.ValidateFor(ix.services.Metric(), q); err != nil {
		return nil, err
	}
	if len(q) != ix.services.Dim() {
		return nil, vecmath.ErrDimensionMismatch
	}
	return ix.query(q, k)
}

func (ix *Index) query(q []float64, k int) ([]int, error) {
	if k <= 0 || k > ix.kmax {
		return nil, fmt.Errorf("bichromatic: k must be in [1,%d], got %d", ix.kmax, k)
	}
	t, err := ix.tree(k)
	if err != nil {
		return nil, err
	}
	boxer := ix.metric.(vecmath.BoxDistancer) // enforced by rtree.New
	var result []int
	var visit func(v rtree.NodeView)
	visit = func(v rtree.NodeView) {
		for i := 0; i < v.NumEntries(); i++ {
			lo, hi := v.EntryMBR(i)
			if boxer.BoxDistance(q, lo, hi) > v.EntryValue(i) {
				continue
			}
			if v.IsLeaf() {
				c := v.EntryID(i)
				if ix.metric.Distance(q, ix.clients[c]) <= ix.kdist[c][k-1] {
					result = append(result, c)
				}
				continue
			}
			visit(v.EntryChild(i))
		}
	}
	visit(t.Root())
	sort.Ints(result)
	return result, nil
}
