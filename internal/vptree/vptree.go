// Package vptree implements a vantage-point tree (Yianilos 1993) with
// incremental nearest-neighbor traversal, batch kNN and range queries.
//
// Like the cover tree, the VP-tree needs only the metric axioms, making it a
// second general-metric back-end for RDT's forward search. Each interior
// node holds a vantage point and a median radius mu; the inner subtree holds
// points with d(vantage, ·) <= mu and the outer subtree the rest, so the
// triangle inequality yields the shell bounds |d(q,v) − mu| used for
// pruning.
package vptree

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// leafSize is the bucket capacity below which splitting stops.
const leafSize = 12

type node struct {
	vantage int     // point ID of the vantage point (also a data point)
	mu      float64 // median distance separating inner from outer
	inner   *node
	outer   *node
	ids     []int // leaf bucket (nil for interior nodes)
}

func (n *node) isLeaf() bool { return n.ids != nil }

// Tree is an immutable vantage-point tree. It implements index.Index and is
// safe for concurrent readers.
type Tree struct {
	points [][]float64
	metric vecmath.Metric
	dim    int
	root   *node
}

var _ index.Index = (*Tree)(nil)

// New builds a VP-tree over points using a deterministic internal RNG for
// vantage selection. The metric must satisfy the triangle inequality.
func New(points [][]float64, metric vecmath.Metric) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("vptree: nil metric")
	}
	if !metric.Metricity() {
		return nil, errors.New("vptree: metric must satisfy the triangle inequality")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	t := &Tree{points: points, metric: metric, dim: len(points[0])}
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(0x5eed))
	t.root = t.build(ids, rng)
	return t, nil
}

// Builder constructs VP-trees; it implements index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric)
}

// Name implements index.Builder.
func (Builder) Name() string { return "vptree" }

func (t *Tree) build(ids []int, rng *rand.Rand) *node {
	if len(ids) == 0 {
		return nil
	}
	if len(ids) <= leafSize {
		return &node{vantage: -1, ids: ids}
	}
	// Swap a random vantage to the front, then partition the rest around
	// the median distance to it.
	vi := rng.Intn(len(ids))
	ids[0], ids[vi] = ids[vi], ids[0]
	vantage := ids[0]
	rest := ids[1:]
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = t.metric.Distance(t.points[vantage], t.points[id])
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	mu := dists[order[mid]]
	var innerIDs, outerIDs []int
	for _, oi := range order {
		if dists[oi] <= mu {
			innerIDs = append(innerIDs, rest[oi])
		} else {
			outerIDs = append(outerIDs, rest[oi])
		}
	}
	if len(outerIDs) == 0 {
		// Everything ties at or below mu (duplicate-heavy data): avoid
		// an empty outer child by keeping a flat bucket.
		return &node{vantage: -1, ids: ids}
	}
	return &node{
		vantage: vantage,
		mu:      mu,
		inner:   t.build(innerIDs, rng),
		outer:   t.build(outerIDs, rng),
	}
}

// Len implements index.Index.
func (t *Tree) Len() int { return len(t.points) }

// Dim implements index.Index.
func (t *Tree) Dim() int { return t.dim }

// Point implements index.Index.
func (t *Tree) Point(id int) []float64 { return t.points[id] }

// Metric implements index.Index.
func (t *Tree) Metric() vecmath.Metric { return t.metric }

// frontierEntry carries the accumulated lower bound for a pending subtree.
type frontierEntry struct {
	n  *node
	lb float64
}

// childBounds returns the lower bounds valid for the inner and outer
// children of an interior node, given d = d(q, vantage) and the node's
// inherited bound.
func childBounds(inherited, d, mu float64) (inner, outer float64) {
	inner, outer = inherited, inherited
	if excess := d - mu; excess > inner {
		inner = excess // q is outside the inner ball by at least this
	}
	if gap := mu - d; gap > outer {
		outer = gap // q is inside the ball, mu − d below the shell
	}
	return inner, outer
}

// NewCursor implements index.Index using the two-heap scheme shared with the
// other tree back-ends.
func (t *Tree) NewCursor(q []float64, skipID int) index.Cursor {
	c := &cursor{t: t, q: q, skipID: skipID,
		nodes: pqueue.NewMin[frontierEntry](64), ready: pqueue.NewMin[int](64)}
	if t.root != nil {
		c.nodes.Push(0, frontierEntry{n: t.root})
	}
	return c
}

type cursor struct {
	t      *Tree
	q      []float64
	skipID int
	nodes  *pqueue.Min[frontierEntry]
	ready  *pqueue.Min[int]
}

func (c *cursor) Next() (index.Neighbor, bool) {
	for {
		readyTop, hasReady := c.ready.Peek()
		nodeTop, hasNode := c.nodes.Peek()
		if hasReady && (!hasNode || readyTop.Priority <= nodeTop.Priority) {
			it, _ := c.ready.Pop()
			return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
		}
		if !hasNode {
			return index.Neighbor{}, false
		}
		it, _ := c.nodes.Pop()
		e := it.Value
		if e.n.isLeaf() {
			for _, id := range e.n.ids {
				if id == c.skipID {
					continue
				}
				c.ready.Push(c.t.metric.Distance(c.q, c.t.points[id]), id)
			}
			continue
		}
		d := c.t.metric.Distance(c.q, c.t.points[e.n.vantage])
		if e.n.vantage != c.skipID {
			c.ready.Push(d, e.n.vantage)
		}
		innerLB, outerLB := childBounds(e.lb, d, e.n.mu)
		if e.n.inner != nil {
			c.nodes.Push(innerLB, frontierEntry{n: e.n.inner, lb: innerLB})
		}
		if e.n.outer != nil {
			c.nodes.Push(outerLB, frontierEntry{n: e.n.outer, lb: outerLB})
		}
	}
}

// KNN implements index.Index with best-first descent and bound pruning.
func (t *Tree) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 || t.root == nil {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	nodes := pqueue.NewMin[frontierEntry](64)
	nodes.Push(0, frontierEntry{n: t.root})
	for {
		it, ok := nodes.Pop()
		if !ok {
			break
		}
		if bound, full := top.Bound(); full && it.Priority > bound {
			break
		}
		e := it.Value
		if e.n.isLeaf() {
			for _, id := range e.n.ids {
				if id == skipID {
					continue
				}
				d := t.metric.Distance(q, t.points[id])
				if bound, full := top.Bound(); !full || d < bound {
					top.Offer(d, id)
				}
			}
			continue
		}
		d := t.metric.Distance(q, t.points[e.n.vantage])
		if e.n.vantage != skipID {
			if bound, full := top.Bound(); !full || d < bound {
				top.Offer(d, e.n.vantage)
			}
		}
		innerLB, outerLB := childBounds(e.lb, d, e.n.mu)
		bound, full := top.Bound()
		if e.n.inner != nil && (!full || innerLB <= bound) {
			nodes.Push(innerLB, frontierEntry{n: e.n.inner, lb: innerLB})
		}
		if e.n.outer != nil && (!full || outerLB <= bound) {
			nodes.Push(outerLB, frontierEntry{n: e.n.outer, lb: outerLB})
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index.
func (t *Tree) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	t.forEachInRange(q, r, skipID, func(id int, d float64) {
		out = append(out, index.Neighbor{ID: id, Dist: d})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index.
func (t *Tree) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	t.forEachInRange(q, r, skipID, func(int, float64) { count++ })
	return count
}

func (t *Tree) forEachInRange(q []float64, r float64, skipID int, emit func(id int, d float64)) {
	var visit func(n *node)
	visit = func(n *node) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			for _, id := range n.ids {
				if id == skipID {
					continue
				}
				if d := t.metric.Distance(q, t.points[id]); d <= r {
					emit(id, d)
				}
			}
			return
		}
		d := t.metric.Distance(q, t.points[n.vantage])
		if d <= r && n.vantage != skipID {
			emit(n.vantage, d)
		}
		if d-n.mu <= r { // inner shell reachable
			visit(n.inner)
		}
		if n.mu-d <= r { // outer shell reachable
			visit(n.outer)
		}
	}
	visit(t.root)
}
