package vptree

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/vecmath"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(pts [][]float64, m vecmath.Metric) (index.Index, error) {
		return New(pts, m)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{1}}, vecmath.SquaredEuclidean{}); err == nil {
		t.Error("accepted a non-metric distance")
	}
	if _, err := New([][]float64{{math.Inf(1)}}, vecmath.Euclidean{}); err == nil {
		t.Error("accepted Inf coordinates")
	}
}

func TestAngularMetricBackend(t *testing.T) {
	// The VP-tree accepts any true metric, including angular distance —
	// the capability the k-d tree lacks.
	pts := indextest.RandPoints(150, 6, 3)
	ix, err := New(pts, vecmath.Angular{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := vecmath.Angular{}
	q := pts[0]
	got := ix.KNN(q, 3, 0)
	if len(got) != 3 {
		t.Fatalf("KNN returned %d items", len(got))
	}
	// Compare against brute force.
	best := math.Inf(1)
	for id, p := range pts {
		if id == 0 {
			continue
		}
		if d := m.Distance(q, p); d < best {
			best = d
		}
	}
	if math.Abs(got[0].Dist-best) > 1e-12 {
		t.Errorf("nearest angular dist %g, want %g", got[0].Dist, best)
	}
}

// TestAllPointsIdentical exercises the flat-bucket fallback when the outer
// partition would be empty.
func TestAllPointsIdentical(t *testing.T) {
	pts := make([][]float64, 80)
	for i := range pts {
		pts[i] = []float64{7, 7}
	}
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := ix.CountRange([]float64{7, 7}, 0, -1); got != 80 {
		t.Errorf("CountRange = %d, want 80", got)
	}
	nn := ix.KNN([]float64{7, 7}, 80, 3)
	if len(nn) != 79 {
		t.Errorf("KNN with skip = %d items, want 79", len(nn))
	}
}
