// Package indextest provides a conformance suite that every similarity-search
// back-end in this module must pass: equivalence of cursor, kNN, range and
// count-range results with the brute-force reference on randomized workloads.
// Each index package runs the suite from its own tests.
package indextest

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/vecmath"
)

// RandPoints generates n points with coordinates uniform in [0,1)^dim.
func RandPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// ClusteredPoints generates points in c tight Gaussian clusters, the shape
// that stresses tree balance and duplicate-ish regions.
func ClusteredPoints(n, dim, c int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := RandPoints(c, dim, seed+1)
	pts := make([][]float64, n)
	for i := range pts {
		ctr := centers[rng.Intn(c)]
		p := make([]float64, dim)
		for j := range p {
			p[j] = ctr[j] + rng.NormFloat64()*0.01
		}
		pts[i] = p
	}
	return pts
}

// refKNN computes exact k nearest neighbors by full sort.
func refKNN(pts [][]float64, metric vecmath.Metric, q []float64, k, skipID int) []index.Neighbor {
	var all []index.Neighbor
	for id, p := range pts {
		if id == skipID {
			continue
		}
		all = append(all, index.Neighbor{ID: id, Dist: metric.Distance(q, p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Run exercises the back-end built by build over several workloads and
// metrics, comparing every query primitive against brute force.
func Run(t *testing.T, build func(points [][]float64, metric vecmath.Metric) (index.Index, error)) {
	t.Helper()
	workloads := []struct {
		name string
		pts  [][]float64
	}{
		{"uniform-3d", RandPoints(200, 3, 1)},
		{"uniform-12d", RandPoints(150, 12, 2)},
		{"clustered-5d", ClusteredPoints(200, 5, 8, 3)},
		{"with-duplicates", withDuplicates(RandPoints(100, 4, 4), 20, 5)},
		{"single-point", RandPoints(1, 3, 6)},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			ix, err := build(w.pts, vecmath.Euclidean{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			verifyIndex(t, ix, w.pts, vecmath.Euclidean{})
		})
	}
	t.Run("manhattan-metric", func(t *testing.T) {
		pts := RandPoints(150, 4, 7)
		ix, err := build(pts, vecmath.Manhattan{})
		if err != nil {
			t.Skipf("back-end rejects L1: %v", err)
		}
		verifyIndex(t, ix, pts, vecmath.Manhattan{})
	})
}

func withDuplicates(pts [][]float64, copies, ofFirst int) [][]float64 {
	out := append([][]float64{}, pts...)
	for i := 0; i < copies; i++ {
		out = append(out, vecmath.Clone(pts[i%ofFirst]))
	}
	return out
}

func verifyIndex(t *testing.T, ix index.Index, pts [][]float64, metric vecmath.Metric) {
	t.Helper()
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(pts))
	}
	if ix.Dim() != len(pts[0]) {
		t.Fatalf("Dim = %d, want %d", ix.Dim(), len(pts[0]))
	}
	rng := rand.New(rand.NewSource(42))
	queries := 8
	if len(pts) < queries {
		queries = len(pts)
	}
	for qi := 0; qi < queries; qi++ {
		var q []float64
		skipID := -1
		if qi%2 == 0 && len(pts) > 1 {
			skipID = rng.Intn(len(pts))
			q = pts[skipID]
		} else {
			q = make([]float64, len(pts[0]))
			for j := range q {
				q[j] = rng.Float64()
			}
		}
		verifyCursor(t, ix, pts, metric, q, skipID)
		for _, k := range []int{1, 3, len(pts)} {
			verifyKNN(t, ix, pts, metric, q, k, skipID)
		}
		for _, r := range []float64{0, 0.05, 0.3, 10} {
			verifyRange(t, ix, pts, metric, q, r, skipID)
		}
	}
}

func verifyCursor(t *testing.T, ix index.Index, pts [][]float64, metric vecmath.Metric, q []float64, skipID int) {
	t.Helper()
	want := refKNN(pts, metric, q, len(pts), skipID)
	cur := ix.NewCursor(q, skipID)
	prev := -1.0
	var got []index.Neighbor
	seen := map[int]bool{}
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.Dist < prev-1e-12 {
			t.Fatalf("cursor out of order: %g after %g", nb.Dist, prev)
		}
		if seen[nb.ID] {
			t.Fatalf("cursor repeated id %d", nb.ID)
		}
		if nb.ID == skipID {
			t.Fatalf("cursor returned skipped id %d", skipID)
		}
		if wantD := metric.Distance(q, pts[nb.ID]); math.Abs(wantD-nb.Dist) > 1e-9 {
			t.Fatalf("cursor distance for id %d is %g, true %g", nb.ID, nb.Dist, wantD)
		}
		seen[nb.ID] = true
		prev = nb.Dist
		got = append(got, nb)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("cursor position %d: dist %g, want %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func verifyKNN(t *testing.T, ix index.Index, pts [][]float64, metric vecmath.Metric, q []float64, k, skipID int) {
	t.Helper()
	got := ix.KNN(q, k, skipID)
	want := refKNN(pts, metric, q, k, skipID)
	if len(got) != len(want) {
		t.Fatalf("KNN(k=%d) returned %d items, want %d", k, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("KNN(k=%d) position %d: dist %g, want %g", k, i, got[i].Dist, want[i].Dist)
		}
		if got[i].ID == skipID {
			t.Fatalf("KNN returned skipped id")
		}
	}
}

func verifyRange(t *testing.T, ix index.Index, pts [][]float64, metric vecmath.Metric, q []float64, r float64, skipID int) {
	t.Helper()
	got := ix.Range(q, r, skipID)
	count := ix.CountRange(q, r, skipID)
	if len(got) != count {
		t.Fatalf("Range(r=%g) len %d != CountRange %d", r, len(got), count)
	}
	wantCount := 0
	for id, p := range pts {
		if id == skipID {
			continue
		}
		if metric.Distance(q, p) <= r {
			wantCount++
		}
	}
	if count != wantCount {
		t.Fatalf("CountRange(r=%g) = %d, want %d", r, count, wantCount)
	}
	prev := -1.0
	for _, nb := range got {
		if nb.Dist > r {
			t.Fatalf("Range returned dist %g > r %g", nb.Dist, r)
		}
		if nb.Dist < prev {
			t.Fatalf("Range result not sorted")
		}
		prev = nb.Dist
	}
}
