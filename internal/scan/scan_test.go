package scan

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"unsafe"

	"repro/internal/vecmath"
)

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{1, 2}, {3}}, vecmath.Euclidean{}); err == nil {
		t.Error("accepted ragged dataset")
	}
	if _, err := New([][]float64{{math.NaN()}}, vecmath.Euclidean{}); err == nil {
		t.Error("accepted NaN coordinates")
	}
}

func TestAccessors(t *testing.T) {
	pts := randPoints(20, 4, 1)
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 20 || ix.Dim() != 4 {
		t.Errorf("Len/Dim = %d/%d, want 20/4", ix.Len(), ix.Dim())
	}
	if ix.Metric().Name() != "euclidean" {
		t.Errorf("Metric = %s", ix.Metric().Name())
	}
	if !reflect.DeepEqual(ix.Point(3), pts[3]) {
		t.Error("Point should return the row's coordinates")
	}
	// Rows are copied into one contiguous arena, not retained by reference.
	if &ix.Point(3)[0] == &pts[3][0] {
		t.Error("Point should be arena-backed, not the caller's slice")
	}
	if p2, p3 := ix.Point(2), ix.Point(3); uintptr(unsafe.Pointer(&p3[0]))-uintptr(unsafe.Pointer(&p2[0])) != uintptr(ix.Dim())*8 {
		t.Error("adjacent rows should be contiguous in the arena")
	}
}

func TestCursorOrderingAndSkip(t *testing.T) {
	pts := randPoints(50, 3, 2)
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	q := pts[7]
	cur := ix.NewCursor(q, 7)
	prev := -1.0
	seen := map[int]bool{}
	count := 0
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		count++
		if nb.ID == 7 {
			t.Fatal("cursor returned the skipped ID")
		}
		if nb.Dist < prev {
			t.Fatalf("cursor out of order: %g after %g", nb.Dist, prev)
		}
		if seen[nb.ID] {
			t.Fatalf("cursor repeated ID %d", nb.ID)
		}
		seen[nb.ID] = true
		prev = nb.Dist
	}
	if count != 49 {
		t.Errorf("cursor yielded %d items, want 49", count)
	}
}

func TestKNNMatchesCursor(t *testing.T) {
	pts := randPoints(80, 5, 3)
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	q := pts[0]
	for _, k := range []int{1, 5, 79, 200} {
		knn := ix.KNN(q, k, 0)
		cur := ix.NewCursor(q, 0)
		for i := range knn {
			nb, ok := cur.Next()
			if !ok {
				t.Fatalf("cursor exhausted at %d", i)
			}
			if math.Abs(nb.Dist-knn[i].Dist) > 1e-12 {
				t.Fatalf("k=%d pos=%d: KNN dist %g, cursor dist %g", k, i, knn[i].Dist, nb.Dist)
			}
		}
		wantLen := k
		if k > 79 {
			wantLen = 79
		}
		if len(knn) != wantLen {
			t.Errorf("k=%d: len %d, want %d", k, len(knn), wantLen)
		}
	}
	if got := ix.KNN(q, 0, -1); got != nil {
		t.Errorf("KNN with k=0 = %v, want nil", got)
	}
}

func TestRangeAndCount(t *testing.T) {
	pts := randPoints(100, 2, 4)
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	q := pts[10]
	r := 0.3
	got := ix.Range(q, r, 10)
	if len(got) != ix.CountRange(q, r, 10) {
		t.Errorf("Range len %d != CountRange %d", len(got), ix.CountRange(q, r, 10))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Dist < got[j].Dist }) {
		t.Error("Range result not sorted")
	}
	for _, nb := range got {
		if nb.Dist > r {
			t.Errorf("Range returned %g > %g", nb.Dist, r)
		}
		if nb.ID == 10 {
			t.Error("Range returned the skipped ID")
		}
	}
	// Verify completeness against a manual filter.
	want := 0
	for id, p := range pts {
		if id == 10 {
			continue
		}
		if (vecmath.Euclidean{}).Distance(q, p) <= r {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("Range found %d, manual filter %d", len(got), want)
	}
}

func TestDynamicInsertDelete(t *testing.T) {
	pts := randPoints(10, 3, 5)
	ix, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 10 || ix.Len() != 11 {
		t.Errorf("Insert id %d len %d, want 10 and 11", id, ix.Len())
	}
	if _, err := ix.Insert([]float64{1, 2}); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
	if _, err := ix.Insert([]float64{math.NaN(), 0, 0}); err == nil {
		t.Error("Insert accepted NaN")
	}
	if !ix.Delete(3) {
		t.Error("Delete(3) reported false")
	}
	if ix.Delete(3) {
		t.Error("double Delete reported true")
	}
	if ix.Delete(-1) || ix.Delete(100) {
		t.Error("Delete out of range reported true")
	}
	if ix.Len() != 10 {
		t.Errorf("Len after delete = %d, want 10", ix.Len())
	}
	// Deleted points must vanish from all query paths.
	q := pts[3]
	for _, nb := range ix.KNN(q, 11, -1) {
		if nb.ID == 3 {
			t.Error("KNN returned deleted point")
		}
	}
	cur := ix.NewCursor(q, -1)
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.ID == 3 {
			t.Error("cursor returned deleted point")
		}
	}
	if ix.CountRange(q, 0, -1) != 0 {
		t.Error("CountRange found the deleted point at distance 0")
	}
}
