// Package scan implements the sequential-scan similarity-search back-end: a
// flat array of points with no preprocessing at all.
//
// The paper (Section 7.1) uses sequential scan as the forward-kNN back-end
// for its highest-dimensional datasets (MNIST, Imagenet), where tree indexes
// lose their pruning power to the curse of dimensionality. Scan is also the
// reference implementation against which every other back-end in this module
// is tested.
package scan

import (
	"errors"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// Index is a brute-force sequential scan over the dataset. It implements
// index.Index and index.Dynamic. The zero value is not usable; construct
// with New.
type Index struct {
	points  [][]float64
	metric  vecmath.Metric
	dim     int
	deleted map[int]bool // tombstones for Dynamic support
	alive   int
}

var _ index.Cloner = (*Index)(nil)

// New builds a scan index over points. The slice is retained by reference.
func New(points [][]float64, metric vecmath.Metric) (*Index, error) {
	if metric == nil {
		return nil, errors.New("scan: nil metric")
	}
	if err := vecmath.ValidateAll(points); err != nil {
		return nil, err
	}
	return &Index{
		points:  points,
		metric:  metric,
		dim:     len(points[0]),
		deleted: make(map[int]bool),
		alive:   len(points),
	}, nil
}

// Builder constructs scan indexes; it implements index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric)
}

// Name implements index.Builder.
func (Builder) Name() string { return "scan" }

// Len implements index.Index. Deleted points are excluded.
func (ix *Index) Len() int { return ix.alive }

// Dim implements index.Index.
func (ix *Index) Dim() int { return ix.dim }

// Point implements index.Index.
func (ix *Index) Point(id int) []float64 { return ix.points[id] }

// Metric implements index.Index.
func (ix *Index) Metric() vecmath.Metric { return ix.metric }

// Insert implements index.Dynamic.
func (ix *Index) Insert(p []float64) (int, error) {
	if err := vecmath.Validate(p); err != nil {
		return 0, err
	}
	if len(p) != ix.dim {
		return 0, vecmath.CheckDims(p, ix.points[0])
	}
	ix.points = append(ix.points, p)
	ix.alive++
	return len(ix.points) - 1, nil
}

// Clone implements index.Cloner. Point coordinate slices are shared (they
// are immutable by the retention contract of New); the points slice itself
// and the tombstone set are copied, so Insert and Delete on the clone are
// invisible to the original.
func (ix *Index) Clone() index.Dynamic {
	points := make([][]float64, len(ix.points), len(ix.points)+1)
	copy(points, ix.points)
	deleted := make(map[int]bool, len(ix.deleted))
	for id := range ix.deleted {
		deleted[id] = true
	}
	return &Index{
		points:  points,
		metric:  ix.metric,
		dim:     ix.dim,
		deleted: deleted,
		alive:   ix.alive,
	}
}

// Delete implements index.Dynamic using a tombstone.
func (ix *Index) Delete(id int) bool {
	if id < 0 || id >= len(ix.points) || ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	ix.alive--
	return true
}

// IDSpan implements index.Liveness.
func (ix *Index) IDSpan() int { return len(ix.points) }

// Live implements index.Liveness.
func (ix *Index) Live(id int) bool { return id >= 0 && id < len(ix.points) && !ix.deleted[id] }

func (ix *Index) skip(id, skipID int) bool {
	return id == skipID || ix.deleted[id]
}

// NewCursor implements index.Index. The cursor materializes and sorts all
// distances up front: O(n log n) per query, which is the intended cost model
// for this back-end.
func (ix *Index) NewCursor(q []float64, skipID int) index.Cursor {
	order := make([]index.Neighbor, 0, len(ix.points))
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		order = append(order, index.Neighbor{ID: id, Dist: ix.metric.Distance(q, p)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Dist != order[j].Dist {
			return order[i].Dist < order[j].Dist
		}
		return order[i].ID < order[j].ID
	})
	return &sliceCursor{order: order}
}

type sliceCursor struct {
	order []index.Neighbor
	next  int
}

func (c *sliceCursor) Next() (index.Neighbor, bool) {
	if c.next >= len(c.order) {
		return index.Neighbor{}, false
	}
	n := c.order[c.next]
	c.next++
	return n, true
}

// KNN implements index.Index with a bounded max-heap, avoiding the full sort
// of NewCursor.
func (ix *Index) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		d := ix.metric.Distance(q, p)
		if bound, full := top.Bound(); !full || d < bound {
			top.Offer(d, id)
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index.
func (ix *Index) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		if d := ix.metric.Distance(q, p); d <= r {
			out = append(out, index.Neighbor{ID: id, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index without materializing the result.
func (ix *Index) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		if ix.metric.Distance(q, p) <= r {
			count++
		}
	}
	return count
}
