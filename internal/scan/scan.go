// Package scan implements the sequential-scan similarity-search back-end: a
// flat array of points with no preprocessing at all.
//
// The paper (Section 7.1) uses sequential scan as the forward-kNN back-end
// for its highest-dimensional datasets (MNIST, Imagenet), where tree indexes
// lose their pruning power to the curse of dimensionality. Scan is also the
// reference implementation against which every other back-end in this module
// is tested.
//
// Two optimizations keep the flat scan at hardware speed without changing a
// single result bit (DESIGN.md "Distance kernels and quantized filtering"):
// rows are copied into one contiguous row-major arena and distances go
// through vecmath's unrolled kernels instead of the Metric interface; and an
// optional 8-bit scalar-quantization pre-filter (EnableQuantFilter) screens
// rows against the current search bound with code-level and float32-level
// lower bounds, so only rows that could possibly enter the result pay the
// exact float64 kernel. Both lower-bound tiers are sound, so screening only
// skips rows the bounded search would have discarded anyway.
package scan

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// quantKind selects the lower-bound domain of the quantized filter for the
// metric in effect.
type quantKind uint8

const (
	quantL2   quantKind = iota // rooted L2 results, squared LUT contributions
	quantSqL2                  // squared L2 results, squared LUT contributions
	quantL1                    // additive absolute contributions
	quantLinf                  // max-combined contributions
)

// quantSlack is the relative safety margin on every screening comparison:
// a row is skipped only when its lower bound exceeds the search bound by
// this factor. It is ~7 orders of magnitude above accumulated float64
// rounding for any realistic dimensionality, which is what lets the skip
// rule claim byte-identical results, and far below any distance gap the
// filter could usefully exploit.
const quantSlack = 1e-9

// quantKindFor reports the filter domain for m, or ok=false when the metric
// has no sound quantized lower bound (Angular, Minkowski, custom metrics).
func quantKindFor(m vecmath.Metric) (quantKind, bool) {
	switch m.(type) {
	case vecmath.Euclidean:
		return quantL2, true
	case vecmath.SquaredEuclidean:
		return quantSqL2, true
	case vecmath.Manhattan:
		return quantL1, true
	case vecmath.Chebyshev:
		return quantLinf, true
	}
	return 0, false
}

// FilterStats carries the quantized filter's admission counters. One
// FilterStats is shared by every clone in an index lineage (Clone copies
// the codes, not the counters), so the totals are monotone across
// compaction folds — the property the telemetry counter contract needs.
type FilterStats struct {
	admitted atomic.Int64
	screened atomic.Int64
}

// Counts returns the lifetime totals: rows that reached the exact kernel
// while the filter was consulted, and rows the lower bounds screened out.
func (s *FilterStats) Counts() (admitted, screened int64) {
	return s.admitted.Load(), s.screened.Load()
}

// quantFilter is the screening tier: one byte per (row, dimension) plus a
// float32 shadow block. codes and blk grow with Insert and are copied by
// Clone; cb and stats are shared across the lineage (cb is immutable).
type quantFilter struct {
	cb    *vecmath.Codebook
	kind  quantKind
	codes []uint8
	blk   *vecmath.Block
	stats *FilterStats
}

func (f *quantFilter) clone() *quantFilter {
	return &quantFilter{
		cb:    f.cb,
		kind:  f.kind,
		codes: append([]uint8(nil), f.codes...),
		blk:   f.blk.Clone(),
		stats: f.stats,
	}
}

func (f *quantFilter) appendRow(p []float64) {
	dim := f.cb.Dim()
	n := len(f.codes)
	f.codes = append(f.codes, make([]uint8, dim)...)
	f.cb.Encode(p, f.codes[n:])
	f.blk.Append(p)
}

// Index is a brute-force sequential scan over the dataset. It implements
// index.Index and index.Dynamic. The zero value is not usable; construct
// with New.
type Index struct {
	points [][]float64 // row views into arena (plus per-insert tails)
	arena  []float64   // contiguous row-major storage
	metric vecmath.Metric
	dist   vecmath.DistanceFunc // resolved kernel; falls back to metric.Distance
	batch  vecmath.BatchDistanceFunc
	dim    int
	filter *quantFilter // nil until EnableQuantFilter

	deleted map[int]bool // tombstones for Dynamic support
	alive   int
}

var (
	_ index.Cloner        = (*Index)(nil)
	_ index.QuantFiltered = (*Index)(nil)
)

// New builds a scan index over points. The rows are copied into a
// contiguous arena (the input is not retained).
func New(points [][]float64, metric vecmath.Metric) (*Index, error) {
	if metric == nil {
		return nil, errors.New("scan: nil metric")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	dim := len(points[0])
	arena := make([]float64, 0, len(points)*dim)
	rows := make([][]float64, len(points))
	for i, p := range points {
		arena = append(arena, p...)
		rows[i] = arena[i*dim : (i+1)*dim : (i+1)*dim]
	}
	ix := &Index{
		points:  rows,
		arena:   arena,
		metric:  metric,
		dim:     dim,
		deleted: make(map[int]bool),
		alive:   len(points),
	}
	ix.resolveKernels()
	return ix, nil
}

func (ix *Index) resolveKernels() {
	ix.dist = vecmath.KernelFor(ix.metric)
	if ix.dist == nil {
		ix.dist = ix.metric.Distance
	}
	ix.batch = vecmath.BatchKernelFor(ix.metric)
}

// EnableQuantFilter implements index.QuantFiltered: it attaches the 8-bit
// screening tier, training a fresh codebook over the current rows when cb
// is nil (a restore passes the persisted codebook so screening bounds match
// the original build exactly). It fails for metrics without a sound
// coordinate-interval lower bound.
func (ix *Index) EnableQuantFilter(cb *vecmath.Codebook) error {
	kind, ok := quantKindFor(ix.metric)
	if !ok {
		return errors.New("scan: quantized filter does not support metric " + ix.metric.Name())
	}
	if cb == nil {
		cb = vecmath.TrainCodebook(ix.points)
	}
	if cb.Dim() != ix.dim {
		return vecmath.CheckDims(make([]float64, cb.Dim()), ix.points[0])
	}
	f := &quantFilter{
		cb:    cb,
		kind:  kind,
		codes: make([]uint8, 0, len(ix.points)*ix.dim),
		blk:   vecmath.NewEmptyBlock(ix.dim),
		stats: &FilterStats{},
	}
	for _, p := range ix.points {
		f.appendRow(p)
	}
	ix.filter = f
	return nil
}

// QuantCodebook implements index.QuantFiltered.
func (ix *Index) QuantCodebook() *vecmath.Codebook {
	if ix.filter == nil {
		return nil
	}
	return ix.filter.cb
}

// QuantFilterStats implements index.QuantFiltered.
func (ix *Index) QuantFilterStats() (admitted, screened int64) {
	if ix.filter == nil {
		return 0, 0
	}
	return ix.filter.stats.Counts()
}

// Builder constructs scan indexes; it implements index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric)
}

// Name implements index.Builder.
func (Builder) Name() string { return "scan" }

// Len implements index.Index. Deleted points are excluded.
func (ix *Index) Len() int { return ix.alive }

// Dim implements index.Index.
func (ix *Index) Dim() int { return ix.dim }

// Point implements index.Index.
func (ix *Index) Point(id int) []float64 { return ix.points[id] }

// Metric implements index.Index.
func (ix *Index) Metric() vecmath.Metric { return ix.metric }

// Insert implements index.Dynamic. The row is appended to the arena, so
// storage stays contiguous across compaction folds.
func (ix *Index) Insert(p []float64) (int, error) {
	if err := vecmath.ValidateFor(ix.metric, p); err != nil {
		return 0, err
	}
	if len(p) != ix.dim {
		return 0, vecmath.CheckDims(p, ix.points[0])
	}
	ix.arena = append(ix.arena, p...)
	row := ix.arena[len(ix.arena)-ix.dim : len(ix.arena) : len(ix.arena)]
	ix.points = append(ix.points, row)
	ix.alive++
	if ix.filter != nil {
		ix.filter.appendRow(row)
	}
	return len(ix.points) - 1, nil
}

// Clone implements index.Cloner. The arena is shared (rows are immutable)
// but resliced to zero spare capacity, so the clone's first Insert
// reallocates instead of writing into storage visible to the original; the
// points slice, tombstone set and filter codes are copied.
func (ix *Index) Clone() index.Dynamic {
	points := make([][]float64, len(ix.points), len(ix.points)+1)
	copy(points, ix.points)
	deleted := make(map[int]bool, len(ix.deleted))
	for id := range ix.deleted {
		deleted[id] = true
	}
	cl := &Index{
		points:  points,
		arena:   ix.arena[:len(ix.arena):len(ix.arena)],
		metric:  ix.metric,
		dist:    ix.dist,
		batch:   ix.batch,
		dim:     ix.dim,
		deleted: deleted,
		alive:   ix.alive,
	}
	if ix.filter != nil {
		cl.filter = ix.filter.clone()
	}
	return cl
}

// Delete implements index.Dynamic using a tombstone.
func (ix *Index) Delete(id int) bool {
	if id < 0 || id >= len(ix.points) || ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	ix.alive--
	return true
}

// IDSpan implements index.Liveness.
func (ix *Index) IDSpan() int { return len(ix.points) }

// Live implements index.Liveness.
func (ix *Index) Live(id int) bool { return id >= 0 && id < len(ix.points) && !ix.deleted[id] }

// skip reports whether a row is excluded from the current query. The
// len guard matters: a map lookup per row costs more than a screened
// row's entire tier-1 bound, so the common no-tombstone case must not
// touch the map at all.
func (ix *Index) skip(id, skipID int) bool {
	if id == skipID {
		return true
	}
	if len(ix.deleted) == 0 {
		return false
	}
	return ix.deleted[id]
}

// NewCursor implements index.Index. The cursor materializes and sorts all
// distances up front: O(n log n) per query, which is the intended cost model
// for this back-end. The distance pass runs through the one-vs-many batch
// kernel when the metric has one.
func (ix *Index) NewCursor(q []float64, skipID int) index.Cursor {
	order := make([]index.Neighbor, 0, len(ix.points))
	if ix.batch != nil && len(ix.deleted) == 0 && skipID < 0 {
		dists := make([]float64, len(ix.points))
		ix.batch(q, ix.points, dists)
		for id, d := range dists {
			order = append(order, index.Neighbor{ID: id, Dist: d})
		}
	} else {
		for id, p := range ix.points {
			if ix.skip(id, skipID) {
				continue
			}
			order = append(order, index.Neighbor{ID: id, Dist: ix.dist(q, p)})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Dist != order[j].Dist {
			return order[i].Dist < order[j].Dist
		}
		return order[i].ID < order[j].ID
	})
	return &sliceCursor{order: order}
}

type sliceCursor struct {
	order []index.Neighbor
	next  int
}

func (c *sliceCursor) Next() (index.Neighbor, bool) {
	if c.next >= len(c.order) {
		return index.Neighbor{}, false
	}
	n := c.order[c.next]
	c.next++
	return n, true
}

// KNN implements index.Index with a bounded max-heap, avoiding the full sort
// of NewCursor. With the quantized filter enabled, rows are screened against
// the heap bound with sound lower bounds before paying the exact kernel;
// because the unfiltered loop only offers a row when d < bound, skipping a
// row whose lower bound clears the bound (with quantSlack margin) can never
// change the heap's contents, so the results are byte-identical either way.
func (ix *Index) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	if ix.filter != nil {
		ix.knnFiltered(q, top, skipID)
	} else {
		for id, p := range ix.points {
			if ix.skip(id, skipID) {
				continue
			}
			d := ix.dist(q, p)
			if bound, full := top.Bound(); !full || d < bound {
				top.Offer(d, id)
			}
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// quantQuery holds the per-query screening state shared by the filtered
// KNN, Range and CountRange loops. Tier 1 screens through a per-query
// lookup table rather than codebook arithmetic: one table load per
// dimension is ~7× cheaper than re-deriving the cell interval, and the
// dim×256-entry build cost amortizes over the whole row scan (tables are
// pooled so steady-state queries allocate nothing).
type quantQuery struct {
	f      *quantFilter
	dim    int
	tab    []float64
	q32    []float32
	qslack float64
}

// lutPool recycles screening tables across queries. Entries are pooled at
// whatever size their index needed; a Get that comes back too small for
// the current dimensionality is dropped and reallocated.
var lutPool sync.Pool

func (ix *Index) newQuantQuery(q []float64) (*quantQuery, func()) {
	f := ix.filter
	q32, qslack := vecmath.Quantize32(q)
	need := ix.dim * 256
	var tab []float64
	if v := lutPool.Get(); v != nil {
		if t := v.([]float64); cap(t) >= need {
			tab = t[:need]
		}
	}
	if tab == nil {
		tab = make([]float64, need)
	}
	squared := f.kind == quantL2 || f.kind == quantSqL2
	f.cb.BuildLUT(q, squared, tab)
	qq := &quantQuery{f: f, dim: ix.dim, tab: tab, q32: q32, qslack: qslack}
	return qq, func() { lutPool.Put(tab) } //nolint:staticcheck // slice header boxing is fine here
}

// screened reports whether row id provably cannot beat bound (the current
// heap bound or range radius, in the metric's result domain). Tier 1 is the
// code-level LUT bound; rows surviving it are re-screened by the tighter
// float32 block bound (tier 2). Both tiers under-estimate the exact
// distance, and the quantSlack margin absorbs their own float64 rounding,
// so a screened row could never have been offered by the exact loop.
func (qq *quantQuery) screened(id int, bound float64) bool {
	stop := bound * (1 + quantSlack)
	codes := qq.f.codes[id*qq.dim : (id+1)*qq.dim]
	blk := qq.f.blk
	switch qq.f.kind {
	case quantL2:
		if vecmath.LUTScreenSum(qq.tab, codes, stop*stop) > stop*stop {
			return true
		}
		lb := blk.LowerBound(id, math.Sqrt(blk.SquaredL2(id, qq.q32)), qq.qslack)
		return lb > stop
	case quantSqL2:
		if vecmath.LUTScreenSum(qq.tab, codes, stop) > stop {
			return true
		}
		lb := blk.LowerBound(id, math.Sqrt(blk.SquaredL2(id, qq.q32)), qq.qslack)
		return lb > 0 && lb*lb > stop
	case quantL1:
		if vecmath.LUTScreenSum(qq.tab, codes, stop) > stop {
			return true
		}
		return blk.LowerBound(id, blk.L1(id, qq.q32), qq.qslack) > stop
	default: // quantLinf
		if vecmath.LUTLowerBoundMax(qq.tab, codes, stop) > stop {
			return true
		}
		return blk.LowerBound(id, blk.Linf(id, qq.q32), qq.qslack) > stop
	}
}

func (ix *Index) knnFiltered(q []float64, top *pqueue.TopK[int], skipID int) {
	qq, release := ix.newQuantQuery(q)
	defer release()
	var admitted, screened int64
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		// Rows evaluated before the heap fills never consult the screen, so
		// they count toward neither admitted nor screened — the counters
		// cover only rows the filter actually ruled on.
		if bound, full := top.Bound(); full {
			if qq.screened(id, bound) {
				screened++
				continue
			}
			admitted++
		}
		d := ix.dist(q, p)
		if bound, full := top.Bound(); !full || d < bound {
			top.Offer(d, id)
		}
	}
	qq.f.stats.admitted.Add(admitted)
	qq.f.stats.screened.Add(screened)
}

// Range implements index.Index. The quantized filter screens against the
// fixed radius; the boundary is inclusive (d <= r) while screening requires
// the lower bound to clear r by quantSlack, so boundary rows always reach
// the exact kernel.
func (ix *Index) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	var qq *quantQuery
	if ix.filter != nil {
		var release func()
		qq, release = ix.newQuantQuery(q)
		defer release()
	}
	var admitted, screened int64
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		if qq != nil {
			if qq.screened(id, r) {
				screened++
				continue
			}
			admitted++
		}
		if d := ix.dist(q, p); d <= r {
			out = append(out, index.Neighbor{ID: id, Dist: d})
		}
	}
	if qq != nil {
		qq.f.stats.admitted.Add(admitted)
		qq.f.stats.screened.Add(screened)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index without materializing the result.
func (ix *Index) CountRange(q []float64, r float64, skipID int) int {
	var qq *quantQuery
	if ix.filter != nil {
		var release func()
		qq, release = ix.newQuantQuery(q)
		defer release()
	}
	var admitted, screened int64
	count := 0
	for id, p := range ix.points {
		if ix.skip(id, skipID) {
			continue
		}
		if qq != nil {
			if qq.screened(id, r) {
				screened++
				continue
			}
			admitted++
		}
		if ix.dist(q, p) <= r {
			count++
		}
	}
	if qq != nil {
		qq.f.stats.admitted.Add(admitted)
		qq.f.stats.screened.Add(screened)
	}
	return count
}
