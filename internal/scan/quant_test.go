package scan

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/vecmath"
)

// buildPair returns two scan indexes over the same rows, one with the
// quantized filter enabled.
func buildPair(t *testing.T, pts [][]float64, m vecmath.Metric) (plain, filtered *Index) {
	t.Helper()
	plain, err := New(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err = New(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := filtered.EnableQuantFilter(nil); err != nil {
		t.Fatal(err)
	}
	return plain, filtered
}

// TestQuantFilterByteIdentical pins the central claim of the filter: for
// every supported metric, KNN, Range and CountRange return bit-for-bit the
// same results with the filter on and off, across random queries, member
// queries and tombstones — while the filter actually screens rows.
func TestQuantFilterByteIdentical(t *testing.T) {
	metrics := []vecmath.Metric{
		vecmath.Euclidean{},
		vecmath.SquaredEuclidean{},
		vecmath.Manhattan{},
		vecmath.Chebyshev{},
	}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(71))
			pts := randPoints(400, 6, 9)
			plain, filtered := buildPair(t, pts, m)
			for _, ix := range []*Index{plain, filtered} {
				for id := 0; id < 400; id += 17 {
					ix.Delete(id)
				}
			}
			for trial := 0; trial < 60; trial++ {
				q := make([]float64, 6)
				for j := range q {
					q[j] = rng.Float64() * 1.5
				}
				skipID := -1
				if trial%3 == 0 {
					skipID = rng.Intn(400)
					q = pts[skipID]
				}
				k := 1 + rng.Intn(12)
				if got, want := filtered.KNN(q, k, skipID), plain.KNN(q, k, skipID); !reflect.DeepEqual(got, want) {
					t.Fatalf("KNN diverged: filtered %v, plain %v", got, want)
				}
				r := rng.Float64() * 0.8
				if got, want := filtered.Range(q, r, skipID), plain.Range(q, r, skipID); !reflect.DeepEqual(got, want) {
					t.Fatalf("Range diverged: filtered %v, plain %v", got, want)
				}
				if got, want := filtered.CountRange(q, r, skipID), plain.CountRange(q, r, skipID); got != want {
					t.Fatalf("CountRange diverged: %d vs %d", got, want)
				}
			}
			admitted, screened := filtered.QuantFilterStats()
			if admitted == 0 || screened == 0 {
				t.Fatalf("filter inactive: admitted=%d screened=%d", admitted, screened)
			}
			if pa, ps := plain.QuantFilterStats(); pa != 0 || ps != 0 {
				t.Fatalf("unfiltered index reported filter stats %d/%d", pa, ps)
			}
		})
	}
}

// TestQuantFilterSurvivesCloneInsert checks the filter follows the clone
// lineage: a clone screens rows inserted after cloning (including rows
// outside the trained codebook range), results stay byte-identical, and
// the admission counters aggregate monotonically across the lineage.
func TestQuantFilterSurvivesCloneInsert(t *testing.T) {
	pts := randPoints(200, 5, 13)
	plain, filtered := buildPair(t, pts, vecmath.Euclidean{})
	fcl := filtered.Clone().(*Index)
	pcl := plain.Clone().(*Index)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 50; i++ {
		p := make([]float64, 5)
		for j := range p {
			p[j] = rng.Float64() * 3 // beyond the trained [0,1) range
		}
		fid, err := fcl.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := pcl.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if fid != pid {
			t.Fatalf("insert ids diverged: %d vs %d", fid, pid)
		}
	}
	for trial := 0; trial < 30; trial++ {
		q := make([]float64, 5)
		for j := range q {
			q[j] = rng.Float64() * 3
		}
		if got, want := fcl.KNN(q, 5, -1), pcl.KNN(q, 5, -1); !reflect.DeepEqual(got, want) {
			t.Fatalf("KNN diverged after insert: %v vs %v", got, want)
		}
	}
	// The original is untouched by the clone's inserts but shares counters.
	if filtered.IDSpan() != 200 || fcl.IDSpan() != 250 {
		t.Fatalf("IDSpan %d/%d, want 200/250", filtered.IDSpan(), fcl.IDSpan())
	}
	a0, s0 := filtered.QuantFilterStats()
	a1, s1 := fcl.QuantFilterStats()
	if a0 != a1 || s0 != s1 {
		t.Fatalf("lineage counters diverged: %d/%d vs %d/%d", a0, s0, a1, s1)
	}
	if a0 == 0 || s0 == 0 {
		t.Fatalf("filter inactive on clone: admitted=%d screened=%d", a0, s0)
	}
}

// TestQuantFilterRestoreWithStoredCodebook checks that enabling the filter
// with a previously trained codebook (the snapshot-restore path) screens
// with identical bounds: same results and a codebook pointer round trip.
func TestQuantFilterRestoreWithStoredCodebook(t *testing.T) {
	pts := randPoints(150, 4, 37)
	_, filtered := buildPair(t, pts, vecmath.Euclidean{})
	cb := filtered.QuantCodebook()
	if cb == nil {
		t.Fatal("no codebook after EnableQuantFilter")
	}
	restored, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := vecmath.DecodeCodebook(cb.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.EnableQuantFilter(decoded); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = rng.Float64()
		}
		if got, want := restored.KNN(q, 4, -1), filtered.KNN(q, 4, -1); !reflect.DeepEqual(got, want) {
			t.Fatalf("restored KNN diverged: %v vs %v", got, want)
		}
	}
}

// TestQuantFilterUnsupportedMetric checks the filter refuses metrics it has
// no sound lower bound for.
func TestQuantFilterUnsupportedMetric(t *testing.T) {
	pts := randPoints(20, 3, 3)
	ix, err := New(pts, vecmath.Minkowski{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableQuantFilter(nil); err == nil {
		t.Fatal("EnableQuantFilter accepted Minkowski")
	}
	// Dimension mismatch between codebook and index is rejected too.
	other := vecmath.TrainCodebook(randPoints(10, 7, 5))
	ix2, err := New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.EnableQuantFilter(other); err == nil {
		t.Fatal("EnableQuantFilter accepted a mismatched codebook")
	}
}
