package sft

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/indextest"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func newScan(t *testing.T, pts [][]float64) *scan.Index {
	t.Helper()
	ix, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("scan.New: %v", err)
	}
	return ix
}

func TestNewQuerierValidation(t *testing.T) {
	ix := newScan(t, indextest.RandPoints(10, 2, 1))
	if _, err := NewQuerier(nil, Params{K: 1, Alpha: 2}); err == nil {
		t.Error("accepted nil index")
	}
	if _, err := NewQuerier(ix, Params{K: 0, Alpha: 2}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewQuerier(ix, Params{K: 1, Alpha: 0.5}); err == nil {
		t.Error("accepted alpha < 1")
	}
	if _, err := NewQuerier(ix, Params{K: 1, Alpha: math.NaN()}); err == nil {
		t.Error("accepted NaN alpha")
	}
}

func TestQueryValidation(t *testing.T) {
	ix := newScan(t, indextest.RandPoints(10, 3, 1))
	qr, err := NewQuerier(ix, Params{K: 2, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.ByID(-1); err == nil {
		t.Error("accepted negative id")
	}
	if _, err := qr.ByID(10); err == nil {
		t.Error("accepted out-of-range id")
	}
	if _, err := qr.ByPoint([]float64{1}); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := qr.ByPoint([]float64{1, 2, math.NaN()}); err == nil {
		t.Error("accepted NaN query")
	}
}

// TestExactWithFullAlpha checks that α large enough to make the boundary set
// the whole dataset turns SFT exact (the guarantee noted in the paper's
// Section 2.2).
func TestExactWithFullAlpha(t *testing.T) {
	pts := indextest.ClusteredPoints(180, 4, 5, 2)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5} {
		qr, err := NewQuerier(ix, Params{K: k, Alpha: float64(len(pts)) / float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		for qid := 0; qid < 25; qid++ {
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got.IDs, want) {
				t.Errorf("k=%d qid=%d: got %v, want %v", k, qid, got.IDs, want)
			}
		}
	}
}

// TestNoFalsePositives checks SFT precision at any α: the count-range
// verification is exact, so every reported ID is a true reverse neighbor.
func TestNoFalsePositives(t *testing.T) {
	pts := indextest.RandPoints(200, 5, 3)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	for _, alpha := range []float64{1, 1.5, 2, 4, 8} {
		qr, err := NewQuerier(ix, Params{K: k, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		for qid := 0; qid < 20; qid++ {
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			if p := bruteforce.Precision(got.IDs, want); p != 1 {
				t.Errorf("alpha=%g qid=%d: precision %.3f", alpha, qid, p)
			}
		}
	}
}

// TestRecallMonotoneInAlpha mirrors the paper's time-accuracy tradeoff: a
// larger boundary set can only add answers.
func TestRecallMonotoneInAlpha(t *testing.T) {
	pts := indextest.RandPoints(150, 4, 9)
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	for qid := 0; qid < 10; qid++ {
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, alpha := range []float64{1, 2, 4, 8, 16, 30} {
			qr, err := NewQuerier(ix, Params{K: k, Alpha: alpha})
			if err != nil {
				t.Fatal(err)
			}
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatal(err)
			}
			r := bruteforce.Recall(got.IDs, want)
			if r < prev {
				t.Errorf("qid=%d: recall fell from %.3f to %.3f at alpha=%g", qid, prev, r, alpha)
			}
			prev = r
		}
		if prev != 1 {
			t.Errorf("qid=%d: recall at alpha=30 is %.3f, want 1", qid, prev)
		}
	}
}

// TestDuplicateHeavy checks tie handling: duplicates of the query must be
// reported (they always have the query at forward rank one).
func TestDuplicateHeavy(t *testing.T) {
	base := indextest.RandPoints(50, 3, 4)
	pts := append([][]float64{}, base...)
	for i := 0; i < 5; i++ {
		pts = append(pts, vecmath.Clone(base[0]))
	}
	ix := newScan(t, pts)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	qr, err := NewQuerier(ix, Params{K: k, Alpha: float64(len(pts)) / float64(k)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := qr.ByID(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.RkNNByID(0, k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got.IDs, want) {
		t.Errorf("duplicates: got %v, want %v", got.IDs, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	pts := indextest.RandPoints(120, 3, 8)
	ix := newScan(t, pts)
	qr, err := NewQuerier(ix, Params{K: 5, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := qr.ByID(0)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Candidates != 15 {
		t.Errorf("Candidates = %d, want ceil(3*5)=15", st.Candidates)
	}
	if st.FilterRejects+st.Verified != st.Candidates {
		t.Errorf("rejects(%d) + verified(%d) != candidates(%d)", st.FilterRejects, st.Verified, st.Candidates)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
