// Package sft implements the SFT heuristic of Singh, Ferhatosmanoglu and
// Tosun ("High dimensional reverse nearest neighbor queries", CIKM 2003),
// the approximate competitor in the paper's evaluation (Section 2.2).
//
// SFT answers a reverse k-nearest-neighbor query in three steps:
//
//  1. Boundary: retrieve the ⌈αk⌉ forward nearest neighbors of the query as
//     the candidate set, for an oversampling factor α ≥ 1.
//  2. Filter: reject any candidate that already has k witnesses among the
//     candidates themselves (pairwise distance computations only).
//  3. Verification: settle the survivors with one count-range query each —
//     x is a reverse neighbor iff fewer than k database objects lie
//     strictly closer to x than the query does.
//
// The recall of the method is governed by α: any reverse neighbor whose
// forward rank exceeds ⌈αk⌉ is missed. This contrasts with RDT, whose
// dimensional test adapts the search depth to the distance distribution
// around the query (paper Section 9).
package sft

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/vecmath"
)

// Params configures a Querier.
type Params struct {
	// K is the reverse neighbor rank.
	K int
	// Alpha is the oversampling factor: ⌈Alpha·K⌉ forward neighbors are
	// drawn as candidates. Must be >= 1.
	Alpha float64
}

func (p Params) validate() error {
	if p.K <= 0 {
		return fmt.Errorf("sft: K must be positive, got %d", p.K)
	}
	if !(p.Alpha >= 1) {
		return fmt.Errorf("sft: Alpha must be >= 1, got %v", p.Alpha)
	}
	return nil
}

// Stats reports the work one query performed.
type Stats struct {
	// Candidates is the boundary-set size ⌈αk⌉ actually retrieved.
	Candidates int
	// FilterRejects counts candidates settled by the pairwise filter.
	FilterRejects int
	// Verified counts count-range verification queries issued.
	Verified int
}

// Result is the answer to one query.
type Result struct {
	IDs   []int
	Stats Stats
}

// Querier answers approximate RkNN queries over a fixed index with the SFT
// heuristic. It is safe for concurrent use if the index is.
type Querier struct {
	ix     index.Index
	metric vecmath.Metric
	params Params
}

// NewQuerier validates the parameters and returns a Querier over ix.
func NewQuerier(ix index.Index, params Params) (*Querier, error) {
	if ix == nil {
		return nil, errors.New("sft: nil index")
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	if ix.Len() == 0 {
		return nil, errors.New("sft: empty index")
	}
	return &Querier{ix: ix, metric: ix.Metric(), params: params}, nil
}

// ByID answers the query for dataset member qid.
func (qr *Querier) ByID(qid int) (*Result, error) {
	if qid < 0 || qid >= qr.ix.Len() {
		return nil, fmt.Errorf("sft: query id %d out of range [0,%d)", qid, qr.ix.Len())
	}
	return qr.run(qr.ix.Point(qid), qid), nil
}

// ByPoint answers the query for an arbitrary point.
func (qr *Querier) ByPoint(q []float64) (*Result, error) {
	if err := vecmath.ValidateFor(qr.metric, q); err != nil {
		return nil, err
	}
	if len(q) != qr.ix.Dim() {
		return nil, vecmath.ErrDimensionMismatch
	}
	return qr.run(q, -1), nil
}

func (qr *Querier) run(q []float64, skipID int) *Result {
	k := qr.params.K
	boundary := int(math.Ceil(qr.params.Alpha * float64(k)))
	cands := qr.ix.KNN(q, boundary, skipID)

	var stats Stats
	stats.Candidates = len(cands)

	// Pairwise filter: count, for every candidate, how many of the other
	// candidates are strictly closer to it than the query is.
	witnesses := make([]int, len(cands))
	for i := range cands {
		pi := qr.ix.Point(cands[i].ID)
		for j := i + 1; j < len(cands); j++ {
			d := qr.metric.Distance(pi, qr.ix.Point(cands[j].ID))
			if d < cands[i].Dist {
				witnesses[i]++
			}
			if d < cands[j].Dist {
				witnesses[j]++
			}
		}
	}

	var ids []int
	for i, c := range cands {
		if witnesses[i] >= k {
			stats.FilterRejects++
			continue
		}
		stats.Verified++
		if qr.verify(c) {
			ids = append(ids, c.ID)
		}
	}
	sort.Ints(ids)
	return &Result{IDs: ids, Stats: stats}
}

// verify settles candidate c with one count-range query: c is a reverse
// neighbor iff fewer than k database objects are strictly closer to it than
// the query. Strictness is obtained by shrinking the radius to the previous
// representable float, so boundary ties resolve identically to the ground
// truth (accept on tie).
func (qr *Querier) verify(c index.Neighbor) bool {
	if c.Dist == 0 {
		return true // a duplicate of the query has it at rank one
	}
	r := math.Nextafter(c.Dist, math.Inf(-1))
	return qr.ix.CountRange(qr.ix.Point(c.ID), r, c.ID) < qr.params.K
}
