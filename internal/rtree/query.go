package rtree

import (
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
)

// frontierItem is either a pending subtree (child != nil) queued by MINDIST
// or a resolved point queued by exact distance.
type frontierItem struct {
	child *node
	id    int
	dist  float64
}

// NewCursor implements index.Index with the classic best-first incremental
// nearest-neighbor traversal (Hjaltason & Samet).
func (t *Tree) NewCursor(q []float64, skipID int) index.Cursor {
	c := &cursor{t: t, q: q, skipID: skipID, pq: pqueue.NewMin[frontierItem](64)}
	c.pq.Push(0, frontierItem{child: t.root})
	return c
}

type cursor struct {
	t      *Tree
	q      []float64
	skipID int
	pq     *pqueue.Min[frontierItem]
}

func (c *cursor) Next() (index.Neighbor, bool) {
	for {
		it, ok := c.pq.Pop()
		if !ok {
			return index.Neighbor{}, false
		}
		f := it.Value
		if f.child == nil {
			return index.Neighbor{ID: f.id, Dist: f.dist}, true
		}
		for _, e := range f.child.entries {
			if f.child.leaf {
				if e.id == c.skipID {
					continue
				}
				d := c.t.metric.Distance(c.q, c.t.points[e.id])
				c.pq.Push(d, frontierItem{id: e.id, dist: d})
			} else {
				lb := c.t.boxer.BoxDistance(c.q, e.lo, e.hi)
				c.pq.Push(lb, frontierItem{child: e.child})
			}
		}
	}
}

// KNN implements index.Index with best-first search and MINDIST pruning.
func (t *Tree) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 || len(t.points) == 0 {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	pq := pqueue.NewMin[*node](64)
	pq.Push(0, t.root)
	for {
		it, ok := pq.Pop()
		if !ok {
			break
		}
		if bound, full := top.Bound(); full && it.Priority > bound {
			break
		}
		n := it.Value
		for _, e := range n.entries {
			if n.leaf {
				if e.id == skipID {
					continue
				}
				d := t.metric.Distance(q, t.points[e.id])
				if bound, full := top.Bound(); !full || d < bound {
					top.Offer(d, e.id)
				}
				continue
			}
			lb := t.boxer.BoxDistance(q, e.lo, e.hi)
			if bound, full := top.Bound(); full && lb > bound {
				continue
			}
			pq.Push(lb, e.child)
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index.
func (t *Tree) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	t.forEachInRange(q, r, skipID, func(id int, d float64) {
		out = append(out, index.Neighbor{ID: id, Dist: d})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index.
func (t *Tree) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	t.forEachInRange(q, r, skipID, func(int, float64) { count++ })
	return count
}

func (t *Tree) forEachInRange(q []float64, r float64, skipID int, emit func(id int, d float64)) {
	var visit func(n *node)
	visit = func(n *node) {
		for _, e := range n.entries {
			if n.leaf {
				if e.id == skipID {
					continue
				}
				if d := t.metric.Distance(q, t.points[e.id]); d <= r {
					emit(e.id, d)
				}
				continue
			}
			if t.boxer.BoxDistance(q, e.lo, e.hi) <= r {
				visit(e.child)
			}
		}
	}
	visit(t.root)
}

// NodeView is a read-only handle on an interior or leaf entry of the tree,
// used by the RdNN-Tree and TPL baselines to run their own pruned
// traversals.
type NodeView struct {
	t *Tree
	n *node
}

// Root returns a view of the root node.
func (t *Tree) Root() NodeView { return NodeView{t: t, n: t.root} }

// IsLeaf reports whether the node's entries are points.
func (v NodeView) IsLeaf() bool { return v.n.leaf }

// NumEntries returns the number of entries in the node.
func (v NodeView) NumEntries() int { return len(v.n.entries) }

// EntryMBR returns the bounding box of entry i. The returned slices are
// owned by the tree and must not be modified.
func (v NodeView) EntryMBR(i int) (lo, hi []float64) {
	return v.n.entries[i].lo, v.n.entries[i].hi
}

// EntryValue returns the augmented value of entry i: the point's value in a
// leaf, or the subtree maximum in an interior node.
func (v NodeView) EntryValue(i int) float64 { return v.n.entries[i].value }

// EntryID returns the point ID of leaf entry i; it panics on interior nodes.
func (v NodeView) EntryID(i int) int {
	if !v.n.leaf {
		panic("rtree: EntryID on interior node")
	}
	return v.n.entries[i].id
}

// EntryChild returns a view of interior entry i's subtree; it panics on
// leaves.
func (v NodeView) EntryChild(i int) NodeView {
	if v.n.leaf {
		panic("rtree: EntryChild on leaf node")
	}
	return NodeView{t: v.t, n: v.n.entries[i].child}
}

// CheckInvariants verifies containment (every entry's MBR lies inside its
// parent entry's MBR), aggregate maxima, entry-count bounds, and that every
// point appears exactly once. Tests call it after builds.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int]bool, len(t.points))
	var check func(n *node) (lo, hi []float64, maxVal float64, err error)
	check = func(n *node) ([]float64, []float64, float64, error) {
		if n != t.root && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
			return nil, nil, 0, errEntryCount
		}
		if len(n.entries) == 0 {
			return nil, nil, 0, errEmptyNode
		}
		lo, hi := groupMBR(n.entries)
		maxVal := n.entries[0].value
		for i, e := range n.entries {
			if e.value > maxVal {
				maxVal = e.value
			}
			if n.leaf {
				if seen[e.id] {
					return nil, nil, 0, errDuplicatePoint
				}
				seen[e.id] = true
				if e.value != t.valueOf(e.id) {
					return nil, nil, 0, errStaleValue
				}
				continue
			}
			clo, chi, cmax, err := check(e.child)
			if err != nil {
				return nil, nil, 0, err
			}
			for j := range clo {
				if clo[j] < e.lo[j]-1e-12 || chi[j] > e.hi[j]+1e-12 {
					return nil, nil, 0, errContainment
				}
			}
			if cmax > e.value+1e-12 {
				return nil, nil, 0, errStaleAggregate
			}
			_ = i
		}
		return lo, hi, maxVal, nil
	}
	if _, _, _, err := check(t.root); err != nil {
		return err
	}
	if len(seen) != len(t.points) {
		return errMissingPoints
	}
	return nil
}
