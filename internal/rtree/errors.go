package rtree

import "errors"

// Structural-invariant violations reported by CheckInvariants.
var (
	errEntryCount     = errors.New("rtree: node entry count outside [minEntries, maxEntries]")
	errEmptyNode      = errors.New("rtree: empty node")
	errDuplicatePoint = errors.New("rtree: point appears twice")
	errContainment    = errors.New("rtree: child MBR escapes parent entry MBR")
	errStaleAggregate = errors.New("rtree: interior aggregate below child maximum")
	errStaleValue     = errors.New("rtree: leaf value disagrees with source values")
	errMissingPoints  = errors.New("rtree: tree does not contain every point")
)
