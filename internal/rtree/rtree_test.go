package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/vecmath"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(pts [][]float64, m vecmath.Metric) (index.Index, error) {
		return New(pts, m, nil)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}, nil); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{1, 0}}, vecmath.Angular{}, nil); err == nil {
		t.Error("accepted metric without box bounds")
	}
	if _, err := New([][]float64{{1}, {2}}, vecmath.Euclidean{}, []float64{1}); err == nil {
		t.Error("accepted mismatched values length")
	}
}

func TestInvariantsAfterBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts := indextest.ClusteredPoints(500, 3, 7, seed)
		vals := make([]float64, len(pts))
		rng := rand.New(rand.NewSource(seed))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		tree, err := New(pts, vecmath.Euclidean{}, vals)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if tree.Height() < 2 {
			t.Errorf("500 points produced height %d, want >= 2", tree.Height())
		}
	}
}

func TestInvariantsProperty(t *testing.T) {
	property := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		pts := indextest.RandPoints(n, 2, seed)
		tree, err := New(pts, vecmath.Euclidean{}, nil)
		if err != nil {
			return false
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAggregatePruning checks that subtree maxima reaching the root bound
// every leaf value, the property the RdNN-Tree query relies on.
func TestAggregatePruning(t *testing.T) {
	pts := indextest.RandPoints(300, 2, 9)
	vals := make([]float64, len(pts))
	rng := rand.New(rand.NewSource(5))
	maxVal := 0.0
	for i := range vals {
		vals[i] = rng.Float64()
		if vals[i] > maxVal {
			maxVal = vals[i]
		}
	}
	tree, err := New(pts, vecmath.Euclidean{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	rootMax := math.Inf(-1)
	for i := 0; i < root.NumEntries(); i++ {
		if v := root.EntryValue(i); v > rootMax {
			rootMax = v
		}
	}
	if math.Abs(rootMax-maxVal) > 1e-12 {
		t.Errorf("root aggregate %g, want %g", rootMax, maxVal)
	}
}

func TestNodeViewTraversal(t *testing.T) {
	pts := indextest.RandPoints(200, 3, 4)
	tree, err := New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Collect every leaf ID through the NodeView API.
	seen := map[int]bool{}
	var walk func(v NodeView)
	walk = func(v NodeView) {
		for i := 0; i < v.NumEntries(); i++ {
			lo, hi := v.EntryMBR(i)
			for j := range lo {
				if lo[j] > hi[j] {
					t.Fatalf("inverted MBR at dim %d", j)
				}
			}
			if v.IsLeaf() {
				seen[v.EntryID(i)] = true
			} else {
				walk(v.EntryChild(i))
			}
		}
	}
	walk(tree.Root())
	if len(seen) != len(pts) {
		t.Errorf("NodeView walk found %d points, want %d", len(seen), len(pts))
	}
}

func TestNodeViewPanics(t *testing.T) {
	pts := indextest.RandPoints(200, 2, 8)
	tree, err := New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	if root.IsLeaf() {
		t.Skip("tree too small for interior nodes")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EntryID on interior node did not panic")
			}
		}()
		root.EntryID(0)
	}()
	leaf := root
	for !leaf.IsLeaf() {
		leaf = leaf.EntryChild(0)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EntryChild on leaf did not panic")
			}
		}()
		leaf.EntryChild(0)
	}()
}
