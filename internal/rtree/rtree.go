// Package rtree implements an R-tree with the R*-style split heuristic
// (Guttman 1984; Beckmann et al. 1990), the spatial substrate for the
// RdNN-Tree and TPL baselines of the paper's evaluation (Section 2).
//
// Leaf entries may carry an augmented float64 value whose subtree maximum is
// aggregated at every interior entry — exactly the mechanism the RdNN-Tree
// uses to store k-nearest-neighbor distances ("at each index node, the
// maximum of the kNN distances of the points is aggregated within the
// subtree", paper Section 2.1). The NodeView traversal API gives the
// baseline algorithms pruned access to the tree structure.
//
// Forced reinsertion from the original R*-tree is omitted (split quality is
// the dominant effect for the static workloads here); the split itself uses
// the R* axis/distribution choice.
package rtree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/vecmath"
)

const (
	maxEntries = 32
	minEntries = 13 // ≈ 40% of maxEntries, the R* recommendation
)

type entry struct {
	lo, hi []float64 // MBR of the child subtree, or the point itself
	child  *node     // nil in leaves
	id     int       // point ID in leaves
	value  float64   // augmented value (leaf), or subtree max (interior)
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree over a point set. It implements index.Index and is safe
// for concurrent readers.
type Tree struct {
	points [][]float64
	values []float64 // augmented per-point values (nil if unused)
	metric vecmath.Metric
	boxer  vecmath.BoxDistancer
	dim    int
	root   *node
	height int
}

var _ index.Index = (*Tree)(nil)

// New builds an R-tree over points. The metric must implement
// vecmath.BoxDistancer. values, if non-nil, supplies the augmented per-point
// values (len(values) must equal len(points)).
func New(points [][]float64, metric vecmath.Metric, values []float64) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("rtree: nil metric")
	}
	boxer, ok := metric.(vecmath.BoxDistancer)
	if !ok {
		return nil, errors.New("rtree: metric cannot bound box distances")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	if values != nil && len(values) != len(points) {
		return nil, errors.New("rtree: values length does not match points")
	}
	t := &Tree{
		points: points,
		values: values,
		metric: metric,
		boxer:  boxer,
		dim:    len(points[0]),
		root:   &node{leaf: true},
		height: 1,
	}
	for id := range points {
		t.insert(id)
	}
	return t, nil
}

// Builder constructs R-trees without augmented values; it implements
// index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric, nil)
}

// Name implements index.Builder.
func (Builder) Name() string { return "rtree" }

// Len implements index.Index.
func (t *Tree) Len() int { return len(t.points) }

// Dim implements index.Index.
func (t *Tree) Dim() int { return t.dim }

// Point implements index.Index.
func (t *Tree) Point(id int) []float64 { return t.points[id] }

// Metric implements index.Index.
func (t *Tree) Metric() vecmath.Metric { return t.metric }

// Height returns the number of levels in the tree (1 for a lone leaf root).
func (t *Tree) Height() int { return t.height }

func (t *Tree) valueOf(id int) float64 {
	if t.values == nil {
		return 0
	}
	return t.values[id]
}

func (t *Tree) leafEntry(id int) entry {
	p := t.points[id]
	return entry{lo: p, hi: p, id: id, value: t.valueOf(id)}
}

func (t *Tree) insert(id int) {
	if split := t.insertAt(t.root, t.leafEntry(id)); split != nil {
		// Root overflowed: grow the tree by one level.
		oldRoot := t.root
		t.root = &node{entries: []entry{t.nodeEntry(oldRoot), t.nodeEntry(split)}}
		t.height++
	}
}

// nodeEntry wraps n in an interior entry with its tight MBR and aggregate.
func (t *Tree) nodeEntry(n *node) entry {
	e := entry{child: n, lo: make([]float64, t.dim), hi: make([]float64, t.dim)}
	copy(e.lo, n.entries[0].lo)
	copy(e.hi, n.entries[0].hi)
	e.value = n.entries[0].value
	for _, c := range n.entries[1:] {
		for j := 0; j < t.dim; j++ {
			if c.lo[j] < e.lo[j] {
				e.lo[j] = c.lo[j]
			}
			if c.hi[j] > e.hi[j] {
				e.hi[j] = c.hi[j]
			}
		}
		if c.value > e.value {
			e.value = c.value
		}
	}
	return e
}

// insertAt descends to a leaf, splitting on overflow; a non-nil return is a
// sibling created by the split that the caller must register.
func (t *Tree) insertAt(n *node, e entry) *node {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	bi := t.chooseSubtree(n, e)
	if split := t.insertAt(n.entries[bi].child, e); split != nil {
		n.entries[bi] = t.nodeEntry(n.entries[bi].child)
		n.entries = append(n.entries, t.nodeEntry(split))
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	// Refresh the descended entry's MBR and aggregate in place.
	n.entries[bi] = t.nodeEntry(n.entries[bi].child)
	return nil
}

// chooseSubtree picks the child whose MBR needs the least enlargement to
// absorb e, breaking ties by smaller extent. Enlargement is measured on the
// box margin (sum of side lengths) rather than Guttman's volume: volumes of
// boxes with hundreds of dimensions overflow float64 and would reduce the
// heuristic to noise, while margins stay finite and rank candidates the same
// way on the low-dimensional data R-trees are effective for.
func (t *Tree) chooseSubtree(n *node, e entry) int {
	best, bestEnlarge, bestSize := 0, math.Inf(1), math.Inf(1)
	for i := range n.entries {
		size := boxMargin(n.entries[i].lo, n.entries[i].hi)
		enlarge := unionMargin(n.entries[i].lo, n.entries[i].hi, e.lo, e.hi) - size
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && size < bestSize) {
			best, bestEnlarge, bestSize = i, enlarge, size
		}
	}
	return best
}

// split divides n's entries using the R* axis and distribution choice and
// returns the new sibling.
func (t *Tree) split(n *node) *node {
	entries := n.entries
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.dim; axis++ {
		sortByAxis(entries, axis)
		margin := 0.0
		for i := minEntries; i <= len(entries)-minEntries; i++ {
			margin += groupMargin(entries[:i]) + groupMargin(entries[i:])
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	sortByAxis(entries, bestAxis)
	bestIdx, bestOverlap, bestSize := minEntries, math.Inf(1), math.Inf(1)
	for i := minEntries; i <= len(entries)-minEntries; i++ {
		lo1, hi1 := groupMBR(entries[:i])
		lo2, hi2 := groupMBR(entries[i:])
		ov := overlapMargin(lo1, hi1, lo2, hi2)
		size := boxMargin(lo1, hi1) + boxMargin(lo2, hi2)
		if ov < bestOverlap || (ov == bestOverlap && size < bestSize) {
			bestIdx, bestOverlap, bestSize = i, ov, size
		}
	}
	right := make([]entry, len(entries)-bestIdx)
	copy(right, entries[bestIdx:])
	n.entries = entries[:bestIdx:bestIdx]
	return &node{leaf: n.leaf, entries: right}
}

func sortByAxis(entries []entry, axis int) {
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].lo[axis] != entries[b].lo[axis] {
			return entries[a].lo[axis] < entries[b].lo[axis]
		}
		return entries[a].hi[axis] < entries[b].hi[axis]
	})
}

func groupMBR(group []entry) (lo, hi []float64) {
	lo = append([]float64(nil), group[0].lo...)
	hi = append([]float64(nil), group[0].hi...)
	for _, e := range group[1:] {
		for j := range lo {
			if e.lo[j] < lo[j] {
				lo[j] = e.lo[j]
			}
			if e.hi[j] > hi[j] {
				hi[j] = e.hi[j]
			}
		}
	}
	return lo, hi
}

func groupMargin(group []entry) float64 {
	lo, hi := groupMBR(group)
	m := 0.0
	for j := range lo {
		m += hi[j] - lo[j]
	}
	return m
}

// boxMargin returns the sum of side lengths (the R* "margin").
func boxMargin(lo, hi []float64) float64 {
	m := 0.0
	for j := range lo {
		m += hi[j] - lo[j]
	}
	return m
}

// unionMargin returns the margin of the smallest box containing both inputs.
func unionMargin(lo1, hi1, lo2, hi2 []float64) float64 {
	m := 0.0
	for j := range lo1 {
		m += math.Max(hi1[j], hi2[j]) - math.Min(lo1[j], lo2[j])
	}
	return m
}

// overlapMargin returns the margin of the intersection box, or 0 when the
// boxes are separated along any axis.
func overlapMargin(lo1, hi1, lo2, hi2 []float64) float64 {
	m := 0.0
	for j := range lo1 {
		lo := math.Max(lo1[j], lo2[j])
		hi := math.Min(hi1[j], hi2[j])
		if hi < lo {
			return 0
		}
		m += hi - lo
	}
	return m
}
