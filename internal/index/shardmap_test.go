package index

import (
	"math/rand"
	"testing"
)

func TestShardMapAssignLocateRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7} {
		m, err := NewShardMap(shards)
		if err != nil {
			t.Fatal(err)
		}
		const n = 500
		for i := 0; i < n; i++ {
			g, s, l := m.Assign()
			if g != i {
				t.Fatalf("Assign %d returned global %d", i, g)
			}
			if s != ShardOf(g, shards) {
				t.Fatalf("global %d placed on shard %d, ShardOf says %d", g, s, ShardOf(g, shards))
			}
			gs, ls, ok := m.Locate(g)
			if !ok || gs != s || ls != l {
				t.Fatalf("Locate(%d) = (%d,%d,%v), want (%d,%d,true)", g, gs, ls, ok, s, l)
			}
			back, ok := m.Global(s, l)
			if !ok || back != g {
				t.Fatalf("Global(%d,%d) = (%d,%v), want (%d,true)", s, l, back, ok, g)
			}
		}
		if m.Len() != n {
			t.Fatalf("Len = %d, want %d", m.Len(), n)
		}
		total := 0
		for s := 0; s < shards; s++ {
			total += m.ShardLen(s)
			prev := -1
			for l, g := range m.Globals(s) {
				if int(g) <= prev {
					t.Fatalf("shard %d locals not in ascending global order at local %d", s, l)
				}
				prev = int(g)
			}
		}
		if total != n {
			t.Fatalf("shard lens sum to %d, want %d", total, n)
		}
	}
}

func TestShardOfBalanceAndRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16} {
		counts := make([]int, shards)
		const n = 7000
		for g := 0; g < n; g++ {
			s := ShardOf(g, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d,%d) = %d out of range", g, shards, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			// A fair hash keeps every shard within 2x of the mean; the
			// mixer comfortably beats this on dense IDs.
			if mean := n / shards; c < mean/2 || c > mean*2 {
				t.Errorf("shards=%d: shard %d holds %d of %d ids (mean %d)", shards, s, c, n, mean)
			}
		}
	}
}

func TestRebuildShardMapMatchesIncremental(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		inc, err := NewShardMap(shards)
		if err != nil {
			t.Fatal(err)
		}
		n := 200 + rand.New(rand.NewSource(int64(shards))).Intn(100)
		for i := 0; i < n; i++ {
			inc.Assign()
		}
		re, err := RebuildShardMap(shards, n)
		if err != nil {
			t.Fatal(err)
		}
		if re.Len() != inc.Len() {
			t.Fatalf("rebuilt Len %d, incremental %d", re.Len(), inc.Len())
		}
		for g := 0; g < n; g++ {
			s1, l1, _ := inc.Locate(g)
			s2, l2, ok := re.Locate(g)
			if !ok || s1 != s2 || l1 != l2 {
				t.Fatalf("global %d: incremental (%d,%d), rebuilt (%d,%d,%v)", g, s1, l1, s2, l2, ok)
			}
		}
	}
}

func TestShardMapCloneIndependence(t *testing.T) {
	m, err := NewShardMap(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Assign()
	}
	cl := m.Clone()
	cl.Assign()
	if m.Len() != 50 || cl.Len() != 51 {
		t.Fatalf("clone not independent: orig %d, clone %d", m.Len(), cl.Len())
	}
	for g := 0; g < 50; g++ {
		s1, l1, _ := m.Locate(g)
		s2, l2, _ := cl.Locate(g)
		if s1 != s2 || l1 != l2 {
			t.Fatalf("clone diverged on shared prefix at global %d", g)
		}
	}
}

func TestShardMapRejectsBadShardCount(t *testing.T) {
	if _, err := NewShardMap(0); err == nil {
		t.Error("NewShardMap(0) succeeded")
	}
	if _, err := NewShardMap(-2); err == nil {
		t.Error("NewShardMap(-2) succeeded")
	}
}
