package index_test

import (
	"testing"

	"repro/internal/index"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func TestKNNDist(t *testing.T) {
	pts := [][]float64{{0}, {1}, {3}, {7}}
	ix, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// From point 0 (excluded): neighbors at 1, 3, 7.
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1},
		{2, 3},
		{3, 7},
		{9, 7}, // clamped to the farthest point
	}
	for _, tc := range cases {
		if got := index.KNNDist(ix, pts[0], tc.k, 0); got != tc.want {
			t.Errorf("KNNDist(k=%d) = %g, want %g", tc.k, got, tc.want)
		}
	}
	if got := index.KNNDist(ix, pts[0], 0, -1); got != 0 {
		t.Errorf("KNNDist(k=0) = %g, want 0", got)
	}
}

// TestNeighborOrderingContract documents the tie-breaking contract: results
// are sorted by distance, and the SET of members at each tied distance is
// deterministic, but the order among exact ties is unspecified (the bounded
// kNN heaps keep ties in heap order). Cursors and Range additionally order
// ties by ascending ID.
func TestNeighborOrderingContract(t *testing.T) {
	pts := [][]float64{{5}, {3}, {3}, {3}, {8}}
	ix, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	nn := ix.KNN([]float64{3}, 3, -1)
	want := map[int]bool{1: true, 2: true, 3: true}
	for _, nb := range nn {
		if nb.Dist != 0 || !want[nb.ID] {
			t.Errorf("KNN tie member %+v, want ids {1,2,3} at distance 0", nb)
		}
		delete(want, nb.ID)
	}
	if len(want) != 0 {
		t.Errorf("KNN missed tied ids %v", want)
	}
	// Cursor ties come back in ID order.
	cur := ix.NewCursor([]float64{3}, -1)
	for _, wantID := range []int{1, 2, 3} {
		nb, ok := cur.Next()
		if !ok || nb.ID != wantID {
			t.Errorf("cursor tie: got %+v, want id %d", nb, wantID)
		}
	}
}
