package index

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/vecmath"
)

// Overlay is an LSM-style delta layer over an immutable base index: recent
// inserts live in an append-only memtable, deletions in a tombstone set, and
// every query merges the two with the base on the fly under the (distance,
// ID) total order. It exists so the facade's copy-on-write writers no longer
// pay O(n) per mutation — Clone copies only the delta (the memtable slice
// header and the tombstone set), sharing the base, and the O(n) cost moves
// into Fold, paid once per compaction instead of once per write.
//
// ID discipline: the base owns IDs [0, baseSpan); memtable row i is ID
// baseSpan+i. IDs are never reused and rows are never removed (a deleted
// memtable row is tombstoned in place), so Fold re-inserting the rows into a
// base clone reproduces exactly the IDs the overlay already handed out.
//
// An Overlay mutated through Insert/Delete is not safe for concurrent use
// (like every Dynamic); the facade's discipline — clone, mutate the clone,
// publish atomically — keeps published overlays immutable and therefore
// safe for any number of readers.
type Overlay struct {
	base     Index // immutable while this overlay is reachable by readers
	baseSpan int   // IDs below this resolve in base
	rows     [][]float64
	tomb     map[int]bool // deleted IDs, both base- and memtable-region
	baseTomb int          // tombstones below baseSpan (the base.KNN over-fetch)
	alive    int
	dim      int
	metric   vecmath.Metric
	dist     vecmath.DistanceFunc // resolved kernel; falls back to metric.Distance
}

var (
	_ Cloner   = (*Overlay)(nil)
	_ Liveness = (*Overlay)(nil)
)

// resolveKernel picks the direct distance kernel for m so the memtable scan
// does not pay an interface call per row.
func resolveKernel(m vecmath.Metric) vecmath.DistanceFunc {
	if k := vecmath.KernelFor(m); k != nil {
		return k
	}
	return m.Distance
}

// baseClones counts base-index clones performed by Fold across the process
// — the O(n) events. The write-path tests pin that N inserts below the
// compaction threshold perform zero of them.
var baseClones atomic.Int64

// BaseClones returns the process-lifetime count of O(n) base-index clones
// (one per Fold).
func BaseClones() int64 { return baseClones.Load() }

// NewOverlay wraps base in an empty delta overlay. The base is retained by
// reference and must not be mutated afterwards; Fold additionally requires
// it to implement Cloner.
func NewOverlay(base Index) *Overlay {
	span := base.Len()
	if lv, ok := base.(Liveness); ok {
		span = lv.IDSpan()
	}
	return &Overlay{
		base:     base,
		baseSpan: span,
		tomb:     make(map[int]bool),
		alive:    base.Len(),
		dim:      base.Dim(),
		metric:   base.Metric(),
		dist:     resolveKernel(base.Metric()),
	}
}

// EnableQuantFilter forwards to the base, which owns the row storage the
// filter screens; memtable rows are screened only after a Fold re-inserts
// them into a filtered base clone. Intended for wiring an overlay before it
// is published to readers — the base is immutable afterwards.
func (o *Overlay) EnableQuantFilter(cb *vecmath.Codebook) error {
	qf, ok := o.base.(QuantFiltered)
	if !ok {
		return errors.New("index: overlay base does not support a quantized filter")
	}
	return qf.EnableQuantFilter(cb)
}

// QuantCodebook forwards the base's quantized-filter codebook (nil when the
// base has none or no filter is enabled).
func (o *Overlay) QuantCodebook() *vecmath.Codebook {
	if qf, ok := o.base.(QuantFiltered); ok {
		return qf.QuantCodebook()
	}
	return nil
}

// QuantFilterStats forwards the base's quantized-filter admission counters.
func (o *Overlay) QuantFilterStats() (admitted, screened int64) {
	if qf, ok := o.base.(QuantFiltered); ok {
		return qf.QuantFilterStats()
	}
	return 0, 0
}

// Base returns the immutable base index under the delta.
func (o *Overlay) Base() Index { return o.base }

// MemtableLen returns the number of memtable rows (including tombstoned
// ones — they still occupy IDs and are re-inserted by Fold).
func (o *Overlay) MemtableLen() int { return len(o.rows) }

// Pending returns the total delta size — memtable rows plus tombstones —
// the quantity the facade's compaction threshold watches.
func (o *Overlay) Pending() int { return len(o.rows) + len(o.tomb) }

// Dirty reports whether the overlay carries any delta at all.
func (o *Overlay) Dirty() bool { return len(o.rows) > 0 || len(o.tomb) > 0 }

// Len implements Index; deleted points are excluded.
func (o *Overlay) Len() int { return o.alive }

// Dim implements Index.
func (o *Overlay) Dim() int { return o.dim }

// Metric implements Index.
func (o *Overlay) Metric() vecmath.Metric { return o.metric }

// IDSpan implements Liveness.
func (o *Overlay) IDSpan() int { return o.baseSpan + len(o.rows) }

// Live implements Liveness.
func (o *Overlay) Live(id int) bool {
	if id < 0 || id >= o.IDSpan() || o.tomb[id] {
		return false
	}
	if id < o.baseSpan {
		return o.baseLive(id)
	}
	return true
}

// baseLive reports liveness within the base alone (the base may carry its
// own tombstones from before it was wrapped or from a previous Fold).
func (o *Overlay) baseLive(id int) bool {
	if lv, ok := o.base.(Liveness); ok {
		return lv.Live(id)
	}
	return id >= 0 && id < o.base.Len()
}

// Point implements Index. Like the back-ends, it keeps returning the
// coordinates of tombstoned IDs and panics on IDs never assigned.
func (o *Overlay) Point(id int) []float64 {
	if id < o.baseSpan {
		return o.base.Point(id)
	}
	return o.rows[id-o.baseSpan]
}

// Insert implements Dynamic: an O(1) memtable append.
func (o *Overlay) Insert(p []float64) (int, error) {
	if err := vecmath.ValidateFor(o.metric, p); err != nil {
		return 0, err
	}
	if len(p) != o.dim {
		return 0, fmt.Errorf("index: point dimension %d, index dimension %d", len(p), o.dim)
	}
	o.rows = append(o.rows, p)
	o.alive++
	return o.baseSpan + len(o.rows) - 1, nil
}

// Delete implements Dynamic: an O(1) tombstone. Memtable rows stay in place
// (their IDs are never reused); base points are hidden from every query
// without touching the shared base.
func (o *Overlay) Delete(id int) bool {
	if !o.Live(id) {
		return false
	}
	o.tomb[id] = true
	if id < o.baseSpan {
		o.baseTomb++
	}
	o.alive--
	return true
}

// Clone implements Cloner in O(delta), not O(n): the memtable slice and the
// tombstone set are copied, the base is shared. Mutating the clone is never
// observable through the original, so the facade's clone-then-swap writers
// keep their existing discipline at a per-write cost proportional to the
// delta size.
func (o *Overlay) Clone() Dynamic {
	rows := make([][]float64, len(o.rows), len(o.rows)+1)
	copy(rows, o.rows)
	tomb := make(map[int]bool, len(o.tomb))
	for id := range o.tomb {
		tomb[id] = true
	}
	return &Overlay{
		base:     o.base,
		baseSpan: o.baseSpan,
		rows:     rows,
		tomb:     tomb,
		baseTomb: o.baseTomb,
		alive:    o.alive,
		dim:      o.dim,
		metric:   o.metric,
		dist:     o.dist,
	}
}

// Fold pays the O(n) cost the per-write path no longer does: it clones the
// base, re-inserts the memtable rows (verifying each lands on the ID the
// overlay assigned), applies the tombstones in ascending ID order, and
// returns the folded index — a fresh base for a rebased overlay. The
// receiver is not modified, so a frozen overlay can be folded off-lock
// while writers keep appending to its clones.
func (o *Overlay) Fold() (Dynamic, error) {
	cl, ok := o.base.(Cloner)
	if !ok {
		return nil, errors.New("index: overlay base does not support cloning")
	}
	baseClones.Add(1)
	next := cl.Clone()
	for i, p := range o.rows {
		id, err := next.Insert(p)
		if err != nil {
			return nil, fmt.Errorf("index: folding memtable row %d: %w", i, err)
		}
		if id != o.baseSpan+i {
			return nil, fmt.Errorf("index: folded row landed on id %d, overlay assigned %d", id, o.baseSpan+i)
		}
	}
	tombs := make([]int, 0, len(o.tomb))
	for id := range o.tomb {
		tombs = append(tombs, id)
	}
	sort.Ints(tombs)
	for _, id := range tombs {
		if !next.Delete(id) {
			return nil, fmt.Errorf("index: folded tombstone %d not deletable", id)
		}
	}
	return next, nil
}

// Rebase returns a fresh overlay over folded (the result of frozen.Fold())
// carrying only the delta the receiver accumulated after frozen was
// captured. It relies on the clone discipline's invariants: frozen was
// cloned from the same lineage as the receiver, so frozen.rows is a prefix
// of o.rows and frozen.tomb a subset of o.tomb.
func (o *Overlay) Rebase(frozen *Overlay, folded Dynamic) *Overlay {
	span := frozen.baseSpan + len(frozen.rows)
	rows := make([][]float64, len(o.rows)-len(frozen.rows), len(o.rows)-len(frozen.rows)+1)
	copy(rows, o.rows[len(frozen.rows):])
	tomb := make(map[int]bool)
	baseTomb := 0
	for id := range o.tomb {
		if frozen.tomb[id] {
			continue // already applied to folded
		}
		tomb[id] = true
		if id < span {
			baseTomb++
		}
	}
	return &Overlay{
		base:     folded,
		baseSpan: span,
		rows:     rows,
		tomb:     tomb,
		baseTomb: baseTomb,
		alive:    o.alive,
		dim:      o.dim,
		metric:   o.metric,
		dist:     o.dist,
	}
}

// baseSkip translates the caller's skipID for the base index: base queries
// can only be asked to skip base-region IDs.
func (o *Overlay) baseSkip(skipID int) int {
	if skipID >= 0 && skipID < o.baseSpan {
		return skipID
	}
	return -1
}

// memNeighbors returns the live memtable rows as (distance, ID) pairs in
// ascending (distance, ID) order — the memtable half of every merge.
func (o *Overlay) memNeighbors(q []float64, skipID int) []Neighbor {
	if len(o.rows) == 0 {
		return nil
	}
	out := make([]Neighbor, 0, len(o.rows))
	for i, p := range o.rows {
		id := o.baseSpan + i
		if id == skipID || o.tomb[id] {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: o.dist(q, p)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// NewCursor implements Index: the base cursor filtered through the
// tombstones, two-way merged with the sorted memtable. Base wins distance
// ties, which is exactly ascending-ID order: every base ID is below every
// memtable ID.
func (o *Overlay) NewCursor(q []float64, skipID int) Cursor {
	return &overlayCursor{
		base: o.base.NewCursor(q, o.baseSkip(skipID)),
		tomb: o.tomb,
		mem:  o.memNeighbors(q, skipID),
	}
}

// NewCursorCtx is NewCursor for traced queries: when ctx carries a span,
// the returned cursor splits the merge cost into "overlay.base" (time
// spent driving the base index's expanding search, items pulled and
// served) and "overlay.memtable" (rows scanned/sorted, items served)
// child spans, emitted when the scan loop calls FinishTrace. An untraced
// ctx falls back to the plain cursor.
func (o *Overlay) NewCursorCtx(ctx context.Context, q []float64, skipID int) Cursor {
	sp := trace.FromContext(ctx)
	if sp == nil {
		return o.NewCursor(q, skipID)
	}
	memStart := time.Now()
	mem := o.memNeighbors(q, skipID)
	memDur := time.Since(memStart)
	tb := &timedCursor{c: o.base.NewCursor(q, o.baseSkip(skipID))}
	return &tracedOverlayCursor{
		overlayCursor: overlayCursor{base: tb, tomb: o.tomb, mem: mem},
		sp:            sp,
		tb:            tb,
		start:         memStart,
		memDur:        memDur,
		memRows:       len(o.rows),
		tombs:         len(o.tomb),
	}
}

// timedCursor wraps a base cursor, accumulating the wall time and item
// count of its Next calls.
type timedCursor struct {
	c   Cursor
	dur time.Duration
	n   int
}

func (t *timedCursor) Next() (Neighbor, bool) {
	t0 := time.Now()
	n, ok := t.c.Next()
	t.dur += time.Since(t0)
	if ok {
		t.n++
	}
	return n, ok
}

// tracedOverlayCursor is an overlayCursor that attributes every served
// neighbor to its source and reports both halves as spans.
type tracedOverlayCursor struct {
	overlayCursor
	sp             *trace.Span
	tb             *timedCursor
	start          time.Time
	memDur         time.Duration
	memRows, tombs int
	servedBase     int
	servedMem      int
}

func (c *tracedOverlayCursor) Next() (Neighbor, bool) {
	before := c.memAt
	n, ok := c.overlayCursor.Next()
	if ok {
		if c.memAt > before {
			c.servedMem++
		} else {
			c.servedBase++
		}
	}
	return n, ok
}

// FinishTrace emits the accumulated base/memtable split as retro-dated
// spans under the query's trace. Called once by the scan loop after the
// expanding search terminates.
func (c *tracedOverlayCursor) FinishTrace() {
	bsp := c.sp.ChildAt("overlay.base", c.start)
	bsp.SetInt("pulled", int64(c.tb.n))
	bsp.SetInt("served", int64(c.servedBase))
	bsp.SetInt("tombstones", int64(c.tombs))
	bsp.EndWithDuration(c.tb.dur)
	msp := c.sp.ChildAt("overlay.memtable", c.start)
	msp.SetInt("rows", int64(c.memRows))
	msp.SetInt("served", int64(c.servedMem))
	msp.EndWithDuration(c.memDur)
}

type overlayCursor struct {
	base    Cursor
	tomb    map[int]bool
	mem     []Neighbor
	memAt   int
	pending Neighbor // next live base neighbor, when buffered
	havePnd bool
	baseEnd bool
}

func (c *overlayCursor) Next() (Neighbor, bool) {
	if !c.havePnd && !c.baseEnd {
		for {
			n, ok := c.base.Next()
			if !ok {
				c.baseEnd = true
				break
			}
			if c.tomb[n.ID] {
				continue
			}
			c.pending, c.havePnd = n, true
			break
		}
	}
	memOK := c.memAt < len(c.mem)
	switch {
	case c.havePnd && memOK:
		if c.pending.Dist <= c.mem[c.memAt].Dist {
			c.havePnd = false
			return c.pending, true
		}
		c.memAt++
		return c.mem[c.memAt-1], true
	case c.havePnd:
		c.havePnd = false
		return c.pending, true
	case memOK:
		c.memAt++
		return c.mem[c.memAt-1], true
	}
	return Neighbor{}, false
}

// mergeTake merges the tombstone-filtered base list with the sorted
// memtable list under the (distance, ID) order (base first on ties), keeping
// at most k results; k < 0 keeps everything.
func mergeTake(base, mem []Neighbor, k int) []Neighbor {
	if k < 0 {
		k = len(base) + len(mem)
	}
	out := make([]Neighbor, 0, min(k, len(base)+len(mem)))
	bi, mi := 0, 0
	for len(out) < k && (bi < len(base) || mi < len(mem)) {
		switch {
		case bi == len(base):
			out = append(out, mem[mi])
			mi++
		case mi == len(mem) || base[bi].Dist <= mem[mi].Dist:
			out = append(out, base[bi])
			bi++
		default:
			out = append(out, mem[mi])
			mi++
		}
	}
	return out
}

// KNN implements Index. The base is over-fetched by the base-region
// tombstone count so that filtering can never starve the merge of live base
// candidates.
func (o *Overlay) KNN(q []float64, k int, skipID int) []Neighbor {
	if k <= 0 {
		return nil
	}
	bn := o.base.KNN(q, k+o.baseTomb, o.baseSkip(skipID))
	base := bn[:0:0]
	for _, n := range bn {
		if o.tomb[n.ID] {
			continue
		}
		base = append(base, n)
		if len(base) == k {
			break
		}
	}
	return mergeTake(base, o.memNeighbors(q, skipID), k)
}

// Range implements Index.
func (o *Overlay) Range(q []float64, r float64, skipID int) []Neighbor {
	bn := o.base.Range(q, r, o.baseSkip(skipID))
	base := bn[:0:0]
	for _, n := range bn {
		if !o.tomb[n.ID] {
			base = append(base, n)
		}
	}
	var mem []Neighbor
	for _, n := range o.memNeighbors(q, skipID) {
		if n.Dist > r {
			break
		}
		mem = append(mem, n)
	}
	return mergeTake(base, mem, -1)
}

// CountRange implements Index without materializing the base result: the
// base count, minus the (few) tombstoned base points inside the radius,
// plus the live memtable rows inside it.
func (o *Overlay) CountRange(q []float64, r float64, skipID int) int {
	n := o.base.CountRange(q, r, o.baseSkip(skipID))
	for id := range o.tomb {
		if id >= o.baseSpan || id == skipID {
			continue
		}
		if o.dist(q, o.base.Point(id)) <= r {
			n--
		}
	}
	for i, p := range o.rows {
		id := o.baseSpan + i
		if id == skipID || o.tomb[id] {
			continue
		}
		if o.dist(q, p) <= r {
			n++
		}
	}
	return n
}
