package index

import (
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// oracleIndex is the Dynamic contract every test compares against: a scan
// re-implemented inline so the overlay tests do not import internal/scan
// (which imports this package).
type oracleIndex struct {
	points  [][]float64
	deleted map[int]bool
	metric  vecmath.Metric
}

func newOracle(points [][]float64) *oracleIndex {
	pts := make([][]float64, len(points))
	copy(pts, points)
	return &oracleIndex{points: pts, deleted: map[int]bool{}, metric: vecmath.Euclidean{}}
}

func (o *oracleIndex) insert(p []float64) int {
	o.points = append(o.points, p)
	return len(o.points) - 1
}

func (o *oracleIndex) delete(id int) bool {
	if id < 0 || id >= len(o.points) || o.deleted[id] {
		return false
	}
	o.deleted[id] = true
	return true
}

func (o *oracleIndex) neighbors(q []float64, skipID int) []Neighbor {
	var out []Neighbor
	for id, p := range o.points {
		if id == skipID || o.deleted[id] {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: o.metric.Distance(q, p)})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

func randRow(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

// buildScanBase returns an overlay over a minimal Cloner base holding the
// given points. The base is the test scan below, which mirrors the real scan
// back-end's semantics.
type testScan struct {
	points  [][]float64
	metric  vecmath.Metric
	deleted map[int]bool
	alive   int
}

var _ Cloner = (*testScan)(nil)

func newTestScan(points [][]float64) *testScan {
	pts := make([][]float64, len(points))
	copy(pts, points)
	return &testScan{points: pts, metric: vecmath.Euclidean{}, deleted: map[int]bool{}, alive: len(points)}
}

func (ix *testScan) Len() int               { return ix.alive }
func (ix *testScan) Dim() int               { return len(ix.points[0]) }
func (ix *testScan) Point(id int) []float64 { return ix.points[id] }
func (ix *testScan) Metric() vecmath.Metric { return ix.metric }
func (ix *testScan) IDSpan() int            { return len(ix.points) }
func (ix *testScan) Live(id int) bool {
	return id >= 0 && id < len(ix.points) && !ix.deleted[id]
}

func (ix *testScan) Insert(p []float64) (int, error) {
	ix.points = append(ix.points, p)
	ix.alive++
	return len(ix.points) - 1, nil
}

func (ix *testScan) Delete(id int) bool {
	if !ix.Live(id) {
		return false
	}
	ix.deleted[id] = true
	ix.alive--
	return true
}

func (ix *testScan) Clone() Dynamic {
	points := make([][]float64, len(ix.points))
	copy(points, ix.points)
	deleted := make(map[int]bool, len(ix.deleted))
	for id := range ix.deleted {
		deleted[id] = true
	}
	return &testScan{points: points, metric: ix.metric, deleted: deleted, alive: ix.alive}
}

func (ix *testScan) sorted(q []float64, skipID int) []Neighbor {
	var out []Neighbor
	for id, p := range ix.points {
		if id == skipID || ix.deleted[id] {
			continue
		}
		out = append(out, Neighbor{ID: id, Dist: ix.metric.Distance(q, p)})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

func (ix *testScan) NewCursor(q []float64, skipID int) Cursor {
	return &testCursor{order: ix.sorted(q, skipID)}
}

type testCursor struct {
	order []Neighbor
	next  int
}

func (c *testCursor) Next() (Neighbor, bool) {
	if c.next >= len(c.order) {
		return Neighbor{}, false
	}
	c.next++
	return c.order[c.next-1], true
}

func (ix *testScan) KNN(q []float64, k int, skipID int) []Neighbor {
	order := ix.sorted(q, skipID)
	if k < len(order) {
		order = order[:k]
	}
	return order
}

func (ix *testScan) Range(q []float64, r float64, skipID int) []Neighbor {
	var out []Neighbor
	for _, n := range ix.sorted(q, skipID) {
		if n.Dist > r {
			break
		}
		out = append(out, n)
	}
	return out
}

func (ix *testScan) CountRange(q []float64, r float64, skipID int) int {
	return len(ix.Range(q, r, skipID))
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestOverlayMatchesOracle drives a long interleaved insert/delete stream
// through an overlay (with periodic Fold/Rebase compactions) and an oracle,
// verifying after every step that KNN, Range, CountRange, the cursor stream,
// and Liveness agree exactly.
func TestOverlayMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 3
	base := make([][]float64, 12)
	for i := range base {
		base[i] = randRow(rng, dim)
	}
	ov := NewOverlay(newTestScan(base))
	or := newOracle(base)

	check := func(step int) {
		t.Helper()
		if ov.Len() != len(or.points)-len(or.deleted) {
			t.Fatalf("step %d: overlay Len %d, oracle %d", step, ov.Len(), len(or.points)-len(or.deleted))
		}
		if ov.IDSpan() != len(or.points) {
			t.Fatalf("step %d: overlay IDSpan %d, oracle %d", step, ov.IDSpan(), len(or.points))
		}
		for id := -1; id <= len(or.points); id++ {
			want := id >= 0 && id < len(or.points) && !or.deleted[id]
			if ov.Live(id) != want {
				t.Fatalf("step %d: Live(%d) = %v, want %v", step, id, ov.Live(id), want)
			}
		}
		q := randRow(rng, dim)
		skips := []int{-1, rng.Intn(len(or.points))}
		for _, skip := range skips {
			want := or.neighbors(q, skip)
			for _, k := range []int{1, 3, len(or.points) + 5} {
				wk := want
				if k < len(wk) {
					wk = wk[:k]
				}
				if got := ov.KNN(q, k, skip); !sameNeighbors(got, wk) {
					t.Fatalf("step %d: KNN(k=%d, skip=%d) = %v, want %v", step, k, skip, got, wk)
				}
			}
			r := 0.0
			if len(want) > 0 {
				r = want[len(want)/2].Dist
			}
			var wr []Neighbor
			for _, n := range want {
				if n.Dist <= r {
					wr = append(wr, n)
				}
			}
			if got := ov.Range(q, r, skip); !sameNeighbors(got, wr) {
				t.Fatalf("step %d: Range(r=%v, skip=%d) = %v, want %v", step, r, skip, got, wr)
			}
			if got := ov.CountRange(q, r, skip); got != len(wr) {
				t.Fatalf("step %d: CountRange = %d, want %d", step, got, len(wr))
			}
			cur := ov.NewCursor(q, skip)
			var streamed []Neighbor
			for {
				n, ok := cur.Next()
				if !ok {
					break
				}
				streamed = append(streamed, n)
			}
			if !sameNeighbors(streamed, want) {
				t.Fatalf("step %d: cursor stream = %v, want %v", step, streamed, want)
			}
		}
	}

	check(0)
	for step := 1; step <= 120; step++ {
		switch {
		case rng.Intn(3) == 0 && ov.Len() > 2:
			id := rng.Intn(ov.IDSpan())
			got := ov.Delete(id)
			want := or.delete(id)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, oracle %v", step, id, got, want)
			}
		default:
			p := randRow(rng, dim)
			id, err := ov.Insert(p)
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			if want := or.insert(p); id != want {
				t.Fatalf("step %d: insert id %d, oracle %d", step, id, want)
			}
		}
		if step%17 == 0 { // periodic compaction, mid-stream
			folded, err := ov.Fold()
			if err != nil {
				t.Fatalf("step %d: fold: %v", step, err)
			}
			ov = ov.Rebase(ov, folded)
			if ov.Dirty() {
				t.Fatalf("step %d: self-rebased overlay still dirty", step)
			}
		}
		check(step)
	}
}

// TestOverlayCloneIsolation pins the copy-on-write contract: mutations on a
// clone are invisible through the original, and Clone never clones the base.
func TestOverlayCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([][]float64, 6)
	for i := range base {
		base[i] = randRow(rng, 2)
	}
	ov := NewOverlay(newTestScan(base))
	if _, err := ov.Insert(randRow(rng, 2)); err != nil {
		t.Fatal(err)
	}

	before := BaseClones()
	cl := ov.Clone().(*Overlay)
	if BaseClones() != before {
		t.Fatalf("Clone performed %d base clones, want 0", BaseClones()-before)
	}
	if _, err := cl.Insert(randRow(rng, 2)); err != nil {
		t.Fatal(err)
	}
	if !cl.Delete(2) {
		t.Fatal("clone delete failed")
	}
	if ov.Len() != 7 || ov.IDSpan() != 7 {
		t.Fatalf("original perturbed by clone mutations: Len %d IDSpan %d", ov.Len(), ov.IDSpan())
	}
	if !ov.Live(2) {
		t.Fatal("clone tombstone leaked into original")
	}
	if cl.Len() != 7 || cl.IDSpan() != 8 || cl.Live(2) {
		t.Fatalf("clone state wrong: Len %d IDSpan %d Live(2) %v", cl.Len(), cl.IDSpan(), cl.Live(2))
	}
}

// TestOverlayRebaseCarriesPostFreezeDelta pins the background-compaction
// rebase: the delta accumulated after the frozen overlay was captured
// survives onto the folded base.
func TestOverlayRebaseCarriesPostFreezeDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([][]float64, 5)
	for i := range base {
		base[i] = randRow(rng, 2)
	}
	frozen := NewOverlay(newTestScan(base))
	for i := 0; i < 4; i++ {
		if _, err := frozen.Insert(randRow(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if !frozen.Delete(1) {
		t.Fatal("delete failed")
	}

	// Writers keep going on a clone while the frozen overlay folds.
	cur := frozen.Clone().(*Overlay)
	lateID, err := cur.Insert(randRow(rng, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Delete(6) {
		t.Fatal("late delete failed")
	}

	folded, err := frozen.Fold()
	if err != nil {
		t.Fatal(err)
	}
	reb := cur.Rebase(frozen, folded)
	if reb.MemtableLen() != 1 {
		t.Fatalf("rebased memtable has %d rows, want 1", reb.MemtableLen())
	}
	if reb.IDSpan() != cur.IDSpan() || reb.Len() != cur.Len() {
		t.Fatalf("rebase changed shape: IDSpan %d/%d Len %d/%d", reb.IDSpan(), cur.IDSpan(), reb.Len(), cur.Len())
	}
	q := randRow(rng, 2)
	if !sameNeighbors(reb.KNN(q, 20, -1), cur.KNN(q, 20, -1)) {
		t.Fatal("rebased overlay answers differently from its pre-rebase state")
	}
	if reb.Live(1) || reb.Live(6) || !reb.Live(lateID) {
		t.Fatal("rebased liveness wrong")
	}
}

// TestOverlayStaticBaseFoldFails pins the error contract for bases without
// Cloner support.
func TestOverlayStaticBaseFoldFails(t *testing.T) {
	// A testScan stripped to a plain Index via an embedding that hides the
	// Dynamic methods.
	type staticOnly struct{ Index }
	base := newTestScan([][]float64{{0, 0}, {1, 1}})
	ov := NewOverlay(staticOnly{base})
	if _, err := ov.Insert([]float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Fold(); err == nil {
		t.Fatal("Fold over a non-Cloner base succeeded, want error")
	}
}
