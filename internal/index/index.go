// Package index defines the contract between the RkNN algorithms and the
// similarity-search back-ends that feed them.
//
// The RDT algorithm (Casanova et al., PVLDB 2017, Section 4) requires only an
// auxiliary structure that can process *incremental* forward nearest-neighbor
// queries: neighbors of a query point are pulled one at a time, in
// non-decreasing distance order, until the dimensional test terminates the
// search. Cursor captures exactly that capability; Index adds the batch kNN
// and range queries needed by the refinement phases of RDT and of the
// competing methods.
package index

import "repro/internal/vecmath"

// Neighbor is one element of a query result: a dataset member identified by
// its stable integer ID, together with its distance from the query.
type Neighbor struct {
	ID   int
	Dist float64
}

// Cursor streams the members of a dataset in non-decreasing distance from a
// fixed query point. A Cursor is single-use and not safe for concurrent use.
type Cursor interface {
	// Next returns the next-nearest unvisited neighbor. ok is false once
	// the dataset is exhausted.
	Next() (n Neighbor, ok bool)
}

// Index is a read-only similarity-search structure over a finite point set.
// Implementations must be safe for concurrent readers.
//
// IDs are dense integers in [0, Len()) assigned in dataset order, so results
// from different Index implementations over the same dataset are directly
// comparable.
type Index interface {
	// Len returns the number of indexed points.
	Len() int

	// Dim returns the dimensionality of the indexed points.
	Dim() int

	// Point returns the coordinates of the point with the given ID. The
	// returned slice is owned by the index and must not be modified.
	Point(id int) []float64

	// Metric returns the distance under which the index operates.
	Metric() vecmath.Metric

	// NewCursor begins an incremental nearest-neighbor traversal from q.
	// If skipID >= 0, the point with that ID is omitted from the stream;
	// RkNN algorithms use this to exclude a query that is itself a
	// dataset member (see the self-exclusion convention in DESIGN.md).
	NewCursor(q []float64, skipID int) Cursor

	// KNN returns the k nearest neighbors of q in ascending distance
	// order (fewer if the dataset is smaller). skipID as in NewCursor.
	KNN(q []float64, k int, skipID int) []Neighbor

	// Range returns all points within distance r of q, in ascending
	// distance order. skipID as in NewCursor.
	Range(q []float64, r float64, skipID int) []Neighbor

	// CountRange returns |{x : d(q,x) <= r}|, excluding skipID. Back-ends
	// may answer this without materializing the result set; SFT's
	// verification step depends on it being cheap.
	CountRange(q []float64, r float64, skipID int) int
}

// Builder constructs an Index over a dataset. Back-ends register a Builder
// so that experiments can be parameterized by back-end name.
type Builder interface {
	// Build indexes the given points under the metric. The points slice
	// is retained by reference; callers must not mutate it afterwards.
	Build(points [][]float64, metric vecmath.Metric) (Index, error)

	// Name identifies the back-end ("scan", "covertree", ...).
	Name() string
}

// Dynamic is implemented by indexes that support online updates, the
// property the paper highlights for dynamic scenarios (Section 4: "no
// additional costs ... other than those due to changes made to the auxiliary
// forward kNN index structure").
type Dynamic interface {
	Index

	// Insert adds a point and returns its assigned ID.
	Insert(p []float64) (int, error)

	// Delete removes the point with the given ID. It reports whether the
	// ID was present (and not already deleted).
	Delete(id int) bool
}

// Liveness is implemented by indexes whose ID space can outgrow Len()
// through tombstoned deletes: IDs are never reused, so after a delete the
// live IDs are no longer the dense prefix [0, Len()). Query layers use it
// to validate member-query IDs; indexes without it have every ID in
// [0, Len()) live.
type Liveness interface {
	// IDSpan returns the number of IDs ever assigned; valid IDs lie in
	// [0, IDSpan()).
	IDSpan() int

	// Live reports whether id is assigned and not deleted.
	Live(id int) bool
}

// Cloner is implemented by dynamic indexes that can copy themselves in O(n).
// The copy shares no mutable state with the original: mutating the clone
// must never be observable through the original, so a frozen original can
// keep serving concurrent readers while the clone absorbs updates. This is
// the primitive behind the facade's copy-on-write snapshots (DESIGN.md).
type Cloner interface {
	Dynamic

	// Clone returns an independent deep copy of the index.
	Clone() Dynamic
}

// QuantFiltered is an optional capability of row-scan back-ends: an 8-bit
// scalar-quantization pre-filter that screens rows with sound
// lower bounds before the exact kernel runs, never changing results (see
// package scan). The facade uses it to enable the filter
// (WithQuantizedFilter), persist the trained codebook with snapshots, and
// export the admission counters as telemetry. The Overlay forwards the
// read-side methods from its base, so the capability survives wrapping.
type QuantFiltered interface {
	// EnableQuantFilter attaches the filter, training a codebook over the
	// current rows when cb is nil. It fails for metrics the filter has no
	// sound lower bound for.
	EnableQuantFilter(cb *vecmath.Codebook) error

	// QuantCodebook returns the active codebook, or nil when the filter is
	// disabled.
	QuantCodebook() *vecmath.Codebook

	// QuantFilterStats returns monotone lifetime totals of rows admitted
	// to the exact kernel and rows screened out by the lower bounds.
	QuantFilterStats() (admitted, screened int64)
}

// KNNDist returns the k-th nearest neighbor distance of q, or the distance of
// the farthest point if fewer than k points are indexed. It is the d_k(·)
// primitive of the paper's refinement test.
func KNNDist(ix Index, q []float64, k int, skipID int) float64 {
	nn := ix.KNN(q, k, skipID)
	if len(nn) == 0 {
		return 0
	}
	return nn[len(nn)-1].Dist
}
