package index

import "fmt"

// ShardMap is the stable bidirectional mapping between the global ID space
// of a sharded engine and the (shard, local ID) spaces of its per-shard
// indexes. Global IDs are dense integers assigned in insertion order, like
// the IDs of any single Index; each global ID is hash-partitioned to a
// shard by ShardOf and receives the next local ID of that shard. Local IDs
// therefore grow densely per shard in global insertion order, which makes
// the whole mapping a pure function of (global count, shard count) — the
// property the durable recovery path relies on (RebuildShardMap).
//
// A ShardMap is immutable from the reader side: queries hold one map value
// and translate freely, while writers Clone, Assign, and publish the clone
// (the same copy-on-write discipline as the index snapshots, DESIGN.md).
// Deletes never touch the map — tombstones live in the shard indexes — so a
// once-published (global, shard, local) triple is valid forever.
type ShardMap struct {
	shards  int
	shardOf []int32   // global -> shard
	localOf []int32   // global -> local
	globals [][]int32 // shard -> local -> global
}

// ShardOf returns the shard a global ID is partitioned to, a fixed
// splitmix64-style mix of the ID so that consecutive IDs spread evenly.
// It is a pure function: the same (global, shards) pair maps identically
// across processes, restarts, and releases — on-disk stores depend on it.
func ShardOf(global, shards int) int {
	z := uint64(global) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// NewShardMap returns an empty mapping over the given number of shards.
func NewShardMap(shards int) (*ShardMap, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("index: shard count must be positive, got %d", shards)
	}
	return &ShardMap{shards: shards, globals: make([][]int32, shards)}, nil
}

// RebuildShardMap reconstructs the mapping for n global IDs, exactly as n
// successive Assign calls on a fresh map would have built it. Recovery uses
// it to re-derive the mapping from per-shard ID spans instead of persisting
// the map itself.
func RebuildShardMap(shards, n int) (*ShardMap, error) {
	m, err := NewShardMap(shards)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Assign()
	}
	return m, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Len returns the number of global IDs ever assigned (the global ID span;
// tombstoned IDs are still counted, exactly like Liveness.IDSpan).
func (m *ShardMap) Len() int { return len(m.shardOf) }

// ShardLen returns the number of global IDs ever assigned to one shard —
// the shard index's expected ID span.
func (m *ShardMap) ShardLen(shard int) int { return len(m.globals[shard]) }

// Assign allocates the next global ID, places it on its shard, and returns
// the full (global, shard, local) triple. Not safe for concurrent use;
// writers must hold their update lock and publish a Clone.
func (m *ShardMap) Assign() (global, shard, local int) {
	global = len(m.shardOf)
	shard = ShardOf(global, m.shards)
	local = len(m.globals[shard])
	m.shardOf = append(m.shardOf, int32(shard))
	m.localOf = append(m.localOf, int32(local))
	m.globals[shard] = append(m.globals[shard], int32(global))
	return global, shard, local
}

// Locate translates a global ID to its (shard, local) placement. ok is
// false for IDs never assigned.
func (m *ShardMap) Locate(global int) (shard, local int, ok bool) {
	if global < 0 || global >= len(m.shardOf) {
		return 0, 0, false
	}
	return int(m.shardOf[global]), int(m.localOf[global]), true
}

// Global translates a (shard, local) placement back to its global ID. ok is
// false for locals never assigned.
func (m *ShardMap) Global(shard, local int) (global int, ok bool) {
	if shard < 0 || shard >= m.shards || local < 0 || local >= len(m.globals[shard]) {
		return 0, false
	}
	return int(m.globals[shard][local]), true
}

// Globals returns the ascending global IDs living on one shard, indexed by
// local ID. The returned slice is owned by the map and must not be
// modified.
func (m *ShardMap) Globals(shard int) []int32 { return m.globals[shard] }

// Clone returns an independent copy for a writer to extend and publish.
func (m *ShardMap) Clone() *ShardMap {
	cl := &ShardMap{
		shards:  m.shards,
		shardOf: append([]int32(nil), m.shardOf...),
		localOf: append([]int32(nil), m.localOf...),
		globals: make([][]int32, m.shards),
	}
	for s, g := range m.globals {
		cl.globals[s] = append([]int32(nil), g...)
	}
	return cl
}
