package index

// State is the backend-independent persistable content of an Index: every
// point ever assigned an ID (including tombstoned ones, so that the dense
// ID space survives a round trip) plus the sorted list of tombstoned IDs.
// It is the unit internal/persist serializes; restoring is the reverse —
// rebuild the back-end over Points, then re-apply Deleted.
type State struct {
	// Points holds one row per ID in [0, len(Points)), in ID order.
	Points [][]float64
	// Deleted lists tombstoned IDs in ascending order (nil when none).
	Deleted []int
}

// Capture extracts the persistable state of an index. Indexes implementing
// Liveness contribute their full ID span and tombstone set; all others have
// every ID in [0, Len()) live.
func Capture(ix Index) State {
	span := ix.Len()
	var deleted []int
	if lv, ok := ix.(Liveness); ok {
		span = lv.IDSpan()
		for id := 0; id < span; id++ {
			if !lv.Live(id) {
				deleted = append(deleted, id)
			}
		}
	}
	points := make([][]float64, span)
	for id := range points {
		points[id] = ix.Point(id)
	}
	return State{Points: points, Deleted: deleted}
}
