package harness

import (
	"time"

	"repro/internal/lid"
	"repro/internal/vecmath"
)

// IDRow is one row of Table 1: a dataset's representational dimension, the
// three intrinsic-dimensionality estimates, and each estimator's runtime.
type IDRow struct {
	Dataset    string
	N          int
	D          int
	MLE        float64
	MLETime    time.Duration
	GP         float64
	GPTime     time.Duration
	Takens     float64
	TakensTime time.Duration
	Err        error
}

// IDTable reproduces Table 1 of the paper over the given workloads: for each
// dataset, the MLE, Grassberger-Procaccia and Takens estimates with their
// execution times.
func IDTable(workloads []Workload, mleOpts lid.MLEOptions, pwOpts lid.PairwiseOptions) []IDRow {
	rows := make([]IDRow, 0, len(workloads))
	for _, w := range workloads {
		row := IDRow{Dataset: w.Data.Name, N: w.Data.Len(), D: w.Data.Dim()}
		metric := vecmath.Euclidean{}
		ix, err := BuildBackend(w.Backend, w.Data.Points, metric)
		if err != nil {
			row.Err = err
			rows = append(rows, row)
			continue
		}
		start := time.Now()
		row.MLE, err = lid.MLE(ix, mleOpts)
		row.MLETime = time.Since(start)
		if err != nil {
			row.Err = err
		}
		start = time.Now()
		row.GP, err = lid.GrassbergerProcaccia(w.Data.Points, metric, pwOpts)
		row.GPTime = time.Since(start)
		if err != nil && row.Err == nil {
			row.Err = err
		}
		start = time.Now()
		row.Takens, err = lid.Takens(w.Data.Points, metric, pwOpts)
		row.TakensTime = time.Since(start)
		if err != nil && row.Err == nil {
			row.Err = err
		}
		rows = append(rows, row)
	}
	return rows
}
