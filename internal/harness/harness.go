// Package harness drives the experiments of the paper's evaluation section
// (Sections 7–8) over the synthetic surrogate datasets: the time-accuracy
// tradeoff curves of Figures 3–6, the intrinsic-dimensionality estimates of
// Table 1, the lazy accept/reject mechanism breakdown of Figure 7, the
// scalability study of Figure 8, and the precomputation-amortization
// comparison of Figure 9.
//
// Every experiment returns structured rows and can render itself as an
// aligned text table, so `cmd/experiments` and the benchmark suite share one
// implementation. EXPERIMENTS.md records how the measured shapes compare to
// the paper's.
package harness

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/covertree"
	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/lsh"
	"repro/internal/scan"
	"repro/internal/vecmath"
	"repro/internal/vptree"
)

// BuildBackend constructs the forward-kNN back-end by name: "scan",
// "covertree", "kdtree", "vptree", or the approximate "lsh". The paper uses
// the cover tree for the small and medium datasets and sequential scan for
// MNIST and Imagenet (Section 7.1); LSH realizes its claim (iii), RDT over
// approximate neighbor rankings.
func BuildBackend(name string, points [][]float64, metric vecmath.Metric) (index.Index, error) {
	switch name {
	case "scan":
		return scan.New(points, metric)
	case "covertree":
		return covertree.New(points, metric)
	case "kdtree":
		return kdtree.New(points, metric)
	case "vptree":
		return vptree.New(points, metric)
	case "lsh":
		return lsh.New(points, metric, lsh.DefaultOptions())
	default:
		return nil, fmt.Errorf("harness: unknown back-end %q", name)
	}
}

// Workload is a dataset with the query sample and back-end choice used by an
// experiment.
type Workload struct {
	Data    *dataset.Dataset
	Backend string
	// Queries is the number of member queries sampled (the paper uses
	// 100 random dataset members).
	Queries int
	Seed    int64
}

// QueryIDs returns the deterministic query sample for the workload.
func (w Workload) QueryIDs() []int {
	rng := rand.New(rand.NewSource(w.Seed))
	return w.Data.SampleIDs(w.Queries, rng)
}

// Truth holds the exact answers for one workload at one k, computed once and
// shared by every method under test.
type Truth struct {
	K       int
	Queries []int
	Answers map[int][]int
}

// NewTruth computes exact RkNN answers for the given queries using the kNN
// distance table shortcut: x is a reverse neighbor of q iff d(q,x) ≤ d_k(x).
// The table costs one forward kNN query per dataset point and is reused for
// every query, which is far cheaper than per-query brute force.
func NewTruth(points [][]float64, metric vecmath.Metric, forward index.Index, k int, queries []int) (*Truth, error) {
	if k <= 0 {
		return nil, fmt.Errorf("harness: k must be positive, got %d", k)
	}
	if forward == nil {
		return nil, errors.New("harness: nil forward index")
	}
	kdist := make([]float64, len(points))
	parallelFor(len(points), func(id int) {
		nn := forward.KNN(points[id], k, id)
		if len(nn) < k {
			// Fewer than k other points exist, so every query has
			// this point as a reverse neighbor.
			kdist[id] = math.Inf(1)
			return
		}
		kdist[id] = nn[len(nn)-1].Dist
	})
	t := &Truth{K: k, Queries: queries, Answers: make(map[int][]int, len(queries))}
	var mu sync.Mutex
	parallelFor(len(queries), func(i int) {
		qid := queries[i]
		q := points[qid]
		var ids []int
		for x := range points {
			if x == qid {
				continue
			}
			if metric.Distance(q, points[x]) <= kdist[x] {
				ids = append(ids, x)
			}
		}
		mu.Lock()
		t.Answers[qid] = ids
		mu.Unlock()
	})
	return t, nil
}

// MeanRecall returns the mean recall of the per-query results in got
// against the truth.
func (t *Truth) MeanRecall(got map[int][]int) float64 {
	if len(t.Queries) == 0 {
		return 1
	}
	var sum float64
	for _, qid := range t.Queries {
		sum += bruteforce.Recall(got[qid], t.Answers[qid])
	}
	return sum / float64(len(t.Queries))
}

// MeanPrecision returns the mean precision of the per-query results in got
// against the truth.
func (t *Truth) MeanPrecision(got map[int][]int) float64 {
	if len(t.Queries) == 0 {
		return 1
	}
	var sum float64
	for _, qid := range t.Queries {
		sum += bruteforce.Precision(got[qid], t.Answers[qid])
	}
	return sum / float64(len(t.Queries))
}

// MethodRun is one point on a time-accuracy tradeoff curve: a method with a
// fixed parameter setting, measured over the workload's query sample.
type MethodRun struct {
	Method    string        // e.g. "RDT+", "SFT", "MRkNNCoP"
	Param     string        // e.g. "t=4.0", "α=8", "" for exact methods
	K         int           //
	Recall    float64       // mean over queries
	Precision float64       // mean over queries
	QueryTime time.Duration // mean per query
	Precomp   time.Duration // one-time preprocessing cost
}

// runQueries times fn over all queries sequentially (timing fidelity) and
// returns the per-query answers plus the mean latency.
func runQueries(queries []int, fn func(qid int) ([]int, error)) (map[int][]int, time.Duration, error) {
	got := make(map[int][]int, len(queries))
	start := time.Now()
	for _, qid := range queries {
		ids, err := fn(qid)
		if err != nil {
			return nil, 0, err
		}
		got[qid] = ids
	}
	elapsed := time.Since(start)
	return got, elapsed / time.Duration(len(queries)), nil
}

// parallelFor runs fn(i) for i in [0,n) on all cores. Used for
// preprocessing (truth tables), never for timed sections.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
