package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lid"
	"repro/internal/mrknncop"
	"repro/internal/rdnntree"
	"repro/internal/rtree"
	"repro/internal/sft"
	"repro/internal/tpl"
	"repro/internal/vecmath"
)

// TradeoffConfig parameterizes the Figures 3–6 experiment: every method's
// recall/query-time tradeoff over one dataset.
type TradeoffConfig struct {
	Workload Workload
	// Ks are the reverse neighbor ranks tested (the paper uses 10, 50,
	// 100 for the medium datasets).
	Ks []int
	// TValues is the scale-parameter sweep generating the RDT and RDT+
	// curves.
	TValues []float64
	// Alphas is the oversampling sweep generating the SFT curve.
	Alphas []float64
	// ExactMethods enables the precomputation-heavy exact baselines
	// (MRkNNCoP, RdNN-Tree) and TPL.
	ExactMethods bool
	// AutoT additionally runs RDT+ once per estimator with t set
	// automatically (the RDT+(MLE)/(GP)/(Takens) curves).
	AutoT bool
	// SkipPlainRDT drops the plain-RDT curve; the scalability experiment
	// (Figure 8) shows only RDT+, and plain RDT's quadratic witness cost
	// is prohibitive at those sizes (the very motivation for RDT+).
	SkipPlainRDT bool
}

// TradeoffResult holds every measured point of the experiment.
type TradeoffResult struct {
	Dataset string
	Backend string
	Runs    []MethodRun
}

// Tradeoff runs the experiment. The same back-end index serves all methods
// that need forward kNN queries, mirroring the paper's setup.
func Tradeoff(cfg TradeoffConfig) (*TradeoffResult, error) {
	w := cfg.Workload
	metric := vecmath.Metric(vecmath.Euclidean{})
	buildStart := time.Now()
	forward, err := BuildBackend(w.Backend, w.Data.Points, metric)
	if err != nil {
		return nil, err
	}
	backendBuild := time.Since(buildStart)

	queries := w.QueryIDs()
	res := &TradeoffResult{Dataset: w.Data.Name, Backend: w.Backend}

	// The exact baselines' precomputation is shared across all k (the
	// MRkNNCoP index covers every k up to kmax; the RdNN-Tree needs one
	// build per k, which is part of its cost story).
	var cop *mrknncop.Index
	if cfg.ExactMethods {
		kmax := 0
		for _, k := range cfg.Ks {
			if k > kmax {
				kmax = k
			}
		}
		if kmax < 2 {
			kmax = 2
		}
		cop, err = mrknncop.New(w.Data.Points, metric, kmax, forward)
		if err != nil {
			return nil, err
		}
	}

	for _, k := range cfg.Ks {
		truth, err := NewTruth(w.Data.Points, metric, forward, k, queries)
		if err != nil {
			return nil, err
		}

		for _, plus := range []bool{false, true} {
			if !plus && cfg.SkipPlainRDT {
				continue
			}
			name := "RDT"
			if plus {
				name = "RDT+"
			}
			for _, t := range cfg.TValues {
				run, err := runRDT(forward, truth, queries, k, t, plus, backendBuild)
				if err != nil {
					return nil, err
				}
				run.Method = name
				res.Runs = append(res.Runs, *run)
			}
		}

		for _, alpha := range cfg.Alphas {
			qr, err := sft.NewQuerier(forward, sft.Params{K: k, Alpha: alpha})
			if err != nil {
				return nil, err
			}
			got, mean, err := runQueries(queries, func(qid int) ([]int, error) {
				r, err := qr.ByID(qid)
				if err != nil {
					return nil, err
				}
				return r.IDs, nil
			})
			if err != nil {
				return nil, err
			}
			res.Runs = append(res.Runs, MethodRun{
				Method: "SFT", Param: fmt.Sprintf("α=%g", alpha), K: k,
				Recall: truth.MeanRecall(got), Precision: truth.MeanPrecision(got),
				QueryTime: mean, Precomp: backendBuild,
			})
		}

		if cfg.AutoT {
			autoRuns, err := runAutoT(w, forward, truth, queries, k, backendBuild)
			if err != nil {
				return nil, err
			}
			res.Runs = append(res.Runs, autoRuns...)
		}

		if cfg.ExactMethods {
			exactRuns, err := runExact(w, metric, forward, cop, truth, queries, k)
			if err != nil {
				return nil, err
			}
			res.Runs = append(res.Runs, exactRuns...)
		}
	}
	return res, nil
}

// runRDT measures one point of the RDT or RDT+ curve.
func runRDT(forward index.Index, truth *Truth, queries []int, k int, t float64, plus bool, precomp time.Duration) (*MethodRun, error) {
	qr, err := core.NewQuerier(forward, core.Params{K: k, T: t, Plus: plus})
	if err != nil {
		return nil, err
	}
	got, mean, err := runQueries(queries, func(qid int) ([]int, error) {
		r, err := qr.ByID(qid)
		if err != nil {
			return nil, err
		}
		return r.IDs, nil
	})
	if err != nil {
		return nil, err
	}
	return &MethodRun{
		Param: fmt.Sprintf("t=%g", t), K: k,
		Recall: truth.MeanRecall(got), Precision: truth.MeanPrecision(got),
		QueryTime: mean, Precomp: precomp,
	}, nil
}

// runAutoT produces the RDT+(MLE), RDT+(GP) and RDT+(Takens) points: the
// scale parameter is chosen by each intrinsic-dimensionality estimator
// (paper Section 6), and the estimation cost is charged as precomputation.
func runAutoT(w Workload, forward index.Index, truth *Truth, queries []int, k int, backendBuild time.Duration) ([]MethodRun, error) {
	type estimate struct {
		name string
		t    float64
		cost time.Duration
	}
	var estimates []estimate

	start := time.Now()
	mle, err := lid.MLE(forward, lid.DefaultMLEOptions())
	if err == nil {
		estimates = append(estimates, estimate{"RDT+(MLE)", mle, time.Since(start)})
	}
	pw := lid.DefaultPairwiseOptions()
	start = time.Now()
	gp, err := lid.GrassbergerProcaccia(w.Data.Points, vecmath.Euclidean{}, pw)
	if err == nil {
		estimates = append(estimates, estimate{"RDT+(GP)", gp, time.Since(start)})
	}
	start = time.Now()
	tk, err := lid.Takens(w.Data.Points, vecmath.Euclidean{}, pw)
	if err == nil {
		estimates = append(estimates, estimate{"RDT+(Takens)", tk, time.Since(start)})
	}

	var runs []MethodRun
	for _, est := range estimates {
		t := est.t
		if t < 1 {
			t = 1 // a sub-1 estimate would cap the scan below k itself
		}
		run, err := runRDT(forward, truth, queries, k, t, true, backendBuild+est.cost)
		if err != nil {
			return nil, err
		}
		run.Method = est.name
		run.Param = fmt.Sprintf("t=%.2f", t)
		runs = append(runs, *run)
	}
	return runs, nil
}

// runExact measures the exact competitors: MRkNNCoP (shared index), the
// RdNN-Tree (rebuilt per k, its structural deficiency) and TPL (no
// precomputation beyond its R-tree).
func runExact(w Workload, metric vecmath.Metric, forward index.Index, cop *mrknncop.Index, truth *Truth, queries []int, k int) ([]MethodRun, error) {
	var runs []MethodRun

	got, mean, err := runQueries(queries, func(qid int) ([]int, error) {
		r, err := cop.Query(qid, k)
		if err != nil {
			return nil, err
		}
		return r.IDs, nil
	})
	if err != nil {
		return nil, err
	}
	runs = append(runs, MethodRun{
		Method: "MRkNNCoP", K: k,
		Recall: truth.MeanRecall(got), Precision: truth.MeanPrecision(got),
		QueryTime: mean, Precomp: cop.PrecomputeTime,
	})

	rdnnStart := time.Now()
	rdnn, err := rdnntree.New(w.Data.Points, metric, k, forward)
	if err != nil {
		return nil, err
	}
	rdnnBuild := time.Since(rdnnStart)
	got, mean, err = runQueries(queries, rdnn.Query)
	if err != nil {
		return nil, err
	}
	runs = append(runs, MethodRun{
		Method: "RdNN-Tree", K: k,
		Recall: truth.MeanRecall(got), Precision: truth.MeanPrecision(got),
		QueryTime: mean, Precomp: rdnnBuild,
	})

	rtStart := time.Now()
	rt, err := rtree.New(w.Data.Points, metric, nil)
	if err != nil {
		return nil, err
	}
	rtBuild := time.Since(rtStart)
	tq, err := tpl.New(rt, k)
	if err != nil {
		return nil, err
	}
	got, mean, err = runQueries(queries, func(qid int) ([]int, error) {
		r, err := tq.ByID(qid)
		if err != nil {
			return nil, err
		}
		return r.IDs, nil
	})
	if err != nil {
		return nil, err
	}
	runs = append(runs, MethodRun{
		Method: "TPL", K: k,
		Recall: truth.MeanRecall(got), Precision: truth.MeanPrecision(got),
		QueryTime: mean, Precomp: rtBuild,
	})
	return runs, nil
}
