package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// WriteTradeoffPlot renders the Figures 3–6 content the way the paper shows
// it: an ASCII scatter of mean recall (y axis) against mean query time
// (x axis, log scale), one glyph per method, one panel per k.
func WriteTradeoffPlot(w io.Writer, res *TradeoffResult) error {
	glyphs := map[string]byte{
		"RDT":          'r',
		"RDT+":         'R',
		"SFT":          's',
		"RDT+(MLE)":    'M',
		"RDT+(GP)":     'G',
		"RDT+(Takens)": 'T',
		"MRkNNCoP":     'c',
		"RdNN-Tree":    'd',
		"TPL":          'p',
	}
	for _, k := range distinctKs(res.Runs) {
		var runs []MethodRun
		for _, r := range res.Runs {
			if r.K == k && r.QueryTime > 0 {
				runs = append(runs, r)
			}
		}
		if len(runs) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n# %s, k=%d — recall vs query time (log x)\n", res.Dataset, k)
		if err := scatter(w, runs, glyphs); err != nil {
			return err
		}
		legend(w, runs, glyphs)
	}
	return nil
}

const (
	plotWidth  = 64
	plotHeight = 16
)

func scatter(w io.Writer, runs []MethodRun, glyphs map[string]byte) error {
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, r := range runs {
		x := math.Log10(float64(r.QueryTime))
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	// Recall axis spans [minRecall, 1] rounded down to a decade step.
	minY := 1.0
	for _, r := range runs {
		if r.Recall < minY {
			minY = r.Recall
		}
	}
	minY = math.Floor(minY*10) / 10
	if minY >= 1 {
		minY = 0.9
	}
	for _, r := range runs {
		x := int((math.Log10(float64(r.QueryTime)) - minX) / (maxX - minX) * float64(plotWidth-1))
		yFrac := (r.Recall - minY) / (1 - minY)
		if yFrac < 0 {
			yFrac = 0
		}
		y := plotHeight - 1 - int(yFrac*float64(plotHeight-1))
		g := glyphs[r.Method]
		if g == 0 {
			g = '?'
		}
		grid[y][x] = g
	}
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = "1.000 "
		case plotHeight - 1:
			label = fmt.Sprintf("%.3f ", minY)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	lo := time.Duration(math.Pow(10, minX))
	hi := time.Duration(math.Pow(10, maxX))
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", plotWidth))
	fmt.Fprintf(w, "       %-*s%s\n", plotWidth-len(fmtDuration(hi)), fmtDuration(lo), fmtDuration(hi))
	return nil
}

func legend(w io.Writer, runs []MethodRun, glyphs map[string]byte) {
	seen := map[string]bool{}
	var names []string
	for _, r := range runs {
		if !seen[r.Method] {
			seen[r.Method] = true
			names = append(names, r.Method)
		}
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		g := glyphs[n]
		if g == 0 {
			g = '?'
		}
		parts = append(parts, fmt.Sprintf("%c=%s", g, n))
	}
	fmt.Fprintf(w, "       %s\n", strings.Join(parts, "  "))
}
