package harness

import (
	"repro/internal/core"
	"repro/internal/vecmath"
)

// MechanismRow is one point of Figure 7: at a fixed scale parameter, the
// proportions of candidates settled by lazy acceptance, lazy rejection and
// explicit verification, together with the achieved recall.
type MechanismRow struct {
	Dataset string
	K       int
	T       float64
	// Proportions over all candidates that entered the witness
	// machinery; they sum to 1 up to rounding.
	AcceptFrac float64
	RejectFrac float64
	VerifyFrac float64
	Recall     float64
}

// Mechanisms reproduces Figure 7: for each t in the sweep, run RDT+ at the
// given k over the workload's queries and aggregate the Stats counters.
func Mechanisms(w Workload, k int, ts []float64) ([]MechanismRow, error) {
	metric := vecmath.Euclidean{}
	forward, err := BuildBackend(w.Backend, w.Data.Points, metric)
	if err != nil {
		return nil, err
	}
	queries := w.QueryIDs()
	truth, err := NewTruth(w.Data.Points, metric, forward, k, queries)
	if err != nil {
		return nil, err
	}
	rows := make([]MechanismRow, 0, len(ts))
	for _, t := range ts {
		qr, err := core.NewQuerier(forward, core.Params{K: k, T: t, Plus: true})
		if err != nil {
			return nil, err
		}
		var accepts, rejects, verified, candidates int
		got := make(map[int][]int, len(queries))
		for _, qid := range queries {
			res, err := qr.ByID(qid)
			if err != nil {
				return nil, err
			}
			got[qid] = res.IDs
			st := res.Stats
			accepts += st.LazyAccepts
			rejects += st.LazyRejects
			verified += st.Verified
			candidates += st.Candidates()
		}
		row := MechanismRow{Dataset: w.Data.Name, K: k, T: t, Recall: truth.MeanRecall(got)}
		if candidates > 0 {
			row.AcceptFrac = float64(accepts) / float64(candidates)
			row.RejectFrac = float64(rejects) / float64(candidates)
			row.VerifyFrac = float64(verified) / float64(candidates)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
