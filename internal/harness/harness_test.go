package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/lid"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func newBF(t *testing.T, pts [][]float64) *bruteforce.Truth {
	t.Helper()
	bf, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("bruteforce.New: %v", err)
	}
	return bf
}

func smallWorkload(t *testing.T) Workload {
	t.Helper()
	return Workload{
		Data:    dataset.Sequoia(600, 1),
		Backend: "covertree",
		Queries: 10,
		Seed:    42,
	}
}

func TestBuildBackend(t *testing.T) {
	pts := dataset.Uniform("u", 50, 3, 1).Points
	for _, name := range []string{"scan", "covertree", "kdtree", "vptree", "lsh"} {
		ix, err := BuildBackend(name, pts, vecmath.Euclidean{})
		if err != nil {
			t.Errorf("BuildBackend(%q): %v", name, err)
			continue
		}
		if ix.Len() != 50 {
			t.Errorf("%s: Len = %d", name, ix.Len())
		}
	}
	if _, err := BuildBackend("nosuch", pts, vecmath.Euclidean{}); err == nil {
		t.Error("accepted unknown back-end")
	}
}

func TestTruthMatchesBruteforce(t *testing.T) {
	pts := dataset.Uniform("u", 200, 3, 3).Points
	fwd, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 5, 17, 99}
	k := 4
	truth, err := NewTruth(pts, vecmath.Euclidean{}, fwd, k, queries)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the O(n²) definition in package bruteforce.
	bf := newBF(t, pts)
	for _, qid := range queries {
		want, err := bf.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		got := truth.Answers[qid]
		if len(got) != len(want) {
			t.Fatalf("qid=%d: truth %v, bruteforce %v", qid, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("qid=%d: truth %v, bruteforce %v", qid, got, want)
			}
		}
	}
	// Self-recall must be 1 by construction.
	if r := truth.MeanRecall(truth.Answers); r != 1 {
		t.Errorf("self recall = %g", r)
	}
	if p := truth.MeanPrecision(truth.Answers); p != 1 {
		t.Errorf("self precision = %g", p)
	}
}

func TestTradeoffEndToEnd(t *testing.T) {
	cfg := TradeoffConfig{
		Workload:     smallWorkload(t),
		Ks:           []int{5},
		TValues:      []float64{2, 6},
		Alphas:       []float64{2, 8},
		ExactMethods: true,
		AutoT:        true,
	}
	res, err := Tradeoff(cfg)
	if err != nil {
		t.Fatalf("Tradeoff: %v", err)
	}
	byMethod := map[string][]MethodRun{}
	for _, r := range res.Runs {
		byMethod[r.Method] = append(byMethod[r.Method], r)
	}
	for _, m := range []string{"RDT", "RDT+", "SFT", "MRkNNCoP", "RdNN-Tree", "TPL"} {
		if len(byMethod[m]) == 0 {
			t.Errorf("method %s produced no runs", m)
		}
	}
	// Exact methods must be exact.
	for _, m := range []string{"MRkNNCoP", "RdNN-Tree", "TPL"} {
		for _, r := range byMethod[m] {
			if r.Recall != 1 || r.Precision != 1 {
				t.Errorf("%s: recall %.3f precision %.3f, want exact", m, r.Recall, r.Precision)
			}
		}
	}
	// RDT recall must not decrease with t.
	rdt := byMethod["RDT"]
	if len(rdt) == 2 && rdt[1].Recall < rdt[0].Recall {
		t.Errorf("RDT recall fell from %.3f to %.3f with larger t", rdt[0].Recall, rdt[1].Recall)
	}
	// The auto-t variants exist when AutoT is on.
	auto := 0
	for m := range byMethod {
		if strings.HasPrefix(m, "RDT+(") {
			auto += len(byMethod[m])
		}
	}
	if auto == 0 {
		t.Error("AutoT produced no estimator-driven runs")
	}
	var buf bytes.Buffer
	if err := WriteTradeoff(&buf, res); err != nil {
		t.Fatalf("WriteTradeoff: %v", err)
	}
	if !strings.Contains(buf.String(), "k = 5") {
		t.Error("report missing k header")
	}
}

func TestIDTableEndToEnd(t *testing.T) {
	rows := IDTable(
		[]Workload{{Data: dataset.Uniform("u2", 800, 2, 9), Backend: "scan", Queries: 5, Seed: 1}},
		lid.MLEOptions{SampleFraction: 0.1, Neighbors: 50, Seed: 1},
		lid.DefaultPairwiseOptions(),
	)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Err != nil {
		t.Fatalf("row error: %v", r.Err)
	}
	if r.MLE < 1 || r.MLE > 4 {
		t.Errorf("MLE estimate %.2f outside sanity band for the 2-cube", r.MLE)
	}
	var buf bytes.Buffer
	if err := WriteIDTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "u2") {
		t.Error("report missing dataset name")
	}
}

func TestMechanismsEndToEnd(t *testing.T) {
	rows, err := Mechanisms(smallWorkload(t), 5, []float64{2, 8})
	if err != nil {
		t.Fatalf("Mechanisms: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.AcceptFrac + r.RejectFrac + r.VerifyFrac
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("t=%g: proportions sum to %.4f", r.T, sum)
		}
	}
	if rows[1].Recall < rows[0].Recall {
		t.Errorf("recall fell with larger t: %.3f -> %.3f", rows[0].Recall, rows[1].Recall)
	}
	var buf bytes.Buffer
	if err := WriteMechanisms(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestScalabilityEndToEnd(t *testing.T) {
	full := Workload{
		Data:    dataset.Imagenet(900, 32, 4),
		Backend: "scan",
		Queries: 5,
		Seed:    2,
	}
	runs, err := Scalability(ScalabilityConfig{
		Full:        full,
		Sizes:       []int{300, 600},
		Ks:          []int{5},
		TValues:     []float64{4},
		ExactCutoff: 400,
	})
	if err != nil {
		t.Fatalf("Scalability: %v", err)
	}
	sawSmallExact, sawLargeExact := false, false
	for _, r := range runs {
		if r.Method == "RDT" {
			t.Error("Figure 8 must not include plain RDT")
		}
		if r.Method == "MRkNNCoP" || r.Method == "RdNN-Tree" {
			if r.Size == 300 {
				sawSmallExact = true
			}
			if r.Size == 600 {
				sawLargeExact = true
			}
		}
	}
	if !sawSmallExact {
		t.Error("exact methods missing below the cutoff")
	}
	if sawLargeExact {
		t.Error("exact methods present above the cutoff")
	}
	var buf bytes.Buffer
	if err := WriteScalability(&buf, runs); err != nil {
		t.Fatal(err)
	}
}

func TestAmortizationEndToEnd(t *testing.T) {
	rows, err := Amortization(smallWorkload(t), 5, 10)
	if err != nil {
		t.Fatalf("Amortization: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Budget <= 0 {
			t.Errorf("%s: budget %v", r.Method, r.Budget)
		}
	}
	var buf bytes.Buffer
	if err := WriteAmortization(&buf, rows); err != nil {
		t.Fatal(err)
	}
}
