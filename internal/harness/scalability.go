package harness

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/index"
	"repro/internal/mrknncop"
	"repro/internal/rdnntree"
	"repro/internal/vecmath"
)

// ScalabilityConfig parameterizes the Figure 8 experiment: the RDT+ tradeoff
// curve against the exact methods on growing subsets of the Imagenet
// surrogate, with initialization (precomputation) times reported alongside
// query times.
type ScalabilityConfig struct {
	// Full is the Imagenet surrogate; Sizes lists the subset cardinalities
	// (the paper's 100k/250k/500k, scaled down by default).
	Full    Workload
	Sizes   []int
	Ks      []int
	TValues []float64
	// ExactCutoff disables the precomputation-heavy baselines for
	// subsets larger than this, mirroring the paper's one-week budget
	// rule (Section 7.3: methods above the budget are excluded).
	ExactCutoff int
}

// ScalabilityRun extends MethodRun with the subset size.
type ScalabilityRun struct {
	MethodRun
	Size int
}

// Scalability runs the Figure 8 experiment and returns one run per
// (size, method, parameter, k).
func Scalability(cfg ScalabilityConfig) ([]ScalabilityRun, error) {
	var out []ScalabilityRun
	rng := rand.New(rand.NewSource(cfg.Full.Seed + 7))
	for _, size := range cfg.Sizes {
		sub := cfg.Full.Data.Subsample(subsetName(cfg.Full.Data.Name, size), size, rng)
		w := Workload{Data: sub, Backend: cfg.Full.Backend, Queries: cfg.Full.Queries, Seed: cfg.Full.Seed}
		tc := TradeoffConfig{
			Workload:     w,
			Ks:           cfg.Ks,
			TValues:      cfg.TValues,
			ExactMethods: size <= cfg.ExactCutoff,
			SkipPlainRDT: true,
		}
		res, err := Tradeoff(tc)
		if err != nil {
			return nil, err
		}
		for _, run := range res.Runs {
			if run.Method == "RDT" {
				continue // Figure 8 shows RDT+ only (Section 8.3)
			}
			out = append(out, ScalabilityRun{MethodRun: run, Size: size})
		}
	}
	return out, nil
}

func subsetName(base string, size int) string {
	if size >= 1000 {
		return base + strconv.Itoa(size/1000) + "k"
	}
	return base + strconv.Itoa(size)
}

// mrknncopShared builds an MRkNNCoP index sized for the single rank used by
// the amortization experiment.
func mrknncopShared(w Workload, metric vecmath.Metric, forward index.Index, k int) (*mrknncop.Index, error) {
	kmax := k
	if kmax < 2 {
		kmax = 2
	}
	return mrknncop.New(w.Data.Points, metric, kmax, forward)
}

// AmortizationRow is one bar of Figure 9: how many queries a method can
// answer in the time the RdNN-Tree spends on precomputation alone.
type AmortizationRow struct {
	Dataset string
	Size    int
	K       int
	Method  string
	// QueriesInBudget is RdNN-precomputation-time / mean-query-time
	// (capped at a large sentinel when the query time rounds to zero).
	QueriesInBudget float64
	MeanQuery       time.Duration
	Budget          time.Duration
}

// Amortization reproduces Figure 9: the RdNN-Tree's precomputation time is
// taken as a budget, and each method reports how many queries it could have
// answered in that budget (for RDT+ the scale parameter is fixed at the
// value expected to reach ≈0.90 recall, as in the paper's Section 8.3).
func Amortization(w Workload, k int, rdtT float64) ([]AmortizationRow, error) {
	metric := vecmath.Euclidean{}
	forward, err := BuildBackend(w.Backend, w.Data.Points, metric)
	if err != nil {
		return nil, err
	}
	queries := w.QueryIDs()
	truth, err := NewTruth(w.Data.Points, metric, forward, k, queries)
	if err != nil {
		return nil, err
	}

	// The budget: RdNN-Tree precomputation (kNN distance table + build).
	buildStart := time.Now()
	rdnn, err := rdnntree.New(w.Data.Points, metric, k, forward)
	if err != nil {
		return nil, err
	}
	budget := time.Since(buildStart)

	var rows []AmortizationRow
	appendRow := func(method string, mean time.Duration) {
		row := AmortizationRow{
			Dataset: w.Data.Name, Size: w.Data.Len(), K: k, Method: method,
			MeanQuery: mean, Budget: budget,
		}
		if mean > 0 {
			row.QueriesInBudget = float64(budget) / float64(mean)
		}
		rows = append(rows, row)
	}

	run, err := runRDT(forward, truth, queries, k, rdtT, true, 0)
	if err != nil {
		return nil, err
	}
	appendRow("RDT+", run.QueryTime)

	_, mean, err := runQueries(queries, rdnn.Query)
	if err != nil {
		return nil, err
	}
	appendRow("RdNN-Tree", mean)

	cop, err := mrknncopShared(w, metric, forward, k)
	if err != nil {
		return nil, err
	}
	_, mean, err = runQueries(queries, func(qid int) ([]int, error) {
		r, err := cop.Query(qid, k)
		if err != nil {
			return nil, err
		}
		return r.IDs, nil
	})
	if err != nil {
		return nil, err
	}
	appendRow("MRkNNCoP", mean)
	return rows, nil
}
