package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// The renderers in this file print the experiment results as aligned text
// tables in the same organization as the paper's figures: one block per
// neighbor rank with method curves as rows (Figures 3–6, 8), the estimator
// table (Table 1), the mechanism proportions (Figure 7), and the
// amortization bars (Figure 9).

// WriteTradeoff renders a TradeoffResult.
func WriteTradeoff(w io.Writer, res *TradeoffResult) error {
	fmt.Fprintf(w, "## Recall / query-time tradeoff — dataset %s (back-end %s)\n", res.Dataset, res.Backend)
	ks := distinctKs(res.Runs)
	for _, k := range ks {
		fmt.Fprintf(w, "\n# k = %d\n", k)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "method\tparam\trecall\tprecision\tquery(mean)\tprecompute")
		for _, r := range res.Runs {
			if r.K != k {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%s\t%s\n",
				r.Method, r.Param, r.Recall, r.Precision,
				fmtDuration(r.QueryTime), fmtDuration(r.Precomp))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WriteIDTable renders the Table 1 reproduction.
func WriteIDTable(w io.Writer, rows []IDRow) error {
	fmt.Fprintln(w, "## Intrinsic dimensionality estimates (Table 1)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tn\tD\tMLE\t(time)\tGP\t(time)\tTakens\t(time)")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%d\t%d\terror: %v\n", r.Dataset, r.N, r.D, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t(%s)\t%.2f\t(%s)\t%.2f\t(%s)\n",
			r.Dataset, r.N, r.D,
			r.MLE, fmtDuration(r.MLETime),
			r.GP, fmtDuration(r.GPTime),
			r.Takens, fmtDuration(r.TakensTime))
	}
	return tw.Flush()
}

// WriteMechanisms renders the Figure 7 reproduction.
func WriteMechanisms(w io.Writer, rows []MechanismRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "## Lazy accept / reject / verify proportions — dataset %s, k=%d (Figure 7)\n",
		rows[0].Dataset, rows[0].K)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t\taccept\treject\tverify\trecall")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%.3f\t%.3f\t%.3f\t%.4f\n",
			r.T, r.AcceptFrac, r.RejectFrac, r.VerifyFrac, r.Recall)
	}
	return tw.Flush()
}

// WriteScalability renders the Figure 8 reproduction.
func WriteScalability(w io.Writer, runs []ScalabilityRun) error {
	fmt.Fprintln(w, "## Scalability on Imagenet surrogate subsets (Figure 8)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tk\tmethod\tparam\trecall\tquery(mean)\tinit")
	for _, r := range runs {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%.3f\t%s\t%s\n",
			r.Size, r.K, r.Method, r.Param, r.Recall,
			fmtDuration(r.QueryTime), fmtDuration(r.Precomp))
	}
	return tw.Flush()
}

// WriteAmortization renders the Figure 9 reproduction.
func WriteAmortization(w io.Writer, rows []AmortizationRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "## Queries answerable during RdNN-Tree precomputation — %s, k=%d (Figure 9)\n",
		rows[0].Dataset, rows[0].K)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tmethod\tmean query\tbudget\tqueries-in-budget")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%.0f\n",
			r.Size, r.Method, fmtDuration(r.MeanQuery), fmtDuration(r.Budget), r.QueriesInBudget)
	}
	return tw.Flush()
}

func distinctKs(runs []MethodRun) []int {
	set := map[int]bool{}
	for _, r := range runs {
		set[r.K] = true
	}
	ks := make([]int, 0, len(set))
	for k := range set {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// fmtDuration rounds durations to a readable precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
