package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func sampleTradeoff() *TradeoffResult {
	return &TradeoffResult{
		Dataset: "sequoia",
		Backend: "covertree",
		Runs: []MethodRun{
			{Method: "RDT", Param: "t=2", K: 10, Recall: 0.95, Precision: 1, QueryTime: 80 * time.Microsecond, Precomp: time.Millisecond},
			{Method: "RDT+", Param: "t=2", K: 10, Recall: 0.95, Precision: 0.99, QueryTime: 40 * time.Microsecond, Precomp: time.Millisecond},
			{Method: "SFT", Param: "α=4", K: 10, Recall: 0.9, Precision: 1, QueryTime: 30 * time.Microsecond, Precomp: time.Millisecond},
			{Method: "MRkNNCoP", K: 10, Recall: 1, Precision: 1, QueryTime: 100 * time.Microsecond, Precomp: time.Second},
			{Method: "RDT", Param: "t=4", K: 50, Recall: 1, Precision: 1, QueryTime: 500 * time.Microsecond, Precomp: time.Millisecond},
		},
	}
}

func TestWriteTradeoffPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTradeoffPlot(&buf, sampleTradeoff()); err != nil {
		t.Fatalf("WriteTradeoffPlot: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"k=10", "k=50", "R=RDT+", "s=SFT", "1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q", want)
		}
	}
	// Every plotted method's glyph must appear in the k=10 panel.
	panel := out[:strings.Index(out, "k=50")]
	for _, glyph := range []string{"r", "R", "s", "c"} {
		if !strings.Contains(panel, glyph) {
			t.Errorf("panel missing glyph %q", glyph)
		}
	}
}

func TestWriteTradeoffPlotSkipsZeroTimes(t *testing.T) {
	res := &TradeoffResult{Dataset: "d", Backend: "b", Runs: []MethodRun{
		{Method: "RDT", K: 5, Recall: 1, QueryTime: 0},
	}}
	var buf bytes.Buffer
	if err := WriteTradeoffPlot(&buf, res); err != nil {
		t.Fatalf("WriteTradeoffPlot: %v", err)
	}
	if strings.Contains(buf.String(), "k=5") {
		t.Error("panel rendered for zero-time-only runs")
	}
}

func TestTradeoffCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := TradeoffCSV(&buf, sampleTradeoff()); err != nil {
		t.Fatalf("TradeoffCSV: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if len(recs) != 6 { // header + 5 rows
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0][0] != "dataset" || recs[1][2] != "RDT" {
		t.Errorf("unexpected csv layout: %v", recs[:2])
	}
}

func TestMechanismsCSV(t *testing.T) {
	rows := []MechanismRow{
		{Dataset: "fct", K: 10, T: 2, AcceptFrac: 0.1, RejectFrac: 0.7, VerifyFrac: 0.2, Recall: 0.97},
	}
	var buf bytes.Buffer
	if err := MechanismsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "fct" {
		t.Errorf("unexpected csv: %v", recs)
	}
}

func TestScalabilityCSV(t *testing.T) {
	runs := []ScalabilityRun{
		{Size: 1000, MethodRun: MethodRun{Method: "RDT+", Param: "t=4", K: 10, Recall: 0.9, QueryTime: time.Millisecond, Precomp: time.Second}},
	}
	var buf bytes.Buffer
	if err := ScalabilityCSV(&buf, runs); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "1000" {
		t.Errorf("unexpected csv: %v", recs)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "-"},
		{1500 * time.Nanosecond, "2µs"},
		{2500 * time.Microsecond, "2.5ms"},
		{3 * time.Second, "3s"},
	}
	for _, tc := range cases {
		if got := fmtDuration(tc.d); got != tc.want {
			t.Errorf("fmtDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
