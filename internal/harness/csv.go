package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV exporters emit the experiment results in a machine-readable form
// for external plotting, one row per measured point.

// TradeoffCSV writes a TradeoffResult as CSV with a header row.
func TradeoffCSV(w io.Writer, res *TradeoffResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"dataset", "backend", "method", "param", "k",
		"recall", "precision", "query_ns", "precompute_ns",
	}); err != nil {
		return fmt.Errorf("harness: write csv: %w", err)
	}
	for _, r := range res.Runs {
		rec := []string{
			res.Dataset, res.Backend, r.Method, r.Param, strconv.Itoa(r.K),
			formatFloat(r.Recall), formatFloat(r.Precision),
			strconv.FormatInt(int64(r.QueryTime), 10),
			strconv.FormatInt(int64(r.Precomp), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("harness: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// MechanismsCSV writes Figure 7 rows as CSV with a header row.
func MechanismsCSV(w io.Writer, rows []MechanismRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "k", "t", "accept", "reject", "verify", "recall"}); err != nil {
		return fmt.Errorf("harness: write csv: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset, strconv.Itoa(r.K), formatFloat(r.T),
			formatFloat(r.AcceptFrac), formatFloat(r.RejectFrac),
			formatFloat(r.VerifyFrac), formatFloat(r.Recall),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("harness: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScalabilityCSV writes Figure 8 rows as CSV with a header row.
func ScalabilityCSV(w io.Writer, runs []ScalabilityRun) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"size", "k", "method", "param", "recall", "query_ns", "init_ns",
	}); err != nil {
		return fmt.Errorf("harness: write csv: %w", err)
	}
	for _, r := range runs {
		rec := []string{
			strconv.Itoa(r.Size), strconv.Itoa(r.K), r.Method, r.Param,
			formatFloat(r.Recall),
			strconv.FormatInt(int64(r.QueryTime), 10),
			strconv.FormatInt(int64(r.Precomp), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("harness: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
