package telemetry

import "runtime"

// RegisterRuntimeMetrics adds Go runtime introspection gauges to the
// registry: goroutine count, live heap bytes, completed GC cycles, and the
// most recent GC pause. The values are computed at scrape time, so an idle
// registry costs nothing; a scrape pays one runtime.ReadMemStats per series
// that needs it, which is microseconds — fine at scrape cadence, which is
// why these are gauges read on demand instead of a background sampler.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.GaugeFunc("go_last_gc_pause_seconds", "Duration of the most recent GC stop-the-world pause.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.NumGC == 0 {
				return 0
			}
			return float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
		})
}
