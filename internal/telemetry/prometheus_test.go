package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePrometheus validates one exposition document line by line — the
// sanity the scrape smoke in CI and the conformance tests rely on — and
// returns sample values keyed by "name{label=value,...}".
func parsePrometheus(t testing.TB, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[2] == "" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		} else {
			t.Fatalf("line %d: no value on %q", ln+1, line)
		}
		labels := ""
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, `} `)
			if end < 0 {
				t.Fatalf("line %d: unterminated label set %q", ln+1, line)
			}
			labels = rest[1:end]
			for _, pair := range splitLabelPairs(labels) {
				eq := strings.Index(pair, `="`)
				if eq <= 0 || !strings.HasSuffix(pair, `"`) {
					t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
				}
				val := pair[eq+2 : len(pair)-1]
				if strings.ContainsAny(val, "\n") || hasUnescapedQuote(val) {
					t.Fatalf("line %d: unescaped label value %q", ln+1, val)
				}
			}
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		var v float64
		switch valStr {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		default:
			var err error
			v, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE comment", ln+1, name)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		samples[key] = v
	}
	return samples
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func hasUnescapedQuote(s string) bool {
	escaped := false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			return true
		}
	}
	return false
}

func scrape(t testing.TB, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestWritePrometheusCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rknn_queries_total", "Queries served.", "op").With("rknn").Add(3)
	r.Gauge("rknn_points", "Live points.").Set(1500)
	text := scrape(t, r)
	samples := parsePrometheus(t, text)
	if got := samples[`rknn_queries_total{op="rknn"}`]; got != 3 {
		t.Fatalf("counter sample = %v, want 3\n%s", got, text)
	}
	if got := samples["rknn_points"]; got != 1500 {
		t.Fatalf("gauge sample = %v, want 1500\n%s", got, text)
	}
	for _, want := range []string{
		"# HELP rknn_queries_total Queries served.",
		"# TYPE rknn_queries_total counter",
		"# TYPE rknn_points gauge",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("lat_seconds", "Latency.", []float64{0.1, 1}, "route")
	h.With("/x").Observe(0.05)
	h.With("/x").Observe(0.5)
	h.With("/x").Observe(5)
	text := scrape(t, r)
	samples := parsePrometheus(t, text)
	checks := map[string]float64{
		`lat_seconds_bucket{route="/x",le="0.1"}`:  1,
		`lat_seconds_bucket{route="/x",le="1"}`:    2,
		`lat_seconds_bucket{route="/x",le="+Inf"}`: 3,
		`lat_seconds_count{route="/x"}`:            3,
	}
	for key, want := range checks {
		if got := samples[key]; got != want {
			t.Fatalf("%s = %v, want %v\n%s", key, got, want, text)
		}
	}
	sum := samples[`lat_seconds_sum{route="/x"}`]
	if sum < 5.54 || sum > 5.56 {
		t.Fatalf("sum = %v, want 5.55", sum)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "help with \\ and \n newline", "lab").With("quo\"te\\back\nnl").Inc()
	text := scrape(t, r)
	parsePrometheus(t, text)
	if !strings.Contains(text, `lab="quo\"te\\back\nnl"`) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
	if !strings.Contains(text, `# HELP m_total help with \\ and \n newline`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
}

func TestWritePrometheusEmptyLabelOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "", "shard").With("").Inc()
	text := scrape(t, r)
	parsePrometheus(t, text)
	if !strings.Contains(text, "m_total 1\n") {
		t.Fatalf("empty label value should render as unlabeled sample:\n%s", text)
	}
}

// FuzzPrometheusText drives adversarial label values, help strings, and
// observations through the encoder and asserts the output always parses —
// the encoder can never emit an exposition a scraper would reject.
func FuzzPrometheusText(f *testing.F) {
	f.Add("route", `a"b\c`+"\nd", 0.5, int64(3))
	f.Add("op", "", -1.5, int64(0))
	f.Add("x", "plain", 1e300, int64(7))
	f.Fuzz(func(t *testing.T, labelName, labelValue string, obs float64, add int64) {
		if !validLabelName(labelName) {
			t.Skip()
		}
		if add < 0 {
			add = -add
		}
		if add > 1<<40 {
			add = 1 << 40
		}
		r := NewRegistry()
		r.CounterVec("fuzz_total", labelValue, labelName).With(labelValue).Add(add)
		g := r.GaugeVec("fuzz_gauge", "g", labelName).With(labelValue)
		g.Set(obs)
		r.HistogramVec("fuzz_seconds", "h", DefaultLatencyBuckets, labelName).With(labelValue).Observe(obs)
		text := scrape(t, r)
		samples := parsePrometheus(t, text)
		key := "fuzz_total"
		if labelValue != "" {
			key = fmt.Sprintf(`fuzz_total{%s="%s"}`, labelName, escapeLabelValue(labelValue))
		}
		if got := samples[key]; got != float64(add) {
			t.Fatalf("counter sample %q = %v, want %d\n%s", key, got, add, text)
		}
		// The OpenMetrics sibling must stay parseable over the same
		// adversarial inputs, including an exemplar with a hostile value.
		r.HistogramVec("fuzz_seconds", "h", DefaultLatencyBuckets, labelName).With(labelValue).SetExemplar(obs, labelValue+"id", time.Unix(1, 0))
		omSamples, _ := parseOpenMetrics(t, scrapeOpenMetrics(t, r))
		if got := omSamples[key]; got != float64(add) {
			t.Fatalf("openmetrics counter sample %q = %v, want %d", key, got, add)
		}
	})
}

// validLabelName mirrors the Prometheus label-name charset
// [a-zA-Z_][a-zA-Z0-9_]*; the encoder trusts callers on names (they are
// compile-time constants everywhere in this repo), so the fuzzer only
// feeds valid ones.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func TestSlowEntryFieldsRoundTrip(t *testing.T) {
	l := NewSlowLog(0, 4)
	now := time.Now()
	l.Observe(SlowEntry{Time: now, Route: "/v1/rknn", Detail: "POST /v1/rknn", Duration: 42 * time.Millisecond, Err: "boom"})
	got := l.Snapshot()[0]
	if got.Route != "/v1/rknn" || got.Detail != "POST /v1/rknn" || got.Err != "boom" || got.Duration != 42*time.Millisecond || !got.Time.Equal(now) {
		t.Fatalf("entry round-trip mismatch: %+v", got)
	}
}

// --- OpenMetrics 1.0 side of the encoder ---

func scrapeOpenMetrics(t testing.TB, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return b.String()
}

type omExemplar struct {
	TraceID string
	Value   float64
	TS      float64
}

// cutLabelBlock splits a leading {label="value",...} block off s with
// quote/escape awareness (label values may contain '}' or ' # '), returning
// the block's inside and the remainder after the closing brace.
func cutLabelBlock(t testing.TB, s string) (labels, rest string) {
	t.Helper()
	if !strings.HasPrefix(s, "{") {
		return "", s
	}
	inQuote, escaped := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return s[1:i], s[i+1:]
		}
	}
	t.Fatalf("unterminated label block in %q", s)
	return "", ""
}

// parseOpenMetrics validates a WriteOpenMetrics document line by line: the
// "# EOF" terminator, counter metadata names without the _total suffix the
// sample lines keep, and exemplars only on histogram bucket lines. It
// returns sample values and exemplars keyed by "name{labels}".
func parseOpenMetrics(t testing.TB, text string) (map[string]float64, map[string]omExemplar) {
	t.Helper()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition must end with \"# EOF\\n\":\n%s", text)
	}
	body := strings.TrimSuffix(text, "# EOF\n")
	samples := make(map[string]float64)
	exemplars := make(map[string]omExemplar)
	typed := make(map[string]string)
	parseValue := func(ln int, s string) float64 {
		switch s {
		case "+Inf":
			return math.Inf(1)
		case "-Inf":
			return math.Inf(-1)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, s, err)
		}
		return v
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[2] == "" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if fields[3] == "counter" && strings.HasSuffix(fields[2], "_total") {
					t.Fatalf("line %d: OpenMetrics counter metadata must drop _total: %q", ln+1, line)
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		} else {
			t.Fatalf("line %d: no value on %q", ln+1, line)
		}
		labels, rest := cutLabelBlock(t, line[len(name):])
		rest = strings.TrimPrefix(rest, " ")
		valStr, exStr, hasEx := strings.Cut(rest, " # ")
		v := parseValue(ln, strings.TrimSpace(valStr))

		// Resolve the metadata name the sample belongs to.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if b, ok := strings.CutSuffix(name, "_total"); ok && typed[b] == "counter" {
			base = b
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE metadata", ln+1, name)
		}
		if typed[base] == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("line %d: counter sample %q must keep the _total suffix", ln+1, name)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		samples[key] = v

		if hasEx {
			if !strings.HasSuffix(name, "_bucket") || typed[base] != "histogram" {
				t.Fatalf("line %d: exemplar on non-bucket sample %q", ln+1, line)
			}
			exLabels, exRest := cutLabelBlock(t, exStr)
			fields := strings.Fields(exRest)
			if len(fields) != 2 {
				t.Fatalf("line %d: exemplar wants \"value timestamp\", got %q", ln+1, exRest)
			}
			const pre = `trace_id="`
			if !strings.HasPrefix(exLabels, pre) || !strings.HasSuffix(exLabels, `"`) {
				t.Fatalf("line %d: exemplar label set %q, want trace_id only", ln+1, exLabels)
			}
			exemplars[key] = omExemplar{
				TraceID: exLabels[len(pre) : len(exLabels)-1],
				Value:   parseValue(ln, fields[0]),
				TS:      parseValue(ln, fields[1]),
			}
		}
	}
	return samples, exemplars
}

func TestWriteOpenMetricsCounterNamingAndEOF(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rknn_queries_total", "Queries served.", "op").With("rknn").Add(3)
	r.Gauge("rknn_points", "Live points.").Set(42)
	text := scrapeOpenMetrics(t, r)
	samples, _ := parseOpenMetrics(t, text)
	if got := samples[`rknn_queries_total{op="rknn"}`]; got != 3 {
		t.Fatalf("counter sample = %v, want 3\n%s", got, text)
	}
	if !strings.Contains(text, "# TYPE rknn_queries counter\n") {
		t.Fatalf("counter metadata must drop _total:\n%s", text)
	}
	if strings.Contains(text, "# TYPE rknn_queries_total") {
		t.Fatalf("counter metadata kept _total:\n%s", text)
	}
	if got := samples["rknn_points"]; got != 42 {
		t.Fatalf("gauge sample = %v, want 42\n%s", got, text)
	}
}

func TestWriteOpenMetricsMatchesPrometheusValues(t *testing.T) {
	// The two expositions are siblings over one Gather: every sample key
	// must carry the same value in both, so a scraper migrating formats
	// sees no discontinuity.
	r := NewRegistry()
	r.CounterVec("rknn_queries_total", "q", "op").With("rknn").Add(7)
	r.Gauge("rknn_points", "p").Set(1500)
	h := r.HistogramVec("lat_seconds", "l", []float64{0.1, 1}, "route").With("/x")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	prom := parsePrometheus(t, scrape(t, r))
	om, _ := parseOpenMetrics(t, scrapeOpenMetrics(t, r))
	if len(prom) != len(om) {
		t.Fatalf("sample sets differ: prometheus %d, openmetrics %d", len(prom), len(om))
	}
	for key, want := range prom {
		got, ok := om[key]
		if !ok || got != want {
			t.Fatalf("sample %q: openmetrics %v (present %v), prometheus %v", key, got, ok, want)
		}
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("lat_seconds", "Latency.", []float64{0.1, 1}, "route").With("/x")
	h.Observe(0.05)
	h.SetExemplar(0.05, "00f067aa0ba902b7", winBase)
	h.Observe(5)
	text := scrapeOpenMetrics(t, r)
	samples, exemplars := parseOpenMetrics(t, text)
	key := `lat_seconds_bucket{route="/x",le="0.1"}`
	if samples[key] != 1 {
		t.Fatalf("bucket sample = %v, want 1\n%s", samples[key], text)
	}
	ex, ok := exemplars[key]
	if !ok {
		t.Fatalf("bucket %q has no exemplar:\n%s", key, text)
	}
	if ex.TraceID != "00f067aa0ba902b7" || ex.Value != 0.05 {
		t.Fatalf("exemplar = %+v", ex)
	}
	if want := float64(winBase.UnixNano()) / 1e9; math.Abs(ex.TS-want) > 0.002 {
		t.Fatalf("exemplar timestamp = %v, want ~%v", ex.TS, want)
	}
	// Buckets that never retained a trace carry no exemplar.
	if _, ok := exemplars[`lat_seconds_bucket{route="/x",le="+Inf"}`]; ok {
		t.Fatalf("untraced bucket grew an exemplar:\n%s", text)
	}
	// The 0.0.4 exposition stays byte-compatible: no exemplar syntax, and
	// it still parses under the strict 0.0.4 parser.
	text004 := scrape(t, r)
	if strings.Contains(text004, "# {") {
		t.Fatalf("0.0.4 exposition leaked exemplar syntax:\n%s", text004)
	}
	parsePrometheus(t, text004)
}
