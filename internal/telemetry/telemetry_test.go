package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterNoLostIncrementsUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value() = %d, want %d (lost increments)", got, goroutines*per)
	}
}

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "route")
	v.With("/a").Add(3)
	v.With("/b").Add(5)
	if v.With("/a").Value() != 3 || v.With("/b").Value() != 5 {
		t.Fatal("label values do not partition the counter")
	}
	if v.With("/a") != v.With("/a") {
		t.Fatal("With is not memoized")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, reg := range map[string]func(){
		"kind":   func() { r.Gauge("m", "") },
		"labels": func() { r.CounterVec("m", "", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s conflict did not panic", name)
				}
			}()
			reg()
		}()
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.GaugeFunc("points", "", func() float64 { return n }, Label{Name: "shard", Value: "0"})
	fams := r.Gather()
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("Gather() = %+v, want one family with one sample", fams)
	}
	if got := fams[0].Samples[0].Value; got != 7 {
		t.Fatalf("gauge func sample = %v, want 7", got)
	}
	// Last registration wins.
	r.GaugeFunc("points", "", func() float64 { return 9 }, Label{Name: "shard", Value: "0"})
	if got := r.Gather()[0].Samples[0].Value; got != 9 {
		t.Fatalf("replaced gauge func sample = %v, want 9", got)
	}
}

func TestHistogramCountsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	if got := h.Sum(); math.Abs(got-112.5) > 1e-9 {
		t.Fatalf("Sum() = %v, want 112.5", got)
	}
	// Ranks: bucket le=1 has 1, le=2 has 2, le=4 has 3, le=8 has 0, +Inf 1.
	if q := h.Quantile(0.5); q < 1 || q > 4 {
		t.Fatalf("p50 = %v, want within (1,4]", q)
	}
	// The overflow observation resolves to the highest finite bound.
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want 8 (highest finite bound)", q)
	}
	if q := (&HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 7 {
		t.Fatalf("Count() after NaN = %d, want 7", got)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1e-5, 2, 22))
	for i := 0; i < 500; i++ {
		h.Observe(1e-5 * math.Pow(1.07, float64(i%200)))
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramConcurrentObserveKeepsTotals(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 1e-4)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count() = %d, want %d (lost observations)", got, goroutines*per)
	}
	want := 0.0
	for g := 0; g < goroutines; g++ {
		want += float64(g+1) * 1e-4 * per
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum() = %v, want %v", got, want)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Observe(SlowEntry{Route: "/fast", Duration: 5 * time.Millisecond}) {
		t.Fatal("entry below threshold was recorded")
	}
	for i := 0; i < 5; i++ {
		if !l.Observe(SlowEntry{Route: fmt.Sprintf("/slow-%d", i), Duration: time.Duration(20+i) * time.Millisecond}) {
			t.Fatalf("entry %d at threshold was not recorded", i)
		}
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("Total() = %d, want 5", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot() kept %d entries, want capacity 3", len(snap))
	}
	// Newest first: 4, 3, 2 survive the ring.
	for i, want := range []string{"/slow-4", "/slow-3", "/slow-2"} {
		if snap[i].Route != want {
			t.Fatalf("Snapshot()[%d].Route = %q, want %q", i, snap[i].Route, want)
		}
	}
	l.Reset()
	if len(l.Snapshot()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	if l.Total() != 5 {
		t.Fatal("Reset cleared the total")
	}
}

func TestSlowLogZeroThresholdRecordsAll(t *testing.T) {
	l := NewSlowLog(0, 2)
	if !l.Observe(SlowEntry{Duration: 0}) {
		t.Fatal("zero-threshold log rejected a zero-duration entry")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(0, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(SlowEntry{Duration: time.Millisecond})
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 4000 {
		t.Fatalf("Total() = %d, want 4000", got)
	}
	if got := len(l.Snapshot()); got != 8 {
		t.Fatalf("Snapshot() kept %d, want 8", got)
	}
}

func TestGatherOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	r.Gauge("b", "")
	r.Histogram("c_seconds", "", []float64{1})
	fams := r.Gather()
	var names []string
	for _, f := range fams {
		names = append(names, f.Name)
	}
	want := []string{"a_total", "b", "c_seconds"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Gather order = %v, want %v", names, want)
		}
	}
}

// TestHistogramQuantileOverflowAndEmptyRegimes pins the two degenerate
// regimes the serving layer must survive: every observation beyond the
// highest finite bound (the rank always lands in the +Inf overflow bucket)
// and a histogram with no observations at all. Both must yield finite,
// JSON-encodable quantiles at every q — +Inf or NaN here would break the
// /statsz JSON encoding while /metrics kept serving, splitting the two
// surfaces.
func TestHistogramQuantileOverflowAndEmptyRegimes(t *testing.T) {
	bounds := []float64{1, 2, 4}
	h := newHistogram(bounds)
	for i := 0; i < 9; i++ {
		h.Observe(1000) // all overflow
	}
	snap := h.Snapshot()
	if snap.Counts[len(bounds)] != 9 {
		t.Fatalf("overflow bucket holds %d, want 9", snap.Counts[len(bounds)])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		v := snap.Quantile(q)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("overflow-regime Quantile(%v) = %v, want finite", q, v)
		}
		if v != bounds[len(bounds)-1] {
			t.Errorf("overflow-regime Quantile(%v) = %v, want highest finite bound %v", q, v, bounds[len(bounds)-1])
		}
		if _, err := json.Marshal(v); err != nil {
			t.Fatalf("overflow-regime Quantile(%v) not JSON-encodable: %v", q, err)
		}
	}

	empty := newHistogram(bounds).Snapshot()
	if empty.Count != 0 {
		t.Fatalf("empty snapshot Count = %d", empty.Count)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v := empty.Quantile(q)
		if v != 0 {
			t.Errorf("empty-histogram Quantile(%v) = %v, want 0", q, v)
		}
		if _, err := json.Marshal(v); err != nil {
			t.Fatalf("empty-histogram Quantile(%v) not JSON-encodable: %v", q, err)
		}
	}
	// Out-of-range q values clamp rather than producing NaN ranks.
	mixed := newHistogram(bounds)
	mixed.Observe(3)
	for _, q := range []float64{-1, 2} {
		if v := mixed.Snapshot().Quantile(q); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Quantile(%v) = %v, want clamped finite value", q, v)
		}
	}
}

func TestHistogramObserveClampsNegative(t *testing.T) {
	// Regression: a clock-skewed (negative) duration used to land in the
	// first bucket while subtracting from the sum, driving _sum below zero
	// and breaking every rate() computed over it. Negatives now clamp to 0.
	h := newHistogram([]float64{1, 2})
	h.Observe(-5)
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum after negative observe = %g, want 0", got)
	}
	if got := h.Count(); got != 1 {
		t.Fatalf("count after negative observe = %d, want 1 (clamped, not dropped)", got)
	}
	snap := h.Snapshot()
	if snap.Counts[0] != 1 {
		t.Fatalf("clamped observation must land in the first bucket: %v", snap.Counts)
	}
	// NaN is dropped entirely: it cannot be clamped to anything meaningful.
	h.Observe(math.NaN())
	if got := h.Count(); got != 1 {
		t.Fatalf("count after NaN observe = %d, want 1", got)
	}
}

func TestHistogramSetExemplar(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if snap := h.Snapshot(); snap.Exemplars != nil {
		t.Fatal("no exemplars set: snapshot must not allocate any")
	}
	h.SetExemplar(1.5, "aaaa", winBase)
	h.SetExemplar(1.7, "bbbb", winBase.Add(time.Second)) // same bucket: latest wins
	h.SetExemplar(0.5, "", winBase)                      // empty trace ID dropped
	snap := h.Snapshot()
	if snap.Exemplars == nil {
		t.Fatal("exemplars missing from snapshot")
	}
	if ex := snap.Exemplars[1]; ex == nil || ex.TraceID != "bbbb" || ex.Value != 1.7 {
		t.Fatalf("bucket 1 exemplar = %+v, want latest (bbbb)", snap.Exemplars[1])
	}
	if snap.Exemplars[0] != nil {
		t.Fatal("empty-trace-ID exemplar must be dropped")
	}
}

func TestSlowLogSetThreshold(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 8)
	l.Observe(SlowEntry{Route: "/a", Duration: 20 * time.Millisecond})
	l.Observe(SlowEntry{Route: "/b", Duration: 5 * time.Millisecond}) // under: dropped
	if got := len(l.Snapshot()); got != 1 {
		t.Fatalf("entries before retune = %d, want 1", got)
	}
	// Lowering the threshold at runtime keeps the already-recorded entries
	// and starts admitting the finer-grained ones.
	l.SetThreshold(time.Millisecond)
	if got := l.Threshold(); got != time.Millisecond {
		t.Fatalf("threshold after retune = %s", got)
	}
	l.Observe(SlowEntry{Route: "/b", Duration: 5 * time.Millisecond})
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("entries after retune = %d, want 2 (ring preserved)", len(snap))
	}
	// Negative thresholds clamp to 0 (record everything).
	l.SetThreshold(-time.Second)
	if got := l.Threshold(); got != 0 {
		t.Fatalf("negative threshold must clamp to 0, got %s", got)
	}
}
