package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds the live-operations dimension to the cumulative
// instruments: sliding-window views over a ring of fixed-width time slices.
// A Windowed wraps a Histogram (every observation still lands in the
// cumulative buckets /metrics exposes) and additionally banks it into the
// slice covering the observation's timestamp, so QuantileWindow/RateWindow
// can answer "what did the last minute look like" instead of "what has the
// process seen since it started". WindowedCounter is the same ring over a
// plain sum, for rates of the pruning/screened counters.
//
// Rotation is lazy and observer-driven: there is no background goroutine
// and no clock read beyond the timestamp the caller already holds (latency
// measurement pays for time.Now once; the completion time is passed down).
// A slice is reset the first time an observation lands in its epoch; slices
// that saw no traffic keep their stale epoch and are simply excluded at
// read time, so idle periods cost nothing and expire correctly.
//
// Consistency is monitoring-grade, matching Histogram and Counter: an
// observation lands in exactly one slice, but a reader overlapping writers
// may see a count before its sum (or vice versa). The one theoretical loss
// window is an observer preempted between its epoch check and its bucket
// increment for longer than the ring's full span (minutes); the race suite
// pins that nothing worse happens under contention.

// Default window geometry: 30 slices of 10s cover a 5-minute view with 12
// slices (2m) and 6 slices (1m) as finer cuts of the same ring.
const (
	DefaultWindowSlice  = 10 * time.Second
	DefaultWindowSlices = 30
)

// winSlice is one time slice of a Windowed ring. epoch is the absolute
// slice number (unix nanos / width) the counts currently describe; it is
// stored only after the slice is zeroed, so any writer or reader that
// observes the epoch also observes a clean slice.
type winSlice struct {
	epoch   atomic.Int64
	mu      sync.Mutex // serializes rotation; the add path never takes it
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// rotate zeroes the slice and claims it for epoch e. Double-checked under
// the slice mutex so concurrent observers rotating the same slice do the
// wipe exactly once; a slice already at or past e is left alone.
func (sl *winSlice) rotate(e int64) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.epoch.Load() >= e {
		return
	}
	for i := range sl.counts {
		sl.counts[i].Store(0)
	}
	sl.sumBits.Store(0)
	sl.epoch.Store(e)
}

func (sl *winSlice) addSum(v float64) {
	for {
		old := sl.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sl.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Windowed is a sliding-window view over a cumulative Histogram: a ring of
// fixed-width time slices, each a bucket array of the same layout. Observe
// feeds both. All methods are safe for concurrent use, and a nil *Windowed
// is inert, so optional wiring never branches.
type Windowed struct {
	hist  *Histogram
	width int64 // slice width in nanoseconds
	ring  []winSlice
}

// NewWindowed wraps h with a ring of `slices` windows of sliceWidth each.
// The longest answerable window is slices*sliceWidth; shorter windows are
// sub-ranges of the same ring. sliceWidth must be positive; slices < 2 is
// clamped to 2 (one settled slice plus the partial current one).
func NewWindowed(h *Histogram, sliceWidth time.Duration, slices int) *Windowed {
	if h == nil {
		panic("telemetry: NewWindowed needs a histogram")
	}
	if sliceWidth <= 0 {
		panic("telemetry: NewWindowed needs a positive slice width")
	}
	if slices < 2 {
		slices = 2
	}
	w := &Windowed{hist: h, width: int64(sliceWidth), ring: make([]winSlice, slices)}
	for i := range w.ring {
		w.ring[i].counts = make([]atomic.Uint64, len(h.bounds)+1)
	}
	return w
}

// NewDefaultWindowed wraps h with the default 30×10s ring (5m horizon).
func NewDefaultWindowed(h *Histogram) *Windowed {
	return NewWindowed(h, DefaultWindowSlice, DefaultWindowSlices)
}

// Histogram returns the wrapped cumulative histogram.
func (w *Windowed) Histogram() *Histogram {
	if w == nil {
		return nil
	}
	return w.hist
}

// Horizon returns the longest window the ring can answer.
func (w *Windowed) Horizon() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.width * int64(len(w.ring)))
}

// Observe records v (at its observation time) into the cumulative
// histogram and the window slice covering at. Like Histogram.Observe, NaN
// is dropped and negative values are clamped to 0. The caller supplies the
// timestamp so the hot path pays no clock read beyond the one the latency
// measurement already took.
func (w *Windowed) Observe(v float64, at time.Time) {
	if w == nil {
		return
	}
	w.hist.Observe(v)
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	e := at.UnixNano() / w.width
	sl := &w.ring[int(e%int64(len(w.ring)))]
	if cur := sl.epoch.Load(); cur != e {
		if cur > e {
			// The ring has wrapped past this timestamp: the observation is
			// older than the full horizon. It stays in the cumulative
			// histogram; the windows legitimately never saw it.
			return
		}
		sl.rotate(e)
	}
	sl.counts[sort.SearchFloat64s(w.hist.bounds, v)].Add(1)
	sl.addSum(v)
}

// windowSpan clamps a requested window to whole slices within the ring.
func (w *Windowed) windowSpan(window time.Duration) int64 {
	n := (int64(window) + w.width - 1) / w.width
	if n < 1 {
		n = 1
	}
	if n > int64(len(w.ring)) {
		n = int64(len(w.ring))
	}
	return n
}

// SnapshotWindowAt captures the distribution observed during the window
// ending at now: the current (partial) slice plus enough settled slices to
// span the window, each matched by epoch so slices idle since before the
// window contribute nothing. Windows are quantized to whole slices (a 1m
// window over 10s slices reads the last 6 slice epochs), so the answered
// span has a ±1-slice fuzz at its trailing edge — the standard rolling-
// window trade against per-observation timestamps.
func (w *Windowed) SnapshotWindowAt(window time.Duration, now time.Time) *HistSnapshot {
	if w == nil {
		return &HistSnapshot{}
	}
	s := &HistSnapshot{Bounds: w.hist.bounds, Counts: make([]uint64, len(w.hist.bounds)+1)}
	n := w.windowSpan(window)
	nowE := now.UnixNano() / w.width
	minE := nowE - n + 1
	for i := range w.ring {
		sl := &w.ring[i]
		e := sl.epoch.Load()
		if e < minE || e > nowE {
			continue
		}
		for j := range sl.counts {
			c := sl.counts[j].Load()
			s.Counts[j] += c
			s.Count += c
		}
		s.Sum += math.Float64frombits(sl.sumBits.Load())
	}
	return s
}

// QuantileWindow estimates the q-quantile over the trailing window ending
// now. Callers reading several quantiles of one window should take one
// SnapshotWindowAt and query that.
func (w *Windowed) QuantileWindow(q float64, window time.Duration) float64 {
	return w.QuantileWindowAt(q, window, time.Now())
}

// QuantileWindowAt is QuantileWindow with an explicit reading time.
func (w *Windowed) QuantileWindowAt(q float64, window time.Duration, now time.Time) float64 {
	return w.SnapshotWindowAt(window, now).Quantile(q)
}

// RateWindow returns the per-second observation rate over the trailing
// window ending now.
func (w *Windowed) RateWindow(window time.Duration) float64 {
	return w.RateWindowAt(window, time.Now())
}

// RateWindowAt is RateWindow with an explicit reading time.
func (w *Windowed) RateWindowAt(window time.Duration, now time.Time) float64 {
	if w == nil {
		return 0
	}
	span := time.Duration(w.windowSpan(window) * w.width)
	return float64(w.SnapshotWindowAt(window, now).Count) / span.Seconds()
}

// WindowStats is one window's digest: count, rate, and the quantiles every
// live-operations surface reports, all derived from a single snapshot.
type WindowStats struct {
	Count uint64
	QPS   float64
	Mean  float64 // seconds (or the unit observed)
	P50   float64
	P95   float64
	P99   float64
}

// StatsAt digests the trailing window ending at now in one snapshot.
func (w *Windowed) StatsAt(window time.Duration, now time.Time) WindowStats {
	if w == nil {
		return WindowStats{}
	}
	snap := w.SnapshotWindowAt(window, now)
	span := time.Duration(w.windowSpan(window) * w.width)
	st := WindowStats{
		Count: snap.Count,
		QPS:   float64(snap.Count) / span.Seconds(),
	}
	if snap.Count > 0 {
		st.Mean = snap.Sum / float64(snap.Count)
		st.P50 = snap.Quantile(0.50)
		st.P95 = snap.Quantile(0.95)
		st.P99 = snap.Quantile(0.99)
	}
	return st
}

// ctrSlice is one time slice of a WindowedCounter ring.
type ctrSlice struct {
	epoch atomic.Int64
	mu    sync.Mutex
	n     atomic.Int64
}

func (sl *ctrSlice) rotate(e int64) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.epoch.Load() >= e {
		return
	}
	sl.n.Store(0)
	sl.epoch.Store(e)
}

// WindowedCounter is the counter form of Windowed: a ring of per-slice
// sums with the same lazy observer-driven rotation, answering "how much in
// the trailing window" for totals whose cumulative series already exists
// elsewhere. A nil *WindowedCounter is inert.
type WindowedCounter struct {
	width int64
	ring  []ctrSlice
}

// NewWindowedCounter builds a ring of `slices` windows of sliceWidth each,
// with the same clamping as NewWindowed.
func NewWindowedCounter(sliceWidth time.Duration, slices int) *WindowedCounter {
	if sliceWidth <= 0 {
		panic("telemetry: NewWindowedCounter needs a positive slice width")
	}
	if slices < 2 {
		slices = 2
	}
	return &WindowedCounter{width: int64(sliceWidth), ring: make([]ctrSlice, slices)}
}

// NewDefaultWindowedCounter builds the default 30×10s ring.
func NewDefaultWindowedCounter() *WindowedCounter {
	return NewWindowedCounter(DefaultWindowSlice, DefaultWindowSlices)
}

// Add banks delta into the slice covering at. Negative deltas are dropped
// (counter semantics, matching Counter.Add's contract without the panic:
// windowed feeds are derived data, not the source of truth).
func (w *WindowedCounter) Add(delta int64, at time.Time) {
	if w == nil || delta <= 0 {
		return
	}
	e := at.UnixNano() / w.width
	sl := &w.ring[int(e%int64(len(w.ring)))]
	if cur := sl.epoch.Load(); cur != e {
		if cur > e {
			return
		}
		sl.rotate(e)
	}
	sl.n.Add(delta)
}

// Inc adds one at the given time.
func (w *WindowedCounter) Inc(at time.Time) { w.Add(1, at) }

func (w *WindowedCounter) windowSpan(window time.Duration) int64 {
	n := (int64(window) + w.width - 1) / w.width
	if n < 1 {
		n = 1
	}
	if n > int64(len(w.ring)) {
		n = int64(len(w.ring))
	}
	return n
}

// SumWindowAt returns the total banked during the window ending at now.
func (w *WindowedCounter) SumWindowAt(window time.Duration, now time.Time) int64 {
	if w == nil {
		return 0
	}
	n := w.windowSpan(window)
	nowE := now.UnixNano() / w.width
	minE := nowE - n + 1
	var total int64
	for i := range w.ring {
		sl := &w.ring[i]
		if e := sl.epoch.Load(); e >= minE && e <= nowE {
			total += sl.n.Load()
		}
	}
	return total
}

// RateWindow returns the per-second rate over the trailing window ending
// now.
func (w *WindowedCounter) RateWindow(window time.Duration) float64 {
	return w.RateWindowAt(window, time.Now())
}

// RateWindowAt is RateWindow with an explicit reading time.
func (w *WindowedCounter) RateWindowAt(window time.Duration, now time.Time) float64 {
	if w == nil {
		return 0
	}
	span := time.Duration(w.windowSpan(window) * w.width)
	return float64(w.SumWindowAt(window, now)) / span.Seconds()
}
