package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Workload is the analytics sketch behind /v1/admin/analytics: a
// Space-Saving heavy-hitter summary over query signatures (quantized
// query-point grid cell + op + k), with per-entry latency windows and
// pruning accumulators. It is the operator-facing readout of the paper's
// observation that pruning effectiveness tracks the *local* intrinsic
// dimensionality of the queried region: two regions with the same traffic
// can have wildly different screened fractions, and this sketch shows
// which regions those are, live.
//
// Space-Saving (Metwally et al. 2005) keeps at most `capacity` entries.
// A miss when full evicts the current minimum-count entry and inherits its
// count plus one, recording that minimum as the new entry's error bound:
// for every tracked signature, trueCount is within [Count-ErrBound, Count],
// and any signature with true frequency above N/capacity is guaranteed to
// be present. The per-entry accumulators (latency window, scan depth,
// pruning) restart at zero on eviction — they describe the entry's tenure,
// not its inherited count, which is the useful semantics for "what is this
// hot region doing right now".
//
// DefaultWorkloadCapacity bounds the sketch: 64 entries resolve any
// signature above ~1.6% of traffic, plenty for "top query regions".
const DefaultWorkloadCapacity = 64

// workloadEntry is one tracked signature. count/errBound are guarded by
// the sketch mutex; the accumulators are atomics updated outside it, so
// the lock hold is a map probe and an integer bump.
type workloadEntry struct {
	sig      string
	count    uint64
	errBound uint64

	latency  *Windowed // over a private histogram: lifetime + windowed views
	scanSum  atomic.Int64
	genSum   atomic.Int64 // candidates generated (filter size + exclusions)
	pruneSum atomic.Int64 // candidates settled without verification
	obs      atomic.Int64 // observations carrying stats (denominator for scan mean)
}

// Workload is safe for concurrent use. A nil *Workload is inert, so the
// tracing-off and telemetry-off paths never branch.
type Workload struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*workloadEntry
}

// NewWorkload builds a sketch tracking at most capacity signatures
// (DefaultWorkloadCapacity when capacity <= 0).
func NewWorkload(capacity int) *Workload {
	if capacity <= 0 {
		capacity = DefaultWorkloadCapacity
	}
	return &Workload{capacity: capacity, entries: make(map[string]*workloadEntry, capacity)}
}

// touch finds or creates the entry for sig under the Space-Saving policy
// and bumps its count.
func (w *Workload) touch(sig string) *workloadEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e := w.entries[sig]; e != nil {
		e.count++
		return e
	}
	if len(w.entries) < w.capacity {
		e := &workloadEntry{sig: sig, count: 1, latency: NewDefaultWindowed(newHistogram(DefaultLatencyBuckets))}
		w.entries[sig] = e
		return e
	}
	// Full: evict the minimum-count entry; the newcomer inherits min+1 with
	// error bound min. The accumulators restart (see package comment).
	var victim *workloadEntry
	for _, e := range w.entries {
		if victim == nil || e.count < victim.count {
			victim = e
		}
	}
	delete(w.entries, victim.sig)
	e := &workloadEntry{
		sig:      sig,
		count:    victim.count + 1,
		errBound: victim.count,
		latency:  NewDefaultWindowed(newHistogram(DefaultLatencyBuckets)),
	}
	w.entries[sig] = e
	return e
}

// Observe records one query under its signature. scanDepth, generated and
// pruned come from the engine's per-query Stats; at is the completion time
// the caller already holds (no extra clock read).
func (w *Workload) Observe(sig string, latencySeconds float64, scanDepth, generated, pruned int, at time.Time) {
	if w == nil || sig == "" {
		return
	}
	e := w.touch(sig)
	// Outside the lock: a racing eviction may strand these adds on a
	// just-evicted entry, which merely forgets one observation's stats —
	// monitoring-grade, same contract as the rest of the package.
	e.latency.Observe(latencySeconds, at)
	e.obs.Add(1)
	e.scanSum.Add(int64(scanDepth))
	e.genSum.Add(int64(generated))
	e.pruneSum.Add(int64(pruned))
}

// WorkloadStat is one hot signature's digest for the analytics endpoint.
type WorkloadStat struct {
	Signature string `json:"signature"`
	// Count is the Space-Saving estimate; the true count is within
	// [Count-ErrBound, Count].
	Count    uint64 `json:"count"`
	ErrBound uint64 `json:"count_error_bound"`
	// Lifetime latency over the entry's tenure.
	MeanLatency float64 `json:"mean_latency_seconds"`
	// Windowed view (the window is the caller's, reported alongside).
	Window WindowStats `json:"-"`
	// MeanScanDepth and PruningRatio summarize the engine stats: how deep
	// the expanding search ran and what fraction of generated candidates
	// was settled without a verification query — the paper's
	// region-dependent pruning effectiveness, per region.
	MeanScanDepth float64 `json:"mean_scan_depth"`
	PruningRatio  float64 `json:"pruning_ratio"`
}

// TopKAt returns the k highest-count signatures (all of them when k <= 0
// or k exceeds the tracked set), each with its windowed latency digest at
// the reading time. Ties break by signature for deterministic output.
func (w *Workload) TopKAt(k int, window time.Duration, now time.Time) []WorkloadStat {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	type pair struct {
		e        *workloadEntry
		count    uint64
		errBound uint64
	}
	all := make([]pair, 0, len(w.entries))
	for _, e := range w.entries {
		all = append(all, pair{e: e, count: e.count, errBound: e.errBound})
	}
	w.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].e.sig < all[j].e.sig
	})
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	out := make([]WorkloadStat, 0, len(all))
	for _, p := range all {
		st := WorkloadStat{
			Signature: p.e.sig,
			Count:     p.count,
			ErrBound:  p.errBound,
			Window:    p.e.latency.StatsAt(window, now),
		}
		if h := p.e.latency.Histogram(); h != nil {
			if n := h.Count(); n > 0 {
				st.MeanLatency = h.Sum() / float64(n)
			}
		}
		if obs := p.e.obs.Load(); obs > 0 {
			st.MeanScanDepth = float64(p.e.scanSum.Load()) / float64(obs)
		}
		if gen := p.e.genSum.Load(); gen > 0 {
			st.PruningRatio = float64(p.e.pruneSum.Load()) / float64(gen)
		}
		out = append(out, st)
	}
	return out
}

// TopK is TopKAt(now).
func (w *Workload) TopK(k int, window time.Duration) []WorkloadStat {
	return w.TopKAt(k, window, time.Now())
}

// Len returns the number of tracked signatures.
func (w *Workload) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// Capacity returns the sketch capacity.
func (w *Workload) Capacity() int {
	if w == nil {
		return 0
	}
	return w.capacity
}
