package telemetry

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestWorkloadTopKOrderingAndDigest(t *testing.T) {
	w := NewWorkload(8)
	at := winBase
	for i := 0; i < 5; i++ {
		w.Observe("query k=10 @hot", 0.002, 100, 50, 40, at)
	}
	for i := 0; i < 2; i++ {
		w.Observe("query k=10 @cold", 0.010, 200, 80, 20, at)
	}
	top := w.TopKAt(10, time.Minute, at)
	if len(top) != 2 {
		t.Fatalf("tracked = %d, want 2", len(top))
	}
	hot := top[0]
	if hot.Signature != "query k=10 @hot" || hot.Count != 5 || hot.ErrBound != 0 {
		t.Fatalf("top entry = %+v", hot)
	}
	if math.Abs(hot.MeanLatency-0.002) > 1e-12 {
		t.Fatalf("mean latency = %g, want 0.002", hot.MeanLatency)
	}
	if hot.MeanScanDepth != 100 {
		t.Fatalf("mean scan depth = %g, want 100", hot.MeanScanDepth)
	}
	// 40 of 50 generated candidates settled without verification.
	if math.Abs(hot.PruningRatio-0.8) > 1e-12 {
		t.Fatalf("pruning ratio = %g, want 0.8", hot.PruningRatio)
	}
	if hot.Window.Count != 5 {
		t.Fatalf("window count = %d, want 5", hot.Window.Count)
	}
	// k bounds the list; k <= 0 returns everything.
	if got := w.TopKAt(1, time.Minute, at); len(got) != 1 || got[0].Signature != hot.Signature {
		t.Fatalf("top-1 = %+v", got)
	}
	if got := w.TopKAt(0, time.Minute, at); len(got) != 2 {
		t.Fatalf("top-0 length = %d, want 2 (all)", len(got))
	}
}

func TestWorkloadSpaceSavingEviction(t *testing.T) {
	w := NewWorkload(2)
	at := winBase
	for i := 0; i < 3; i++ {
		w.Observe("A", 0.001, 0, 0, 0, at)
	}
	for i := 0; i < 2; i++ {
		w.Observe("B", 0.001, 0, 0, 0, at)
	}
	// Full sketch: C must evict the minimum (B, count 2) and inherit
	// count 3 with error bound 2 — the Space-Saving overestimate contract:
	// trueCount(C)=1 is inside [Count-ErrBound, Count] = [1, 3].
	w.Observe("C", 0.001, 0, 0, 0, at)
	if w.Len() != 2 {
		t.Fatalf("len = %d, want 2", w.Len())
	}
	top := w.TopKAt(0, time.Minute, at)
	bySig := map[string]WorkloadStat{}
	for _, st := range top {
		bySig[st.Signature] = st
	}
	if _, ok := bySig["B"]; ok {
		t.Fatal("B (the minimum) must have been evicted")
	}
	a, c := bySig["A"], bySig["C"]
	if a.Count != 3 || a.ErrBound != 0 {
		t.Fatalf("A = %+v, want count 3 errBound 0", a)
	}
	if c.Count != 3 || c.ErrBound != 2 {
		t.Fatalf("C = %+v, want count 3 errBound 2", c)
	}
	// C's accumulators describe its tenure, not its inherited count: one
	// real observation.
	if c.Window.Count != 1 {
		t.Fatalf("C window count = %d, want 1", c.Window.Count)
	}
	// Deterministic tie-break on equal counts: "A" before "C".
	if top[0].Signature != "A" || top[1].Signature != "C" {
		t.Fatalf("tie-break order = %q, %q", top[0].Signature, top[1].Signature)
	}
}

func TestWorkloadHeavyHitterSurvivesChurn(t *testing.T) {
	// The guarantee that matters operationally: a signature above N/capacity
	// of the traffic is always present, no matter how much one-off noise
	// churns the sketch.
	w := NewWorkload(16)
	at := winBase
	for i := 0; i < 1000; i++ {
		w.Observe("hot", 0.001, 0, 0, 0, at)
		w.Observe(fmt.Sprintf("noise-%d", i), 0.001, 0, 0, 0, at)
	}
	top := w.TopKAt(1, time.Minute, at)
	if len(top) == 0 || top[0].Signature != "hot" {
		t.Fatalf("heavy hitter lost: top = %+v", top)
	}
	if true1k := top[0].Count - top[0].ErrBound; true1k > 1000 {
		t.Fatalf("lower bound %d exceeds the true count 1000", true1k)
	}
	if top[0].Count < 1000 {
		t.Fatalf("Space-Saving must overestimate, got %d < 1000", top[0].Count)
	}
	if w.Len() > 16 {
		t.Fatalf("len = %d, exceeds capacity", w.Len())
	}
}

func TestWorkloadNilAndEmpty(t *testing.T) {
	var w *Workload
	w.Observe("x", 1, 0, 0, 0, winBase) // must not panic
	if w.TopKAt(5, time.Minute, winBase) != nil {
		t.Fatal("nil sketch must report nil")
	}
	if w.Len() != 0 || w.Capacity() != 0 {
		t.Fatal("nil sketch must report zero sizes")
	}
	w2 := NewWorkload(0)
	if w2.Capacity() != DefaultWorkloadCapacity {
		t.Fatalf("default capacity = %d, want %d", w2.Capacity(), DefaultWorkloadCapacity)
	}
	w2.Observe("", 1, 0, 0, 0, winBase) // empty signature is dropped
	if w2.Len() != 0 {
		t.Fatal("empty signature must not be tracked")
	}
}

func TestWorkloadConcurrent(t *testing.T) {
	w := NewWorkload(8)
	at := winBase
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	wg.Add(writers + 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			w.TopKAt(4, time.Minute, at)
		}
	}()
	for g := 0; g < writers; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.Observe(fmt.Sprintf("sig-%d", (g+i)%12), 0.001, 1, 2, 1, at)
			}
		}()
	}
	wg.Wait()
	if w.Len() > 8 {
		t.Fatalf("len = %d, exceeds capacity", w.Len())
	}
	var total uint64
	for _, st := range w.TopKAt(0, time.Minute, at) {
		total += st.Count
	}
	// Space-Saving conserves the total stream length across evictions.
	if total != writers*perWriter {
		t.Fatalf("count mass = %d, want %d", total, writers*perWriter)
	}
}
