package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func mustSLO(t *testing.T, cfg SLOConfig) *SLO {
	t.Helper()
	s, err := NewSLO(cfg)
	if err != nil {
		t.Fatalf("NewSLO: %v", err)
	}
	return s
}

func TestNewSLOValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  SLOConfig
		want string
	}{
		{"empty", SLOConfig{}, "at least one objective"},
		{"both forms", SLOConfig{Objectives: []SLOObjective{{Name: "x", Quantile: 0.99, Bound: 0.025, Target: 0.999}}}, "exactly one"},
		{"neither form", SLOConfig{Objectives: []SLOObjective{{Name: "x"}}}, "exactly one"},
		{"quantile out of range", SLOConfig{Objectives: []SLOObjective{{Name: "x", Quantile: 1.5, Bound: 0.025}}}, "quantile in (0,1)"},
		{"negative bound", SLOConfig{Objectives: []SLOObjective{{Name: "x", Quantile: 0.99, Bound: -1}}}, "positive bound"},
		{"target out of range", SLOConfig{Objectives: []SLOObjective{{Name: "x", Target: 2}}}, "target in (0,1)"},
		{"duplicate", SLOConfig{Objectives: []SLOObjective{AvailabilityObjective(0.999), AvailabilityObjective(0.99)}}, "duplicate"},
		{"unnamed", SLOConfig{Objectives: []SLOObjective{{Quantile: 0.99, Bound: 0.025}}}, "needs a name"},
	}
	for _, c := range cases {
		if _, err := NewSLO(c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := NewSLO(SLOConfig{Objectives: []SLOObjective{
		LatencyObjective(0.99, 0.025),
		AvailabilityObjective(0.999),
	}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSLOLatencyClassification(t *testing.T) {
	s := mustSLO(t, SLOConfig{Objectives: []SLOObjective{LatencyObjective(0.9, 0.025)}})
	at := winBase
	for i := 0; i < 8; i++ {
		s.Observe(0.001, false, at) // well under the bound: good
	}
	s.Observe(0.030, false, at) // over the bound: bad even though it succeeded
	// A latency objective classifies by latency alone — a fast error is a
	// good event here (the error belongs to an availability objective).
	s.Observe(0.001, true, at)
	st := s.StatusAt(at)[0]
	if st.Requests != 10 || st.BadEvents != 1 {
		t.Fatalf("latency objective: requests=%d bad=%d, want 10/1", st.Requests, st.BadEvents)
	}
	// Budget fraction 0.1, so 1 bad in 10 spends the budget exactly.
	if math.Abs(st.BudgetRemaining) > 1e-9 {
		t.Fatalf("budget remaining = %g, want 0", st.BudgetRemaining)
	}
	if st.Objective != "p90 < 25ms" {
		t.Fatalf("describe = %q", st.Objective)
	}
}

func TestSLOAvailabilityBudget(t *testing.T) {
	s := mustSLO(t, SLOConfig{Objectives: []SLOObjective{AvailabilityObjective(0.999)}})
	at := winBase
	for i := 0; i < 999; i++ {
		s.Observe(0.001, false, at)
	}
	st := s.StatusAt(at)[0]
	if st.BudgetRemaining != 1 {
		t.Fatalf("untouched budget = %g, want 1", st.BudgetRemaining)
	}
	s.Observe(0.001, true, at)
	st = s.StatusAt(at)[0]
	// 1 bad in 1000 at a 0.1% budget: exactly spent.
	if got := st.BudgetRemaining; got < -1e-9 || got > 1e-9 {
		t.Fatalf("spent budget = %g, want 0", got)
	}
	s.Observe(0.001, true, at)
	if st = s.StatusAt(at)[0]; st.BudgetRemaining >= 0 {
		t.Fatalf("overspent budget = %g, want negative", st.BudgetRemaining)
	}
}

func TestSLOMultiWindowDegradation(t *testing.T) {
	s := mustSLO(t, SLOConfig{Objectives: []SLOObjective{AvailabilityObjective(0.999)}})
	burst := winBase.Add(10 * time.Second)
	for i := 0; i < 50; i++ {
		s.Observe(0.001, true, burst) // every request fails: burn 1000x
	}
	now := burst.Add(5 * time.Second)
	if !s.DegradedAt(now) {
		t.Fatal("all-failing burst inside both windows must degrade")
	}
	st := s.StatusAt(now)[0]
	if st.BurnRates["1m"] < DefaultFastBurn || st.BurnRates["5m"] < DefaultFastBurn {
		t.Fatalf("burn rates %v, want both >= %g", st.BurnRates, DefaultFastBurn)
	}
	if !st.Degraded {
		t.Fatal("objective status must report degraded")
	}

	// Two minutes later the burst has left the short window but not the
	// long one: the fast-burn rule needs BOTH, so the page clears.
	later := burst.Add(2 * time.Minute)
	if s.DegradedAt(later) {
		t.Fatal("burst outside the short window must clear degradation")
	}
	st = s.StatusAt(later)[0]
	if st.BurnRates["1m"] != 0 {
		t.Fatalf("short burn after the burst = %g, want 0", st.BurnRates["1m"])
	}
	if st.BurnRates["5m"] < DefaultFastBurn {
		t.Fatalf("long burn should still see the burst, got %g", st.BurnRates["5m"])
	}
	// Lifetime budget accounting is not windowed: still fully overspent.
	if st.BudgetRemaining >= 0 {
		t.Fatalf("lifetime budget = %g, want negative", st.BudgetRemaining)
	}
}

func TestSLONilIsInert(t *testing.T) {
	var s *SLO
	s.Observe(1, true, winBase) // must not panic
	if s.Degraded() || s.DegradedAt(winBase) {
		t.Fatal("nil SLO must never degrade")
	}
	if s.StatusAt(winBase) != nil {
		t.Fatal("nil SLO status must be nil")
	}
	if s.FastBurn() != 0 {
		t.Fatal("nil SLO fast burn must be 0")
	}
	s.Register(NewRegistry()) // must not panic
}

func TestSLORegisterGauges(t *testing.T) {
	s := mustSLO(t, SLOConfig{Objectives: []SLOObjective{
		LatencyObjective(0.99, 0.025),
		AvailabilityObjective(0.999),
	}})
	reg := NewRegistry()
	s.Register(reg)
	byName := map[string]FamilySnapshot{}
	for _, f := range reg.Gather() {
		byName[f.Name] = f
	}
	burn := byName["rknn_slo_burn_rate"]
	if len(burn.Samples) != 4 { // 2 objectives x 2 windows
		t.Fatalf("burn-rate series = %d, want 4", len(burn.Samples))
	}
	budget := byName["rknn_slo_error_budget_remaining_ratio"]
	if len(budget.Samples) != 2 {
		t.Fatalf("budget series = %d, want 2", len(budget.Samples))
	}
	for _, smp := range budget.Samples {
		if smp.Value != 1 {
			t.Fatalf("untouched budget gauge = %g, want 1", smp.Value)
		}
	}
}

func TestDurKey(t *testing.T) {
	for d, want := range map[time.Duration]string{
		time.Minute:      "1m",
		5 * time.Minute:  "5m",
		90 * time.Second: "90s",
	} {
		if got := durKey(d); got != want {
			t.Errorf("durKey(%s) = %q, want %q", d, got, want)
		}
	}
}
