package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets with ascending upper
// bounds plus an implicit +Inf overflow bucket, and accumulates the sum of
// observed values. Observe is lock-free: one atomic increment on the bucket
// and one CAS loop on the sum. Snapshots taken during concurrent observes
// are not a single atomic cut (an observation may appear in the count
// before the sum, or vice versa), but every observation increments exactly
// one bucket exactly once, so totals are never lost — monitoring-grade
// consistency, pinned by the race tests.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the observation sum
	// exemplars retains the most recent exemplar per bucket (index-aligned
	// with counts). Entries stay nil until SetExemplar is called — the
	// tracing-off exposition is unchanged.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar joins one bucket of a latency histogram to the trace that most
// recently landed in it, exposed in the OpenMetrics exposition so a
// heatmap cell resolves to a concrete span tree.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// NewHistogram returns a standalone histogram with the given ascending
// finite bucket bounds — for windowed instruments whose cumulative form is
// not registry-exposed (the workload sketch and the recall window build on
// these).
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped: they would
// poison the sum while landing in the overflow bucket, skewing quantiles.
// Negative values are clamped to 0: a clock-skewed duration must not land
// below every bucket bound while *subtracting* from the _sum series, which
// would break the cumulative "le" semantics and every rate() over the sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: cumulative "le" semantics
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetExemplar retains traceID as the most recent exemplar of the bucket v
// falls into (latest write wins — the freshest trace is the useful one).
// It does not count an observation; callers pair it with Observe.
func (h *Histogram) SetExemplar(v float64, traceID string, at time.Time) {
	if math.IsNaN(v) || traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: at})
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile of the current distribution; see
// HistSnapshot.Quantile. Callers reading several quantiles of one moment
// should take one Snapshot and query that, so all values describe the same
// distribution.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot captures the current distribution. Exemplars are copied only
// when any were ever set, so the common no-tracing snapshot allocates
// nothing extra.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.Sum()
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// HistSnapshot is a histogram captured at scrape time.
type HistSnapshot struct {
	// Bounds holds the finite bucket upper bounds, ascending.
	Bounds []float64
	// Counts holds per-bucket (non-cumulative) observation counts;
	// Counts[len(Bounds)] is the +Inf overflow bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
	// Exemplars holds the most recent exemplar per bucket, index-aligned
	// with Counts; nil when none were ever set (tracing off).
	Exemplars []*Exemplar
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket the rank falls into — the same estimate Prometheus's
// histogram_quantile computes from the exposition. Observations in the
// overflow bucket are attributed to the highest finite bound (quantiles
// cannot resolve beyond the bucket layout). Returns 0 for an empty
// histogram.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := q * float64(s.Count)
	var cum float64
	lower := 0.0
	for i, c := range s.Counts {
		if i >= len(s.Bounds) {
			// Overflow bucket: the layout's resolution ends here.
			return lower
		}
		upper := s.Bounds[i]
		next := cum + float64(c)
		if rank <= next && c > 0 {
			frac := (rank - cum) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum = next
		lower = upper
	}
	return lower
}

// ExponentialBuckets returns n log-spaced bucket upper bounds starting at
// start and growing by factor — the fixed layout behind every latency
// histogram in this repository.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic("telemetry: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 10µs to ~21s in doubling steps (22 buckets)
// — wide enough for both sub-millisecond point reads and multi-second
// batch queries on one fixed layout.
var DefaultLatencyBuckets = ExponentialBuckets(10e-6, 2, 22)
