package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the SLO engine: configurable service-level objectives
// tracked against the windowed data, with Google-SRE multi-window
// burn-rate alerting semantics. Each objective classifies every data-plane
// request as good or bad (a latency objective counts requests over its
// bound; an availability objective counts errors) and maintains:
//
//   - lifetime totals, from which the remaining error budget is computed
//     (rknn_slo_error_budget_remaining_ratio): 1 means the budget is
//     untouched, 0 means exactly spent, negative means overspent;
//   - windowed totals over the shared 30×10s ring, from which burn rates
//     are computed (rknn_slo_burn_rate{window}): the ratio of the observed
//     bad fraction to the budget fraction, so burn 1.0 spends the budget
//     exactly at the sustainable rate and burn 14.4 exhausts a 30-day
//     budget in ~50 hours — the classic fast-burn page threshold.
//
// Degradation trips when BOTH the short and the long window burn at or
// above the fast-burn threshold: the long window proves the problem is
// real (not one slow request), the short window proves it is still
// happening (the alert resets quickly once the incident ends). The server
// surfaces this as /healthz?slo=1 turning 503.

// Default multi-window fast-burn parameters (Google SRE workbook, chapter
// 5: 14.4 corresponds to spending 2% of a 30-day budget in one hour).
const (
	DefaultFastBurn    = 14.4
	DefaultShortWindow = time.Minute
	DefaultLongWindow  = 5 * time.Minute
)

// SLOObjective is one objective's configuration. Exactly one of the two
// forms is set: a latency objective (Quantile, Bound) or an availability
// objective (Target).
type SLOObjective struct {
	// Name labels the objective's series ("latency", "availability").
	Name string
	// Quantile and Bound define a latency objective: the Quantile of
	// requests must complete within Bound seconds, so a request slower
	// than Bound is a bad event and the budget fraction is 1-Quantile.
	Quantile float64
	Bound    float64
	// Target defines an availability objective: the fraction of requests
	// that must succeed, so an errored request is a bad event and the
	// budget fraction is 1-Target.
	Target float64
}

// LatencyObjective builds "quantile of requests under bound seconds".
func LatencyObjective(quantile, boundSeconds float64) SLOObjective {
	return SLOObjective{Name: "latency", Quantile: quantile, Bound: boundSeconds}
}

// AvailabilityObjective builds "target fraction of requests succeed".
func AvailabilityObjective(target float64) SLOObjective {
	return SLOObjective{Name: "availability", Target: target}
}

// budgetFraction returns the allowed bad-event fraction.
func (o SLOObjective) budgetFraction() float64 {
	if o.Target > 0 {
		return 1 - o.Target
	}
	return 1 - o.Quantile
}

// validate rejects shapes that would divide by zero or invert the math.
func (o SLOObjective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("telemetry: SLO objective needs a name")
	}
	lat := o.Quantile != 0 || o.Bound != 0
	avail := o.Target != 0
	if lat == avail {
		return fmt.Errorf("telemetry: SLO objective %q must set exactly one of (quantile, bound) and target", o.Name)
	}
	if lat && (o.Quantile <= 0 || o.Quantile >= 1 || o.Bound <= 0) {
		return fmt.Errorf("telemetry: SLO objective %q needs quantile in (0,1) and a positive bound", o.Name)
	}
	if avail && (o.Target <= 0 || o.Target >= 1) {
		return fmt.Errorf("telemetry: SLO objective %q needs target in (0,1)", o.Name)
	}
	return nil
}

// SLOConfig configures NewSLO. Zero-valued fields take the defaults above.
type SLOConfig struct {
	Objectives []SLOObjective
	FastBurn   float64
	Short      time.Duration
	Long       time.Duration
}

// sloObjective is one objective's live state.
type sloObjective struct {
	SLOObjective
	budget    float64
	total     *WindowedCounter
	bad       *WindowedCounter
	lifeTotal atomic.Int64
	lifeBad   atomic.Int64
}

// SLO tracks a set of objectives against the live request stream. Observe
// is called once per data-plane request with the latency and error outcome
// the instrumentation already holds; every read derives from the shared
// window ring. A nil *SLO is inert.
type SLO struct {
	fastBurn   float64
	short      time.Duration
	long       time.Duration
	objectives []*sloObjective
}

// NewSLO builds the engine; it errors on an empty or malformed objective
// list so flag parsing surfaces mistakes at startup, not at page time.
func NewSLO(cfg SLOConfig) (*SLO, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("telemetry: SLO needs at least one objective")
	}
	s := &SLO{fastBurn: cfg.FastBurn, short: cfg.Short, long: cfg.Long}
	if s.fastBurn <= 0 {
		s.fastBurn = DefaultFastBurn
	}
	if s.short <= 0 {
		s.short = DefaultShortWindow
	}
	if s.long <= s.short {
		s.long = DefaultLongWindow
		if s.long <= s.short {
			s.long = 5 * s.short
		}
	}
	seen := make(map[string]bool, len(cfg.Objectives))
	for _, o := range cfg.Objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("telemetry: duplicate SLO objective %q", o.Name)
		}
		seen[o.Name] = true
		s.objectives = append(s.objectives, &sloObjective{
			SLOObjective: o,
			budget:       o.budgetFraction(),
			total:        NewDefaultWindowedCounter(),
			bad:          NewDefaultWindowedCounter(),
		})
	}
	return s, nil
}

// Observe classifies one request against every objective. at is the
// request's completion time (begin + measured latency — no extra clock
// read on the hot path).
func (s *SLO) Observe(latencySeconds float64, failed bool, at time.Time) {
	if s == nil {
		return
	}
	for _, o := range s.objectives {
		o.lifeTotal.Add(1)
		o.total.Inc(at)
		bad := failed
		if o.Bound > 0 {
			bad = latencySeconds > o.Bound
		}
		if bad {
			o.lifeBad.Add(1)
			o.bad.Inc(at)
		}
	}
}

// burnAt returns the burn rate of one objective over the window ending at
// now: (bad/total)/budget, 0 when the window saw no traffic.
func (o *sloObjective) burnAt(window time.Duration, now time.Time) float64 {
	total := o.total.SumWindowAt(window, now)
	if total == 0 {
		return 0
	}
	return (float64(o.bad.SumWindowAt(window, now)) / float64(total)) / o.budget
}

// budgetRemainingAt returns the lifetime error-budget remaining ratio: the
// fraction of the allowed bad events not yet consumed. 1 with no traffic,
// negative once overspent.
func (o *sloObjective) budgetRemaining() float64 {
	total := o.lifeTotal.Load()
	if total == 0 {
		return 1
	}
	allowed := float64(total) * o.budget
	return 1 - float64(o.lifeBad.Load())/allowed
}

// DegradedAt reports whether any objective trips the multi-window
// fast-burn rule at the reading time.
func (s *SLO) DegradedAt(now time.Time) bool {
	if s == nil {
		return false
	}
	for _, o := range s.objectives {
		if o.burnAt(s.long, now) >= s.fastBurn && o.burnAt(s.short, now) >= s.fastBurn {
			return true
		}
	}
	return false
}

// Degraded is DegradedAt(now).
func (s *SLO) Degraded() bool { return s.DegradedAt(time.Now()) }

// SLOStatus is one objective's live readout.
type SLOStatus struct {
	Name            string             `json:"name"`
	Objective       string             `json:"objective"`
	BudgetFraction  float64            `json:"budget_fraction"`
	Requests        int64              `json:"requests"`
	BadEvents       int64              `json:"bad_events"`
	BudgetRemaining float64            `json:"error_budget_remaining_ratio"`
	BurnRates       map[string]float64 `json:"burn_rates"`
	Degraded        bool               `json:"degraded"`
}

// describe renders the objective for humans ("p99 < 25ms", "99.9%").
func (o SLOObjective) describe() string {
	if o.Target > 0 {
		return fmt.Sprintf("%g%% of requests succeed", o.Target*100)
	}
	return fmt.Sprintf("p%g < %s", o.Quantile*100, time.Duration(o.Bound*float64(time.Second)))
}

// FastBurn returns the configured fast-burn threshold.
func (s *SLO) FastBurn() float64 {
	if s == nil {
		return 0
	}
	return s.fastBurn
}

// Windows returns the short and long burn windows.
func (s *SLO) Windows() (short, long time.Duration) {
	if s == nil {
		return 0, 0
	}
	return s.short, s.long
}

// StatusAt digests every objective at the reading time.
func (s *SLO) StatusAt(now time.Time) []SLOStatus {
	if s == nil {
		return nil
	}
	out := make([]SLOStatus, 0, len(s.objectives))
	for _, o := range s.objectives {
		burnShort := o.burnAt(s.short, now)
		burnLong := o.burnAt(s.long, now)
		out = append(out, SLOStatus{
			Name:            o.Name,
			Objective:       o.describe(),
			BudgetFraction:  o.budget,
			Requests:        o.lifeTotal.Load(),
			BadEvents:       o.lifeBad.Load(),
			BudgetRemaining: o.budgetRemaining(),
			BurnRates: map[string]float64{
				durKey(s.short): burnShort,
				durKey(s.long):  burnLong,
			},
			Degraded: burnShort >= s.fastBurn && burnLong >= s.fastBurn,
		})
	}
	return out
}

// Register exposes the SLO gauges on reg:
// rknn_slo_burn_rate{slo,window} for both windows and
// rknn_slo_error_budget_remaining_ratio{slo}, each computed at scrape time
// from the same state /v1/admin/slo reports.
func (s *SLO) Register(reg *Registry) {
	if s == nil {
		return
	}
	for _, o := range s.objectives {
		o := o
		for _, win := range []time.Duration{s.short, s.long} {
			win := win
			reg.GaugeFunc("rknn_slo_burn_rate",
				"Error-budget burn rate over the trailing window: observed bad fraction over allowed bad fraction (1 = sustainable spend).",
				func() float64 { return o.burnAt(win, time.Now()) },
				Label{Name: "slo", Value: o.Name}, Label{Name: "window", Value: durKey(win)})
		}
		reg.GaugeFunc("rknn_slo_error_budget_remaining_ratio",
			"Lifetime fraction of the SLO error budget not yet consumed (1 = untouched, negative = overspent).",
			func() float64 { return o.budgetRemaining() },
			Label{Name: "slo", Value: o.Name})
	}
}

// durKey renders a window duration the way dashboards spell it: "1m",
// "5m", "90s".
func durKey(d time.Duration) string {
	if d >= time.Minute && d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int64(d/time.Minute))
	}
	if d%time.Second == 0 {
		return fmt.Sprintf("%ds", int64(d/time.Second))
	}
	return d.String()
}
