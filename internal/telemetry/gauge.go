package telemetry

import (
	"math"
	"sync/atomic"
)

// Gauge is a float64 value that can go up and down, stored as atomic bits.
// All methods are lock-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas decrease the gauge) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
