package telemetry

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// counterStripe pads one atomic to a cache line so that concurrent writers
// on different stripes never share a line (false sharing would serialize
// exactly the hot path the striping exists to spread out).
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter, sharded across
// cache-line-padded stripes: Add picks a stripe with a cheap per-thread
// random draw, so concurrent increments from many goroutines land on
// different cache lines instead of contending on one. Value sums the
// stripes. Reads are not atomic with respect to concurrent Adds (Value may
// miss an in-flight increment), but every increment lands in exactly one
// stripe, so no update is ever lost — the guarantee the race tests pin.
type Counter struct {
	stripes []counterStripe
}

// maxStripes bounds the memory of one counter; past 64 cores the stripe
// collision probability is already low.
const maxStripes = 64

func newCounter() *Counter {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxStripes {
		n <<= 1
	}
	return &Counter{stripes: make([]counterStripe, n)}
}

// Add increments the counter. Negative deltas panic: counters are
// monotonic, and a silent decrement would break every rate() over the
// exposition.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("telemetry: counter decremented")
	}
	i := 0
	if len(c.stripes) > 1 {
		// rand/v2's global functions draw from per-thread runtime state —
		// no lock, a few nanoseconds — which is all the stripe pick needs.
		i = int(rand.Uint32()) & (len(c.stripes) - 1)
	}
	c.stripes[i].n.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}
