package telemetry

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one record of the slow-query log.
type SlowEntry struct {
	// Time is when the request began.
	Time time.Time
	// Route is the stats route of the endpoint that served it.
	Route string
	// Detail describes the request (method and path, or a query summary).
	Detail string
	// Duration is the handler latency.
	Duration time.Duration
	// Err is the handler error, empty on success.
	Err string
	// TraceID is the hex trace ID of the request's trace when tracing was
	// enabled (slow requests are always retained in the trace ring, so the
	// ID resolves against /v1/admin/traces/{id}); empty otherwise.
	TraceID string
	// RequestID is the X-Request-ID the request carried or was assigned.
	RequestID string
}

// SlowLog is a bounded ring buffer of the slowest recent requests: an
// Observe whose duration is at or above the threshold overwrites the
// oldest retained entry once the buffer is full. Memory is fixed at
// capacity entries forever, so it can sit on every request path of a
// long-lived daemon. Safe for concurrent use; Observe takes a mutex, which
// is fine because entries past the threshold are rare by construction.
type SlowLog struct {
	// threshold is atomic so it can be retuned at runtime (PUT
	// /v1/admin/slowlog) without a lock on the per-request read: chasing a
	// live incident means lowering it mid-flight without restarting the
	// daemon and losing the ring.
	threshold atomic.Int64 // nanoseconds
	mu        sync.Mutex
	ring      []SlowEntry
	next      int    // ring index the next entry lands on
	total     uint64 // entries ever recorded, including overwritten ones
}

// NewSlowLog returns a SlowLog retaining up to capacity entries at or
// above threshold. A zero threshold records everything (useful in tests
// and for short diagnostic sessions); capacity < 1 is clamped to 1.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowEntry, 0, capacity)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the active recording threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// SetThreshold retunes the recording threshold. Retained entries are kept:
// raising the bar mid-incident must not discard the evidence already
// collected, and entries below a raised bar age out naturally.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.threshold.Store(int64(d))
}

// Cap returns the maximum number of retained entries.
func (l *SlowLog) Cap() int { return cap(l.ring) }

// Observe records e when its duration reaches the threshold, reporting
// whether it was recorded.
func (l *SlowLog) Observe(e SlowEntry) bool {
	if e.Duration < l.Threshold() {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	return true
}

// Total returns how many entries were ever recorded, including ones the
// ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	// Entries are ordered oldest→newest starting at next when full, at 0
	// while filling; walk backwards from the most recent.
	for i := 0; i < len(l.ring); i++ {
		idx := l.next - 1 - i
		for idx < 0 {
			idx += len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}

// Reset drops all retained entries (the recorded total is kept).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring = slices.Delete(l.ring, 0, len(l.ring))
	l.next = 0
}
