package telemetry

import (
	"io"
	"strconv"
	"strings"
)

// This file is the hand-rolled Prometheus text exposition encoder
// (text/plain; version=0.0.4): # HELP and # TYPE comments per family, one
// sample line per series, and the cumulative _bucket/_sum/_count triplet
// for histograms. No dependency on any client library — the format is
// simple enough to emit (and test) directly.

// ContentType is the Content-Type of the exposition format this package
// writes.
const ContentType = "text/plain; version=0.0.4"

// WritePrometheus writes every registered family to w in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.Gather() {
		writeFamily(&b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f FamilySnapshot) {
	if f.Help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.Help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.Name)
	b.WriteByte(' ')
	b.WriteString(f.Kind.String())
	b.WriteByte('\n')
	for _, s := range f.Samples {
		if f.Kind == KindHistogram {
			writeHistogramSample(b, f.Name, s)
			continue
		}
		writeSampleLine(b, f.Name, s.Labels, nil, s.Value)
	}
}

// writeHistogramSample emits the cumulative bucket series, then _sum and
// _count, as the format requires.
func writeHistogramSample(b *strings.Builder, name string, s Sample) {
	h := s.Hist
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		writeSampleLine(b, name+"_bucket", s.Labels, &Label{Name: "le", Value: le}, float64(cum))
	}
	writeSampleLine(b, name+"_sum", s.Labels, nil, h.Sum)
	writeSampleLine(b, name+"_count", s.Labels, nil, float64(h.Count))
}

// writeSampleLine emits one `name{labels} value` line; extra is appended
// after the series labels (the histogram "le" label).
func writeSampleLine(b *strings.Builder, name string, labels []Label, extra *Label, value float64) {
	b.WriteString(name)
	wrote := false
	for _, l := range labels {
		if l.Value == "" {
			continue // an empty label value is equivalent to the label being absent
		}
		if !wrote {
			b.WriteByte('{')
			wrote = true
		} else {
			b.WriteByte(',')
		}
		writeLabel(b, l)
	}
	if extra != nil {
		if !wrote {
			b.WriteByte('{')
			wrote = true
		} else {
			b.WriteByte(',')
		}
		writeLabel(b, *extra)
	}
	if wrote {
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
}

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Name)
	b.WriteString(`="`)
	b.WriteString(escapeLabelValue(l.Value))
	b.WriteByte('"')
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation. FormatFloat already spells infinities as
// +Inf/-Inf, the exposition's spelling.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string       { return helpEscaper.Replace(s) }
func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// OpenMetricsContentType is the Content-Type of WriteOpenMetrics output,
// served when a scraper negotiates it via the Accept header.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics writes every registered family in the OpenMetrics 1.0
// text exposition. It is a sibling of WritePrometheus, not a flag on it, so
// the 0.0.4 output stays byte-identical. The differences that matter here:
// counter metadata names drop the _total suffix (samples keep it), the
// stream ends with "# EOF", and histogram bucket lines carry exemplars —
// the most recent trace that landed in each bucket — in the
// `# {trace_id="..."} value timestamp` syntax, which is how a latency
// heatmap cell resolves to a concrete span tree.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.Gather() {
		writeOpenMetricsFamily(&b, f)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeOpenMetricsFamily(b *strings.Builder, f FamilySnapshot) {
	// OpenMetrics names a counter family without the _total suffix its
	// sample lines carry.
	metaName := f.Name
	if f.Kind == KindCounter {
		metaName = strings.TrimSuffix(metaName, "_total")
	}
	if f.Help != "" {
		b.WriteString("# HELP ")
		b.WriteString(metaName)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.Help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(metaName)
	b.WriteByte(' ')
	b.WriteString(f.Kind.String())
	b.WriteByte('\n')
	for _, s := range f.Samples {
		if f.Kind == KindHistogram {
			writeOpenMetricsHistogram(b, f.Name, s)
			continue
		}
		writeSampleLine(b, f.Name, s.Labels, nil, s.Value)
	}
}

// writeOpenMetricsHistogram emits the cumulative bucket series with
// per-bucket exemplars where one was retained, then _sum and _count.
func writeOpenMetricsHistogram(b *strings.Builder, name string, s Sample) {
	h := s.Hist
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatValue(h.Bounds[i])
		}
		var ex *Exemplar
		if i < len(h.Exemplars) {
			ex = h.Exemplars[i]
		}
		writeBucketLine(b, name+"_bucket", s.Labels, le, float64(cum), ex)
	}
	writeSampleLine(b, name+"_sum", s.Labels, nil, h.Sum)
	writeSampleLine(b, name+"_count", s.Labels, nil, float64(h.Count))
}

// writeBucketLine is writeSampleLine for a histogram bucket, with the
// optional trailing exemplar.
func writeBucketLine(b *strings.Builder, name string, labels []Label, le string, value float64, ex *Exemplar) {
	b.WriteString(name)
	b.WriteByte('{')
	for _, l := range labels {
		if l.Value == "" {
			continue
		}
		writeLabel(b, l)
		b.WriteByte(',')
	}
	writeLabel(b, Label{Name: "le", Value: le})
	b.WriteByte('}')
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	if ex != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(escapeLabelValue(ex.TraceID))
		b.WriteString(`"} `)
		b.WriteString(formatValue(ex.Value))
		b.WriteByte(' ')
		// Exemplar timestamps are seconds since epoch with fraction.
		b.WriteString(strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
	}
	b.WriteByte('\n')
}
