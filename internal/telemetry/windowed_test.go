package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// winBase is an arbitrary fixed origin so the windowed tests are fully
// deterministic: every timestamp is winBase plus a synthetic offset, and no
// test reads the real clock.
var winBase = time.Unix(1_700_000_000, 0)

// refSnapshot replays obs (value, slice-epoch pairs) through a fresh
// cumulative histogram keeping only observations inside the window
// [nowEpoch-slices+1, nowEpoch] — the sequential reference the lazy ring
// must match when the ring has not wrapped.
func refSnapshot(bounds []float64, obs [][2]float64, slices, nowEpoch int64) *HistSnapshot {
	h := newHistogram(bounds)
	for _, o := range obs {
		e := int64(o[1])
		if e >= nowEpoch-slices+1 && e <= nowEpoch {
			h.Observe(o[0])
		}
	}
	return h.Snapshot()
}

func TestWindowedMatchesSequentialReference(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	const width = time.Second
	const ringLen = 10
	w := NewWindowed(newHistogram(bounds), width, ringLen)

	// A bursty-then-idle trace: a burst in slice 0, stragglers in 1 and 4,
	// silence through 5..8, one more in 9. All epochs fit in one ring
	// revolution, so the reference filter is exact.
	obs := [][2]float64{
		{0.5, 0}, {1.5, 0}, {3.0, 0}, {7.0, 0},
		{2.5, 1},
		{0.7, 4}, {9.0, 4},
		{1.2, 9},
	}
	for _, o := range obs {
		w.Observe(o[0], winBase.Add(time.Duration(o[1])*width))
	}

	now := winBase.Add(9*width + width/2) // mid-slice 9
	for _, span := range []int64{1, 2, 5, 6, 10} {
		window := time.Duration(span) * width
		got := w.SnapshotWindowAt(window, now)
		want := refSnapshot(bounds, obs, span, 9)
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("window %s: got count=%d sum=%g, want count=%d sum=%g",
				window, got.Count, got.Sum, want.Count, want.Sum)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("window %s bucket %d: got %d want %d", window, i, got.Counts[i], want.Counts[i])
			}
		}
		// Quantiles spanning idle (empty) slices must match the reference
		// computed from only the in-window observations.
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if g, x := got.Quantile(q), want.Quantile(q); g != x {
				t.Fatalf("window %s q%.2f: got %g want %g", window, q, g, x)
			}
		}
	}

	// The cumulative histogram saw everything regardless of windows.
	if n := w.Histogram().Count(); n != uint64(len(obs)) {
		t.Fatalf("cumulative count = %d, want %d", n, len(obs))
	}
}

func TestWindowedIdleExpiry(t *testing.T) {
	w := NewWindowed(newHistogram([]float64{1}), time.Second, 10)
	w.Observe(0.5, winBase)
	w.Observe(0.5, winBase.Add(time.Second))

	if got := w.SnapshotWindowAt(5*time.Second, winBase.Add(time.Second)).Count; got != 2 {
		t.Fatalf("fresh window count = %d, want 2", got)
	}
	// Idle for longer than the window: the stale slices still hold their
	// epochs (no background sweeper) but the read must exclude them.
	if got := w.SnapshotWindowAt(5*time.Second, winBase.Add(20*time.Second)).Count; got != 0 {
		t.Fatalf("idle window count = %d, want 0", got)
	}
	// The cumulative view is untouched by expiry.
	if got := w.Histogram().Count(); got != 2 {
		t.Fatalf("cumulative count = %d, want 2", got)
	}
}

func TestWindowedWrapDropsAncientObservation(t *testing.T) {
	w := NewWindowed(newHistogram([]float64{1}), time.Second, 10)
	// Claim slice index 0 for epoch 20, then try to bank an observation
	// from epoch 10 (same index, a full revolution earlier): it must not
	// pollute the newer slice, but still lands in the cumulative buckets.
	w.Observe(0.5, winBase.Add(20*time.Second))
	w.Observe(0.5, winBase.Add(10*time.Second))
	got := w.SnapshotWindowAt(time.Second, winBase.Add(20*time.Second+500*time.Millisecond))
	if got.Count != 1 {
		t.Fatalf("current-slice count = %d, want 1 (ancient observation must be dropped)", got.Count)
	}
	if n := w.Histogram().Count(); n != 2 {
		t.Fatalf("cumulative count = %d, want 2", n)
	}
}

func TestWindowedObserveClampsAndDrops(t *testing.T) {
	w := NewWindowed(newHistogram([]float64{1, 2}), time.Second, 4)
	w.Observe(math.NaN(), winBase)
	w.Observe(-5, winBase)
	snap := w.SnapshotWindowAt(time.Second, winBase)
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1 (NaN dropped, negative kept)", snap.Count)
	}
	if snap.Counts[0] != 1 || snap.Sum != 0 {
		t.Fatalf("negative observation must clamp to 0: counts=%v sum=%g", snap.Counts, snap.Sum)
	}
}

func TestWindowedStatsAt(t *testing.T) {
	w := NewWindowed(newHistogram(DefaultLatencyBuckets), time.Second, 10)
	for i := 0; i < 60; i++ {
		w.Observe(0.001, winBase.Add(time.Duration(i)*time.Second/10)) // 60 obs across 6s
	}
	st := w.StatsAt(6*time.Second, winBase.Add(6*time.Second-time.Millisecond))
	if st.Count != 60 {
		t.Fatalf("count = %d, want 60", st.Count)
	}
	if got, want := st.QPS, 10.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("qps = %g, want %g", got, want)
	}
	if math.Abs(st.Mean-0.001) > 1e-12 {
		t.Fatalf("mean = %g, want 0.001", st.Mean)
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Fatalf("quantiles not ordered: p50=%g p99=%g", st.P50, st.P99)
	}
	if zero := (*Windowed)(nil).StatsAt(time.Minute, winBase); zero.Count != 0 {
		t.Fatalf("nil Windowed StatsAt = %+v, want zero", zero)
	}
}

func TestWindowedConcurrentRotationExactlyOnce(t *testing.T) {
	const ringLen = 8
	w := NewWindowed(newHistogram([]float64{1}), time.Second, ringLen)
	// Pre-fill slice index 0 with old-epoch traffic, then have many
	// goroutines land simultaneously one full revolution later: the
	// double-checked rotate must wipe exactly once, so the new slice holds
	// exactly the new observations.
	for i := 0; i < 100; i++ {
		w.Observe(0.5, winBase)
	}
	const writers = 16
	const perWriter = 200
	at := winBase.Add(ringLen * time.Second)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(writers)
	for g := 0; g < writers; g++ {
		go func() {
			defer done.Done()
			start.Wait()
			for i := 0; i < perWriter; i++ {
				w.Observe(0.5, at)
			}
		}()
	}
	start.Done()
	done.Wait()
	got := w.SnapshotWindowAt(time.Second, at)
	if got.Count != writers*perWriter {
		t.Fatalf("rotated slice count = %d, want %d (old traffic must be wiped exactly once)",
			got.Count, writers*perWriter)
	}
	if n := w.Histogram().Count(); n != 100+writers*perWriter {
		t.Fatalf("cumulative count = %d, want %d", n, 100+writers*perWriter)
	}
}

func TestWindowedConcurrentAcrossSlices(t *testing.T) {
	// Writers spread observations over many epochs (with ring wrap) while
	// readers snapshot continuously: the race detector guards the memory
	// model, and the cumulative count pins that no observation is lost.
	w := NewWindowed(newHistogram([]float64{1, 2, 4}), 100*time.Millisecond, 8)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				w.SnapshotWindowAt(500*time.Millisecond, winBase.Add(time.Duration(200)*100*time.Millisecond))
				w.StatsAt(time.Second, winBase.Add(time.Duration(100)*100*time.Millisecond))
			}
		}
	}()
	var ww sync.WaitGroup
	ww.Add(writers)
	for g := 0; g < writers; g++ {
		g := g
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				e := time.Duration((g*perWriter+i)%200) * 100 * time.Millisecond
				w.Observe(float64(i%5), winBase.Add(e))
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if n := w.Histogram().Count(); n != writers*perWriter {
		t.Fatalf("cumulative count = %d, want %d", n, writers*perWriter)
	}
}

func TestWindowedCounterSumAndRate(t *testing.T) {
	c := NewWindowedCounter(time.Second, 10)
	c.Add(5, winBase)
	c.Add(3, winBase.Add(4*time.Second))
	c.Inc(winBase.Add(9 * time.Second))
	c.Add(-7, winBase.Add(9*time.Second)) // negative deltas are dropped

	now := winBase.Add(9*time.Second + 500*time.Millisecond)
	if got := c.SumWindowAt(10*time.Second, now); got != 9 {
		t.Fatalf("10s sum = %d, want 9", got)
	}
	if got := c.SumWindowAt(time.Second, now); got != 1 {
		t.Fatalf("1s sum = %d, want 1", got)
	}
	if got := c.SumWindowAt(6*time.Second, now); got != 4 {
		t.Fatalf("6s sum = %d, want 4", got)
	}
	if got, want := c.RateWindowAt(10*time.Second, now), 0.9; math.Abs(got-want) > 1e-9 {
		t.Fatalf("10s rate = %g, want %g", got, want)
	}
	// Idle expiry and wrap-drop mirror the histogram ring.
	if got := c.SumWindowAt(10*time.Second, winBase.Add(30*time.Second)); got != 0 {
		t.Fatalf("idle sum = %d, want 0", got)
	}
	c.Add(2, winBase.Add(30*time.Second))
	c.Add(2, winBase.Add(20*time.Second)) // same index, older epoch: dropped
	if got := c.SumWindowAt(time.Second, winBase.Add(30*time.Second)); got != 2 {
		t.Fatalf("post-wrap sum = %d, want 2", got)
	}
	if got := (*WindowedCounter)(nil).SumWindowAt(time.Minute, winBase); got != 0 {
		t.Fatalf("nil counter sum = %d, want 0", got)
	}
}

func TestWindowedCounterConcurrent(t *testing.T) {
	c := NewWindowedCounter(time.Second, 4)
	at := winBase.Add(100 * time.Second)
	const writers = 16
	const perWriter = 1000
	var wg sync.WaitGroup
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc(at)
			}
		}()
	}
	wg.Wait()
	if got := c.SumWindowAt(time.Second, at); got != writers*perWriter {
		t.Fatalf("concurrent sum = %d, want %d", got, writers*perWriter)
	}
}

func TestNewWindowedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil histogram", func() { NewWindowed(nil, time.Second, 4) })
	mustPanic("zero width", func() { NewWindowed(newHistogram(nil), 0, 4) })
	mustPanic("counter zero width", func() { NewWindowedCounter(0, 4) })
	// slices < 2 clamps rather than panics: one settled plus one current.
	if w := NewWindowed(newHistogram(nil), time.Second, 0); len(w.ring) != 2 {
		t.Fatalf("slices clamp: got %d, want 2", len(w.ring))
	}
}
