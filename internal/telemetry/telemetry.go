// Package telemetry is a zero-dependency metrics subsystem for the serving
// stack: lock-free sharded counters, float gauges (stored or computed at
// scrape time), fixed log-spaced-bucket histograms with quantile estimation,
// a hand-rolled Prometheus text-format encoder (prometheus.go), and a
// bounded ring-buffer slow-query log (slowlog.go).
//
// A Registry holds metric families keyed by name. Registration is
// get-or-create: registering the same (name, kind, label names, buckets)
// again returns the existing family, so independent layers (the engine
// facade, the HTTP server, the CLI) can share one Registry without
// coordinating construction order. Conflicting re-registration — same name,
// different shape — panics: it is a programming error that would corrupt
// the exposition.
//
// The hot path (Counter.Add, Gauge.Set, Histogram.Observe) takes no locks;
// only registration and scraping (Gather, WritePrometheus) synchronize.
package telemetry

import (
	"fmt"
	"slices"
	"sync"
)

// Kind is the metric type of a family.
type Kind uint8

// The metric kinds, matching the Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name=value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// series is one labeled member of a family. Exactly one of the metric
// fields is set, according to the family kind (gauge series hold either a
// stored Gauge or a scrape-time callback).
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family is one named metric with a fixed kind and label-name schema.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds; nil otherwise

	mu     sync.Mutex
	order  []string // series keys in first-registration order
	series map[string]*series
}

// Registry holds metric families in registration order.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns the named family, creating it on first registration and
// panicking when the requested shape conflicts with the existing one.
func (r *Registry) family(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !slices.Equal(f.labelNames, labelNames) || !slices.Equal(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: conflicting registration of metric %q", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: slices.Clone(labelNames),
		buckets:    slices.Clone(buckets),
		series:     make(map[string]*series),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// seriesKey joins label values into a map key. 0xff cannot appear in valid
// UTF-8 label values, so the join is unambiguous.
func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0xff)
		}
		b = append(b, v...)
	}
	return string(b)
}

// get returns the series for the given label values, creating it on first
// use. The family mutex protects only this lookup; the returned metric is
// then operated on lock-free.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: make([]Label, len(values))}
	for i, v := range values {
		s.labels[i] = Label{Name: f.labelNames[i], Value: v}
	}
	switch f.kind {
	case KindCounter:
		s.counter = newCounter()
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeFunc registers a gauge series whose value is computed by fn at every
// scrape — the natural shape for values the process already tracks
// elsewhere (live point counts, store generations, derived ratios).
// Re-registering the same name and labels replaces the callback (last
// registration wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	names := make([]string, len(labels))
	values := make([]string, len(labels))
	for i, l := range labels {
		names[i] = l.Name
		values[i] = l.Value
	}
	f := r.family(name, help, KindGauge, names, nil)
	s := f.get(values)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter series whose value is computed by fn at
// every scrape — for monotone totals the process already tracks elsewhere
// (compaction counts, store generations). fn must be monotone non-decreasing
// to honor counter semantics. Re-registering the same name and labels
// replaces the callback (last registration wins).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	names := make([]string, len(labels))
	values := make([]string, len(labels))
	for i, l := range labels {
		names[i] = l.Name
		values[i] = l.Value
	}
	f := r.family(name, help, KindCounter, names, nil)
	s := f.get(values)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a histogram family with the given
// bucket upper bounds (ascending; +Inf is implicit) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if !slices.IsSorted(buckets) || len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: metric %q needs ascending non-empty buckets", name))
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// Sample is one series captured at scrape time.
type Sample struct {
	Labels []Label
	// Value is the counter or gauge value; zero for histograms.
	Value float64
	// Hist is the captured distribution; nil for counters and gauges.
	Hist *HistSnapshot
}

// FamilySnapshot is one family captured at scrape time.
type FamilySnapshot struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Gather captures every registered family in registration order, with
// series in first-use order. It is the substrate of both the Prometheus
// exposition and ad-hoc introspection (shutdown summaries, tests).
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	fams := slices.Clone(r.order)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

func (f *family) snapshot() FamilySnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
	fs.Samples = make([]Sample, 0, len(f.order))
	for _, key := range f.order {
		s := f.series[key]
		smp := Sample{Labels: s.labels}
		switch f.kind {
		case KindCounter:
			if s.fn != nil {
				smp.Value = s.fn()
			} else {
				smp.Value = float64(s.counter.Value())
			}
		case KindGauge:
			if s.fn != nil {
				smp.Value = s.fn()
			} else {
				smp.Value = s.gauge.Value()
			}
		case KindHistogram:
			smp.Hist = s.hist.Snapshot()
		}
		fs.Samples = append(fs.Samples, smp)
	}
	return fs
}
