package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclideanKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{3, 4}, 5},
		{[]float64{1, 1, 1}, []float64{1, 1, 1}, 0},
		{[]float64{-1}, []float64{2}, 3},
	}
	for _, tc := range cases {
		if got := (Euclidean{}).Distance(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Euclidean(%v,%v) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestManhattanChebyshevKnownValues(t *testing.T) {
	a, b := []float64{1, -2, 3}, []float64{4, 2, 3}
	if got := (Manhattan{}).Distance(a, b); got != 7 {
		t.Errorf("Manhattan = %g, want 7", got)
	}
	if got := (Chebyshev{}).Distance(a, b); got != 4 {
		t.Errorf("Chebyshev = %g, want 4", got)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := randVec(rng, 6)
		b := randVec(rng, 6)
		m1, err := NewMinkowski(1)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewMinkowski(2)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m1.Distance(a, b), (Manhattan{}).Distance(a, b); math.Abs(got-want) > 1e-9 {
			t.Errorf("Minkowski(1) = %g, Manhattan = %g", got, want)
		}
		if got, want := m2.Distance(a, b), (Euclidean{}).Distance(a, b); math.Abs(got-want) > 1e-9 {
			t.Errorf("Minkowski(2) = %g, Euclidean = %g", got, want)
		}
	}
}

func TestNewMinkowskiRejectsInvalidOrder(t *testing.T) {
	for _, p := range []float64{0, 0.5, -1, math.NaN()} {
		if _, err := NewMinkowski(p); err == nil {
			t.Errorf("NewMinkowski(%v) succeeded, want error", p)
		}
	}
}

func TestAngularBounds(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	c := []float64{-1, 0}
	ang := Angular{}
	if got := ang.Distance(a, b); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("angle(e1,e2) = %g, want π/2", got)
	}
	if got := ang.Distance(a, c); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("angle(e1,-e1) = %g, want π", got)
	}
	if got := ang.Distance(a, a); got != 0 {
		t.Errorf("angle(e1,e1) = %g, want 0", got)
	}
	if got := ang.Distance(a, []float64{0, 0}); got != 0 {
		t.Errorf("angle with zero vector = %g, want 0 by convention", got)
	}
}

// TestMetricAxioms property-checks symmetry, identity and the triangle
// inequality for every metric that claims Metricity.
func TestMetricAxioms(t *testing.T) {
	mk, err := NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, mk, Angular{}}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if !m.Metricity() {
				t.Fatalf("%s should claim metricity", m.Name())
			}
			property := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				a, b, c := randVec(rng, 5), randVec(rng, 5), randVec(rng, 5)
				dab, dba := m.Distance(a, b), m.Distance(b, a)
				if math.Abs(dab-dba) > 1e-9 {
					return false
				}
				if m.Distance(a, a) > 1e-9 {
					return false
				}
				// Triangle inequality with a float tolerance.
				return m.Distance(a, c) <= dab+m.Distance(b, c)+1e-9
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSquaredEuclideanViolatesTriangle(t *testing.T) {
	m := SquaredEuclidean{}
	if m.Metricity() {
		t.Fatal("squared Euclidean must not claim metricity")
	}
	// Collinear points 0, 1, 2: d(0,2)=4 > d(0,1)+d(1,2)=2.
	a, b, c := []float64{0}, []float64{1}, []float64{2}
	if m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c) {
		t.Error("expected triangle violation for squared Euclidean")
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("CheckDims accepted mismatched dims")
	}
	if err := CheckDims([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Errorf("CheckDims rejected equal dims: %v", err)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	(Euclidean{}).Distance([]float64{1}, []float64{1, 2})
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
