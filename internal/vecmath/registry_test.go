package vecmath

import "testing"

// TestMetricRegistryRoundTrip pins the stable IDs and checks that every
// built-in metric survives Identify → FromID → Identify unchanged.
func TestMetricRegistryRoundTrip(t *testing.T) {
	cases := []struct {
		m     Metric
		id    MetricID
		param float64
	}{
		{Euclidean{}, MetricIDEuclidean, 0},
		{Manhattan{}, MetricIDManhattan, 0},
		{Chebyshev{}, MetricIDChebyshev, 0},
		{Minkowski{P: 3.5}, MetricIDMinkowski, 3.5},
		{Angular{}, MetricIDAngular, 0},
		{SquaredEuclidean{}, MetricIDSqEuclid, 0},
	}
	for _, tc := range cases {
		id, param, err := IdentifyMetric(tc.m)
		if err != nil {
			t.Fatalf("IdentifyMetric(%s): %v", tc.m.Name(), err)
		}
		if id != tc.id || param != tc.param {
			t.Errorf("IdentifyMetric(%s) = (%d, %g), want (%d, %g)",
				tc.m.Name(), id, param, tc.id, tc.param)
		}
		back, err := MetricFromID(id, param)
		if err != nil {
			t.Fatalf("MetricFromID(%d, %g): %v", id, param, err)
		}
		if back.Name() != tc.m.Name() {
			t.Errorf("round trip of %s came back as %s", tc.m.Name(), back.Name())
		}
		// The reconstructed metric must compute identical distances.
		a, b := []float64{1, 2, 3}, []float64{4, 0, 5}
		if got, want := back.Distance(a, b), tc.m.Distance(a, b); got != want {
			t.Errorf("%s round trip distance %g, want %g", tc.m.Name(), got, want)
		}
	}
}

// TestMetricRegistryStableIDs guards against renumbering: these values are
// written into persisted snapshots and must never change.
func TestMetricRegistryStableIDs(t *testing.T) {
	want := map[MetricID]string{
		1: "euclidean",
		2: "manhattan",
		3: "chebyshev",
		4: "minkowski(2)",
		5: "angular",
		6: "sq-euclidean",
	}
	for id, name := range want {
		m, err := MetricFromID(id, 2)
		if err != nil {
			t.Fatalf("MetricFromID(%d): %v", id, err)
		}
		if m.Name() != name {
			t.Errorf("MetricFromID(%d).Name() = %q, want %q", id, m.Name(), name)
		}
	}
}

func TestMetricRegistryErrors(t *testing.T) {
	if _, _, err := IdentifyMetric(nil); err == nil {
		t.Error("IdentifyMetric(nil) succeeded")
	}
	type custom struct{ Euclidean }
	if _, _, err := IdentifyMetric(custom{}); err == nil {
		t.Error("IdentifyMetric accepted an unregistered custom metric")
	}
	if _, err := MetricFromID(MetricIDInvalid, 0); err == nil {
		t.Error("MetricFromID(0) succeeded")
	}
	if _, err := MetricFromID(200, 0); err == nil {
		t.Error("MetricFromID(200) succeeded")
	}
	if _, err := MetricFromID(MetricIDMinkowski, 0.5); err == nil {
		t.Error("MetricFromID(minkowski, 0.5) accepted p < 1")
	}
}

func TestParseMetric(t *testing.T) {
	for _, name := range []string{"euclidean", "manhattan", "chebyshev", "angular", "sq-euclidean", "minkowski(2.5)"} {
		m, err := ParseMetric(name)
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ParseMetric(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := ParseMetric("L2"); err != nil || m.Name() != "euclidean" {
		t.Errorf("ParseMetric(L2) = %v, %v", m, err)
	}
	for _, bad := range []string{"", "cosine", "minkowski(zero)", "minkowski(0.2)"} {
		if _, err := ParseMetric(bad); err == nil {
			t.Errorf("ParseMetric(%q) succeeded", bad)
		}
	}
}
