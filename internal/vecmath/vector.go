package vecmath

import (
	"fmt"
	"math"
)

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Add returns a+b element-wise. It panics on a length mismatch.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a−b element-wise. It panics on a length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s·v.
func Scale(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Dot returns the inner product of a and b. It panics on a length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Mean returns the element-wise mean of the rows. It returns nil for an
// empty input and panics if rows disagree on length.
func Mean(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		if len(r) != len(out) {
			panic("vecmath: dimension mismatch")
		}
		for i, x := range r {
			out[i] += x
		}
	}
	inv := 1 / float64(len(rows))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Validate returns an error if v is empty or contains NaN or ±Inf. Library
// entry points use it to reject malformed inputs up front instead of letting
// NaNs poison distance comparisons deep inside an index.
func Validate(v []float64) error {
	if len(v) == 0 {
		return fmt.Errorf("vecmath: empty vector")
	}
	for i, x := range v {
		if math.IsNaN(x) {
			return fmt.Errorf("vecmath: NaN at coordinate %d", i)
		}
		if math.IsInf(x, 0) {
			return fmt.Errorf("vecmath: Inf at coordinate %d", i)
		}
	}
	return nil
}

// PointValidator is implemented by metrics whose domain excludes some
// otherwise-finite vectors. Angular implements it to reject the zero vector:
// its d(0,x) = 0 convention breaks the triangle inequality (d(a,b) can
// exceed d(a,0) + d(0,b) = 0), which would silently corrupt every
// metric-tree pruning bound while Metricity() still claims true.
type PointValidator interface {
	// ValidatePoint reports why v is outside the metric's domain, or nil.
	// Callers have already passed v through Validate.
	ValidatePoint(v []float64) error
}

// ValidateFor is Validate plus the metric-specific domain check when m
// implements PointValidator. Every entry point that indexes or queries under
// a metric should use it in place of bare Validate.
func ValidateFor(m Metric, v []float64) error {
	if err := Validate(v); err != nil {
		return err
	}
	if pv, ok := m.(PointValidator); ok {
		return pv.ValidatePoint(v)
	}
	return nil
}

// ValidateAllFor is ValidateAll plus the metric-specific domain check on
// every row.
func ValidateAllFor(m Metric, rows [][]float64) error {
	if err := ValidateAll(rows); err != nil {
		return err
	}
	if pv, ok := m.(PointValidator); ok {
		for i, r := range rows {
			if err := pv.ValidatePoint(r); err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
		}
	}
	return nil
}

// ValidateAll applies Validate to every row and additionally checks that all
// rows share one dimensionality.
func ValidateAll(rows [][]float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("vecmath: empty dataset")
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return fmt.Errorf("%w: row %d has dim %d, want %d", ErrDimensionMismatch, i, len(r), dim)
		}
		if err := Validate(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}
