package vecmath

import "math"

// BoxDistancer is implemented by metrics that can lower-bound the distance
// from a point to an axis-aligned box. Spatial indexes that prune via
// bounding rectangles (k-d tree, R*-tree) require their metric to implement
// it; purely metric trees (cover tree, VP-tree, M-tree) do not.
type BoxDistancer interface {
	// BoxDistance returns min over x ∈ [lo,hi] of Distance(q, x).
	BoxDistance(q, lo, hi []float64) float64
}

// boxExcess returns the per-coordinate distance from q[i] to the interval
// [lo[i], hi[i]] (zero inside the interval).
func boxExcess(q, lo, hi []float64, i int) float64 {
	switch {
	case q[i] < lo[i]:
		return lo[i] - q[i]
	case q[i] > hi[i]:
		return q[i] - hi[i]
	default:
		return 0
	}
}

// BoxDistance implements BoxDistancer for the Euclidean metric (the MINDIST
// of the R-tree literature).
func (Euclidean) BoxDistance(q, lo, hi []float64) float64 {
	var s float64
	for i := range q {
		e := boxExcess(q, lo, hi, i)
		s += e * e
	}
	return math.Sqrt(s)
}

// BoxDistance implements BoxDistancer for squared Euclidean.
func (SquaredEuclidean) BoxDistance(q, lo, hi []float64) float64 {
	var s float64
	for i := range q {
		e := boxExcess(q, lo, hi, i)
		s += e * e
	}
	return s
}

// BoxDistance implements BoxDistancer for the L1 metric.
func (Manhattan) BoxDistance(q, lo, hi []float64) float64 {
	var s float64
	for i := range q {
		s += boxExcess(q, lo, hi, i)
	}
	return s
}

// BoxDistance implements BoxDistancer for the L∞ metric.
func (Chebyshev) BoxDistance(q, lo, hi []float64) float64 {
	var s float64
	for i := range q {
		if e := boxExcess(q, lo, hi, i); e > s {
			s = e
		}
	}
	return s
}

// BoxDistance implements BoxDistancer for general Lp.
func (m Minkowski) BoxDistance(q, lo, hi []float64) float64 {
	var s float64
	for i := range q {
		if e := boxExcess(q, lo, hi, i); e > 0 {
			s += math.Pow(e, m.P)
		}
	}
	return math.Pow(s, 1/m.P)
}
