package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Scalar references: the pre-kernel loops, verbatim. The unrolled kernels
// must reproduce them bit for bit — not approximately — because distance
// bits decide ties throughout the conformance suite.

func refSquared(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func refL1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func refLinf(a, b []float64) float64 {
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// TestKernelsBitIdenticalToScalar pins every unrolled kernel to its scalar
// reference across vector lengths 0..67, covering each unroll tail residue
// several times over.
func TestKernelsBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for dim := 0; dim <= 67; dim++ {
		for trial := 0; trial < 25; trial++ {
			a, b := randVec(rng, dim), randVec(rng, dim)
			if got, want := SquaredDistance(a, b), refSquared(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: SquaredDistance = %v, scalar reference = %v", dim, got, want)
			}
			if got, want := L1Distance(a, b), refL1(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: L1Distance = %v, scalar reference = %v", dim, got, want)
			}
			if got, want := LinfDistance(a, b), refLinf(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dim %d: LinfDistance = %v, scalar reference = %v", dim, got, want)
			}
		}
	}
}

// TestKernelForMatchesMetric pins the dispatched one-vs-one and one-vs-many
// kernels to Metric.Distance bit for bit, and checks that metrics without a
// kernel dispatch to nil.
func TestKernelForMatchesMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}}
	for _, m := range metrics {
		kern := KernelFor(m)
		batch := BatchKernelFor(m)
		if kern == nil || batch == nil {
			t.Fatalf("%s: expected kernels, got nil", m.Name())
		}
		for dim := 1; dim <= 19; dim++ {
			q := randVec(rng, dim)
			rows := make([][]float64, 9)
			for i := range rows {
				rows[i] = randVec(rng, dim)
			}
			out := make([]float64, len(rows))
			batch(q, rows, out)
			for i, r := range rows {
				want := m.Distance(q, r)
				if math.Float64bits(kern(q, r)) != math.Float64bits(want) {
					t.Fatalf("%s dim %d: kernel disagrees with Distance", m.Name(), dim)
				}
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("%s dim %d: batch kernel disagrees with Distance", m.Name(), dim)
				}
			}
		}
	}
	mk, _ := NewMinkowski(3)
	for _, m := range []Metric{mk, Angular{}} {
		if KernelFor(m) != nil || BatchKernelFor(m) != nil {
			t.Fatalf("%s: unexpected kernel", m.Name())
		}
	}
}

// TestBlockLowerBounds checks the float32 block tier across lengths 0..67:
// the approximate distances are close to exact, and the slack-adjusted
// LowerBound never exceeds the exact float64 distance — the soundness
// property the byte-identity of filtered scans rests on.
func TestBlockLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for dim := 1; dim <= 67; dim++ {
		rows := make([][]float64, 8)
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		blk := NewBlock(rows)
		if blk.Len() != len(rows) || blk.Dim() != dim {
			t.Fatalf("dim %d: block shape %d×%d", dim, blk.Len(), blk.Dim())
		}
		q := randVec(rng, dim)
		q32, qslack := Quantize32(q)
		for i, r := range rows {
			checks := []struct {
				name   string
				approx float64
				exact  float64
			}{
				{"l2", math.Sqrt(blk.SquaredL2(i, q32)), math.Sqrt(SquaredDistance(q, r))},
				{"l1", blk.L1(i, q32), L1Distance(q, r)},
				{"linf", blk.Linf(i, q32), LinfDistance(q, r)},
			}
			for _, c := range checks {
				lb := blk.LowerBound(i, c.approx, qslack)
				if lb > c.exact {
					t.Fatalf("dim %d row %d %s: lower bound %v exceeds exact %v", dim, i, c.name, lb, c.exact)
				}
				if c.exact > 1e-6 && lb < c.exact*0.99-1e-3 {
					t.Fatalf("dim %d row %d %s: lower bound %v uselessly loose vs exact %v", dim, i, c.name, lb, c.exact)
				}
			}
		}
	}
}

// TestBlockAppendClone checks that Append grows the block and that clones
// are independent.
func TestBlockAppendClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blk := NewEmptyBlock(4)
	rows := [][]float64{randVec(rng, 4), randVec(rng, 4)}
	for _, r := range rows {
		blk.Append(r)
	}
	cl := blk.Clone()
	cl.Append(randVec(rng, 4))
	if blk.Len() != 2 || cl.Len() != 3 {
		t.Fatalf("Len = %d/%d, want 2/3", blk.Len(), cl.Len())
	}
	q32, qs := Quantize32(rows[0])
	if lb := blk.LowerBound(0, math.Sqrt(blk.SquaredL2(0, q32)), qs); lb > 0 {
		t.Fatalf("self-distance lower bound %v > 0", lb)
	}
}

// ulpDiff returns the distance between a and b in units in the last place;
// equal values give 0 and adjacent floats give 1.
func ulpDiff(a, b float64) uint64 {
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map the sign-magnitude float ordering onto a monotone integer line.
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	if ia > ib {
		return uint64(ia - ib)
	}
	return uint64(ib - ia)
}

// minkowskiGeneric is the pre-fast-path implementation: one math.Pow per
// coordinate plus the final root.
func minkowskiGeneric(a, b []float64, p float64) float64 {
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(s, 1/p)
}

// TestMinkowskiIntegerFastPath quick-checks the repeated-multiplication
// fast path against the generic math.Pow path: within 1 ULP for every
// integer order the fast path serves, and exactly the generic value for
// fractional orders (which bypass it).
func TestMinkowskiIntegerFastPath(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(99))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(1 + rng.Intn(maxFastIntP))
		dim := 1 + rng.Intn(12)
		a, b := randVec(rng, dim), randVec(rng, dim)
		m := Minkowski{P: p}
		got, want := m.Distance(a, b), minkowskiGeneric(a, b, p)
		if ulpDiff(got, want) > 1 {
			t.Logf("p=%v dim=%d: fast %v generic %v (%d ulp)", p, dim, got, want, ulpDiff(got, want))
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
	// Fractional and oversized orders stay on the generic path, bit for bit.
	rng := rand.New(rand.NewSource(5))
	for _, p := range []float64{1.5, 2.7, math.Pi, maxFastIntP + 1} {
		a, b := randVec(rng, 6), randVec(rng, 6)
		if got, want := (Minkowski{P: p}).Distance(a, b), minkowskiGeneric(a, b, p); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("p=%v: Distance = %v, generic = %v", p, got, want)
		}
	}
}

// BenchmarkMinkowskiIntP documents the fast-path win over the math.Pow
// loop it replaced.
func BenchmarkMinkowskiIntP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randVec(rng, 32), randVec(rng, 32)
	m := Minkowski{P: 3}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Distance(x, y)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			minkowskiGeneric(x, y, 3)
		}
	})
}
