package vecmath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// boxMetrics are the metrics that can lower-bound box distances.
func boxMetrics(t *testing.T) []Metric {
	t.Helper()
	mk, err := NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	return []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, mk}
}

func TestBoxDistanceInsideIsZero(t *testing.T) {
	lo := []float64{0, 0, 0}
	hi := []float64{1, 1, 1}
	q := []float64{0.5, 0.2, 0.9}
	for _, m := range boxMetrics(t) {
		boxer := m.(BoxDistancer)
		if got := boxer.BoxDistance(q, lo, hi); got != 0 {
			t.Errorf("%s: inside point distance %g, want 0", m.Name(), got)
		}
		// Boundary points are inside the closed box.
		if got := boxer.BoxDistance(lo, lo, hi); got != 0 {
			t.Errorf("%s: corner distance %g, want 0", m.Name(), got)
		}
	}
}

func TestBoxDistanceKnownValues(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{1, 1}
	q := []float64{4, 5} // excess (3, 4) from the nearest corner (1,1)
	if got := (Euclidean{}).BoxDistance(q, lo, hi); got != 5 {
		t.Errorf("Euclidean box distance = %g, want 5", got)
	}
	if got := (SquaredEuclidean{}).BoxDistance(q, lo, hi); got != 25 {
		t.Errorf("squared box distance = %g, want 25", got)
	}
	if got := (Manhattan{}).BoxDistance(q, lo, hi); got != 7 {
		t.Errorf("L1 box distance = %g, want 7", got)
	}
	if got := (Chebyshev{}).BoxDistance(q, lo, hi); got != 4 {
		t.Errorf("L∞ box distance = %g, want 4", got)
	}
}

// TestBoxDistanceIsLowerBound is the property every spatial index relies on:
// BoxDistance(q, lo, hi) <= Distance(q, x) for every x in the box.
func TestBoxDistanceIsLowerBound(t *testing.T) {
	for _, m := range boxMetrics(t) {
		m := m
		boxer := m.(BoxDistancer)
		property := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			dim := rng.Intn(6) + 1
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			q := make([]float64, dim)
			x := make([]float64, dim)
			for j := 0; j < dim; j++ {
				a, b := rng.NormFloat64(), rng.NormFloat64()
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
				q[j] = rng.NormFloat64() * 3
				x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			return boxer.BoxDistance(q, lo, hi) <= m.Distance(q, x)+1e-9
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// TestBoxDistanceIsTight checks attainment: the bound equals the distance to
// the closest box point (the per-coordinate clamp of q).
func TestBoxDistanceIsTight(t *testing.T) {
	for _, m := range boxMetrics(t) {
		m := m
		boxer := m.(BoxDistancer)
		property := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			dim := rng.Intn(5) + 1
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			q := make([]float64, dim)
			clamp := make([]float64, dim)
			for j := 0; j < dim; j++ {
				a, b := rng.NormFloat64(), rng.NormFloat64()
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
				q[j] = rng.NormFloat64() * 3
				switch {
				case q[j] < lo[j]:
					clamp[j] = lo[j]
				case q[j] > hi[j]:
					clamp[j] = hi[j]
				default:
					clamp[j] = q[j]
				}
			}
			diff := boxer.BoxDistance(q, lo, hi) - m.Distance(q, clamp)
			return diff < 1e-9 && diff > -1e-9
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}
