package vecmath

import (
	"fmt"
	"strconv"
	"strings"
)

// MetricID is the stable on-disk identifier of a built-in metric. IDs are
// append-only: once assigned they must never be renumbered or reused, since
// persisted snapshots reference them (see internal/persist). A metric is
// fully described by its ID plus one float64 parameter (only Minkowski uses
// the parameter; every other metric stores 0).
type MetricID uint8

// Registered metric identifiers. MetricIDInvalid (0) is deliberately not a
// valid metric so that zeroed headers cannot decode to anything.
const (
	MetricIDInvalid   MetricID = 0
	MetricIDEuclidean MetricID = 1
	MetricIDManhattan MetricID = 2
	MetricIDChebyshev MetricID = 3
	MetricIDMinkowski MetricID = 4
	MetricIDAngular   MetricID = 5
	MetricIDSqEuclid  MetricID = 6
)

// IdentifyMetric maps a metric value to its stable (ID, parameter) pair.
// Custom metrics outside the built-in registry are not serializable and
// return an error; callers that need to persist an index must restrict
// themselves to registered metrics.
func IdentifyMetric(m Metric) (MetricID, float64, error) {
	switch mm := m.(type) {
	case Euclidean:
		return MetricIDEuclidean, 0, nil
	case Manhattan:
		return MetricIDManhattan, 0, nil
	case Chebyshev:
		return MetricIDChebyshev, 0, nil
	case Minkowski:
		return MetricIDMinkowski, mm.P, nil
	case Angular:
		return MetricIDAngular, 0, nil
	case SquaredEuclidean:
		return MetricIDSqEuclid, 0, nil
	case nil:
		return MetricIDInvalid, 0, fmt.Errorf("vecmath: nil metric")
	default:
		return MetricIDInvalid, 0, fmt.Errorf("vecmath: metric %q is not in the registry and cannot be serialized", m.Name())
	}
}

// MetricFromID is the inverse of IdentifyMetric: it reconstructs the metric
// value named by a stable (ID, parameter) pair read back from disk.
func MetricFromID(id MetricID, param float64) (Metric, error) {
	switch id {
	case MetricIDEuclidean:
		return Euclidean{}, nil
	case MetricIDManhattan:
		return Manhattan{}, nil
	case MetricIDChebyshev:
		return Chebyshev{}, nil
	case MetricIDMinkowski:
		return NewMinkowski(param)
	case MetricIDAngular:
		return Angular{}, nil
	case MetricIDSqEuclid:
		return SquaredEuclidean{}, nil
	default:
		return nil, fmt.Errorf("vecmath: unknown metric id %d", id)
	}
}

// ParseMetric resolves a metric by its registered name, as produced by
// Metric.Name: "euclidean", "manhattan", "chebyshev", "angular",
// "sq-euclidean", or "minkowski(p)" with a numeric order p.
func ParseMetric(name string) (Metric, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch s {
	case "euclidean", "l2":
		return Euclidean{}, nil
	case "manhattan", "l1":
		return Manhattan{}, nil
	case "chebyshev", "linf":
		return Chebyshev{}, nil
	case "angular":
		return Angular{}, nil
	case "sq-euclidean":
		return SquaredEuclidean{}, nil
	}
	if strings.HasPrefix(s, "minkowski(") && strings.HasSuffix(s, ")") {
		p, err := strconv.ParseFloat(s[len("minkowski("):len(s)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("vecmath: bad minkowski order in %q: %v", name, err)
		}
		return NewMinkowski(p)
	}
	return nil, fmt.Errorf("vecmath: unknown metric %q", name)
}
