package vecmath

import "math"

// Block stores vectors as one contiguous row-major float32 slab: half the
// memory of the float64 rows and cache-line-friendly for batch row scans.
// The float32 representation is lossy, so a Block is a screening tier, not a
// source of truth: alongside each row it keeps a per-row slack radius that
// turns an approximate float32 distance into a sound lower bound on the
// exact float64 distance (see LowerBound). Exact results always come from
// re-verifying admitted rows against the float64 originals.
type Block struct {
	data  []float32 // rows*dim, row-major
	slack []float64 // per-row conversion-error radius, see below
	dim   int
	rows  int
}

// blockSafety inflates every float32-arithmetic error term; it is orders of
// magnitude above the true bounds (d·2⁻²³ relative per accumulation step),
// so the lower bounds stay sound without per-architecture reasoning.
const blockSafety = 1e-5

// NewBlock packs rows into a contiguous float32 block. Rows must be
// non-empty and share one dimensionality (the caller has validated them).
func NewBlock(rows [][]float64) *Block {
	if len(rows) == 0 {
		return &Block{}
	}
	b := &Block{
		data:  make([]float32, 0, len(rows)*len(rows[0])),
		slack: make([]float64, 0, len(rows)),
		dim:   len(rows[0]),
		rows:  len(rows),
	}
	for _, r := range rows {
		b.appendRow(r)
	}
	return b
}

// NewEmptyBlock returns a Block of dimensionality dim with no rows, ready
// for Append.
func NewEmptyBlock(dim int) *Block {
	return &Block{dim: dim}
}

func (b *Block) appendRow(r []float64) {
	var e float64
	for _, x := range r {
		x32 := float32(x)
		b.data = append(b.data, x32)
		e += math.Abs(x - float64(x32))
	}
	// The L1 norm of the conversion error dominates its L2 and L∞ norms,
	// so one radius serves every metric the block screens for.
	b.slack = append(b.slack, e*(1+blockSafety)+1e-300)
}

// Append adds one row to the block. It panics on a dimension mismatch.
func (b *Block) Append(r []float64) {
	if len(r) != b.dim {
		panic("vecmath: dimension mismatch")
	}
	b.appendRow(r)
	b.rows++
}

// Len returns the number of rows.
func (b *Block) Len() int { return b.rows }

// Dim returns the dimensionality.
func (b *Block) Dim() int { return b.dim }

// Clone returns an independent copy (Append on the clone is invisible to
// the original).
func (b *Block) Clone() *Block {
	return &Block{
		data:  append([]float32(nil), b.data...),
		slack: append([]float64(nil), b.slack...),
		dim:   b.dim,
		rows:  b.rows,
	}
}

// Quantize32 converts a query to float32 and returns its L1 conversion
// error (same slack construction as the stored rows), for use with
// LowerBound.
func Quantize32(q []float64) (q32 []float32, slack float64) {
	q32 = make([]float32, len(q))
	var e float64
	for i, x := range q {
		q32[i] = float32(x)
		e += math.Abs(x - float64(q32[i]))
	}
	return q32, e*(1+blockSafety) + 1e-300
}

// Row returns row i of the block (shared storage; callers must not mutate).
func (b *Block) Row(i int) []float32 { return b.data[i*b.dim : (i+1)*b.dim] }

// SquaredL2 returns the float32 squared L2 distance between q32 and row i,
// 4-way unrolled. Unlike the float64 kernels there is no bit-identity
// contract here — the result only feeds LowerBound — so the unroll uses
// independent accumulators.
func (b *Block) SquaredL2(i int, q32 []float32) float64 {
	r := b.data[i*b.dim : (i+1)*b.dim]
	q32 = q32[:len(r)]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= len(r); j += 4 {
		d0 := q32[j] - r[j]
		d1 := q32[j+1] - r[j+1]
		d2 := q32[j+2] - r[j+2]
		d3 := q32[j+3] - r[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := s0 + s1 + s2 + s3
	for ; j < len(r); j++ {
		d := q32[j] - r[j]
		s += d * d
	}
	return float64(s)
}

// L1 returns the float32 L1 distance between q32 and row i.
func (b *Block) L1(i int, q32 []float32) float64 {
	r := b.data[i*b.dim : (i+1)*b.dim]
	q32 = q32[:len(r)]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= len(r); j += 4 {
		s0 += abs32(q32[j] - r[j])
		s1 += abs32(q32[j+1] - r[j+1])
		s2 += abs32(q32[j+2] - r[j+2])
		s3 += abs32(q32[j+3] - r[j+3])
	}
	s := s0 + s1 + s2 + s3
	for ; j < len(r); j++ {
		s += abs32(q32[j] - r[j])
	}
	return float64(s)
}

// Linf returns the float32 L∞ distance between q32 and row i.
func (b *Block) Linf(i int, q32 []float32) float64 {
	r := b.data[i*b.dim : (i+1)*b.dim]
	q32 = q32[:len(r)]
	var s float32
	j := 0
	for ; j+4 <= len(r); j += 4 {
		if d := abs32(q32[j] - r[j]); d > s {
			s = d
		}
		if d := abs32(q32[j+1] - r[j+1]); d > s {
			s = d
		}
		if d := abs32(q32[j+2] - r[j+2]); d > s {
			s = d
		}
		if d := abs32(q32[j+3] - r[j+3]); d > s {
			s = d
		}
	}
	for ; j < len(r); j++ {
		if d := abs32(q32[j] - r[j]); d > s {
			s = d
		}
	}
	return float64(s)
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// LowerBound turns an approximate distance approx = d(q32, row_i) computed
// in float32 into a sound lower bound on the exact float64 distance
// d(q, row_i): by the triangle inequality the exact distance is at least
// approx minus the query's and the row's conversion radii, further relaxed
// by blockSafety to absorb float32 accumulation error. approx is the rooted
// distance for every metric (take the square root of SquaredL2 first).
func (b *Block) LowerBound(i int, approx, qslack float64) float64 {
	return approx*(1-float64(b.dim)*blockSafety) - qslack - b.slack[i]
}
