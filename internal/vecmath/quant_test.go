package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestCodebookLowerBoundsSound checks the core screening invariant: for any
// trained codebook, any encoded row (including rows outside the trained
// range, as inserted after a compaction fold) and any query, the LUT lower
// bound never exceeds the exact distance, in every supported domain.
func TestCodebookLowerBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(12)
		rows := make([][]float64, 3+rng.Intn(40))
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		if trial%5 == 0 {
			// Constant dimension: degenerate scale-0 cells.
			for _, r := range rows {
				r[0] = 1.25
			}
		}
		cb := TrainCodebook(rows)
		if cb.Dim() != dim {
			t.Fatalf("codebook dim %d, want %d", cb.Dim(), dim)
		}
		// Encode the trained rows plus out-of-range newcomers.
		probe := append([][]float64(nil), rows...)
		for i := 0; i < 5; i++ {
			probe = append(probe, Scale(randVec(rng, dim), 10))
		}
		codes := make([]uint8, dim)
		q := randVec(rng, dim)
		if trial%5 == 0 {
			// Query far beyond the constant dimension's single point: the
			// degenerate cell must bound it by zero, not by q[0]−min.
			q[0] = 5
		}
		// A probe equal to the query has exact distance 0, so any positive
		// lower bound on it is an unsound screen.
		probe = append(probe, Clone(q))
		sqTab := make([]float64, dim*256)
		absTab := make([]float64, dim*256)
		cb.BuildLUT(q, true, sqTab)
		cb.BuildLUT(q, false, absTab)
		inf := math.Inf(1)
		for _, r := range probe {
			cb.Encode(r, codes)
			if lb := LUTLowerBoundSum(sqTab, codes, inf); lb > SquaredDistance(q, r) {
				t.Fatalf("squared LUT bound %v exceeds exact %v", lb, SquaredDistance(q, r))
			}
			if lb := LUTLowerBoundSum(absTab, codes, inf); lb > L1Distance(q, r) {
				t.Fatalf("L1 LUT bound %v exceeds exact %v", lb, L1Distance(q, r))
			}
			if lb := LUTLowerBoundMax(absTab, codes, inf); lb > LinfDistance(q, r) {
				t.Fatalf("L∞ LUT bound %v exceeds exact %v", lb, LinfDistance(q, r))
			}
		}
	}
}

// TestCodebookScreensFarPoints checks the filter is not vacuous: a query
// far from a cluster gets a strictly positive lower bound on every cluster
// row, and the early-exit stop threshold triggers.
func TestCodebookScreensFarPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dim := 8
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = randVec(rng, dim)
	}
	cb := TrainCodebook(rows)
	q := make([]float64, dim)
	for j := range q {
		q[j] = 100
	}
	tab := make([]float64, dim*256)
	cb.BuildLUT(q, true, tab)
	codes := make([]uint8, dim)
	for _, r := range rows {
		cb.Encode(r, codes)
		if lb := LUTLowerBoundSum(tab, codes, math.Inf(1)); lb < 1 {
			t.Fatalf("far query got loose bound %v", lb)
		}
		if lb := LUTLowerBoundSum(tab, codes, 0.5); lb <= 0.5 {
			t.Fatalf("early exit did not trigger, lb = %v", lb)
		}
	}
}

// TestCodebookRowBoundsMatchLUT pins the table-free screening path (the
// one the scan index uses) to the lookup-table reference bitwise — same
// float expressions, same early-exit thresholds — so the LUT soundness
// tests above cover both implementations.
func TestCodebookRowBoundsMatchLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(14)
		rows := make([][]float64, 3+rng.Intn(30))
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		if trial%4 == 0 {
			// Constant dimension: the sc<=0 skip must stay bitwise equal to
			// the LUT's zeroed cells, including for out-of-range queries.
			for _, r := range rows {
				r[0] = -0.75
			}
		}
		cb := TrainCodebook(rows)
		q := randVec(rng, dim)
		if trial%4 == 0 {
			q[0] = 3
		}
		sqTab := make([]float64, dim*256)
		absTab := make([]float64, dim*256)
		cb.BuildLUT(q, true, sqTab)
		cb.BuildLUT(q, false, absTab)
		codes := make([]uint8, dim)
		probe := append(append([][]float64(nil), rows...), Scale(randVec(rng, dim), 8), Clone(q))
		for _, r := range probe {
			cb.Encode(r, codes)
			for _, stop := range []float64{math.Inf(1), 1, 0.01} {
				if got, want := cb.RowLowerBoundSum(q, codes, true, stop), LUTLowerBoundSum(sqTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("squared row bound %v, LUT %v (stop %v)", got, want, stop)
				}
				if got, want := cb.RowLowerBoundSum(q, codes, false, stop), LUTLowerBoundSum(absTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("L1 row bound %v, LUT %v (stop %v)", got, want, stop)
				}
				if got, want := cb.RowLowerBoundMax(q, codes, stop), LUTLowerBoundMax(absTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("L∞ row bound %v, LUT %v (stop %v)", got, want, stop)
				}
			}
		}
	}
}

// TestCodebookConstantDimensionUnbounded is the regression for the
// degenerate scale-0 cell: a dimension constant at training time clamps
// every code to cell 0, so that cell must cover the whole line. The old
// lookup table kept the hi-edge check and charged q[0]−min against a row
// inserted later at q[0] itself — lower bound 3.75 against an exact
// distance of 0, unsoundly screening out a true nearest neighbor.
func TestCodebookConstantDimensionUnbounded(t *testing.T) {
	rows := [][]float64{{1.25, 0}, {1.25, 1}, {1.25, 0.5}}
	cb := TrainCodebook(rows)
	r := []float64{5, 0.25} // inserted after training, off the constant
	q := Clone(r)           // exact distance 0 in every domain
	codes := make([]uint8, 2)
	cb.Encode(r, codes)
	sqTab := make([]float64, 2*256)
	absTab := make([]float64, 2*256)
	cb.BuildLUT(q, true, sqTab)
	cb.BuildLUT(q, false, absTab)
	inf := math.Inf(1)
	for name, lb := range map[string]float64{
		"LUT squared":   LUTLowerBoundSum(sqTab, codes, inf),
		"LUT L1":        LUTLowerBoundSum(absTab, codes, inf),
		"LUT L∞":        LUTLowerBoundMax(absTab, codes, inf),
		"LUT screen sq": LUTScreenSum(sqTab, codes, inf),
		"row squared":   cb.RowLowerBoundSum(q, codes, true, inf),
		"row L1":        cb.RowLowerBoundSum(q, codes, false, inf),
		"row L∞":        cb.RowLowerBoundMax(q, codes, inf),
	} {
		if lb != 0 {
			t.Errorf("%s bound %v for an exact-zero distance", name, lb)
		}
	}
}

// TestLUTScreenSumEnvelope pins the reassociated 8-way screening loop — the
// form the scan back-end actually evaluates — against the sequential
// reference within its documented ULP envelope, against exact distances
// with the scan back-end's quantSlack margin, and on the screening
// implication itself: a screen that fires at bound·(1+slack) must be
// justified by the exact distance exceeding the bound.
func TestLUTScreenSumEnvelope(t *testing.T) {
	const slack = 1e-9 // mirrors scan's quantSlack
	rng := rand.New(rand.NewSource(97))
	inf := math.Inf(1)
	for dim := 0; dim <= 67; dim++ {
		rows := make([][]float64, 4+rng.Intn(20))
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		if dim > 0 && dim%7 == 0 {
			for _, r := range rows {
				r[0] = 1.25
			}
		}
		cb := TrainCodebook(rows)
		q := randVec(rng, dim)
		sqTab := make([]float64, dim*256)
		absTab := make([]float64, dim*256)
		cb.BuildLUT(q, true, sqTab)
		cb.BuildLUT(q, false, absTab)
		codes := make([]uint8, dim)
		probe := append([][]float64(nil), rows...)
		probe = append(probe, Scale(randVec(rng, dim), 10), Clone(q))
		for _, r := range probe {
			cb.Encode(r, codes)
			for _, dom := range []struct {
				tab   []float64
				exact float64
			}{
				{sqTab, SquaredDistance(q, r)},
				{absTab, L1Distance(q, r)},
			} {
				ref := LUTLowerBoundSum(dom.tab, codes, inf)
				got := LUTScreenSum(dom.tab, codes, inf)
				env := float64(dim) * 0x1p-52 * ref
				if math.Abs(got-ref) > env {
					t.Fatalf("dim %d: screen sum %v vs reference %v exceeds envelope %v", dim, got, ref, env)
				}
				if got > dom.exact*(1+slack) {
					t.Fatalf("dim %d: screen sum %v above exact %v with slack", dim, got, dom.exact)
				}
				for _, bound := range []float64{dom.exact, dom.exact * 0.99, ref * 0.5, 0} {
					stop := bound * (1 + slack)
					if LUTScreenSum(dom.tab, codes, stop) > stop && dom.exact <= bound {
						t.Fatalf("dim %d: screen fired at bound %v but exact is %v", dim, bound, dom.exact)
					}
				}
			}
		}
	}
}

// TestCodebookEncodeContainment pins the containment repair: every encoded
// coordinate lies inside its cell's float-evaluated edges (boundary cells
// extend to infinity), which is what BuildLUT's soundness relies on.
func TestCodebookEncodeContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(6)
		rows := make([][]float64, 2+rng.Intn(30))
		for i := range rows {
			rows[i] = Scale(randVec(rng, dim), math.Pow(10, float64(rng.Intn(7)-3)))
		}
		cb := TrainCodebook(rows)
		codes := make([]uint8, dim)
		for _, r := range rows {
			cb.Encode(r, codes)
			for j, x := range r {
				c := int(codes[j])
				if c > 0 && cb.min[j]+float64(c)*cb.scale[j] > x {
					t.Fatalf("coordinate %v below its cell %d lower edge", x, c)
				}
				if c < 255 && cb.min[j]+float64(c+1)*cb.scale[j] < x {
					t.Fatalf("coordinate %v above its cell %d upper edge", x, c)
				}
			}
		}
	}
}

// TestCodebookRoundTrip pins the binary codec: decode(encode(cb)) restores
// identical screening bounds, and corrupt blobs fail instead of screening
// unsoundly.
func TestCodebookRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := make([][]float64, 20)
	for i := range rows {
		rows[i] = randVec(rng, 7)
	}
	cb := TrainCodebook(rows)
	blob := cb.MarshalBinary()
	got, err := DecodeCodebook(blob)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cb.min {
		if got.min[j] != cb.min[j] || got.scale[j] != cb.scale[j] {
			t.Fatalf("dim %d: round trip changed bounds", j)
		}
	}
	for _, corrupt := range [][]byte{
		nil,
		blob[:5],
		append([]byte("XXXX"), blob[4:]...),
		blob[:len(blob)-1],
	} {
		if _, err := DecodeCodebook(corrupt); err == nil {
			t.Fatalf("corrupt blob of length %d decoded", len(corrupt))
		}
	}
	bad := append([]byte(nil), blob...)
	for i := 10; i < 18; i++ {
		bad[i] = 0xFF // min[0] becomes NaN
	}
	if _, err := DecodeCodebook(bad); err == nil {
		t.Fatal("NaN codebook bounds decoded")
	}
}
