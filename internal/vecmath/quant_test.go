package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestCodebookLowerBoundsSound checks the core screening invariant: for any
// trained codebook, any encoded row (including rows outside the trained
// range, as inserted after a compaction fold) and any query, the LUT lower
// bound never exceeds the exact distance, in every supported domain.
func TestCodebookLowerBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(12)
		rows := make([][]float64, 3+rng.Intn(40))
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		if trial%5 == 0 {
			// Constant dimension: degenerate scale-0 cells.
			for _, r := range rows {
				r[0] = 1.25
			}
		}
		cb := TrainCodebook(rows)
		if cb.Dim() != dim {
			t.Fatalf("codebook dim %d, want %d", cb.Dim(), dim)
		}
		// Encode the trained rows plus out-of-range newcomers.
		probe := append([][]float64(nil), rows...)
		for i := 0; i < 5; i++ {
			probe = append(probe, Scale(randVec(rng, dim), 10))
		}
		codes := make([]uint8, dim)
		q := randVec(rng, dim)
		sqTab := make([]float64, dim*256)
		absTab := make([]float64, dim*256)
		cb.BuildLUT(q, true, sqTab)
		cb.BuildLUT(q, false, absTab)
		inf := math.Inf(1)
		for _, r := range probe {
			cb.Encode(r, codes)
			if lb := LUTLowerBoundSum(sqTab, codes, inf); lb > SquaredDistance(q, r) {
				t.Fatalf("squared LUT bound %v exceeds exact %v", lb, SquaredDistance(q, r))
			}
			if lb := LUTLowerBoundSum(absTab, codes, inf); lb > L1Distance(q, r) {
				t.Fatalf("L1 LUT bound %v exceeds exact %v", lb, L1Distance(q, r))
			}
			if lb := LUTLowerBoundMax(absTab, codes, inf); lb > LinfDistance(q, r) {
				t.Fatalf("L∞ LUT bound %v exceeds exact %v", lb, LinfDistance(q, r))
			}
		}
	}
}

// TestCodebookScreensFarPoints checks the filter is not vacuous: a query
// far from a cluster gets a strictly positive lower bound on every cluster
// row, and the early-exit stop threshold triggers.
func TestCodebookScreensFarPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dim := 8
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = randVec(rng, dim)
	}
	cb := TrainCodebook(rows)
	q := make([]float64, dim)
	for j := range q {
		q[j] = 100
	}
	tab := make([]float64, dim*256)
	cb.BuildLUT(q, true, tab)
	codes := make([]uint8, dim)
	for _, r := range rows {
		cb.Encode(r, codes)
		if lb := LUTLowerBoundSum(tab, codes, math.Inf(1)); lb < 1 {
			t.Fatalf("far query got loose bound %v", lb)
		}
		if lb := LUTLowerBoundSum(tab, codes, 0.5); lb <= 0.5 {
			t.Fatalf("early exit did not trigger, lb = %v", lb)
		}
	}
}

// TestCodebookRowBoundsMatchLUT pins the table-free screening path (the
// one the scan index uses) to the lookup-table reference bitwise — same
// float expressions, same early-exit thresholds — so the LUT soundness
// tests above cover both implementations.
func TestCodebookRowBoundsMatchLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(14)
		rows := make([][]float64, 3+rng.Intn(30))
		for i := range rows {
			rows[i] = randVec(rng, dim)
		}
		cb := TrainCodebook(rows)
		q := randVec(rng, dim)
		sqTab := make([]float64, dim*256)
		absTab := make([]float64, dim*256)
		cb.BuildLUT(q, true, sqTab)
		cb.BuildLUT(q, false, absTab)
		codes := make([]uint8, dim)
		probe := append(append([][]float64(nil), rows...), Scale(randVec(rng, dim), 8))
		for _, r := range probe {
			cb.Encode(r, codes)
			for _, stop := range []float64{math.Inf(1), 1, 0.01} {
				if got, want := cb.RowLowerBoundSum(q, codes, true, stop), LUTLowerBoundSum(sqTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("squared row bound %v, LUT %v (stop %v)", got, want, stop)
				}
				if got, want := cb.RowLowerBoundSum(q, codes, false, stop), LUTLowerBoundSum(absTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("L1 row bound %v, LUT %v (stop %v)", got, want, stop)
				}
				if got, want := cb.RowLowerBoundMax(q, codes, stop), LUTLowerBoundMax(absTab, codes, stop); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("L∞ row bound %v, LUT %v (stop %v)", got, want, stop)
				}
			}
		}
	}
}

// TestCodebookEncodeContainment pins the containment repair: every encoded
// coordinate lies inside its cell's float-evaluated edges (boundary cells
// extend to infinity), which is what BuildLUT's soundness relies on.
func TestCodebookEncodeContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(6)
		rows := make([][]float64, 2+rng.Intn(30))
		for i := range rows {
			rows[i] = Scale(randVec(rng, dim), math.Pow(10, float64(rng.Intn(7)-3)))
		}
		cb := TrainCodebook(rows)
		codes := make([]uint8, dim)
		for _, r := range rows {
			cb.Encode(r, codes)
			for j, x := range r {
				c := int(codes[j])
				if c > 0 && cb.min[j]+float64(c)*cb.scale[j] > x {
					t.Fatalf("coordinate %v below its cell %d lower edge", x, c)
				}
				if c < 255 && cb.min[j]+float64(c+1)*cb.scale[j] < x {
					t.Fatalf("coordinate %v above its cell %d upper edge", x, c)
				}
			}
		}
	}
}

// TestCodebookRoundTrip pins the binary codec: decode(encode(cb)) restores
// identical screening bounds, and corrupt blobs fail instead of screening
// unsoundly.
func TestCodebookRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows := make([][]float64, 20)
	for i := range rows {
		rows[i] = randVec(rng, 7)
	}
	cb := TrainCodebook(rows)
	blob := cb.MarshalBinary()
	got, err := DecodeCodebook(blob)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cb.min {
		if got.min[j] != cb.min[j] || got.scale[j] != cb.scale[j] {
			t.Fatalf("dim %d: round trip changed bounds", j)
		}
	}
	for _, corrupt := range [][]byte{
		nil,
		blob[:5],
		append([]byte("XXXX"), blob[4:]...),
		blob[:len(blob)-1],
	} {
		if _, err := DecodeCodebook(corrupt); err == nil {
			t.Fatalf("corrupt blob of length %d decoded", len(corrupt))
		}
	}
	bad := append([]byte(nil), blob...)
	for i := 10; i < 18; i++ {
		bad[i] = 0xFF // min[0] becomes NaN
	}
	if _, err := DecodeCodebook(bad); err == nil {
		t.Fatal("NaN codebook bounds decoded")
	}
}
