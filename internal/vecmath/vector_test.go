package vecmath

import (
	"math"
	"testing"
)

func TestVectorOps(t *testing.T) {
	a, b := []float64{1, 2, 3}, []float64{4, 5, 6}
	if got := Add(a, b); !almostEqual(got, []float64{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !almostEqual(got, []float64{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); !almostEqual(got, []float64{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestMean(t *testing.T) {
	rows := [][]float64{{0, 2}, {2, 4}, {4, 6}}
	if got := Mean(rows); !almostEqual(got, []float64{2, 4}) {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]float64{1, 2}); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	for _, bad := range [][]float64{
		{},
		{math.NaN()},
		{1, math.Inf(1)},
		{math.Inf(-1), 0},
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("Validate(%v) succeeded, want error", bad)
		}
	}
}

func TestValidateAll(t *testing.T) {
	if err := ValidateAll([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	if err := ValidateAll(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := ValidateAll([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged dataset accepted")
	}
	if err := ValidateAll([][]float64{{1, 2}, {3, math.NaN()}}); err == nil {
		t.Error("NaN dataset accepted")
	}
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}
