package vecmath

import (
	"math"
	"testing"
)

// TestAngularZeroVectorBreaksTriangle is the regression test for the
// metric-layer bug this hook fixes: under the d(0,x)=0 convention the
// zero vector sits at distance 0 from everything, so two vectors at a
// positive angle violate d(a,b) <= d(a,0) + d(0,b) — while Metricity()
// claims the triangle inequality holds. The old behavior let such points
// into metric-tree back-ends, silently corrupting their pruning bounds.
func TestAngularZeroVectorBreaksTriangle(t *testing.T) {
	ang := Angular{}
	a, b, zero := []float64{1, 0}, []float64{-1, 0}, []float64{0, 0}
	dab := ang.Distance(a, b)
	viaZero := ang.Distance(a, zero) + ang.Distance(zero, b)
	if dab != math.Pi || viaZero != 0 {
		t.Fatalf("d(a,b) = %v, d(a,0)+d(0,b) = %v; expected π and 0", dab, viaZero)
	}
	if dab <= viaZero {
		t.Fatal("test premise broken: convention no longer violates the triangle inequality")
	}
	// The fix: validated entry points reject zero vectors for Angular.
	if err := ValidateFor(ang, zero); err == nil {
		t.Error("ValidateFor(Angular, 0) accepted the zero vector")
	}
	if err := ValidateFor(ang, a); err != nil {
		t.Errorf("ValidateFor(Angular, a) rejected a unit vector: %v", err)
	}
	if err := ValidateAllFor(ang, [][]float64{a, b, zero}); err == nil {
		t.Error("ValidateAllFor(Angular, ...) accepted a row set containing the zero vector")
	}
	if err := ValidateAllFor(ang, [][]float64{a, b}); err != nil {
		t.Errorf("ValidateAllFor(Angular, ...) rejected nonzero rows: %v", err)
	}
}

// TestValidateForPassThrough checks metrics without a PointValidator are
// unaffected, and that the base Validate failures still surface.
func TestValidateForPassThrough(t *testing.T) {
	zero := []float64{0, 0}
	for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, SquaredEuclidean{}, Minkowski{P: 3}} {
		if err := ValidateFor(m, zero); err != nil {
			t.Errorf("%s rejected the zero vector: %v", m.Name(), err)
		}
		if err := ValidateAllFor(m, [][]float64{zero, {1, 2}}); err != nil {
			t.Errorf("%s rejected valid rows: %v", m.Name(), err)
		}
	}
	if err := ValidateFor(Euclidean{}, []float64{math.NaN()}); err == nil {
		t.Error("ValidateFor accepted NaN")
	}
	if err := ValidateAllFor(Angular{}, nil); err == nil {
		t.Error("ValidateAllFor accepted an empty dataset")
	}
}
