// Package vecmath provides dense float64 vector primitives and the distance
// metrics used throughout the repository.
//
// All reverse k-nearest-neighbor algorithms in this module interact with the
// data exclusively through a Metric, mirroring the paper's observation that
// the analysis of RDT holds for any distance measure satisfying the triangle
// inequality (Casanova et al., PVLDB 2017, Section 5).
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// Metric is a distance function on equal-length float64 vectors.
//
// Implementations must be symmetric and non-negative. Implementations for
// which Metricity() returns true must additionally satisfy the triangle
// inequality; RDT's dimensional-test guarantee (Theorem 1) and the
// correctness of the exact baselines require a true metric.
type Metric interface {
	// Distance returns the distance between a and b. It panics if the
	// vectors have different lengths; use CheckDims for validated entry
	// points.
	Distance(a, b []float64) float64

	// Name identifies the metric in logs and experiment output.
	Name() string

	// Metricity reports whether the triangle inequality holds.
	Metricity() bool
}

// ErrDimensionMismatch is returned by validated entry points when two vectors
// (or a vector and an index) disagree on dimensionality.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// CheckDims returns ErrDimensionMismatch (wrapped with the observed lengths)
// unless len(a) == len(b).
func CheckDims(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return nil
}

// Euclidean is the L2 metric, the distance used for all experiments in the
// paper (Section 7.1).
type Euclidean struct{}

// Distance returns the L2 distance between a and b.
func (Euclidean) Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Metricity implements Metric. The Euclidean distance is a true metric.
func (Euclidean) Metricity() bool { return true }

// SquaredEuclidean is the squared L2 dissimilarity. It is NOT a metric (the
// triangle inequality fails) and is provided only for filtering steps that
// compare distances from a common anchor, where the square preserves order.
type SquaredEuclidean struct{}

// Distance returns the squared L2 distance between a and b.
func (SquaredEuclidean) Distance(a, b []float64) float64 {
	return SquaredDistance(a, b)
}

// Name implements Metric.
func (SquaredEuclidean) Name() string { return "sq-euclidean" }

// Metricity implements Metric; squared Euclidean violates the triangle
// inequality.
func (SquaredEuclidean) Metricity() bool { return false }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between a and b.
func (Manhattan) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Metricity implements Metric. L1 is a true metric.
func (Manhattan) Metricity() bool { return true }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between a and b.
func (Chebyshev) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Metricity implements Metric. L∞ is a true metric.
func (Chebyshev) Metricity() bool { return true }

// Minkowski is the general Lp metric for p >= 1.
type Minkowski struct {
	// P is the order of the norm; it must be >= 1 for the triangle
	// inequality to hold.
	P float64
}

// NewMinkowski returns an Lp metric, or an error if p < 1.
func NewMinkowski(p float64) (Minkowski, error) {
	if p < 1 || math.IsNaN(p) {
		return Minkowski{}, fmt.Errorf("vecmath: Minkowski order must be >= 1, got %v", p)
	}
	return Minkowski{P: p}, nil
}

// Distance returns the Lp distance between a and b.
func (m Minkowski) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name implements Metric.
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(%g)", m.P) }

// Metricity implements Metric. Lp is a metric for p >= 1.
func (m Minkowski) Metricity() bool { return m.P >= 1 }

// Angular is the angle between vectors (arc length on the unit sphere). It is
// a true metric, unlike raw cosine dissimilarity 1−cos θ, making it safe for
// metric-tree back-ends.
type Angular struct{}

// Distance returns the angle in radians between a and b. Zero vectors are at
// angle 0 from everything by convention.
func (Angular) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / math.Sqrt(na*nb)
	// Clamp against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Name implements Metric.
func (Angular) Name() string { return "angular" }

// Metricity implements Metric. The angular distance is a true metric on the
// sphere.
func (Angular) Metricity() bool { return true }

// SquaredDistance returns the squared L2 distance between a and b, panicking
// on a length mismatch. It is the hot inner loop of the whole module, kept
// free of function-call overhead.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
