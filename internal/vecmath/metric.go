// Package vecmath provides dense float64 vector primitives and the distance
// metrics used throughout the repository.
//
// All reverse k-nearest-neighbor algorithms in this module interact with the
// data exclusively through a Metric, mirroring the paper's observation that
// the analysis of RDT holds for any distance measure satisfying the triangle
// inequality (Casanova et al., PVLDB 2017, Section 5).
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// Metric is a distance function on equal-length float64 vectors.
//
// Implementations must be symmetric and non-negative. Implementations for
// which Metricity() returns true must additionally satisfy the triangle
// inequality; RDT's dimensional-test guarantee (Theorem 1) and the
// correctness of the exact baselines require a true metric.
type Metric interface {
	// Distance returns the distance between a and b. It panics if the
	// vectors have different lengths; use CheckDims for validated entry
	// points.
	Distance(a, b []float64) float64

	// Name identifies the metric in logs and experiment output.
	Name() string

	// Metricity reports whether the triangle inequality holds.
	Metricity() bool
}

// ErrDimensionMismatch is returned by validated entry points when two vectors
// (or a vector and an index) disagree on dimensionality.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// CheckDims returns ErrDimensionMismatch (wrapped with the observed lengths)
// unless len(a) == len(b).
func CheckDims(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return nil
}

// Euclidean is the L2 metric, the distance used for all experiments in the
// paper (Section 7.1).
type Euclidean struct{}

// Distance returns the L2 distance between a and b.
func (Euclidean) Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Metricity implements Metric. The Euclidean distance is a true metric.
func (Euclidean) Metricity() bool { return true }

// SquaredEuclidean is the squared L2 dissimilarity. It is NOT a metric (the
// triangle inequality fails) and is provided only for filtering steps that
// compare distances from a common anchor, where the square preserves order.
type SquaredEuclidean struct{}

// Distance returns the squared L2 distance between a and b.
func (SquaredEuclidean) Distance(a, b []float64) float64 {
	return SquaredDistance(a, b)
}

// Name implements Metric.
func (SquaredEuclidean) Name() string { return "sq-euclidean" }

// Metricity implements Metric; squared Euclidean violates the triangle
// inequality.
func (SquaredEuclidean) Metricity() bool { return false }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between a and b.
func (Manhattan) Distance(a, b []float64) float64 { return L1Distance(a, b) }

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Metricity implements Metric. L1 is a true metric.
func (Manhattan) Metricity() bool { return true }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between a and b.
func (Chebyshev) Distance(a, b []float64) float64 { return LinfDistance(a, b) }

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Metricity implements Metric. L∞ is a true metric.
func (Chebyshev) Metricity() bool { return true }

// Minkowski is the general Lp metric for p >= 1.
type Minkowski struct {
	// P is the order of the norm; it must be >= 1 for the triangle
	// inequality to hold.
	P float64
}

// NewMinkowski returns an Lp metric, or an error if p < 1.
func NewMinkowski(p float64) (Minkowski, error) {
	if p < 1 || math.IsNaN(p) {
		return Minkowski{}, fmt.Errorf("vecmath: Minkowski order must be >= 1, got %v", p)
	}
	return Minkowski{P: p}, nil
}

// maxFastIntP bounds the integer orders served by the repeated-multiplication
// fast path; beyond it |a[i]-b[i]|^p over- or underflows long before the
// rounding difference against math.Pow matters, so the generic path is fine.
const maxFastIntP = 32

// Distance returns the Lp distance between a and b. Integer orders take a
// repeated-multiplication fast path (exponentiation by squaring) instead of
// paying a math.Pow per coordinate; the quick-check test in metric_test.go
// pins the fast path within 1 ULP of the generic one.
func (m Minkowski) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	if p := int(m.P); float64(p) == m.P && p >= 1 && p <= maxFastIntP {
		var s float64
		for i := range a {
			s += ipow(math.Abs(a[i]-b[i]), p)
		}
		// math.Pow special-cases y == 1 and y == 0.5 (it returns x and
		// Sqrt(x)), so the root below is bit-identical to the generic
		// path for p == 1 and p == 2.
		return math.Pow(s, 1/m.P)
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// ipow computes x^p for p >= 1 by binary exponentiation: O(log p)
// multiplications, each rounded once, versus math.Pow's table-driven
// exp/log decomposition.
func ipow(x float64, p int) float64 {
	r := 1.0
	for p > 0 {
		if p&1 == 1 {
			r *= x
		}
		x *= x
		p >>= 1
	}
	return r
}

// Name implements Metric.
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(%g)", m.P) }

// Metricity implements Metric. Lp is a metric for p >= 1.
func (m Minkowski) Metricity() bool { return m.P >= 1 }

// Angular is the angle between vectors (arc length on the unit sphere). It is
// a true metric, unlike raw cosine dissimilarity 1−cos θ, making it safe for
// metric-tree back-ends.
//
// The metric is only defined on nonzero vectors: Distance keeps the d(0,x)=0
// convention for robustness, but that convention violates the triangle
// inequality (d(a,b) > d(a,0) + d(0,b) = 0 whenever a and b subtend a
// positive angle), so Angular implements PointValidator and every validated
// entry point (ValidateFor / ValidateAllFor) rejects zero vectors before
// they can reach a metric-tree pruning bound. Snapshot restore rebuilds
// through the same entry points, so legacy angular snapshots containing a
// zero vector fail to load with ErrZeroVector instead of silently serving
// over a broken pruning invariant (DESIGN.md, "Migration note").
type Angular struct{}

// Distance returns the angle in radians between a and b. Zero vectors are at
// angle 0 from everything by convention.
func (Angular) Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / math.Sqrt(na*nb)
	// Clamp against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Name implements Metric.
func (Angular) Name() string { return "angular" }

// Metricity implements Metric. The angular distance is a true metric on the
// sphere (zero vectors are off the sphere; ValidatePoint keeps them out).
func (Angular) Metricity() bool { return true }

// ErrZeroVector reports a zero vector offered to a metric whose domain
// excludes it (Angular). It is a sentinel so callers rebuilding legacy data
// — snapshots written before zero vectors were rejected could contain one —
// can recognize the failure and explain the migration instead of opaquely
// refusing to load.
var ErrZeroVector = errors.New("vecmath: angular metric is undefined for the zero vector (d(0,x)=0 convention violates the triangle inequality)")

// ValidatePoint implements PointValidator: the zero vector has no direction,
// and admitting it under the d(0,x)=0 convention breaks the triangle
// inequality that Metricity() promises.
func (Angular) ValidatePoint(v []float64) error {
	for _, x := range v {
		if x != 0 {
			return nil
		}
	}
	return ErrZeroVector
}

// SquaredDistance returns the squared L2 distance between a and b, panicking
// on a length mismatch. It is the hot inner loop of the whole module: 4-way
// unrolled with the bounds checks hoisted, but accumulating in lane order
// into a single sum so the result stays bit-identical to the naive scalar
// loop (see kernel.go for the bit-identity contract).
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += d0 * d0
		s += d1 * d1
		s += d2 * d2
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
