package vecmath

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codebook is a per-dimension min/max scalar-quantization grid: dimension j
// is cut into 256 cells of width Scale[j] starting at Min[j], and a vector
// is represented by one byte per dimension (its cell index). The codebook
// exists to screen candidates: given a query, every (dimension, cell) pair
// yields a lower bound on that dimension's contribution to the distance,
// and summing table lookups over a row's codes lower-bounds the exact
// distance without touching the floats. Screening is sound by construction
// — a code's cell provably contains the coordinate (Encode verifies
// containment against the same float expressions the lookup table uses),
// and the boundary cells extend to ±infinity so rows inserted after
// training, outside the trained range, simply contribute zero in the
// offending dimensions instead of an unsound bound. A dimension that was
// constant at training time (scale 0) degenerates further: every value
// encodes to cell 0, so that single cell must cover the whole line and
// the dimension contributes zero to every bound.
//
// A Codebook is immutable after training and is persisted with the snapshot
// so a restore screens with byte-identical bounds instead of retraining on
// whatever subset survived deletions.
type Codebook struct {
	min   []float64
	scale []float64 // cell width; 0 for a constant dimension
}

// TrainCodebook fits a codebook to rows (already validated: non-empty,
// finite, one dimensionality).
func TrainCodebook(rows [][]float64) *Codebook {
	dim := len(rows[0])
	cb := &Codebook{min: make([]float64, dim), scale: make([]float64, dim)}
	max := make([]float64, dim)
	for j := 0; j < dim; j++ {
		cb.min[j] = math.Inf(1)
		max[j] = math.Inf(-1)
	}
	for _, r := range rows {
		for j, x := range r {
			if x < cb.min[j] {
				cb.min[j] = x
			}
			if x > max[j] {
				max[j] = x
			}
		}
	}
	for j := 0; j < dim; j++ {
		cb.scale[j] = (max[j] - cb.min[j]) / 255
	}
	return cb
}

// Dim returns the codebook's dimensionality.
func (cb *Codebook) Dim() int { return len(cb.min) }

// Encode writes the cell index of every coordinate of r into dst
// (len(dst) >= Dim). After the arithmetic guess it adjusts the cell until
// the float-evaluated edges contain x exactly, which is what makes the
// lookup-table bounds sound.
func (cb *Codebook) Encode(r []float64, dst []uint8) {
	_ = dst[:len(cb.min)]
	for j, x := range r {
		sc := cb.scale[j]
		if sc <= 0 {
			dst[j] = 0
			continue
		}
		mn := cb.min[j]
		f := (x - mn) / sc
		var c int
		switch {
		case f <= 0:
			c = 0
		case f >= 255:
			c = 255
		default:
			c = int(f)
		}
		for c > 0 && mn+float64(c)*sc > x {
			c--
		}
		for c < 255 && mn+float64(c+1)*sc < x {
			c++
		}
		dst[j] = uint8(c)
	}
}

// BuildLUT fills tab (Dim()*256 entries, laid out [dim][256]) with the
// per-dimension contribution lower bounds for query q: entry [j][c] is the
// distance from q[j] to cell c's interval, squared when squared is true.
// Cell 0 extends down to -inf and cell 255 up to +inf, covering
// out-of-range coordinates encoded after training. A constant-at-training
// dimension (scale 0) clamps every code — including rows inserted later
// with any value there — to cell 0, so its cells carry no interval
// information at all and the whole dimension contributes zero.
func (cb *Codebook) BuildLUT(q []float64, squared bool, tab []float64) {
	_ = tab[:len(cb.min)*256]
	for j, qx := range q {
		base := j * 256
		mn, sc := cb.min[j], cb.scale[j]
		if sc <= 0 {
			for c := 0; c < 256; c++ {
				tab[base+c] = 0
			}
			continue
		}
		for c := 0; c < 256; c++ {
			var contrib float64
			if c > 0 {
				if lo := mn + float64(c)*sc; qx < lo {
					contrib = lo - qx
				}
			}
			if c < 255 {
				if hi := mn + float64(c+1)*sc; qx > hi {
					contrib = qx - hi
				}
			}
			if squared {
				contrib *= contrib
			}
			tab[base+c] = contrib
		}
	}
}

// RowLowerBoundSum accumulates per-dimension contribution bounds for q
// against one encoded row without a lookup table, early-exiting once the
// running bound passes stop. It evaluates exactly the float expressions
// BuildLUT tabulates (TestCodebookRowBoundsMatchLUT pins bitwise
// equality), so the two are interchangeable. The scan back-end screens
// through the table — one load per dimension is several times cheaper
// than re-deriving the cell interval, and the build amortizes over the
// row scan — while the table-free form serves callers screening too few
// rows per query to amortize a Dim()×256-entry build.
func (cb *Codebook) RowLowerBoundSum(q []float64, codes []uint8, squared bool, stop float64) float64 {
	var lb float64
	for j, c := range codes {
		qx := q[j]
		mn, sc := cb.min[j], cb.scale[j]
		if sc <= 0 {
			continue // constant-at-training dimension: cell 0 is unbounded
		}
		var contrib float64
		if c > 0 {
			if lo := mn + float64(c)*sc; qx < lo {
				contrib = lo - qx
			}
		}
		if c < 255 {
			if hi := mn + float64(int(c)+1)*sc; qx > hi {
				contrib = qx - hi
			}
		}
		if squared {
			contrib *= contrib
		}
		lb += contrib
		if lb > stop {
			return lb
		}
	}
	return lb
}

// RowLowerBoundMax is the max-combine (L∞) counterpart of
// RowLowerBoundSum.
func (cb *Codebook) RowLowerBoundMax(q []float64, codes []uint8, stop float64) float64 {
	var lb float64
	for j, c := range codes {
		qx := q[j]
		mn, sc := cb.min[j], cb.scale[j]
		if sc <= 0 {
			continue // constant-at-training dimension: cell 0 is unbounded
		}
		var contrib float64
		if c > 0 {
			if lo := mn + float64(c)*sc; qx < lo {
				contrib = lo - qx
			}
		}
		if c < 255 {
			if hi := mn + float64(int(c)+1)*sc; qx > hi {
				contrib = qx - hi
			}
		}
		if contrib > lb {
			if contrib > stop {
				return contrib
			}
			lb = contrib
		}
	}
	return lb
}

// LUTLowerBoundSum accumulates tab lookups over codes (additive metrics:
// L1, and L2 with squared contributions), early-exiting once the running
// bound passes stop.
func LUTLowerBoundSum(tab []float64, codes []uint8, stop float64) float64 {
	var lb float64
	for j, c := range codes {
		lb += tab[j<<8+int(c)]
		if lb > stop {
			return lb
		}
	}
	return lb
}

// LUTScreenSum is the screening-loop form of LUTLowerBoundSum: eight
// lookups per iteration through two independent partial sums, with the
// early-exit check once per block. Reassociating the additions keeps the
// gather loads pipelined instead of serialized behind one accumulator,
// which is what lets a full-row screen undercut the exact unrolled
// kernel. The result may differ from the sequential reference by a few
// ULP (≈ len(codes)·2⁻⁵²·sum relative error) in either direction, so it
// must only be compared against thresholds that carry a slack several
// orders of magnitude wider — the scan back-end's quantSlack margin is
// ~5×10⁵ wider for any dimensionality it accepts.
func LUTScreenSum(tab []float64, codes []uint8, stop float64) float64 {
	var lb float64
	j := 0
	for ; j+8 <= len(codes); j += 8 {
		s0 := tab[(j+0)<<8+int(codes[j+0])] + tab[(j+1)<<8+int(codes[j+1])] +
			tab[(j+2)<<8+int(codes[j+2])] + tab[(j+3)<<8+int(codes[j+3])]
		s1 := tab[(j+4)<<8+int(codes[j+4])] + tab[(j+5)<<8+int(codes[j+5])] +
			tab[(j+6)<<8+int(codes[j+6])] + tab[(j+7)<<8+int(codes[j+7])]
		lb += s0 + s1
		if lb > stop {
			return lb
		}
	}
	for ; j < len(codes); j++ {
		lb += tab[j<<8+int(codes[j])]
		if lb > stop {
			return lb
		}
	}
	return lb
}

// LUTLowerBoundMax combines tab lookups with max (the L∞ metric),
// early-exiting once the bound passes stop.
func LUTLowerBoundMax(tab []float64, codes []uint8, stop float64) float64 {
	var lb float64
	for j, c := range codes {
		if t := tab[j<<8+int(c)]; t > lb {
			if t > stop {
				return t
			}
			lb = t
		}
	}
	return lb
}

// Codebook binary format (little-endian): magic "RKQC", u16 version (1),
// u32 dim, then dim pairs of f64 (min, scale). Integrity is the enclosing
// snapshot section's concern; DecodeCodebook still validates shape and
// finiteness so a corrupt blob fails loudly instead of screening unsoundly.
const (
	codebookMagic   = "RKQC"
	codebookVersion = 1
	maxCodebookDim  = 1 << 16
)

// MarshalBinary serializes the codebook.
func (cb *Codebook) MarshalBinary() []byte {
	out := make([]byte, 0, 4+2+4+16*len(cb.min))
	out = append(out, codebookMagic...)
	out = binary.LittleEndian.AppendUint16(out, codebookVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cb.min)))
	for j := range cb.min {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cb.min[j]))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cb.scale[j]))
	}
	return out
}

// DecodeCodebook parses a MarshalBinary blob.
func DecodeCodebook(b []byte) (*Codebook, error) {
	if len(b) < 10 || string(b[:4]) != codebookMagic {
		return nil, fmt.Errorf("vecmath: bad codebook magic")
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != codebookVersion {
		return nil, fmt.Errorf("vecmath: unsupported codebook version %d", v)
	}
	dim := int(binary.LittleEndian.Uint32(b[6:10]))
	if dim <= 0 || dim > maxCodebookDim {
		return nil, fmt.Errorf("vecmath: codebook dim %d out of range", dim)
	}
	if len(b) != 10+16*dim {
		return nil, fmt.Errorf("vecmath: codebook length %d, want %d", len(b), 10+16*dim)
	}
	cb := &Codebook{min: make([]float64, dim), scale: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		mn := math.Float64frombits(binary.LittleEndian.Uint64(b[10+16*j:]))
		sc := math.Float64frombits(binary.LittleEndian.Uint64(b[18+16*j:]))
		if math.IsNaN(mn) || math.IsInf(mn, 0) || math.IsNaN(sc) || math.IsInf(sc, 0) || sc < 0 {
			return nil, fmt.Errorf("vecmath: codebook dim %d has invalid bounds", j)
		}
		cb.min[j], cb.scale[j] = mn, sc
	}
	return cb, nil
}
