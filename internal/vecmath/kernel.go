package vecmath

import "math"

// This file holds the hand-unrolled distance kernels and the type-switch
// dispatch that lets hot loops (scan, bruteforce, the overlay memtable, the
// core witness cycle) call them directly instead of going through the Metric
// interface once per row.
//
// Bit-identity contract: every kernel must return exactly the bits the naive
// scalar loop returns. The 4-way unrolled bodies therefore keep a single
// accumulator and add the four per-lane terms in lane order with separate
// statements — the speedup comes from hoisted bounds checks and the absence
// of an interface call per row, not from reassociating the sum (which would
// change float64 rounding and could flip distance ties deep inside the
// conformance suite). The property tests in kernel_test.go pin each kernel
// to its scalar reference across lengths 0..67.

// DistanceFunc is a one-vs-one distance kernel with Metric.Distance's
// contract (panics on length mismatch).
type DistanceFunc func(a, b []float64) float64

// BatchDistanceFunc is a one-vs-many row-scan kernel: out[i] = d(q, rows[i]).
// It panics if len(out) < len(rows) or any row length mismatches q.
type BatchDistanceFunc func(q []float64, rows [][]float64, out []float64)

// KernelFor returns the direct one-vs-one kernel for m, or nil when m has no
// registered kernel (callers fall back to m.Distance). The identity
// kernel(a,b) == m.Distance(a,b) holds bit-for-bit for every returned kernel.
func KernelFor(m Metric) DistanceFunc {
	switch m.(type) {
	case Euclidean:
		return euclideanKernel
	case SquaredEuclidean:
		return SquaredDistance
	case Manhattan:
		return L1Distance
	case Chebyshev:
		return LinfDistance
	}
	return nil
}

// BatchKernelFor returns the one-vs-many row-scan kernel for m, or nil when
// m has none. out[i] == m.Distance(q, rows[i]) holds bit-for-bit.
func BatchKernelFor(m Metric) BatchDistanceFunc {
	switch m.(type) {
	case Euclidean:
		return euclideanBatch
	case SquaredEuclidean:
		return squaredBatch
	case Manhattan:
		return l1Batch
	case Chebyshev:
		return linfBatch
	}
	return nil
}

func euclideanKernel(a, b []float64) float64 { return math.Sqrt(SquaredDistance(a, b)) }

func euclideanBatch(q []float64, rows [][]float64, out []float64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		out[i] = math.Sqrt(SquaredDistance(q, r))
	}
}

func squaredBatch(q []float64, rows [][]float64, out []float64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		out[i] = SquaredDistance(q, r)
	}
}

func l1Batch(q []float64, rows [][]float64, out []float64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		out[i] = L1Distance(q, r)
	}
}

func linfBatch(q []float64, rows [][]float64, out []float64) {
	_ = out[:len(rows)]
	for i, r := range rows {
		out[i] = LinfDistance(q, r)
	}
}

// L1Distance returns the Manhattan distance between a and b, panicking on a
// length mismatch. Bit-identical to the scalar loop (single accumulator,
// lane-order adds).
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := math.Abs(a[i] - b[i])
		d1 := math.Abs(a[i+1] - b[i+1])
		d2 := math.Abs(a[i+2] - b[i+2])
		d3 := math.Abs(a[i+3] - b[i+3])
		s += d0
		s += d1
		s += d2
		s += d3
	}
	for ; i < len(a); i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// LinfDistance returns the Chebyshev distance between a and b, panicking on
// a length mismatch. The max-combine is order-insensitive for non-NaN
// inputs, so unrolling cannot change the result.
func LinfDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	b = b[:len(a)]
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
		if d := math.Abs(a[i+1] - b[i+1]); d > s {
			s = d
		}
		if d := math.Abs(a[i+2] - b[i+2]); d > s {
			s = d
		}
		if d := math.Abs(a[i+3] - b[i+3]); d > s {
			s = d
		}
	}
	for ; i < len(a); i++ {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}
