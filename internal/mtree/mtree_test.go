package mtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/indextest"
	"repro/internal/vecmath"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, func(pts [][]float64, m vecmath.Metric) (index.Index, error) {
		return New(pts, m, nil)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, vecmath.Euclidean{}, nil); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New([][]float64{{1}}, nil, nil); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New([][]float64{{1}}, vecmath.SquaredEuclidean{}, nil); err == nil {
		t.Error("accepted non-metric distance")
	}
	if _, err := New([][]float64{{1}, {2}}, vecmath.Euclidean{}, [][]float64{{1}}); err == nil {
		t.Error("accepted mismatched values length")
	}
	if _, err := New([][]float64{{1}, {2}}, vecmath.Euclidean{}, [][]float64{{1}, {1, 2}}); err == nil {
		t.Error("accepted ragged values")
	}
}

func TestInvariantsAfterBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts := indextest.ClusteredPoints(400, 3, 6, seed)
		vals := make([][]float64, len(pts))
		rng := rand.New(rand.NewSource(seed))
		for i := range vals {
			vals[i] = []float64{rng.Float64(), rng.NormFloat64()}
		}
		tree, err := New(pts, vecmath.Euclidean{}, vals)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestInvariantsProperty(t *testing.T) {
	property := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		pts := indextest.RandPoints(n, 3, seed)
		tree, err := New(pts, vecmath.Euclidean{}, nil)
		if err != nil {
			return false
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAggregateVectorMax checks that the root-level element-wise maxima
// match the true column maxima, the bound MRkNNCoP prunes with.
func TestAggregateVectorMax(t *testing.T) {
	pts := indextest.RandPoints(300, 2, 7)
	vals := make([][]float64, len(pts))
	rng := rand.New(rand.NewSource(1))
	want := []float64{math.Inf(-1), math.Inf(-1)}
	for i := range vals {
		vals[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		for j := 0; j < 2; j++ {
			if vals[i][j] > want[j] {
				want[j] = vals[i][j]
			}
		}
	}
	tree, err := New(pts, vecmath.Euclidean{}, vals)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	got := []float64{math.Inf(-1), math.Inf(-1)}
	for i := 0; i < root.NumEntries(); i++ {
		agg := root.EntryAggregate(i)
		for j := 0; j < 2; j++ {
			if agg[j] > got[j] {
				got[j] = agg[j]
			}
		}
	}
	for j := 0; j < 2; j++ {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Errorf("root aggregate[%d] = %g, want %g", j, got[j], want[j])
		}
	}
}

func TestAngularMetric(t *testing.T) {
	// The M-tree must work with any true metric.
	pts := indextest.RandPoints(150, 5, 3)
	tree, err := New(pts, vecmath.Angular{}, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := vecmath.Angular{}
	q := pts[4]
	got := tree.KNN(q, 1, 4)
	best := math.Inf(1)
	for id, p := range pts {
		if id == 4 {
			continue
		}
		if d := m.Distance(q, p); d < best {
			best = d
		}
	}
	if len(got) != 1 || math.Abs(got[0].Dist-best) > 1e-12 {
		t.Errorf("angular KNN = %v, want dist %g", got, best)
	}
}

func TestNodeViewWalk(t *testing.T) {
	pts := indextest.RandPoints(250, 3, 5)
	tree, err := New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var walk func(v NodeView)
	walk = func(v NodeView) {
		for i := 0; i < v.NumEntries(); i++ {
			if v.IsLeaf() {
				seen[v.EntryID(i)] = true
				if v.EntryRadius(i) != 0 {
					t.Fatal("leaf entry with nonzero radius")
				}
			} else {
				walk(v.EntryChild(i))
			}
		}
	}
	walk(tree.Root())
	if len(seen) != len(pts) {
		t.Errorf("walk found %d points, want %d", len(seen), len(pts))
	}
}
