// Package mtree implements an M-tree (Ciaccia, Patella, Zezula 1997), the
// metric access method underlying the MRkNNCoP baseline (paper Section 2.1).
//
// Every routing entry stores a data object, a covering radius bounding the
// distance to any object in its subtree, and the distance to its parent
// routing object. Pruning needs only the triangle inequality, so the M-tree
// works for any metric. Leaf entries may carry a vector of augmented values
// whose element-wise subtree maximum is aggregated at every routing entry —
// MRkNNCoP stores the parameters of its kNN-distance bound lines there.
package mtree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

const (
	maxEntries = 32
	minEntries = 2 // generalized-hyperplane partitions can be skewed
)

type entry struct {
	id     int     // routing object (interior) or data object (leaf)
	dist   float64 // distance to the parent routing object
	radius float64 // covering radius; 0 for leaf entries
	child  *node   // nil for leaf entries
	agg    []float64
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an M-tree over a point set. It implements index.Index and is safe
// for concurrent readers.
type Tree struct {
	points [][]float64
	values [][]float64 // per-point augmented vectors (nil if unused)
	metric vecmath.Metric
	dim    int
	root   *node
	// rootObj is the reference object distances at the root level are
	// measured against; the root has no parent, so dist fields there are
	// relative to rootObj for pruning symmetry (unused: kept at 0).
}

var _ index.Index = (*Tree)(nil)

// New builds an M-tree over points by repeated insertion. values, if
// non-nil, supplies per-point augmented vectors (all the same length) that
// are max-aggregated up the tree.
func New(points [][]float64, metric vecmath.Metric, values [][]float64) (*Tree, error) {
	if metric == nil {
		return nil, errors.New("mtree: nil metric")
	}
	if !metric.Metricity() {
		return nil, errors.New("mtree: metric must satisfy the triangle inequality")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	if values != nil {
		if len(values) != len(points) {
			return nil, errors.New("mtree: values length does not match points")
		}
		for i := 1; i < len(values); i++ {
			if len(values[i]) != len(values[0]) {
				return nil, errors.New("mtree: ragged values")
			}
		}
	}
	t := &Tree{points: points, values: values, metric: metric, dim: len(points[0]), root: &node{leaf: true}}
	for id := range points {
		t.insert(id)
	}
	return t, nil
}

// Builder constructs M-trees without augmented values; it implements
// index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric, nil)
}

// Name implements index.Builder.
func (Builder) Name() string { return "mtree" }

// Len implements index.Index.
func (t *Tree) Len() int { return len(t.points) }

// Dim implements index.Index.
func (t *Tree) Dim() int { return t.dim }

// Point implements index.Index.
func (t *Tree) Point(id int) []float64 { return t.points[id] }

// Metric implements index.Index.
func (t *Tree) Metric() vecmath.Metric { return t.metric }

func (t *Tree) valueOf(id int) []float64 {
	if t.values == nil {
		return nil
	}
	return t.values[id]
}

func maxInto(dst, src []float64) []float64 {
	if src == nil {
		return dst
	}
	if dst == nil {
		return append([]float64(nil), src...)
	}
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
	return dst
}

func (t *Tree) insert(id int) {
	e := entry{id: id, agg: t.valueOf(id)}
	if split := t.insertAt(t.root, e, -1); split != nil {
		old := t.root
		t.root = &node{entries: []entry{t.routingEntry(old, -1), t.routingEntry(split, -1)}}
	}
}

// routingEntry builds the interior entry describing n: its routing object is
// the first entry's object (an arbitrary but stable choice), with an exact
// covering radius and refreshed aggregates. parentID (-1 for the root level)
// fixes the stored parent distance.
func (t *Tree) routingEntry(n *node, parentID int) entry {
	routing := n.entries[0].id
	e := entry{id: routing, child: n}
	for _, c := range n.entries {
		d := t.metric.Distance(t.points[routing], t.points[c.id])
		if r := d + c.radius; r > e.radius {
			e.radius = r
		}
		e.agg = maxInto(e.agg, c.agg)
	}
	if parentID >= 0 {
		e.dist = t.metric.Distance(t.points[parentID], t.points[routing])
	}
	return e
}

// insertAt descends to the best leaf; a non-nil return is a new sibling from
// a split that the caller registers. parentID is the routing object of n's
// parent entry (-1 at the root).
func (t *Tree) insertAt(n *node, e entry, parentID int) *node {
	if n.leaf {
		if parentID >= 0 {
			e.dist = t.metric.Distance(t.points[parentID], t.points[e.id])
		}
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	bi := t.chooseSubtree(n, e.id)
	routing := n.entries[bi].id
	if split := t.insertAt(n.entries[bi].child, e, routing); split != nil {
		n.entries[bi] = t.routingEntry(n.entries[bi].child, parentID)
		n.entries = append(n.entries, t.routingEntry(split, parentID))
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	n.entries[bi] = t.routingEntry(n.entries[bi].child, parentID)
	return nil
}

// chooseSubtree prefers a routing entry whose region already contains the
// object (smallest such distance); otherwise the one needing the least
// radius enlargement.
func (t *Tree) chooseSubtree(n *node, id int) int {
	p := t.points[id]
	bestIn, bestInDist := -1, math.Inf(1)
	bestOut, bestOutEnlarge := -1, math.Inf(1)
	for i := range n.entries {
		d := t.metric.Distance(p, t.points[n.entries[i].id])
		if d <= n.entries[i].radius {
			if d < bestInDist {
				bestIn, bestInDist = i, d
			}
		} else if enlarge := d - n.entries[i].radius; enlarge < bestOutEnlarge {
			bestOut, bestOutEnlarge = i, enlarge
		}
	}
	if bestIn >= 0 {
		return bestIn
	}
	return bestOut
}

// split partitions n's entries around the two objects that are farthest
// apart (the mM_RAD promotion evaluated exhaustively over the node) and
// returns the new sibling holding the second partition.
//
// The promoted objects become the routing objects of the two halves (via
// routingEntry's first-entry convention), so each half's stored parent
// distances are refreshed against its own promoted object.
func (t *Tree) split(n *node) *node {
	entries := n.entries
	// Promote the pair with maximum pairwise distance.
	p1, p2, worst := 0, 1, -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := t.metric.Distance(t.points[entries[i].id], t.points[entries[j].id])
			if d > worst {
				p1, p2, worst = i, j, d
			}
		}
	}
	o1, o2 := entries[p1].id, entries[p2].id
	var g1, g2 []entry
	for _, e := range entries {
		d1 := t.metric.Distance(t.points[e.id], t.points[o1])
		d2 := t.metric.Distance(t.points[e.id], t.points[o2])
		if d1 <= d2 {
			g1 = append(g1, e)
		} else {
			g2 = append(g2, e)
		}
	}
	// Guarantee the minimum fill by moving the boundary elements of the
	// larger group (rare with the farthest-pair promotion).
	for len(g1) < minEntries {
		g1, g2 = append(g1, g2[len(g2)-1]), g2[:len(g2)-1]
	}
	for len(g2) < minEntries {
		g2, g1 = append(g2, g1[len(g1)-1]), g1[:len(g1)-1]
	}
	// Make the promoted objects the first entries so routingEntry picks
	// them as routing objects.
	moveToFront(g1, o1)
	moveToFront(g2, o2)
	n.entries = g1
	t.refreshParentDistances(n, o1)
	sibling := &node{leaf: n.leaf, entries: g2}
	t.refreshParentDistances(sibling, o2)
	return sibling
}

func moveToFront(g []entry, id int) {
	for i := range g {
		if g[i].id == id {
			g[0], g[i] = g[i], g[0]
			return
		}
	}
}

// refreshParentDistances recomputes the stored parent distances after a
// split reassigned entries to a new routing object.
func (t *Tree) refreshParentDistances(n *node, parentID int) {
	if parentID < 0 {
		return
	}
	for i := range n.entries {
		n.entries[i].dist = t.metric.Distance(t.points[parentID], t.points[n.entries[i].id])
	}
}

// frontierEntry queues a subtree with its lower-bound distance and the
// already-computed distance from the query to the node's routing object,
// which enables the parent-distance pre-filter |d(q,p) − d(p,o)| ≤ d(q,o)
// from the original M-tree paper.
type frontierEntry struct {
	n         *node
	lb        float64
	dqRouting float64
	hasParent bool
}

// preFilter returns a lower bound on d(q, e.object) − e.radius using only
// stored distances, or 0 when no parent information is available.
func preFilter(f frontierEntry, e entry) float64 {
	if !f.hasParent {
		return 0
	}
	lb := math.Abs(f.dqRouting-e.dist) - e.radius
	if lb < 0 {
		return 0
	}
	return lb
}

// entryLowerBound is max(0, d(q, routing) − radius), the least distance any
// object under the entry can have from q.
func entryLowerBound(d, radius float64) float64 {
	if lb := d - radius; lb > 0 {
		return lb
	}
	return 0
}

// NewCursor implements index.Index with the two-heap incremental scheme.
func (t *Tree) NewCursor(q []float64, skipID int) index.Cursor {
	c := &cursor{t: t, q: q, skipID: skipID,
		nodes: pqueue.NewMin[frontierEntry](64), ready: pqueue.NewMin[int](64)}
	c.nodes.Push(0, frontierEntry{n: t.root})
	return c
}

type cursor struct {
	t      *Tree
	q      []float64
	skipID int
	nodes  *pqueue.Min[frontierEntry]
	ready  *pqueue.Min[int]
}

func (c *cursor) Next() (index.Neighbor, bool) {
	for {
		readyTop, hasReady := c.ready.Peek()
		nodeTop, hasNode := c.nodes.Peek()
		if hasReady && (!hasNode || readyTop.Priority <= nodeTop.Priority) {
			it, _ := c.ready.Pop()
			return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
		}
		if !hasNode {
			return index.Neighbor{}, false
		}
		it, _ := c.nodes.Pop()
		for _, e := range it.Value.n.entries {
			d := c.t.metric.Distance(c.q, c.t.points[e.id])
			if e.child == nil {
				if e.id != c.skipID {
					c.ready.Push(d, e.id)
				}
				continue
			}
			lb := entryLowerBound(d, e.radius)
			c.nodes.Push(lb, frontierEntry{n: e.child, lb: lb})
		}
	}
}

// KNN implements index.Index with best-first search and bound pruning.
func (t *Tree) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 || len(t.points) == 0 {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	nodes := pqueue.NewMin[frontierEntry](64)
	nodes.Push(0, frontierEntry{n: t.root})
	for {
		it, ok := nodes.Pop()
		if !ok {
			break
		}
		if bound, full := top.Bound(); full && it.Priority > bound {
			break
		}
		f := it.Value
		for _, e := range f.n.entries {
			if bound, full := top.Bound(); full && preFilter(f, e) > bound {
				continue // pruned without a distance computation
			}
			d := t.metric.Distance(q, t.points[e.id])
			if e.child == nil {
				if e.id == skipID {
					continue
				}
				if bound, full := top.Bound(); !full || d < bound {
					top.Offer(d, e.id)
				}
				continue
			}
			lb := entryLowerBound(d, e.radius)
			if bound, full := top.Bound(); full && lb > bound {
				continue
			}
			nodes.Push(lb, frontierEntry{n: e.child, lb: lb, dqRouting: d, hasParent: true})
		}
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index.
func (t *Tree) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	t.forEachInRange(q, r, skipID, func(id int, d float64) {
		out = append(out, index.Neighbor{ID: id, Dist: d})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index.
func (t *Tree) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	t.forEachInRange(q, r, skipID, func(int, float64) { count++ })
	return count
}

func (t *Tree) forEachInRange(q []float64, r float64, skipID int, emit func(id int, d float64)) {
	var visit func(f frontierEntry)
	visit = func(f frontierEntry) {
		for _, e := range f.n.entries {
			if preFilter(f, e) > r {
				continue // pruned without a distance computation
			}
			d := t.metric.Distance(q, t.points[e.id])
			if e.child == nil {
				if e.id != skipID && d <= r {
					emit(e.id, d)
				}
				continue
			}
			if entryLowerBound(d, e.radius) <= r {
				visit(frontierEntry{n: e.child, dqRouting: d, hasParent: true})
			}
		}
	}
	visit(frontierEntry{n: t.root})
}

// NodeView is a read-only handle for baseline algorithms that run their own
// pruned traversals (MRkNNCoP).
type NodeView struct {
	t *Tree
	n *node
}

// Root returns a view of the root node.
func (t *Tree) Root() NodeView { return NodeView{t: t, n: t.root} }

// IsLeaf reports whether the node's entries are data objects.
func (v NodeView) IsLeaf() bool { return v.n.leaf }

// NumEntries returns the number of entries in the node.
func (v NodeView) NumEntries() int { return len(v.n.entries) }

// EntryID returns the routing (interior) or data (leaf) object ID of entry i.
func (v NodeView) EntryID(i int) int { return v.n.entries[i].id }

// EntryRadius returns the covering radius of entry i (0 at leaves).
func (v NodeView) EntryRadius(i int) float64 { return v.n.entries[i].radius }

// EntryAggregate returns the element-wise max of augmented vectors in the
// subtree of entry i (or the point's own vector at leaves). The returned
// slice is owned by the tree and must not be modified.
func (v NodeView) EntryAggregate(i int) []float64 { return v.n.entries[i].agg }

// EntryChild returns a view of interior entry i's subtree; it panics on
// leaves.
func (v NodeView) EntryChild(i int) NodeView {
	if v.n.leaf {
		panic("mtree: EntryChild on leaf node")
	}
	return NodeView{t: v.t, n: v.n.entries[i].child}
}

// CheckInvariants verifies covering radii, parent distances, aggregates and
// point completeness. Tests call it after builds.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int]bool, len(t.points))
	// check verifies the subtree under routing object parentID and
	// returns all contained ids and the element-wise max aggregate.
	var check func(n *node, parentID int) ([]int, []float64, error)
	check = func(n *node, parentID int) ([]int, []float64, error) {
		if len(n.entries) == 0 {
			return nil, nil, errors.New("mtree: empty node")
		}
		var ids []int
		var agg []float64
		for _, e := range n.entries {
			if parentID >= 0 {
				want := t.metric.Distance(t.points[parentID], t.points[e.id])
				if math.Abs(want-e.dist) > 1e-9 {
					return nil, nil, errors.New("mtree: stale parent distance")
				}
			}
			if e.child == nil {
				if seen[e.id] {
					return nil, nil, errors.New("mtree: point appears twice")
				}
				seen[e.id] = true
				ids = append(ids, e.id)
				agg = maxInto(agg, e.agg)
				continue
			}
			sub, subAgg, err := check(e.child, e.id)
			if err != nil {
				return nil, nil, err
			}
			for _, id := range sub {
				if d := t.metric.Distance(t.points[e.id], t.points[id]); d > e.radius+1e-9 {
					return nil, nil, errors.New("mtree: covering radius violated")
				}
			}
			if t.values != nil {
				for j := range subAgg {
					if subAgg[j] > e.agg[j]+1e-12 {
						return nil, nil, errors.New("mtree: stale aggregate")
					}
				}
			}
			ids = append(ids, sub...)
			agg = maxInto(agg, subAgg)
		}
		return ids, agg, nil
	}
	if _, _, err := check(t.root, -1); err != nil {
		return err
	}
	if len(seen) != len(t.points) {
		return errors.New("mtree: tree does not contain every point")
	}
	return nil
}
