package mrknncop

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/indextest"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func buildIndex(t *testing.T, pts [][]float64, kmax int) *Index {
	t.Helper()
	fwd, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("scan.New: %v", err)
	}
	ix, err := New(pts, vecmath.Euclidean{}, kmax, fwd)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	pts := indextest.RandPoints(10, 2, 1)
	fwd, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(pts, nil, 10, fwd); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New(pts, vecmath.Euclidean{}, 1, fwd); err == nil {
		t.Error("accepted kmax=1")
	}
	if _, err := New(pts, vecmath.Euclidean{}, 10, nil); err == nil {
		t.Error("accepted nil forward index")
	}
}

// TestBoundLinesBracketTruth is the core correctness property: for every
// object and every rank up to KMax, the fitted lines must bracket the true
// kNN distance.
func TestBoundLinesBracketTruth(t *testing.T) {
	pts := indextest.ClusteredPoints(150, 4, 5, 3)
	kmax := 20
	ix := buildIndex(t, pts, kmax)
	fwd, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for id := range pts {
		nn := fwd.KNN(pts[id], kmax, id)
		for k := 1; k <= len(nn); k++ {
			truth := nn[k-1].Dist
			lo := ix.LowerBound(id, k)
			up := ix.UpperBound(id, k)
			if lo > truth*(1+1e-9)+1e-12 {
				t.Fatalf("id=%d k=%d: lower bound %g above truth %g", id, k, lo, truth)
			}
			if up < truth*(1-1e-9)-1e-12 {
				t.Fatalf("id=%d k=%d: upper bound %g below truth %g", id, k, up, truth)
			}
		}
	}
}

// TestBoundLinesWithDuplicates checks the zero-distance handling: objects
// with duplicate neighbors get a zero lower bound and valid upper bound.
func TestBoundLinesWithDuplicates(t *testing.T) {
	base := indextest.RandPoints(30, 3, 7)
	pts := append([][]float64{}, base...)
	for i := 0; i < 6; i++ {
		pts = append(pts, vecmath.Clone(base[0]))
	}
	kmax := 5
	ix := buildIndex(t, pts, kmax)
	// Point 0 has six exact duplicates, so d_k = 0 for k <= 6.
	for k := 1; k <= kmax; k++ {
		if lo := ix.LowerBound(0, k); lo != 0 {
			t.Errorf("LowerBound(0,%d) = %g, want 0", k, lo)
		}
	}
}

// TestExactness checks MRkNNCoP against brute force across ranks: filter
// plus verification must be exact for any k <= KMax.
func TestExactness(t *testing.T) {
	pts := indextest.ClusteredPoints(220, 4, 6, 5)
	kmax := 16
	ix := buildIndex(t, pts, kmax)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 16} {
		for qid := 0; qid < 25; qid++ {
			got, err := ix.Query(qid, k)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got.IDs, want) {
				t.Errorf("k=%d qid=%d: got %v, want %v", k, qid, got.IDs, want)
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	ix := buildIndex(t, indextest.RandPoints(30, 2, 2), 8)
	if _, err := ix.Query(-1, 2); err == nil {
		t.Error("accepted negative qid")
	}
	if _, err := ix.Query(30, 2); err == nil {
		t.Error("accepted out-of-range qid")
	}
	if _, err := ix.Query(0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := ix.Query(0, 9); err == nil {
		t.Error("accepted k above KMax")
	}
	if _, err := ix.QueryPoint([]float64{1}, 2); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := ix.QueryPoint([]float64{math.NaN(), 0}, 2); err == nil {
		t.Error("accepted NaN query")
	}
	if ix.KMax() != 8 {
		t.Errorf("KMax = %d", ix.KMax())
	}
	if ix.PrecomputeTime <= 0 {
		t.Error("PrecomputeTime not recorded")
	}
}

func TestExternalQuery(t *testing.T) {
	pts := indextest.RandPoints(120, 3, 11)
	ix := buildIndex(t, pts, 10)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.4, 0.6, 0.2}
	got, err := ix.QueryPoint(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.RkNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got.IDs, want) {
		t.Errorf("external: got %v, want %v", got.IDs, want)
	}
}

// TestFitBoundLinesProperty property-checks the fitter in isolation over
// random nondecreasing distance sequences.
func TestFitBoundLinesProperty(t *testing.T) {
	property := func(seedRaw uint32, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		dists := make([]float64, n)
		v := float64(seedRaw%100) / 100
		for i := range dists {
			v += float64((seedRaw>>(i%16))&3) / 7
			dists[i] = v
		}
		lo, up := fitBoundLines(dists)
		for i, d := range dists {
			lnK := math.Log(float64(i + 1))
			if lo.eval(lnK) > d*(1+1e-9)+1e-12 {
				return false
			}
			if up.eval(lnK) < d*(1-1e-9)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
