// Package mrknncop implements the MRkNNCoP baseline (Achtert, Böhm, Kröger,
// Kunath, Pryakhin, Renz: "Efficient reverse k-nearest neighbor search in
// arbitrary metric spaces", SIGMOD 2006), the exact precomputation-heavy
// competitor the paper singles out for its implicit use of intrinsic
// dimensionality (Section 2.1).
//
// MRkNNCoP assumes that an object's kNN distances follow the fractal-
// dimension relationship log d_k ≈ a + b·log k. At build time the exact kNN
// distances for k = 1..KMax are computed for every object (one forward kNN
// query per object — the heavy step), and two conservative lines in log-log
// space are fitted per object:
//
//	lower_o(k) ≤ d_k(o) ≤ upper_o(k)   for all 1 ≤ k ≤ KMax.
//
// The objects are stored in an M-tree whose routing entries aggregate the
// maxima of the upper-line coefficients, so whole subtrees are pruned when
// even their most generous upper bound cannot reach the query. At query
// time an object with d(q,o) ≤ lower_o(k) is reported immediately, one with
// d(q,o) > upper_o(k) is discarded, and the survivors are settled with one
// forward kNN query each.
package mrknncop

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/mtree"
	"repro/internal/stats"
	"repro/internal/vecmath"
)

// line is a bound line log d = A + B·log k (natural logarithms).
type line struct {
	A, B float64
}

// eval returns the bound at rank k.
func (l line) eval(lnK float64) float64 { return math.Exp(l.A + l.B*lnK) }

// Index is a prebuilt MRkNNCoP structure supporting exact RkNN queries for
// any k up to KMax.
type Index struct {
	points  [][]float64
	metric  vecmath.Metric
	kmax    int
	lower   []line
	upper   []line
	tree    *mtree.Tree
	forward index.Index
	// PrecomputeTime records the wall-clock cost of the kNN tables and
	// line fits, the quantity Figures 8 and 9 of the paper are about.
	PrecomputeTime time.Duration
}

// Stats reports the work one query performed.
type Stats struct {
	// Definite counts objects accepted via the lower bound line without
	// verification.
	Definite int
	// Pruned counts leaf objects rejected via the upper bound line.
	Pruned int
	// Verified counts forward kNN verification queries issued.
	Verified int
}

// Result is the answer to one query.
type Result struct {
	IDs   []int
	Stats Stats
}

// New precomputes the MRkNNCoP index over points. The forward index is used
// for the kNN tables at build time and for verification at query time; kmax
// bounds the neighbor ranks the index can answer.
func New(points [][]float64, metric vecmath.Metric, kmax int, forward index.Index) (*Index, error) {
	if metric == nil {
		return nil, errors.New("mrknncop: nil metric")
	}
	if kmax <= 1 {
		return nil, fmt.Errorf("mrknncop: KMax must exceed 1, got %d", kmax)
	}
	if forward == nil {
		return nil, errors.New("mrknncop: nil forward index")
	}
	if forward.Len() != len(points) {
		return nil, errors.New("mrknncop: forward index size does not match points")
	}
	start := time.Now()
	lower := make([]line, len(points))
	upper := make([]line, len(points))
	values := make([][]float64, len(points))
	for id, p := range points {
		nn := forward.KNN(p, kmax, id)
		dists := make([]float64, len(nn))
		for i, nb := range nn {
			dists[i] = nb.Dist
		}
		lo, up := fitBoundLines(dists)
		lower[id], upper[id] = lo, up
		values[id] = []float64{up.A, up.B}
	}
	tree, err := mtree.New(points, metric, values)
	if err != nil {
		return nil, err
	}
	return &Index{
		points:         points,
		metric:         metric,
		kmax:           kmax,
		lower:          lower,
		upper:          upper,
		tree:           tree,
		forward:        forward,
		PrecomputeTime: time.Since(start),
	}, nil
}

// fitBoundLines fits one least-squares line through (ln k, ln d_k) and
// shifts its intercept up and down until it conservatively bounds every
// sample. Zero distances (duplicate points) force the lower bound to zero,
// encoded as intercept −∞.
func fitBoundLines(dists []float64) (lower, upper line) {
	var xs, ys []float64
	hasZero := false
	for i, d := range dists {
		if d <= 0 {
			hasZero = true
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(d))
	}
	var fit stats.Line
	if len(xs) >= 2 {
		if l, err := stats.FitLine(xs, ys); err == nil {
			fit = l
		}
		// A degenerate fit (all ranks coincide after the zero filter)
		// keeps the zero line, which the shifts below still make safe.
	}
	loShift, hiShift := 0.0, 0.0
	for i := range xs {
		resid := ys[i] - fit.Eval(xs[i])
		if resid > hiShift {
			hiShift = resid
		}
		if resid < loShift {
			loShift = resid
		}
	}
	// Pad both intercepts by a relative epsilon in log space: the
	// exp/log round trip loses an ulp, and an object whose query
	// distance exactly equals its kNN distance (every k=1 mutual
	// nearest neighbor) would otherwise be rejected by its own bound.
	const logEps = 1e-9
	upper = line{A: fit.Intercept + hiShift + logEps, B: fit.Slope}
	lower = line{A: fit.Intercept + loShift - logEps, B: fit.Slope}
	if hasZero || len(xs) == 0 {
		lower = line{A: math.Inf(-1)}
	}
	if len(xs) == 0 {
		upper = line{A: math.Inf(-1)}
	}
	return lower, upper
}

// KMax returns the largest supported neighbor rank.
func (ix *Index) KMax() int { return ix.kmax }

// LowerBound returns the precomputed lower bound on d_k(id).
func (ix *Index) LowerBound(id, k int) float64 { return ix.lower[id].eval(math.Log(float64(k))) }

// UpperBound returns the precomputed upper bound on d_k(id).
func (ix *Index) UpperBound(id, k int) float64 { return ix.upper[id].eval(math.Log(float64(k))) }

// Query returns the exact reverse k-nearest neighbors of dataset member qid.
func (ix *Index) Query(qid, k int) (*Result, error) {
	if qid < 0 || qid >= len(ix.points) {
		return nil, fmt.Errorf("mrknncop: query id %d out of range [0,%d)", qid, len(ix.points))
	}
	return ix.query(ix.points[qid], qid, k)
}

// QueryPoint returns the exact reverse k-nearest neighbors of an arbitrary
// query point (with kNN distances taken over the database alone).
func (ix *Index) QueryPoint(q []float64, k int) (*Result, error) {
	if err := vecmath.ValidateFor(ix.metric, q); err != nil {
		return nil, err
	}
	if len(q) != len(ix.points[0]) {
		return nil, vecmath.ErrDimensionMismatch
	}
	return ix.query(q, -1, k)
}

func (ix *Index) query(q []float64, skipID, k int) (*Result, error) {
	if k <= 0 || k > ix.kmax {
		return nil, fmt.Errorf("mrknncop: k must be in [1,%d], got %d", ix.kmax, k)
	}
	lnK := math.Log(float64(k))
	var res Result

	var visit func(v mtree.NodeView)
	visit = func(v mtree.NodeView) {
		for i := 0; i < v.NumEntries(); i++ {
			id := v.EntryID(i)
			d := ix.metric.Distance(q, ix.points[id])
			if v.IsLeaf() {
				if id == skipID {
					continue
				}
				switch {
				case d <= ix.lower[id].eval(lnK):
					res.Stats.Definite++
					res.IDs = append(res.IDs, id)
				case d > ix.upper[id].eval(lnK):
					res.Stats.Pruned++
				default:
					res.Stats.Verified++
					if ix.verify(id, d, k) {
						res.IDs = append(res.IDs, id)
					}
				}
				continue
			}
			// Subtree pruning: the most generous upper bound any
			// object below can have is exp(max A + max B·ln k),
			// using the aggregated coefficient maxima (valid since
			// ln k ≥ 0 for k ≥ 1).
			agg := v.EntryAggregate(i)
			maxUpper := math.Exp(agg[0] + agg[1]*lnK)
			lb := d - v.EntryRadius(i)
			if lb > maxUpper {
				continue
			}
			visit(v.EntryChild(i))
		}
	}
	visit(ix.tree.Root())
	sort.Ints(res.IDs)
	return &res, nil
}

// verify settles a candidate with one forward kNN query.
func (ix *Index) verify(id int, dq float64, k int) bool {
	nn := ix.forward.KNN(ix.points[id], k, id)
	if len(nn) < k {
		return true
	}
	return nn[len(nn)-1].Dist >= dq
}
