package lid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/vecmath"
)

// The estimators in this file implement Section 6 of the paper: practical
// intrinsic-dimensionality estimation used to choose RDT's scale parameter t
// automatically. The paper evaluates three: the maximum-likelihood (Hill)
// estimator of local intrinsic dimensionality averaged over a sample
// (RDT+(MLE)), and two correlation-dimension estimators over pairwise
// distances — Grassberger-Procaccia (RDT+(GP)) and Takens (RDT+(Takens)).

// MLEOptions configures the Hill/MLE estimator.
type MLEOptions struct {
	// SampleFraction is the share of dataset points whose local estimate
	// is averaged. The paper samples ten percent.
	SampleFraction float64
	// Neighbors is the neighborhood size per local estimate. The paper
	// uses 100, citing the convergence study of Amsaleg et al. (KDD'15).
	Neighbors int
	// Seed drives the deterministic sample choice.
	Seed int64
}

// DefaultMLEOptions returns the paper's settings.
func DefaultMLEOptions() MLEOptions {
	return MLEOptions{SampleFraction: 0.10, Neighbors: 100, Seed: 1}
}

// MLE estimates the dataset's intrinsic dimensionality by averaging the
// maximum-likelihood (Hill) estimator of local intrinsic dimensionality
//
//	ID_x = −( (1/k) Σ_{i=1..k} ln(x_i / x_k) )^{−1}
//
// over a random sample of points, where x_1..x_k are the distances from the
// sample point to its k nearest neighbors. Zero distances (duplicates) are
// skipped, matching the treatment in the reference implementations.
func MLE(ix index.Index, opts MLEOptions) (float64, error) {
	if ix == nil {
		return 0, errors.New("lid: nil index")
	}
	if !(opts.SampleFraction > 0 && opts.SampleFraction <= 1) {
		return 0, fmt.Errorf("lid: sample fraction must be in (0,1], got %v", opts.SampleFraction)
	}
	if opts.Neighbors < 2 {
		return 0, fmt.Errorf("lid: need at least 2 neighbors, got %d", opts.Neighbors)
	}
	n := ix.Len()
	sampleSize := int(math.Ceil(opts.SampleFraction * float64(n)))
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(n)
	k := opts.Neighbors
	if k > n-1 {
		k = n - 1
	}
	if k < 2 {
		return 0, errors.New("lid: dataset too small for MLE estimation")
	}
	var sum float64
	var used int
	for _, id := range perm[:sampleSize] {
		nn := ix.KNN(ix.Point(id), k, id)
		if len(nn) == 0 {
			continue
		}
		w := nn[len(nn)-1].Dist
		if w <= 0 {
			continue // the whole neighborhood is duplicates
		}
		var logSum float64
		var terms int
		for _, nb := range nn {
			if nb.Dist <= 0 {
				continue
			}
			logSum += math.Log(nb.Dist / w)
			terms++
		}
		if terms == 0 || logSum == 0 {
			continue
		}
		sum += -float64(terms) / logSum
		used++
	}
	if used == 0 {
		return 0, errors.New("lid: no usable sample points (all-duplicate data?)")
	}
	return sum / float64(used), nil
}

// PairwiseOptions configures the correlation-dimension estimators, which
// operate on the pairwise distance distribution.
type PairwiseOptions struct {
	// MaxSample caps the number of points whose pairwise distances are
	// computed; the estimators are quadratic (the cost the paper's Table
	// 1 reports in hours for the full datasets), so large datasets are
	// subsampled deterministically.
	MaxSample int
	// Seed drives the subsample choice.
	Seed int64
	// TailFraction is the upper quantile of pairwise distances treated
	// as the "small r" regime where the log-log curve is fitted (GP) or
	// averaged (Takens).
	TailFraction float64
	// FitPoints is the number of radii sampled for the GP log-log fit.
	FitPoints int
}

// DefaultPairwiseOptions returns settings that keep the estimators under a
// second for the experiment workloads while matching the paper's estimates
// on the calibration datasets.
func DefaultPairwiseOptions() PairwiseOptions {
	return PairwiseOptions{MaxSample: 1000, Seed: 1, TailFraction: 0.05, FitPoints: 16}
}

func (o PairwiseOptions) validate() error {
	if o.MaxSample < 3 {
		return fmt.Errorf("lid: MaxSample must be at least 3, got %d", o.MaxSample)
	}
	if !(o.TailFraction > 0 && o.TailFraction <= 1) {
		return fmt.Errorf("lid: TailFraction must be in (0,1], got %v", o.TailFraction)
	}
	if o.FitPoints < 2 {
		return fmt.Errorf("lid: FitPoints must be at least 2, got %d", o.FitPoints)
	}
	return nil
}

// pairwiseDistances returns the sorted positive pairwise distances of a
// deterministic subsample of the dataset.
func pairwiseDistances(points [][]float64, metric vecmath.Metric, opts PairwiseOptions) ([]float64, error) {
	if metric == nil {
		return nil, errors.New("lid: nil metric")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(points) < 2 {
		return nil, errors.New("lid: need at least 2 points")
	}
	sample := points
	if len(points) > opts.MaxSample {
		rng := rand.New(rand.NewSource(opts.Seed))
		perm := rng.Perm(len(points))
		sample = make([][]float64, opts.MaxSample)
		for i := 0; i < opts.MaxSample; i++ {
			sample[i] = points[perm[i]]
		}
	}
	dists := make([]float64, 0, len(sample)*(len(sample)-1)/2)
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample); j++ {
			if d := metric.Distance(sample[i], sample[j]); d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return nil, errors.New("lid: all pairwise distances are zero")
	}
	sort.Float64s(dists)
	return dists, nil
}

// GrassbergerProcaccia estimates the correlation dimension by fitting a line
// to log C(r) versus log r over the smallest pairwise distances, where
// C(r) is the fraction of pairs within distance r (Grassberger & Procaccia
// 1983; paper Section 6).
func GrassbergerProcaccia(points [][]float64, metric vecmath.Metric, opts PairwiseOptions) (float64, error) {
	dists, err := pairwiseDistances(points, metric, opts)
	if err != nil {
		return 0, err
	}
	m := len(dists)
	tail := int(float64(m) * opts.TailFraction)
	if tail < opts.FitPoints {
		tail = opts.FitPoints
	}
	if tail > m {
		tail = m
	}
	// Sample radii at log-spaced ranks within the tail; C(r) at the
	// radius of rank i is (i+1)/m.
	xs := make([]float64, 0, opts.FitPoints)
	ys := make([]float64, 0, opts.FitPoints)
	for j := 0; j < opts.FitPoints; j++ {
		frac := math.Exp(float64(j) / float64(opts.FitPoints-1) * math.Log(float64(tail)))
		rank := int(frac) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= m {
			rank = m - 1
		}
		r := dists[rank]
		if r <= 0 {
			continue
		}
		x := math.Log(r)
		if len(xs) > 0 && x == xs[len(xs)-1] {
			continue // duplicate radius from tied distances
		}
		xs = append(xs, x)
		ys = append(ys, math.Log(float64(rank+1)/float64(m)))
	}
	if len(xs) < 2 {
		return 0, errors.New("lid: distance distribution too degenerate for a GP fit")
	}
	line, err := fitSlope(xs, ys)
	if err != nil {
		return 0, err
	}
	return line, nil
}

// Takens estimates the correlation dimension with the Takens (1985) maximum
// likelihood estimator: over all pairwise distances below a small threshold
// r, CD = −1 / ⟨ln(d_ij / r)⟩ (paper Section 6).
func Takens(points [][]float64, metric vecmath.Metric, opts PairwiseOptions) (float64, error) {
	dists, err := pairwiseDistances(points, metric, opts)
	if err != nil {
		return 0, err
	}
	m := len(dists)
	cut := int(float64(m) * opts.TailFraction)
	if cut < 2 {
		cut = 2
	}
	if cut > m {
		cut = m
	}
	r := dists[cut-1]
	if r <= 0 {
		return 0, errors.New("lid: zero threshold radius")
	}
	var sum float64
	var terms int
	for _, d := range dists[:cut] {
		if d >= r {
			continue // ln(1) terms carry no information
		}
		sum += math.Log(d / r)
		terms++
	}
	if terms == 0 || sum == 0 {
		return 0, errors.New("lid: distance distribution too degenerate for Takens")
	}
	return -float64(terms) / sum, nil
}

// fitSlope returns the least-squares slope of ys against xs.
func fitSlope(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, errors.New("lid: degenerate fit")
	}
	return sxy / sxx, nil
}
