// Package lid implements the intrinsic-dimensionality machinery of the
// paper: the generalized expansion dimension (GED, Section 3.2), its
// dataset-wide maximum (MaxGED, the exactness threshold of Theorem 1), and
// the three practical estimators of Section 6 used to choose the scale
// parameter t automatically — the MLE (Hill) estimator of local intrinsic
// dimensionality, the Grassberger-Procaccia correlation-dimension algorithm,
// and the Takens estimator.
package lid

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/vecmath"
)

// GED returns the generalized expansion dimension determined by two
// concentric neighborhood balls: ranks k1 < k2 at radii r1 < r2,
//
//	GED = log(k2/k1) / log(r2/r1).
//
// It returns an error when the rank or radius pairs are not strictly
// increasing and positive.
func GED(k1, k2 int, r1, r2 float64) (float64, error) {
	if k1 <= 0 || k2 <= k1 {
		return 0, fmt.Errorf("lid: GED needs 0 < k1 < k2, got %d, %d", k1, k2)
	}
	if !(r1 > 0) || r2 <= r1 {
		return 0, fmt.Errorf("lid: GED needs 0 < r1 < r2, got %g, %g", r1, r2)
	}
	return math.Log(float64(k2)/float64(k1)) / math.Log(r2/r1), nil
}

// MaxGED computes the maximum generalized expansion dimension of the point
// set for neighborhood size k, following the paper's definition:
//
//	MaxGED(S,k) = max over q ∈ S and k < s ≤ |S| with d_k(q) ≠ d_s(q) of
//	              GED(B(q, d_s(q)), B(q, d_k(q))).
//
// Ranks are inclusive of the center (the paper's ball-count convention, so
// d_1(q) = 0 for q ∈ S). Theorem 1 guarantees that RDT with t ≥
// MaxGED(S ∪ {q}, k) returns the exact reverse k-NN result.
//
// The computation is Θ(n² log n); it exists as the reference oracle for the
// Theorem 1 property tests and the MaxGED ablation, not for production use —
// Section 6 of the paper explains why direct MaxGED estimation is
// impractical and substitutes the ID estimators in this package.
func MaxGED(points [][]float64, metric vecmath.Metric, k int) (float64, error) {
	n := len(points)
	if metric == nil {
		return 0, errors.New("lid: nil metric")
	}
	if k <= 0 {
		return 0, fmt.Errorf("lid: k must be positive, got %d", k)
	}
	if n <= k {
		return 0, fmt.Errorf("lid: need more than k=%d points, got %d", k, n)
	}
	maxGED := 0.0
	dists := make([]float64, n)
	for qi := range points {
		for j := range points {
			dists[j] = metric.Distance(points[qi], points[j])
		}
		sort.Float64s(dists)
		// dists[i] is d_{i+1}(q) under inclusive ranks (dists[0] = 0,
		// the center itself).
		dk := dists[k-1]
		if dk <= 0 {
			// A zero-radius inner ball (duplicates of the center out
			// to rank k) admits no GED test at this center.
			continue
		}
		for s := k + 1; s <= n; s++ {
			ds := dists[s-1]
			if ds == dk {
				continue
			}
			g := math.Log(float64(s)/float64(k)) / math.Log(ds/dk)
			if g > maxGED {
				maxGED = g
			}
		}
	}
	return maxGED, nil
}
