package lid

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/indextest"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func scanIndex(t *testing.T, pts [][]float64) *scan.Index {
	t.Helper()
	ix, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatalf("scan.New: %v", err)
	}
	return ix
}

func TestGEDKnownValues(t *testing.T) {
	// Doubling the radius and quadrupling the count is dimension 2.
	g, err := GED(10, 40, 1, 2)
	if err != nil {
		t.Fatalf("GED: %v", err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Errorf("GED = %g, want 2", g)
	}
	// Count growth of 2^d over a doubling is dimension d.
	g, err = GED(5, 40, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-3) > 1e-12 {
		t.Errorf("GED = %g, want 3", g)
	}
}

func TestGEDValidation(t *testing.T) {
	cases := []struct {
		k1, k2 int
		r1, r2 float64
	}{
		{0, 5, 1, 2},
		{5, 5, 1, 2},
		{5, 4, 1, 2},
		{5, 10, 0, 2},
		{5, 10, 2, 2},
		{5, 10, 3, 2},
	}
	for _, tc := range cases {
		if _, err := GED(tc.k1, tc.k2, tc.r1, tc.r2); err == nil {
			t.Errorf("GED(%d,%d,%g,%g) succeeded, want error", tc.k1, tc.k2, tc.r1, tc.r2)
		}
	}
}

func TestMaxGEDValidation(t *testing.T) {
	pts := indextest.RandPoints(10, 2, 1)
	if _, err := MaxGED(pts, nil, 2); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := MaxGED(pts, vecmath.Euclidean{}, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := MaxGED(pts, vecmath.Euclidean{}, 10); err == nil {
		t.Error("accepted k >= n")
	}
}

// TestMaxGEDDominatesLocalTests checks the defining property: MaxGED is an
// upper bound for every individual dimensional test at kNN-distance radii.
func TestMaxGEDDominatesLocalTests(t *testing.T) {
	pts := indextest.ClusteredPoints(80, 3, 4, 7)
	metric := vecmath.Euclidean{}
	k := 4
	maxged, err := MaxGED(pts, metric, k)
	if err != nil {
		t.Fatal(err)
	}
	if maxged <= 0 {
		t.Fatalf("MaxGED = %g, want positive", maxged)
	}
	// Recompute a handful of individual tests and compare.
	ix := scanIndex(t, pts)
	for qi := 0; qi < 10; qi++ {
		nn := ix.KNN(pts[qi], len(pts), -1) // self included at rank 1
		dk := nn[k-1].Dist
		if dk <= 0 {
			continue
		}
		for s := k + 1; s <= len(nn); s += 7 {
			ds := nn[s-1].Dist
			if ds == dk {
				continue
			}
			g := math.Log(float64(s)/float64(k)) / math.Log(ds/dk)
			if g > maxged+1e-9 {
				t.Fatalf("local GED %g exceeds MaxGED %g", g, maxged)
			}
		}
	}
}

// TestMLERecoverUniformDimension checks the Hill estimator against data of
// known intrinsic dimensionality: the d-dimensional uniform cube.
func TestMLERecoverUniformDimension(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		ds := dataset.Uniform("u", 2000, d, int64(d))
		ix := scanIndex(t, ds.Points)
		got, err := MLE(ix, MLEOptions{SampleFraction: 0.05, Neighbors: 100, Seed: 1})
		if err != nil {
			t.Fatalf("MLE: %v", err)
		}
		if got < float64(d)*0.6 || got > float64(d)*1.5 {
			t.Errorf("MLE on uniform %d-cube = %.2f, want within [%.1f, %.1f]",
				d, got, float64(d)*0.6, float64(d)*1.5)
		}
	}
}

// TestMLEManifoldIgnoresAmbientDimension checks that the estimate tracks the
// latent dimension of an embedded manifold, not the representational one —
// the property the whole paper rests on.
func TestMLEManifoldIgnoresAmbientDimension(t *testing.T) {
	ds := dataset.Manifold("m", 2000, 2, 40, 0.001, 3)
	ix := scanIndex(t, ds.Points)
	got, err := MLE(ix, MLEOptions{SampleFraction: 0.05, Neighbors: 100, Seed: 1})
	if err != nil {
		t.Fatalf("MLE: %v", err)
	}
	if got > 8 {
		t.Errorf("MLE on 2-manifold in R^40 = %.2f, want well below ambient 40", got)
	}
	if got < 1 {
		t.Errorf("MLE on 2-manifold = %.2f, want at least 1", got)
	}
}

func TestMLEValidation(t *testing.T) {
	ix := scanIndex(t, indextest.RandPoints(50, 2, 1))
	if _, err := MLE(nil, DefaultMLEOptions()); err == nil {
		t.Error("accepted nil index")
	}
	if _, err := MLE(ix, MLEOptions{SampleFraction: 0, Neighbors: 10}); err == nil {
		t.Error("accepted zero sample fraction")
	}
	if _, err := MLE(ix, MLEOptions{SampleFraction: 2, Neighbors: 10}); err == nil {
		t.Error("accepted sample fraction above 1")
	}
	if _, err := MLE(ix, MLEOptions{SampleFraction: 0.5, Neighbors: 1}); err == nil {
		t.Error("accepted single-neighbor estimation")
	}
}

func TestCorrelationDimensionEstimators(t *testing.T) {
	for _, tc := range []struct {
		name   string
		latent int
		points [][]float64
	}{
		{"uniform-2d", 2, dataset.Uniform("u2", 1500, 2, 5).Points},
		{"manifold-2-in-20", 2, dataset.Manifold("m", 1500, 2, 20, 0.001, 6).Points},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultPairwiseOptions()
			gp, err := GrassbergerProcaccia(tc.points, vecmath.Euclidean{}, opts)
			if err != nil {
				t.Fatalf("GP: %v", err)
			}
			tk, err := Takens(tc.points, vecmath.Euclidean{}, opts)
			if err != nil {
				t.Fatalf("Takens: %v", err)
			}
			lo, hi := float64(tc.latent)*0.5, float64(tc.latent)*2.0
			if gp < lo || gp > hi {
				t.Errorf("GP = %.2f, want within [%.1f, %.1f]", gp, lo, hi)
			}
			if tk < lo || tk > hi {
				t.Errorf("Takens = %.2f, want within [%.1f, %.1f]", tk, lo, hi)
			}
		})
	}
}

func TestPairwiseValidation(t *testing.T) {
	pts := indextest.RandPoints(20, 2, 1)
	if _, err := GrassbergerProcaccia(pts, nil, DefaultPairwiseOptions()); err == nil {
		t.Error("accepted nil metric")
	}
	bad := DefaultPairwiseOptions()
	bad.MaxSample = 1
	if _, err := GrassbergerProcaccia(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted MaxSample=1")
	}
	bad = DefaultPairwiseOptions()
	bad.TailFraction = 0
	if _, err := Takens(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted zero tail fraction")
	}
	if _, err := Takens([][]float64{{1}}, vecmath.Euclidean{}, DefaultPairwiseOptions()); err == nil {
		t.Error("accepted single point")
	}
	// All-duplicate data has no positive pairwise distances.
	dup := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if _, err := Takens(dup, vecmath.Euclidean{}, DefaultPairwiseOptions()); err == nil {
		t.Error("accepted all-duplicate data")
	}
}
