package tpl

import (
	"reflect"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/indextest"
	"repro/internal/rtree"
	"repro/internal/vecmath"
)

func buildQuerier(t *testing.T, pts [][]float64, k int) *Querier {
	t.Helper()
	rt, err := rtree.New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatalf("rtree.New: %v", err)
	}
	qr, err := New(rt, k)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return qr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("accepted nil tree")
	}
	rt, err := rtree.New(indextest.RandPoints(10, 2, 1), vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(rt, 0); err == nil {
		t.Error("accepted k=0")
	}
}

// TestExactnessLowDim exercises the exact corner test (dim <= 8).
func TestExactnessLowDim(t *testing.T) {
	for _, k := range []int{1, 4, 10} {
		pts := indextest.ClusteredPoints(220, 3, 6, int64(k))
		qr := buildQuerier(t, pts, k)
		truth, err := bruteforce.New(pts, vecmath.Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		for qid := 0; qid < 20; qid++ {
			got, err := qr.ByID(qid)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			want, err := truth.RkNNByID(qid, k)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got.IDs, want) {
				t.Errorf("k=%d qid=%d: got %v, want %v", k, qid, got.IDs, want)
			}
		}
	}
}

// TestExactnessHighDim exercises the conservative max-distance test
// (dim > cornerTestMaxDim).
func TestExactnessHighDim(t *testing.T) {
	pts := indextest.RandPoints(180, 12, 4)
	k := 5
	qr := buildQuerier(t, pts, k)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for qid := 0; qid < 15; qid++ {
		got, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got.IDs, want) {
			t.Errorf("qid=%d: got %v, want %v", qid, got.IDs, want)
		}
	}
}

func TestExternalQuery(t *testing.T) {
	pts := indextest.RandPoints(150, 3, 9)
	k := 3
	qr := buildQuerier(t, pts, k)
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.2, 0.8, 0.5}
	got, err := qr.ByPoint(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.RkNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got.IDs, want) {
		t.Errorf("external: got %v, want %v", got.IDs, want)
	}
	if _, err := qr.ByPoint([]float64{1}); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := qr.ByID(-1); err == nil {
		t.Error("accepted negative qid")
	}
	if _, err := qr.ByID(150); err == nil {
		t.Error("accepted out-of-range qid")
	}
}

// TestPruningActuallyHappens guards against the pruning degenerating to a
// full scan on well-separated clustered data.
func TestPruningActuallyHappens(t *testing.T) {
	pts := indextest.ClusteredPoints(600, 2, 12, 3)
	qr := buildQuerier(t, pts, 2)
	res, err := qr.ByID(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesPruned == 0 && res.Stats.PointsPruned == 0 {
		t.Error("no pruning occurred on clustered 2-D data")
	}
	if res.Stats.Candidates >= len(pts) {
		t.Errorf("candidate set did not shrink: %d of %d", res.Stats.Candidates, len(pts))
	}
	if res.Stats.Verified != res.Stats.Candidates {
		t.Errorf("verified %d != candidates %d", res.Stats.Verified, res.Stats.Candidates)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
