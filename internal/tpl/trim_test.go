package tpl

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/indextest"
	"repro/internal/rtree"
	"repro/internal/vecmath"
)

func TestMaxBoxDistance(t *testing.T) {
	lo := []float64{0, 0}
	hi := []float64{2, 2}
	// From the origin corner, the farthest box point is (2,2).
	if got := maxBoxDistance(vecmath.Euclidean{}, []float64{0, 0}, lo, hi); math.Abs(got-2*math.Sqrt2) > 1e-12 {
		t.Errorf("maxBoxDistance from corner = %g, want %g", got, 2*math.Sqrt2)
	}
	// From the center, any corner is farthest.
	if got := maxBoxDistance(vecmath.Euclidean{}, []float64{1, 1}, lo, hi); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("maxBoxDistance from center = %g, want %g", got, math.Sqrt2)
	}
	// From far outside, the near/far corners differ per coordinate.
	if got := maxBoxDistance(vecmath.Euclidean{}, []float64{5, 1}, lo, hi); math.Abs(got-math.Hypot(5, 1)) > 1e-12 {
		t.Errorf("maxBoxDistance outside = %g, want %g", got, math.Hypot(5, 1))
	}
}

func TestBoxBehindBisectorCornerCases(t *testing.T) {
	pts := indextest.RandPoints(100, 2, 1)
	rt, err := rtree.New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := New(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	cand := []float64{10, 10}
	// A box hugging the candidate is entirely on its side.
	if !qr.boxBehindBisector(q, cand, []float64{9, 9}, []float64{11, 11}) {
		t.Error("box around candidate not recognized as behind the bisector")
	}
	// A box hugging the query is not.
	if qr.boxBehindBisector(q, cand, []float64{-1, -1}, []float64{1, 1}) {
		t.Error("box around query wrongly pruned")
	}
	// A box straddling the bisector is not prunable.
	if qr.boxBehindBisector(q, cand, []float64{4, 4}, []float64{6, 6}) {
		t.Error("straddling box wrongly pruned")
	}
}

// TestHighDimConservativeAgreesWithCornerTest cross-validates the two
// MBR-pruning tests: whenever the conservative max-distance test prunes,
// the exact corner test must also prune (never vice versa being required).
func TestHighDimConservativeAgreesWithCornerTest(t *testing.T) {
	pts := indextest.RandPoints(50, 3, 9)
	rt, err := rtree.New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := New(rt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := indextest.RandPoints(1, 3, int64(trial))[0]
		cand := indextest.RandPoints(1, 3, int64(trial+1000))[0]
		lo := indextest.RandPoints(1, 3, int64(trial+2000))[0]
		hi := []float64{lo[0] + 0.3, lo[1] + 0.3, lo[2] + 0.3}
		conservative := maxBoxDistance(qr.metric, cand, lo, hi) < qr.boxer.BoxDistance(q, lo, hi)
		exact := qr.allCornersCloser(q, cand, lo, hi, 0, make([]float64, 3))
		if conservative && !exact {
			t.Fatalf("trial %d: conservative test pruned where corner test refuses", trial)
		}
	}
}

// TestDuplicateQueries exercises TPL with coincident points, where the
// bisector degenerates.
func TestDuplicateQueries(t *testing.T) {
	base := indextest.RandPoints(60, 2, 4)
	pts := append([][]float64{}, base...)
	for i := 0; i < 8; i++ {
		pts = append(pts, vecmath.Clone(base[0]))
	}
	rt, err := rtree.New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	qr, err := New(rt, k)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []int{0, 60, 30} {
		got, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs) != len(want) {
			t.Errorf("qid=%d with duplicates: got %v, want %v", qid, got.IDs, want)
		}
	}
}

func TestByPointValidation(t *testing.T) {
	pts := indextest.RandPoints(30, 2, 2)
	rt, err := rtree.New(pts, vecmath.Euclidean{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := New(rt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qr.ByPoint([]float64{math.NaN(), 0}); err == nil {
		t.Error("accepted NaN query")
	}
}
