// Package tpl implements the TPL baseline (Tao, Papadias, Lian: "Reverse
// kNN search in arbitrary dimensionality", VLDB 2004), the exact dynamic
// competitor in the paper's evaluation (Section 2.2).
//
// TPL performs a single best-first traversal of an R-tree ordered by
// distance to the query. Every retrieved point becomes a candidate and
// contributes a perpendicular bisector between itself and the query: any
// object (or whole bounding rectangle) lying on the far side of k or more
// candidate bisectors cannot have the query among its k nearest neighbors
// and is pruned ("k-trim"). Surviving candidates are settled in a
// refinement pass.
//
// Two MBR-versus-bisector tests are used, as in the half-space pruning
// literature: the exact convexity test over the 2^dim box corners when the
// dimensionality is small, and a conservative max-distance test otherwise.
// Both only ever prune rectangles that are certainly on the candidate's
// side, so the result stays exact; the paper's own pruning is tighter but
// shares the guarantee. Refinement verifies candidates with one forward kNN
// query each instead of TPL's in-tree counting, which keeps the semantics
// identical to the other methods in this repository.
package tpl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/rtree"
	"repro/internal/vecmath"
)

// cornerTestMaxDim bounds the dimensionality for the exact 2^dim corner
// test; beyond it the conservative distance test is used.
const cornerTestMaxDim = 8

// Querier answers exact RkNN queries with the TPL strategy over an R-tree.
type Querier struct {
	rt     *rtree.Tree
	metric vecmath.Metric
	boxer  vecmath.BoxDistancer
	k      int
}

// Stats reports the work one query performed.
type Stats struct {
	// NodesPruned counts subtrees cut by accumulated bisectors.
	NodesPruned int
	// PointsPruned counts points cut by accumulated bisectors.
	PointsPruned int
	// Candidates counts points that survived trimming.
	Candidates int
	// Verified counts refinement kNN queries (every candidate).
	Verified int
}

// Result is the answer to one query.
type Result struct {
	IDs   []int
	Stats Stats
}

// New builds a TPL querier for neighbor rank k over an existing R-tree.
func New(rt *rtree.Tree, k int) (*Querier, error) {
	if rt == nil {
		return nil, errors.New("tpl: nil R-tree")
	}
	if k <= 0 {
		return nil, fmt.Errorf("tpl: k must be positive, got %d", k)
	}
	boxer, ok := rt.Metric().(vecmath.BoxDistancer)
	if !ok {
		return nil, errors.New("tpl: metric cannot bound box distances")
	}
	return &Querier{rt: rt, metric: rt.Metric(), boxer: boxer, k: k}, nil
}

// ByID answers the query for dataset member qid.
func (qr *Querier) ByID(qid int) (*Result, error) {
	if qid < 0 || qid >= qr.rt.Len() {
		return nil, fmt.Errorf("tpl: query id %d out of range [0,%d)", qid, qr.rt.Len())
	}
	return qr.run(qr.rt.Point(qid), qid), nil
}

// ByPoint answers the query for an arbitrary point.
func (qr *Querier) ByPoint(q []float64) (*Result, error) {
	if err := vecmath.ValidateFor(qr.metric, q); err != nil {
		return nil, err
	}
	if len(q) != qr.rt.Dim() {
		return nil, vecmath.ErrDimensionMismatch
	}
	return qr.run(q, -1), nil
}

// heapItem is a pending subtree or point ordered by distance to the query.
type heapItem struct {
	view rtree.NodeView
	isPt bool
	id   int
	dist float64
}

func (qr *Querier) run(q []float64, skipID int) *Result {
	var res Result
	var candidates []index.Neighbor // trimmed-in points, in retrieval order

	pq := pqueue.NewMin[heapItem](64)
	rootView := qr.rt.Root()
	pq.Push(0, heapItem{view: rootView})

	for {
		it, ok := pq.Pop()
		if !ok {
			break
		}
		h := it.Value
		if h.isPt {
			if qr.countTrims(q, qr.rt.Point(h.id), h.dist, candidates) >= qr.k {
				res.Stats.PointsPruned++
				continue
			}
			candidates = append(candidates, index.Neighbor{ID: h.id, Dist: h.dist})
			continue
		}
		v := h.view
		for i := 0; i < v.NumEntries(); i++ {
			if v.IsLeaf() {
				id := v.EntryID(i)
				if id == skipID {
					continue
				}
				d := qr.metric.Distance(q, qr.rt.Point(id))
				pq.Push(d, heapItem{isPt: true, id: id, dist: d})
				continue
			}
			lo, hi := v.EntryMBR(i)
			if qr.countBoxTrims(q, lo, hi, candidates) >= qr.k {
				res.Stats.NodesPruned++
				continue
			}
			pq.Push(qr.boxer.BoxDistance(q, lo, hi), heapItem{view: v.EntryChild(i)})
		}
	}

	res.Stats.Candidates = len(candidates)
	for _, c := range candidates {
		res.Stats.Verified++
		if qr.verify(c) {
			res.IDs = append(res.IDs, c.ID)
		}
	}
	sort.Ints(res.IDs)
	return &res
}

// countTrims counts candidates strictly closer to p than the query is; k of
// them certify that p is not a reverse neighbor.
func (qr *Querier) countTrims(q, p []float64, dq float64, candidates []index.Neighbor) int {
	count := 0
	for _, c := range candidates {
		if qr.metric.Distance(p, qr.rt.Point(c.ID)) < dq {
			count++
			if count >= qr.k {
				return count
			}
		}
	}
	return count
}

// countBoxTrims counts candidates whose bisector certainly separates the
// whole box from the query: every point of the box is strictly closer to
// the candidate than to the query.
func (qr *Querier) countBoxTrims(q, lo, hi []float64, candidates []index.Neighbor) int {
	count := 0
	for _, c := range candidates {
		if qr.boxBehindBisector(q, qr.rt.Point(c.ID), lo, hi) {
			count++
			if count >= qr.k {
				return count
			}
		}
	}
	return count
}

// boxBehindBisector reports whether every point of [lo,hi] is strictly
// closer to cand than to q.
func (qr *Querier) boxBehindBisector(q, cand, lo, hi []float64) bool {
	if _, euclidean := qr.metric.(vecmath.Euclidean); euclidean && len(q) <= cornerTestMaxDim {
		// Exact test, Euclidean only: {x : d(x,cand) < d(x,q)} is an
		// open half-space there (hence convex), so it contains the box
		// iff it contains every corner. Under other metrics the
		// closer-to-cand region is not convex and the test is unsound.
		return qr.allCornersCloser(q, cand, lo, hi, 0, make([]float64, len(q)))
	}
	// Conservative metric-agnostic test: the farthest box point from cand
	// must still be closer to cand than the nearest box point is to q.
	return maxBoxDistance(qr.metric, cand, lo, hi) < qr.boxer.BoxDistance(q, lo, hi)
}

func (qr *Querier) allCornersCloser(q, cand, lo, hi []float64, dim int, corner []float64) bool {
	if dim == len(q) {
		return qr.metric.Distance(corner, cand) < qr.metric.Distance(corner, q)
	}
	corner[dim] = lo[dim]
	if !qr.allCornersCloser(q, cand, lo, hi, dim+1, corner) {
		return false
	}
	corner[dim] = hi[dim]
	return qr.allCornersCloser(q, cand, lo, hi, dim+1, corner)
}

// maxBoxDistance upper-bounds the distance from p to any point of the box
// by the distance to the per-coordinate farthest corner. Exact for Lp
// metrics.
func maxBoxDistance(metric vecmath.Metric, p []float64, lo, hi []float64) float64 {
	far := make([]float64, len(p))
	for j := range p {
		if math.Abs(p[j]-lo[j]) >= math.Abs(p[j]-hi[j]) {
			far[j] = lo[j]
		} else {
			far[j] = hi[j]
		}
	}
	return metric.Distance(p, far)
}

// verify settles a candidate with one forward kNN query against the tree.
func (qr *Querier) verify(c index.Neighbor) bool {
	nn := qr.rt.KNN(qr.rt.Point(c.ID), qr.k, c.ID)
	if len(nn) < qr.k {
		return true
	}
	return nn[len(nn)-1].Dist >= c.Dist
}
