package lsh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/vecmath"
)

// Structure codec: the LSH index's native state — quantization width,
// projection vectors, offsets, and the fully materialized bucket maps —
// serialized so a persisted index restores by reattaching buckets to the
// stored point rows with zero hash computations (pinned by the HashCalls
// counter tests) instead of re-projecting every point. The blob is embedded
// as the backend-native section of a snapshot (internal/persist); the
// decoder validates every structural invariant it can check without
// hashing, and malformed blobs yield an error (never a panic) so callers
// can fall back to a re-hashing rebuild.
//
// Layout, little-endian:
//
//	u8  version = 1
//	f64 width
//	u32 tables (L) | u32 hashes (M) | u32 dim | u64 point count
//	per table:
//	  M × dim f64 projection coordinates
//	  M × f64 offsets
//	  u32 bucket count
//	  per bucket: M*8 key bytes | u32 id count | ids as u32
//
// Bucket keys are fixed-width (M quantized projections, 8 bytes each, the
// same encoding appendKey produces), and buckets are written in sorted key
// order so identical indexes encode identically.

const codecVersion = 1

// Caps on decoded shape, far above any real configuration, so a corrupt
// count fails validation instead of requesting an absurd allocation.
const (
	maxTables = 1 << 10
	maxHashes = 1 << 10
)

// EncodeStructure serializes the index's native structure. The tombstone
// set is deliberately not included — persist stores it backend-independently
// — so the blob is a pure function of the hash tables.
func (ix *Index) EncodeStructure() []byte {
	keyLen := ix.hashes * 8
	size := 1 + 8 + 4 + 4 + 4 + 8
	for ti := range ix.tables {
		size += ix.hashes*ix.dim*8 + ix.hashes*8 + 4
		size += len(ix.tables[ti].buckets) * (keyLen + 4)
		size += len(ix.points) * 4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ix.width))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ix.tables)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.hashes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ix.points)))
	for ti := range ix.tables {
		t := &ix.tables[ti]
		for _, a := range t.projs {
			for _, x := range a {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
			}
		}
		for _, b := range t.offsets {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
		}
		keys := make([]string, 0, len(t.buckets))
		for key := range t.buckets {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
		for _, key := range keys {
			buf = append(buf, key...)
			ids := t.buckets[key]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
			for _, id := range ids {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
			}
		}
	}
	return buf
}

// Restore rebuilds an index from its point rows, tombstoned IDs, and an
// encoded structure, without a single hash computation — the buckets come
// straight from the blob, so the restored index produces byte-identical
// candidate sets to the one that was saved. It validates that the structure
// is well-formed (every point bucketed exactly once per table, IDs in
// range, finite parameters) and returns an error (never panics) on
// malformed input, so callers can fall back to a re-hashing rebuild.
func Restore(points [][]float64, metric vecmath.Metric, deleted []int, structure []byte) (*Index, error) {
	if metric == nil {
		return nil, errors.New("lsh: nil metric")
	}
	if _, ok := metric.(vecmath.Euclidean); !ok {
		return nil, errors.New("lsh: only the Euclidean metric is supported")
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	ix, err := decodeStructure(points, structure)
	if err != nil {
		return nil, err
	}
	ix.metric = metric
	for _, id := range deleted {
		if id < 0 || id >= len(points) || ix.deleted[id] {
			return nil, fmt.Errorf("lsh: invalid tombstone id %d", id)
		}
		ix.deleted[id] = true
		ix.alive--
	}
	return ix, nil
}

// decoder walks the blob with bounds checks instead of panics.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, fmt.Errorf("lsh: structure field overruns blob (%d bytes at offset %d of %d)", n, d.off, len(d.b))
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) f64() (float64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// decodeStructure parses and validates the blob against the point rows.
func decodeStructure(points [][]float64, blob []byte) (*Index, error) {
	d := &decoder{b: blob}
	ver, err := d.take(1)
	if err != nil {
		return nil, err
	}
	if ver[0] != codecVersion {
		return nil, fmt.Errorf("lsh: unsupported structure version %d", ver[0])
	}
	width, err := d.f64()
	if err != nil {
		return nil, err
	}
	if !(width > 0) || math.IsInf(width, 1) {
		return nil, fmt.Errorf("lsh: structure width %v not positive and finite", width)
	}
	tables, err := d.u32()
	if err != nil {
		return nil, err
	}
	hashes, err := d.u32()
	if err != nil {
		return nil, err
	}
	dim, err := d.u32()
	if err != nil {
		return nil, err
	}
	count, err := d.u32x2()
	if err != nil {
		return nil, err
	}
	if tables == 0 || tables > maxTables {
		return nil, fmt.Errorf("lsh: structure table count %d out of range", tables)
	}
	if hashes == 0 || hashes > maxHashes {
		return nil, fmt.Errorf("lsh: structure hash count %d out of range", hashes)
	}
	if int(dim) != len(points[0]) {
		return nil, fmt.Errorf("lsh: structure dimension %d does not match points dimension %d", dim, len(points[0]))
	}
	if count != uint64(len(points)) {
		return nil, fmt.Errorf("lsh: structure of %d points does not match %d point rows", count, len(points))
	}

	ix := &Index{
		points:  points,
		dim:     int(dim),
		width:   width,
		hashes:  int(hashes),
		tables:  make([]table, tables),
		deleted: make(map[int]bool),
		alive:   len(points),
	}
	keyLen := int(hashes) * 8
	// seen[id] == table index + 1 marks id as bucketed in that table; one
	// allocation serves every table.
	seen := make([]uint32, len(points))
	for ti := range ix.tables {
		t := table{
			projs:   make([][]float64, hashes),
			offsets: make([]float64, hashes),
		}
		for h := range t.projs {
			a := make([]float64, dim)
			for j := range a {
				if a[j], err = d.f64(); err != nil {
					return nil, err
				}
				if math.IsNaN(a[j]) || math.IsInf(a[j], 0) {
					return nil, fmt.Errorf("lsh: structure table %d projection %d not finite", ti, h)
				}
			}
			t.projs[h] = a
		}
		for h := range t.offsets {
			if t.offsets[h], err = d.f64(); err != nil {
				return nil, err
			}
			if math.IsNaN(t.offsets[h]) || math.IsInf(t.offsets[h], 0) {
				return nil, fmt.Errorf("lsh: structure table %d offset %d not finite", ti, h)
			}
		}
		bucketCount, err := d.u32()
		if err != nil {
			return nil, err
		}
		// Each bucket needs at least its key, a count, and one ID.
		if remaining := len(d.b) - d.off; int64(bucketCount)*(int64(keyLen)+8) > int64(remaining) {
			return nil, fmt.Errorf("lsh: structure table %d claims %d buckets beyond blob size", ti, bucketCount)
		}
		t.buckets = make(map[string][]int, bucketCount)
		total := 0
		for bi := uint32(0); bi < bucketCount; bi++ {
			key, err := d.take(keyLen)
			if err != nil {
				return nil, err
			}
			idCount, err := d.u32()
			if err != nil {
				return nil, err
			}
			if idCount == 0 {
				return nil, fmt.Errorf("lsh: structure table %d has an empty bucket", ti)
			}
			if remaining := len(d.b) - d.off; int64(idCount)*4 > int64(remaining) {
				return nil, fmt.Errorf("lsh: structure table %d bucket claims %d ids beyond blob size", ti, idCount)
			}
			ids := make([]int, idCount)
			for i := range ids {
				id, err := d.u32()
				if err != nil {
					return nil, err
				}
				if uint64(id) >= count {
					return nil, fmt.Errorf("lsh: structure id %d out of range [0,%d)", id, count)
				}
				if seen[id] == uint32(ti)+1 {
					return nil, fmt.Errorf("lsh: structure table %d repeats id %d", ti, id)
				}
				seen[id] = uint32(ti) + 1
				ids[i] = int(id)
			}
			if _, dup := t.buckets[string(key)]; dup {
				return nil, fmt.Errorf("lsh: structure table %d repeats a bucket key", ti)
			}
			t.buckets[string(key)] = ids
			total += int(idCount)
		}
		if total != len(points) {
			return nil, fmt.Errorf("lsh: structure table %d buckets %d points, want %d", ti, total, len(points))
		}
		ix.tables[ti] = t
	}
	if d.off != len(blob) {
		return nil, fmt.Errorf("lsh: %d trailing bytes after structure", len(blob)-d.off)
	}
	return ix, nil
}

// u32x2 reads a u64 (two u32 halves, little-endian).
func (d *decoder) u32x2() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
