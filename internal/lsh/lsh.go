// Package lsh implements Euclidean locality-sensitive hashing (the E2LSH
// scheme of Datar et al., in the lineage of Gionis/Indyk/Motwani cited as
// [15] by the paper) as an *approximate* forward-kNN back-end.
//
// The paper's claim (iii) for RDT is that the algorithm "is able to make
// effective use of approximate neighbor rankings, and thus can be supported
// by recent efficient similarity search methods" such as LSH. This package
// makes that claim testable: it satisfies the index.Index contract but only
// streams the candidates colliding with the query in at least one of its
// hash tables, ranked by true distance. Queries through it are approximate;
// the integration tests and the ablation bench quantify the recall RDT+
// retains on top of it.
//
// Each of L tables hashes a point to the concatenation of M quantized
// random projections h(x) = ⌊(a·x + b)/w⌋. The bucket width w is tuned at
// build time from a sample of nearest-neighbor distances so that near
// neighbors tend to collide.
package lsh

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// Options configures table count and hash width.
type Options struct {
	// Tables is L, the number of independent hash tables. More tables
	// raise recall and cost.
	Tables int
	// Hashes is M, the number of projections concatenated per table.
	// More hashes shrink buckets (higher precision, lower recall).
	Hashes int
	// Width is the quantization width w; 0 selects it automatically
	// from a sample of nearest-neighbor distances.
	Width float64
	// Seed drives projection sampling.
	Seed int64
}

// DefaultOptions returns a configuration that reaches high candidate recall
// on the surrogate workloads while probing a small fraction of the data.
func DefaultOptions() Options {
	return Options{Tables: 12, Hashes: 6, Seed: 1}
}

func (o Options) validate() error {
	if o.Tables <= 0 {
		return fmt.Errorf("lsh: Tables must be positive, got %d", o.Tables)
	}
	if o.Hashes <= 0 {
		return fmt.Errorf("lsh: Hashes must be positive, got %d", o.Hashes)
	}
	if o.Width < 0 || math.IsNaN(o.Width) {
		return fmt.Errorf("lsh: Width must be non-negative, got %v", o.Width)
	}
	return nil
}

// table is one hash table: M projection vectors with offsets, and the
// bucket map.
type table struct {
	projs   [][]float64
	offsets []float64
	buckets map[string][]int
}

// Index is an approximate similarity index. It implements index.Index with
// candidate-set semantics: query results cover only hash collisions.
type Index struct {
	points [][]float64
	metric vecmath.Metric
	dim    int
	width  float64
	tables []table
}

var _ index.Index = (*Index)(nil)

// New builds the hash tables over points. Only the Euclidean metric is
// supported (the projections quantize L2 geometry).
func New(points [][]float64, metric vecmath.Metric, opts Options) (*Index, error) {
	if metric == nil {
		return nil, errors.New("lsh: nil metric")
	}
	if _, ok := metric.(vecmath.Euclidean); !ok {
		return nil, errors.New("lsh: only the Euclidean metric is supported")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := vecmath.ValidateAll(points); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ix := &Index{points: points, metric: metric, dim: len(points[0])}

	ix.width = opts.Width
	if ix.width == 0 {
		ix.width = autoWidth(points, metric, rng)
	}

	ix.tables = make([]table, opts.Tables)
	for ti := range ix.tables {
		t := table{
			projs:   make([][]float64, opts.Hashes),
			offsets: make([]float64, opts.Hashes),
			buckets: make(map[string][]int),
		}
		for h := 0; h < opts.Hashes; h++ {
			a := make([]float64, ix.dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			t.projs[h] = a
			t.offsets[h] = rng.Float64() * ix.width
		}
		for id, p := range points {
			key := t.key(p, ix.width)
			t.buckets[key] = append(t.buckets[key], id)
		}
		ix.tables[ti] = t
	}
	return ix, nil
}

// autoWidth picks w as a multiple of the median nearest-neighbor distance
// of a sample, so that true near neighbors usually share a bucket cell.
func autoWidth(points [][]float64, metric vecmath.Metric, rng *rand.Rand) float64 {
	const sample = 64
	n := len(points)
	dists := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		a := points[rng.Intn(n)]
		best := math.Inf(1)
		// Nearest among a random subsample: cheap and close enough for
		// a bucket-width heuristic.
		for j := 0; j < 128; j++ {
			b := points[rng.Intn(n)]
			if d := metric.Distance(a, b); d > 0 && d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, best)
		}
	}
	if len(dists) == 0 {
		return 1 // duplicate-only data: any width works
	}
	sort.Float64s(dists)
	w := 4 * dists[len(dists)/2]
	if w <= 0 {
		return 1
	}
	return w
}

// key computes the bucket key of p: the concatenated quantized projections.
func (t *table) key(p []float64, width float64) string {
	buf := make([]byte, 0, len(t.projs)*4)
	for h, a := range t.projs {
		v := int64(math.Floor((vecmath.Dot(a, p) + t.offsets[h]) / width))
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Builder constructs LSH indexes with default options; it implements
// index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric, DefaultOptions())
}

// Name implements index.Builder.
func (Builder) Name() string { return "lsh" }

// Len implements index.Index.
func (ix *Index) Len() int { return len(ix.points) }

// Dim implements index.Index.
func (ix *Index) Dim() int { return ix.dim }

// Point implements index.Index.
func (ix *Index) Point(id int) []float64 { return ix.points[id] }

// Metric implements index.Index.
func (ix *Index) Metric() vecmath.Metric { return ix.metric }

// Width returns the quantization width in effect.
func (ix *Index) Width() float64 { return ix.width }

// candidates returns the IDs colliding with q in any table, deduplicated.
func (ix *Index) candidates(q []float64, skipID int) []int {
	seen := make(map[int]bool)
	var out []int
	for ti := range ix.tables {
		t := &ix.tables[ti]
		for _, id := range t.buckets[t.key(q, ix.width)] {
			if id == skipID || seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// NewCursor implements index.Index over the candidate set: the stream is in
// exact ascending distance order but covers only hash collisions, so it may
// end before the dataset is exhausted — the approximate-ranking regime the
// paper's claim (iii) is about.
func (ix *Index) NewCursor(q []float64, skipID int) index.Cursor {
	cands := ix.candidates(q, skipID)
	ready := pqueue.NewMin[int](len(cands))
	for _, id := range cands {
		ready.Push(ix.metric.Distance(q, ix.points[id]), id)
	}
	return &cursor{ready: ready}
}

type cursor struct{ ready *pqueue.Min[int] }

func (c *cursor) Next() (index.Neighbor, bool) {
	it, ok := c.ready.Pop()
	if !ok {
		return index.Neighbor{}, false
	}
	return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
}

// KNN implements index.Index over the candidate set (approximate).
func (ix *Index) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	top := pqueue.NewTopK[int](k)
	for _, id := range ix.candidates(q, skipID) {
		top.Offer(ix.metric.Distance(q, ix.points[id]), id)
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index over the candidate set (approximate).
func (ix *Index) Range(q []float64, r float64, skipID int) []index.Neighbor {
	var out []index.Neighbor
	for _, id := range ix.candidates(q, skipID) {
		if d := ix.metric.Distance(q, ix.points[id]); d <= r {
			out = append(out, index.Neighbor{ID: id, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index over the candidate set (approximate).
func (ix *Index) CountRange(q []float64, r float64, skipID int) int {
	count := 0
	for _, id := range ix.candidates(q, skipID) {
		if ix.metric.Distance(q, ix.points[id]) <= r {
			count++
		}
	}
	return count
}
