// Package lsh implements Euclidean locality-sensitive hashing (the E2LSH
// scheme of Datar et al., in the lineage of Gionis/Indyk/Motwani cited as
// [15] by the paper) as an *approximate* forward-kNN back-end.
//
// The paper's claim (iii) for RDT is that the algorithm "is able to make
// effective use of approximate neighbor rankings, and thus can be supported
// by recent efficient similarity search methods" such as LSH. This package
// makes that claim testable: it satisfies the index.Index contract but only
// streams the candidates colliding with the query in at least one of its
// hash tables, ranked by true distance. Queries through it are approximate;
// the integration tests and the ablation bench quantify the recall RDT+
// retains on top of it.
//
// Each of L tables hashes a point to the concatenation of M quantized
// random projections h(x) = ⌊(a·x + b)/w⌋. The bucket width w is tuned at
// build time from a sample of nearest-neighbor distances so that near
// neighbors tend to collide.
//
// The index is dynamic (index.Cloner): Insert hashes the new point into
// every table, Delete tombstones an ID in place, and Clone produces an
// O(n)-amortized copy-on-write copy — bucket ID slices are shared between
// clones and replaced (never appended in place) on insert — so the facade's
// snapshot machinery serves LSH exactly like the exact dynamic back-ends.
package lsh

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// Options configures table count and hash width.
type Options struct {
	// Tables is L, the number of independent hash tables. More tables
	// raise recall and cost.
	Tables int
	// Hashes is M, the number of projections concatenated per table.
	// More hashes shrink buckets (higher precision, lower recall).
	Hashes int
	// Width is the quantization width w; 0 selects it automatically
	// from a sample of nearest-neighbor distances.
	Width float64
	// Seed drives projection sampling.
	Seed int64
}

// DefaultOptions returns a configuration that reaches high candidate recall
// on the surrogate workloads while probing a small fraction of the data.
func DefaultOptions() Options {
	return Options{Tables: 12, Hashes: 6, Seed: 1}
}

func (o Options) validate() error {
	if o.Tables <= 0 {
		return fmt.Errorf("lsh: Tables must be positive, got %d", o.Tables)
	}
	if o.Hashes <= 0 {
		return fmt.Errorf("lsh: Hashes must be positive, got %d", o.Hashes)
	}
	if o.Width < 0 || math.IsNaN(o.Width) || math.IsInf(o.Width, 1) {
		return fmt.Errorf("lsh: Width must be non-negative and finite, got %v", o.Width)
	}
	return nil
}

// table is one hash table: M projection vectors with offsets, and the
// bucket map. Bucket ID slices may be shared across clones of an Index and
// must never be mutated in place; inserts replace them (see Insert).
type table struct {
	projs   [][]float64
	offsets []float64
	buckets map[string][]int
}

// Index is an approximate similarity index. It implements index.Index with
// candidate-set semantics (query results cover only hash collisions) and
// index.Cloner for online updates under copy-on-write snapshots.
type Index struct {
	points  [][]float64
	metric  vecmath.Metric
	dim     int
	width   float64
	hashes  int // M, projections per table
	tables  []table
	deleted map[int]bool // tombstones for Dynamic support
	alive   int
}

var _ index.Cloner = (*Index)(nil)
var _ index.Liveness = (*Index)(nil)

// hashCalls counts bucket-key computations (one per table per hashed
// point or query). The persistence tests pin that restoring an index from
// its native structure blob performs zero of them. Callers batch their
// increments (one Add per query or insert, not one per table) so the
// shared cache line is touched once per operation on the hot path.
var hashCalls atomic.Int64

// HashCalls returns the process-lifetime count of bucket-key computations —
// test instrumentation for the "restore never re-hashes" guarantee.
func HashCalls() int64 { return hashCalls.Load() }

// New builds the hash tables over points. Only the Euclidean metric is
// supported (the projections quantize L2 geometry).
func New(points [][]float64, metric vecmath.Metric, opts Options) (*Index, error) {
	if metric == nil {
		return nil, errors.New("lsh: nil metric")
	}
	if _, ok := metric.(vecmath.Euclidean); !ok {
		return nil, errors.New("lsh: only the Euclidean metric is supported")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := vecmath.ValidateAllFor(metric, points); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ix := &Index{
		points:  points,
		metric:  metric,
		dim:     len(points[0]),
		hashes:  opts.Hashes,
		deleted: make(map[int]bool),
		alive:   len(points),
	}

	ix.width = opts.Width
	if ix.width == 0 {
		ix.width = autoWidth(points, metric, rng)
	}

	ix.tables = make([]table, opts.Tables)
	var keyBuf []byte
	for ti := range ix.tables {
		t := table{
			projs:   make([][]float64, opts.Hashes),
			offsets: make([]float64, opts.Hashes),
			buckets: make(map[string][]int),
		}
		for h := 0; h < opts.Hashes; h++ {
			a := make([]float64, ix.dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			t.projs[h] = a
			t.offsets[h] = rng.Float64() * ix.width
		}
		for id, p := range points {
			keyBuf = t.appendKey(keyBuf[:0], p, ix.width)
			t.buckets[string(keyBuf)] = append(t.buckets[string(keyBuf)], id)
		}
		hashCalls.Add(int64(len(points)))
		ix.tables[ti] = t
	}
	return ix, nil
}

// DegenerateWidth is the documented bucket-width floor used when automatic
// width selection finds no positive nearest-neighbor distance in its sample
// (duplicate-only or constant datasets). Any positive width behaves
// identically there — exact duplicates share every bucket regardless — so
// the floor keeps such datasets servable instead of failing the build.
const DegenerateWidth = 1.0

// autoWidth picks w as a multiple of the median nearest-neighbor distance
// of a sample, so that true near neighbors usually share a bucket cell.
// Degenerate samples (all distances zero, or overflow to +Inf) fall back to
// the documented DegenerateWidth floor rather than an arbitrary silent
// value.
func autoWidth(points [][]float64, metric vecmath.Metric, rng *rand.Rand) float64 {
	const sample = 64
	n := len(points)
	dists := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		a := points[rng.Intn(n)]
		best := math.Inf(1)
		// Nearest among a random subsample: cheap and close enough for
		// a bucket-width heuristic.
		for j := 0; j < 128; j++ {
			b := points[rng.Intn(n)]
			if d := metric.Distance(a, b); d > 0 && d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			dists = append(dists, best)
		}
	}
	if len(dists) == 0 {
		return DegenerateWidth // constant/duplicate-only data
	}
	sort.Float64s(dists)
	w := 4 * dists[len(dists)/2]
	if !(w > 0) || math.IsInf(w, 1) {
		return DegenerateWidth
	}
	return w
}

// appendKey appends the bucket key of p — the concatenated quantized
// projections, each encoded as all 8 little-endian bytes of its int64 value
// so that hash values 2^32 apart never alias into one bucket — and returns
// the extended buffer.
func (t *table) appendKey(buf []byte, p []float64, width float64) []byte {
	for h, a := range t.projs {
		v := int64(math.Floor((vecmath.Dot(a, p) + t.offsets[h]) / width))
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return buf
}

// Builder constructs LSH indexes with default options; it implements
// index.Builder.
type Builder struct{}

// Build implements index.Builder.
func (Builder) Build(points [][]float64, metric vecmath.Metric) (index.Index, error) {
	return New(points, metric, DefaultOptions())
}

// Name implements index.Builder.
func (Builder) Name() string { return "lsh" }

// Len implements index.Index. Deleted points are excluded.
func (ix *Index) Len() int { return ix.alive }

// Dim implements index.Index.
func (ix *Index) Dim() int { return ix.dim }

// Point implements index.Index.
func (ix *Index) Point(id int) []float64 { return ix.points[id] }

// Metric implements index.Index.
func (ix *Index) Metric() vecmath.Metric { return ix.metric }

// Width returns the quantization width in effect.
func (ix *Index) Width() float64 { return ix.width }

// Tables returns L, the number of hash tables.
func (ix *Index) Tables() int { return len(ix.tables) }

// Insert implements index.Dynamic: the point is hashed once per table and
// appended to its buckets. Bucket slices may be shared with clones, so the
// updated bucket is a fresh slice rather than an in-place append.
func (ix *Index) Insert(p []float64) (int, error) {
	if err := vecmath.ValidateFor(ix.metric, p); err != nil {
		return 0, err
	}
	if len(p) != ix.dim {
		return 0, vecmath.CheckDims(p, ix.points[0])
	}
	id := len(ix.points)
	ix.points = append(ix.points, p)
	hashCalls.Add(int64(len(ix.tables)))
	var keyBuf []byte
	for ti := range ix.tables {
		t := &ix.tables[ti]
		keyBuf = t.appendKey(keyBuf[:0], p, ix.width)
		old := t.buckets[string(keyBuf)]
		next := make([]int, len(old)+1)
		copy(next, old)
		next[len(old)] = id
		t.buckets[string(keyBuf)] = next
	}
	ix.alive++
	return id, nil
}

// Delete implements index.Dynamic using a tombstone: the ID stays in its
// buckets and the candidate machinery filters it, so deletion never
// rewrites table state shared with clones.
func (ix *Index) Delete(id int) bool {
	if id < 0 || id >= len(ix.points) || ix.deleted[id] {
		return false
	}
	ix.deleted[id] = true
	ix.alive--
	return true
}

// Clone implements index.Cloner. Point coordinate slices, projection
// vectors, and bucket ID slices are shared (all immutable by convention:
// inserts replace bucket slices, never extend them in place); the points
// slice, the bucket map headers, and the tombstone set are copied, so
// Insert and Delete on the clone are invisible to the original.
func (ix *Index) Clone() index.Dynamic {
	points := make([][]float64, len(ix.points), len(ix.points)+1)
	copy(points, ix.points)
	deleted := make(map[int]bool, len(ix.deleted))
	for id := range ix.deleted {
		deleted[id] = true
	}
	tables := make([]table, len(ix.tables))
	for i, t := range ix.tables {
		buckets := make(map[string][]int, len(t.buckets))
		for key, ids := range t.buckets {
			buckets[key] = ids
		}
		tables[i] = table{projs: t.projs, offsets: t.offsets, buckets: buckets}
	}
	return &Index{
		points:  points,
		metric:  ix.metric,
		dim:     ix.dim,
		width:   ix.width,
		hashes:  ix.hashes,
		tables:  tables,
		deleted: deleted,
		alive:   ix.alive,
	}
}

// IDSpan implements index.Liveness.
func (ix *Index) IDSpan() int { return len(ix.points) }

// Live implements index.Liveness.
func (ix *Index) Live(id int) bool { return id >= 0 && id < len(ix.points) && !ix.deleted[id] }

// dedup is the pooled per-query candidate-collection state: the seen set,
// the collected ID list, and the key scratch buffer. Candidate gathering is
// the hot path of every query; recycling the set keeps per-query garbage
// near zero under a steady serving stream (mirroring the pooled filter sets
// in internal/core).
type dedup struct {
	seen map[int]bool
	out  []int
	key  []byte
}

var dedupPool = sync.Pool{New: func() any { return &dedup{seen: make(map[int]bool)} }}

// release clears and returns the state to the pool. clear keeps the map's
// buckets allocated, which is exactly the win: a warmed set absorbs the
// next query's candidates without growing.
func (d *dedup) release() {
	clear(d.seen)
	d.out = d.out[:0]
	dedupPool.Put(d)
}

// candidates collects into d the IDs colliding with q in any table,
// deduplicated, excluding skipID and tombstoned points. The returned slice
// is owned by d and valid until d.release.
func (ix *Index) candidates(d *dedup, q []float64, skipID int) []int {
	hashCalls.Add(int64(len(ix.tables)))
	for ti := range ix.tables {
		t := &ix.tables[ti]
		d.key = t.appendKey(d.key[:0], q, ix.width)
		for _, id := range t.buckets[string(d.key)] {
			if id == skipID || ix.deleted[id] || d.seen[id] {
				continue
			}
			d.seen[id] = true
			d.out = append(d.out, id)
		}
	}
	return d.out
}

// NewCursor implements index.Index over the candidate set: the stream is in
// exact ascending distance order but covers only hash collisions, so it may
// end before the dataset is exhausted — the approximate-ranking regime the
// paper's claim (iii) is about.
func (ix *Index) NewCursor(q []float64, skipID int) index.Cursor {
	d := dedupPool.Get().(*dedup)
	cands := ix.candidates(d, q, skipID)
	ready := pqueue.NewMin[int](len(cands))
	for _, id := range cands {
		ready.Push(ix.metric.Distance(q, ix.points[id]), id)
	}
	d.release()
	return &cursor{ready: ready}
}

type cursor struct{ ready *pqueue.Min[int] }

func (c *cursor) Next() (index.Neighbor, bool) {
	it, ok := c.ready.Pop()
	if !ok {
		return index.Neighbor{}, false
	}
	return index.Neighbor{ID: it.Value, Dist: it.Priority}, true
}

// KNN implements index.Index over the candidate set (approximate).
func (ix *Index) KNN(q []float64, k int, skipID int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	d := dedupPool.Get().(*dedup)
	defer d.release()
	top := pqueue.NewTopK[int](k)
	for _, id := range ix.candidates(d, q, skipID) {
		top.Offer(ix.metric.Distance(q, ix.points[id]), id)
	}
	items := top.Sorted()
	out := make([]index.Neighbor, len(items))
	for i, it := range items {
		out[i] = index.Neighbor{ID: it.Value, Dist: it.Priority}
	}
	return out
}

// Range implements index.Index over the candidate set (approximate).
func (ix *Index) Range(q []float64, r float64, skipID int) []index.Neighbor {
	d := dedupPool.Get().(*dedup)
	defer d.release()
	var out []index.Neighbor
	for _, id := range ix.candidates(d, q, skipID) {
		if dist := ix.metric.Distance(q, ix.points[id]); dist <= r {
			out = append(out, index.Neighbor{ID: id, Dist: dist})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CountRange implements index.Index over the candidate set (approximate).
func (ix *Index) CountRange(q []float64, r float64, skipID int) int {
	d := dedupPool.Get().(*dedup)
	defer d.release()
	count := 0
	for _, id := range ix.candidates(d, q, skipID) {
		if ix.metric.Distance(q, ix.points[id]) <= r {
			count++
		}
	}
	return count
}
