package lsh

import (
	"testing"

	"repro/internal/indextest"
	"repro/internal/vecmath"
)

// FuzzRestore feeds arbitrary bytes to the structure decoder: it must never
// panic and never accept a structure whose candidate machinery then
// misbehaves. Anything it does accept is queried to force the tables to be
// actually usable. Run with `go test -fuzz FuzzRestore` for continuous
// fuzzing; plain `go test` exercises the seed corpus.
func FuzzRestore(f *testing.F) {
	pts := indextest.ClusteredPoints(40, 3, 3, 13)
	ix, err := New(pts, vecmath.Euclidean{}, Options{Tables: 3, Hashes: 2, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	valid := ix.EncodeStructure()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{codecVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		re, err := Restore(pts, vecmath.Euclidean{}, nil, data)
		if err != nil {
			return
		}
		// Accepted structures must answer queries without panicking and
		// respect the candidate-set contract (no out-of-range IDs — the
		// decoder validated them, Point would panic otherwise).
		for qid := 0; qid < len(pts); qid += 11 {
			for _, nb := range re.KNN(pts[qid], 5, qid) {
				if nb.ID < 0 || nb.ID >= len(pts) || nb.ID == qid {
					t.Fatalf("restored index returned invalid id %d", nb.ID)
				}
			}
		}
	})
}
