package lsh

import (
	"bytes"
	"testing"

	"repro/internal/indextest"
	"repro/internal/vecmath"
)

// buildForCodec builds an index with a non-default shape so the codec
// cannot pass by accident with DefaultOptions.
func buildForCodec(t *testing.T) (*Index, [][]float64) {
	t.Helper()
	pts := indextest.ClusteredPoints(250, 5, 4, 41)
	ix, err := New(pts, vecmath.Euclidean{}, Options{Tables: 7, Hashes: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return ix, pts
}

// sameCandidates compares full cursor streams (IDs in distance order),
// the strongest equality the index can exhibit: identical buckets produce
// identical candidate sets and therefore identical streams.
func sameCandidates(t *testing.T, a, b *Index, q []float64, skipID int) {
	t.Helper()
	ca, cb := a.NewCursor(q, skipID), b.NewCursor(q, skipID)
	for {
		na, oka := ca.Next()
		nb, okb := cb.Next()
		if oka != okb {
			t.Fatal("candidate streams end at different lengths")
		}
		if !oka {
			return
		}
		if na != nb {
			t.Fatalf("candidate streams diverge: %+v vs %+v", na, nb)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ix, pts := buildForCodec(t)
	blob := ix.EncodeStructure()
	if len(blob) == 0 {
		t.Fatal("empty structure blob")
	}
	if again := ix.EncodeStructure(); !bytes.Equal(blob, again) {
		t.Error("EncodeStructure is not deterministic")
	}

	before := HashCalls()
	re, err := Restore(pts, vecmath.Euclidean{}, nil, blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if calls := HashCalls() - before; calls != 0 {
		t.Errorf("Restore performed %d hash computations, want 0", calls)
	}
	if re.Width() != ix.Width() || re.Tables() != ix.Tables() || re.Len() != ix.Len() || re.Dim() != ix.Dim() {
		t.Errorf("restored shape (w=%g, L=%d, n=%d, d=%d) differs from original (w=%g, L=%d, n=%d, d=%d)",
			re.Width(), re.Tables(), re.Len(), re.Dim(), ix.Width(), ix.Tables(), ix.Len(), ix.Dim())
	}
	if reBlob := re.EncodeStructure(); !bytes.Equal(blob, reBlob) {
		t.Error("re-encoded structure differs from the original blob")
	}
	for qid := 0; qid < len(pts); qid += 31 {
		sameCandidates(t, ix, re, pts[qid], qid)
	}
	// Off-member query point too.
	q := indextest.RandPoints(1, 5, 77)[0]
	sameCandidates(t, ix, re, q, -1)
}

func TestCodecRoundTripWithTombstones(t *testing.T) {
	ix, pts := buildForCodec(t)
	deleted := []int{3, 77, 249}
	for _, id := range deleted {
		if !ix.Delete(id) {
			t.Fatalf("Delete(%d) failed", id)
		}
	}
	re, err := Restore(pts, vecmath.Euclidean{}, deleted, ix.EncodeStructure())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if re.Len() != ix.Len() || re.IDSpan() != ix.IDSpan() {
		t.Errorf("restored Len=%d IDSpan=%d, want %d/%d", re.Len(), re.IDSpan(), ix.Len(), ix.IDSpan())
	}
	for _, id := range deleted {
		if re.Live(id) {
			t.Errorf("tombstoned id %d live after restore", id)
		}
	}
	for qid := 0; qid < len(pts); qid += 43 {
		if ix.Live(qid) {
			sameCandidates(t, ix, re, pts[qid], qid)
		}
	}

	if _, err := Restore(pts, vecmath.Euclidean{}, []int{-1}, ix.EncodeStructure()); err == nil {
		t.Error("Restore accepted a negative tombstone")
	}
	if _, err := Restore(pts, vecmath.Euclidean{}, []int{3, 3}, ix.EncodeStructure()); err == nil {
		t.Error("Restore accepted a duplicate tombstone")
	}
}

// TestCodecRejectsMalformed walks truncations at every offset and single
// byte flips through the decoder: it must error or succeed, never panic,
// and truncations must always error.
func TestCodecRejectsMalformed(t *testing.T) {
	ix, pts := buildForCodec(t)
	blob := ix.EncodeStructure()

	for cut := 0; cut < len(blob); cut++ {
		if _, err := Restore(pts, vecmath.Euclidean{}, nil, blob[:cut]); err == nil {
			t.Fatalf("Restore accepted a truncation at %d of %d bytes", cut, len(blob))
		}
	}
	for off := 0; off < len(blob); off += 7 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x41
		// Any outcome but a panic is acceptable: some flips only perturb a
		// projection coordinate, which remains a valid structure.
		_, _ = Restore(pts, vecmath.Euclidean{}, nil, mut)
	}

	if _, err := Restore(pts[:100], vecmath.Euclidean{}, nil, blob); err == nil {
		t.Error("Restore accepted a structure for a different point count")
	}
	if _, err := Restore(indextest.RandPoints(250, 3, 1), vecmath.Euclidean{}, nil, blob); err == nil {
		t.Error("Restore accepted a structure for a different dimension")
	}
	if _, err := Restore(pts, vecmath.Manhattan{}, nil, blob); err == nil {
		t.Error("Restore accepted a non-Euclidean metric")
	}
	// The never-panic contract extends to degenerate point slices: the row
	// validation rejects them before the decoder can touch points[0].
	if _, err := Restore([][]float64{}, vecmath.Euclidean{}, nil, blob); err == nil {
		t.Error("Restore accepted an empty point slice")
	}
	if _, err := Restore(nil, vecmath.Euclidean{}, nil, blob); err == nil {
		t.Error("Restore accepted a nil point slice")
	}
}

// TestRestoredIndexStaysDynamic pins that a restored index keeps the full
// dynamic contract: inserts hash into the restored tables and clones stay
// isolated.
func TestRestoredIndexStaysDynamic(t *testing.T) {
	ix, pts := buildForCodec(t)
	re, err := Restore(pts, vecmath.Euclidean{}, nil, ix.EncodeStructure())
	if err != nil {
		t.Fatal(err)
	}
	dup := append([]float64(nil), pts[7]...)
	id, err := re.Insert(dup)
	if err != nil {
		t.Fatalf("Insert on restored index: %v", err)
	}
	if got := re.CountRange(pts[7], 0, 7); got != 1 {
		t.Errorf("restored index sees %d duplicates after insert, want 1", got)
	}
	if !re.Delete(id) {
		t.Error("Delete on restored index failed")
	}
	cl := re.Clone().(*Index)
	if _, err := cl.Insert(dup); err != nil {
		t.Fatalf("Insert on clone of restored index: %v", err)
	}
	if re.IDSpan() == cl.IDSpan() {
		t.Error("clone insert leaked into the restored original")
	}
}
