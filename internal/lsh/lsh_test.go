package lsh

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/indextest"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func TestNewValidation(t *testing.T) {
	pts := indextest.RandPoints(10, 3, 1)
	if _, err := New(nil, vecmath.Euclidean{}, DefaultOptions()); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New(pts, nil, DefaultOptions()); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New(pts, vecmath.Manhattan{}, DefaultOptions()); err == nil {
		t.Error("accepted non-Euclidean metric")
	}
	bad := DefaultOptions()
	bad.Tables = 0
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted zero tables")
	}
	bad = DefaultOptions()
	bad.Hashes = 0
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted zero hashes")
	}
	bad = DefaultOptions()
	bad.Width = math.NaN()
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted NaN width")
	}
}

func TestCursorOrderingAndDedup(t *testing.T) {
	pts := indextest.ClusteredPoints(500, 6, 5, 3)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := ix.NewCursor(pts[0], 0)
	prev := -1.0
	seen := map[int]bool{}
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.ID == 0 {
			t.Fatal("cursor returned skipped id")
		}
		if seen[nb.ID] {
			t.Fatalf("cursor repeated id %d", nb.ID)
		}
		if nb.Dist < prev {
			t.Fatalf("cursor out of order: %g after %g", nb.Dist, prev)
		}
		if want := (vecmath.Euclidean{}).Distance(pts[0], pts[nb.ID]); math.Abs(want-nb.Dist) > 1e-9 {
			t.Fatalf("distance mismatch for id %d", nb.ID)
		}
		seen[nb.ID] = true
		prev = nb.Dist
	}
	if len(seen) == 0 {
		t.Fatal("cursor yielded nothing; the query's own bucket must at least collide with near duplicates")
	}
}

// TestKNNCandidateRecall measures the approximation quality of the hash
// tables themselves: on clustered data the true nearest neighbors land in
// the query's buckets most of the time.
func TestKNNCandidateRecall(t *testing.T) {
	pts := indextest.ClusteredPoints(2000, 8, 10, 7)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	var hit, total int
	for qid := 0; qid < 50; qid++ {
		want := ref.KNN(pts[qid], k, qid)
		got := ix.KNN(pts[qid], k, qid)
		gotSet := map[int]bool{}
		for _, nb := range got {
			gotSet[nb.ID] = true
		}
		for _, nb := range want {
			total++
			if gotSet[nb.ID] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	if recall < 0.8 {
		t.Errorf("candidate kNN recall %.3f, want >= 0.8 on clustered data", recall)
	}
}

// TestRDTOverLSH is the paper's claim (iii) end to end: RDT+ running over
// approximate neighbor rankings still reaches useful recall with perfect-
// precision-free semantics left to the approximation.
func TestRDTOverLSH(t *testing.T) {
	pts := indextest.ClusteredPoints(1500, 6, 8, 9)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := core.NewQuerier(ix, core.Params{K: 10, T: 8, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	var recallSum float64
	const queries = 30
	for qid := 0; qid < queries; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, 10)
		if err != nil {
			t.Fatal(err)
		}
		recallSum += bruteforce.Recall(res.IDs, want)
	}
	if mean := recallSum / queries; mean < 0.7 {
		t.Errorf("RDT+ over LSH mean recall %.3f, want >= 0.7", mean)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), 0, 0}
	}
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Exact duplicates always share every bucket, so range at radius 0
	// finds all 49 other copies.
	if got := ix.CountRange(pts[0], 0, 0); got != 49 {
		t.Errorf("CountRange on duplicates = %d, want 49", got)
	}
	if got := ix.KNN(pts[0], 3, 0); len(got) != 3 || got[0].Dist != 0 {
		t.Errorf("KNN on duplicates = %v", got)
	}
}
