package lsh

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/indextest"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

func TestNewValidation(t *testing.T) {
	pts := indextest.RandPoints(10, 3, 1)
	if _, err := New(nil, vecmath.Euclidean{}, DefaultOptions()); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := New(pts, nil, DefaultOptions()); err == nil {
		t.Error("accepted nil metric")
	}
	if _, err := New(pts, vecmath.Manhattan{}, DefaultOptions()); err == nil {
		t.Error("accepted non-Euclidean metric")
	}
	bad := DefaultOptions()
	bad.Tables = 0
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted zero tables")
	}
	bad = DefaultOptions()
	bad.Hashes = 0
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted zero hashes")
	}
	bad = DefaultOptions()
	bad.Width = math.NaN()
	if _, err := New(pts, vecmath.Euclidean{}, bad); err == nil {
		t.Error("accepted NaN width")
	}
}

func TestCursorOrderingAndDedup(t *testing.T) {
	pts := indextest.ClusteredPoints(500, 6, 5, 3)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := ix.NewCursor(pts[0], 0)
	prev := -1.0
	seen := map[int]bool{}
	for {
		nb, ok := cur.Next()
		if !ok {
			break
		}
		if nb.ID == 0 {
			t.Fatal("cursor returned skipped id")
		}
		if seen[nb.ID] {
			t.Fatalf("cursor repeated id %d", nb.ID)
		}
		if nb.Dist < prev {
			t.Fatalf("cursor out of order: %g after %g", nb.Dist, prev)
		}
		if want := (vecmath.Euclidean{}).Distance(pts[0], pts[nb.ID]); math.Abs(want-nb.Dist) > 1e-9 {
			t.Fatalf("distance mismatch for id %d", nb.ID)
		}
		seen[nb.ID] = true
		prev = nb.Dist
	}
	if len(seen) == 0 {
		t.Fatal("cursor yielded nothing; the query's own bucket must at least collide with near duplicates")
	}
}

// TestKNNCandidateRecall measures the approximation quality of the hash
// tables themselves: on clustered data the true nearest neighbors land in
// the query's buckets most of the time.
func TestKNNCandidateRecall(t *testing.T) {
	pts := indextest.ClusteredPoints(2000, 8, 10, 7)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := scan.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	var hit, total int
	for qid := 0; qid < 50; qid++ {
		want := ref.KNN(pts[qid], k, qid)
		got := ix.KNN(pts[qid], k, qid)
		gotSet := map[int]bool{}
		for _, nb := range got {
			gotSet[nb.ID] = true
		}
		for _, nb := range want {
			total++
			if gotSet[nb.ID] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	if recall < 0.8 {
		t.Errorf("candidate kNN recall %.3f, want >= 0.8 on clustered data", recall)
	}
}

// TestRDTOverLSH is the paper's claim (iii) end to end: RDT+ running over
// approximate neighbor rankings still reaches useful recall with perfect-
// precision-free semantics left to the approximation.
func TestRDTOverLSH(t *testing.T) {
	pts := indextest.ClusteredPoints(1500, 6, 8, 9)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := bruteforce.New(pts, vecmath.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	qr, err := core.NewQuerier(ix, core.Params{K: 10, T: 8, Plus: true})
	if err != nil {
		t.Fatal(err)
	}
	var recallSum float64
	const queries = 30
	for qid := 0; qid < queries; qid++ {
		res, err := qr.ByID(qid)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.RkNNByID(qid, 10)
		if err != nil {
			t.Fatal(err)
		}
		recallSum += bruteforce.Recall(res.IDs, want)
	}
	if mean := recallSum / queries; mean < 0.7 {
		t.Errorf("RDT+ over LSH mean recall %.3f, want >= 0.7", mean)
	}
}

// TestKeyEncodesAllEightBytes is the regression for the bucket-key
// truncation bug: the quantized projection value was encoded as only its
// low 4 bytes, so hash values exactly 2^32 apart aliased into one bucket.
// With a unit projection and unit width the quantized value is the
// coordinate itself, so coordinates 1 and 1+2^32 must produce different
// keys (they differ only above bit 31).
func TestKeyEncodesAllEightBytes(t *testing.T) {
	tb := table{projs: [][]float64{{1}}, offsets: []float64{0}}
	near := tb.appendKey(nil, []float64{1}, 1)
	far := tb.appendKey(nil, []float64{1 + math.Exp2(32)}, 1)
	if string(near) == string(far) {
		t.Fatal("coordinates 2^32 apart alias into one bucket key")
	}
	if len(near) != 8 {
		t.Fatalf("key is %d bytes per hash, want 8", len(near))
	}
	// End to end: far-apart coordinates must not collide into shared
	// buckets, so a tight range query around one cluster never surfaces
	// the other.
	pts := [][]float64{}
	for i := 0; i < 8; i++ {
		pts = append(pts, []float64{float64(i) * 0.25})
	}
	for i := 0; i < 8; i++ {
		pts = append(pts, []float64{math.Exp2(32) + float64(i)*0.25})
	}
	ix, err := New(pts, vecmath.Euclidean{}, Options{Tables: 4, Hashes: 1, Width: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range ix.Range(pts[0], 10, 0) {
		if nb.ID >= 8 {
			t.Fatalf("range around the origin cluster surfaced far point %d (dist %g)", nb.ID, nb.Dist)
		}
	}
}

// TestDegenerateAutoWidth pins the documented floor: a constant dataset has
// no positive nearest-neighbor distance to tune from, so the automatic
// width selection settles on DegenerateWidth and the index stays fully
// functional (exact duplicates share every bucket at any width).
func TestDegenerateAutoWidth(t *testing.T) {
	pts := make([][]float64, 60)
	for i := range pts {
		pts[i] = []float64{3, 1, 4}
	}
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatalf("New on a constant dataset: %v", err)
	}
	if ix.Width() != DegenerateWidth {
		t.Errorf("Width() = %g on constant data, want the documented floor %g", ix.Width(), DegenerateWidth)
	}
	if got := ix.CountRange(pts[0], 0, 0); got != 59 {
		t.Errorf("CountRange on constant data = %d, want 59", got)
	}
	if got := ix.KNN(pts[0], 5, 0); len(got) != 5 || got[0].Dist != 0 {
		t.Errorf("KNN on constant data = %v", got)
	}
}

// TestDynamicInsertDelete exercises the index.Dynamic surface: inserted
// points are hashed into every table and immediately retrievable, deletes
// tombstone without renumbering, and liveness reports the span correctly.
func TestDynamicInsertDelete(t *testing.T) {
	pts := indextest.ClusteredPoints(300, 5, 4, 17)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate of an existing point lands in exactly its buckets, so
	// the collision is guaranteed regardless of hashing.
	dup := append([]float64(nil), pts[10]...)
	id, err := ix.Insert(dup)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 300 {
		t.Fatalf("Insert assigned id %d, want 300", id)
	}
	if ix.Len() != 301 || ix.IDSpan() != 301 || !ix.Live(id) {
		t.Fatalf("after insert: Len=%d IDSpan=%d Live=%v", ix.Len(), ix.IDSpan(), ix.Live(id))
	}
	found := false
	for _, nb := range ix.KNN(pts[10], 3, 10) {
		if nb.ID == id && nb.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Error("inserted duplicate not retrieved by KNN at its own location")
	}

	if !ix.Delete(id) {
		t.Fatal("Delete of a live id reported false")
	}
	if ix.Delete(id) {
		t.Error("double Delete reported true")
	}
	if ix.Len() != 300 || ix.IDSpan() != 301 || ix.Live(id) {
		t.Fatalf("after delete: Len=%d IDSpan=%d Live=%v", ix.Len(), ix.IDSpan(), ix.Live(id))
	}
	for _, nb := range ix.KNN(pts[10], 5, 10) {
		if nb.ID == id {
			t.Error("deleted id still surfaced by KNN")
		}
	}
	if cur := ix.NewCursor(pts[10], 10); cur != nil {
		for {
			nb, ok := cur.Next()
			if !ok {
				break
			}
			if nb.ID == id {
				t.Error("deleted id still surfaced by cursor")
			}
		}
	}

	// Validation: wrong dimension and non-finite coordinates are rejected
	// before any table is touched.
	if _, err := ix.Insert([]float64{1}); err == nil {
		t.Error("Insert accepted a wrong-dimension point")
	}
	if _, err := ix.Insert([]float64{1, 2, math.NaN(), 4, 5}); err == nil {
		t.Error("Insert accepted a NaN coordinate")
	}
}

// TestCloneIsolation pins the copy-on-write contract: mutations on a clone
// are invisible to the original and vice versa, including inserts into
// bucket slices the two share.
func TestCloneIsolation(t *testing.T) {
	pts := indextest.ClusteredPoints(200, 4, 3, 23)
	orig, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone().(*Index)

	// Insert a duplicate of point 0 into the clone: it lands in buckets
	// whose ID slices are shared with the original, so an in-place append
	// would corrupt the original.
	dup := append([]float64(nil), pts[0]...)
	id, err := clone.Insert(dup)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != 200 || orig.IDSpan() != 200 {
		t.Fatalf("original grew after clone insert: Len=%d IDSpan=%d", orig.Len(), orig.IDSpan())
	}
	if got := orig.CountRange(pts[0], 0, 0); got != 0 {
		t.Errorf("original sees %d duplicates of point 0 after clone insert, want 0", got)
	}
	if got := clone.CountRange(pts[0], 0, 0); got != 1 {
		t.Errorf("clone sees %d duplicates of point 0, want 1", got)
	}

	// Delete on the original is invisible to the clone.
	if !orig.Delete(5) {
		t.Fatal("Delete(5) on original failed")
	}
	if !clone.Live(5) {
		t.Error("delete on the original leaked into the clone")
	}
	if clone.Delete(id); clone.Live(id) {
		t.Error("clone delete did not apply")
	}
}

// TestConcurrentQueriesSharePool races parallel queries over the pooled
// candidate sets; the -race build verifies the pool hands each query an
// exclusive set.
func TestConcurrentQueriesSharePool(t *testing.T) {
	pts := indextest.ClusteredPoints(400, 6, 5, 29)
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qid := (w*53 + i) % len(pts)
				nn := ix.KNN(pts[qid], 10, qid)
				for j := 1; j < len(nn); j++ {
					if nn[j].Dist < nn[j-1].Dist {
						t.Error("KNN out of order under concurrency")
						return
					}
				}
				ix.CountRange(pts[qid], 0.5, qid)
			}
		}(w)
	}
	wg.Wait()
}

func TestDuplicateHeavyData(t *testing.T) {
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), 0, 0}
	}
	ix, err := New(pts, vecmath.Euclidean{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Exact duplicates always share every bucket, so range at radius 0
	// finds all 49 other copies.
	if got := ix.CountRange(pts[0], 0, 0); got != 49 {
		t.Errorf("CountRange on duplicates = %d, want 49", got)
	}
	if got := ix.KNN(pts[0], 3, 0); len(got) != 3 || got[0].Dist != 0 {
		t.Errorf("KNN on duplicates = %v", got)
	}
}
