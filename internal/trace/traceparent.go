package trace

import "encoding/hex"

// ParseTraceparent parses a W3C trace-context traceparent header
// (version 00): "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
// It returns the trace ID and the sampled flag bit. Headers with an
// unknown version, malformed fields, or an all-zero trace ID are
// rejected, per the spec.
func ParseTraceparent(h string) (id [16]byte, sampled bool, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, false, false
	}
	if h[0] != '0' || h[1] != '0' {
		return id, false, false
	}
	if _, err := hex.Decode(id[:], []byte(h[3:35])); err != nil {
		return id, false, false
	}
	var parent [8]byte
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return id, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return id, false, false
	}
	if id == [16]byte{} || parent == [8]byte{} {
		return [16]byte{}, false, false
	}
	return id, flags[0]&0x01 != 0, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(id [16]byte, spanID [8]byte, sampled bool) string {
	buf := make([]byte, 55)
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], id[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], spanID[:])
	buf[52] = '-'
	buf[53] = '0'
	if sampled {
		buf[54] = '1'
	} else {
		buf[54] = '0'
	}
	return string(buf)
}
