// Package trace is a zero-dependency per-query tracing subsystem: span
// trees with start/end times, parent links, and typed attributes, carried
// across layers on context.Context. It exists to answer "why was THIS
// query slow" where the telemetry package answers "how is the fleet
// doing": one trace per request, one span per stage the paper's algorithm
// pays for (expanding scan, lazy filter, verification) and per shard of a
// scatter, exported as an EXPLAIN-style JSON tree.
//
// The untraced path is near-free by construction. A context that carries
// no span makes FromContext return nil, and every Span method is a
// nil-receiver no-op, so instrumented code is a single nil check when no
// one is listening — pinned by BenchmarkTracingOff.
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// maxSpans bounds one trace's span count so a pathological request (a
// huge batch, a scatter across many shards) cannot hold unbounded memory
// in the ring. Children past the cap are dropped, counted, and reported
// in the export; dropped spans are nil and therefore safe no-ops.
const maxSpans = 512

// Trace is one span tree: a root span plus everything it fathered. All
// structural mutation happens under mu, so concurrent shard goroutines
// can open sibling spans safely.
type Trace struct {
	id      [16]byte
	spanID  [8]byte // root span id, for the outgoing traceparent header
	sampled bool    // head-sampling decision, made once at creation
	start   time.Time

	mu      sync.Mutex
	root    *Span
	nspans  int
	dropped int

	ringSeq uint64 // publication order; written by Ring.Put before the atomic store
}

// Span is one timed operation inside a trace. The zero value is never
// used: spans are created by New or Child, and a nil *Span is the valid
// "not tracing" value whose methods all no-op.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	duration time.Duration // zero until End; export clamps to elapsed
	attrs    []Attr
	children []*Span
}

// Attr is a typed key/value pair on a span. A small tagged union instead
// of interface{} keeps attribute setting allocation-light on hot stages.
type Attr struct {
	Key  string
	kind byte // 'i', 'f', 's', 'b'
	i    int64
	f    float64
	s    string
	b    bool
}

// Value returns the attribute's value boxed for JSON export.
func (a Attr) Value() any {
	switch a.kind {
	case 'i':
		return a.i
	case 'f':
		return a.f
	case 's':
		return a.s
	case 'b':
		return a.b
	}
	return nil
}

// New starts a trace whose root span has the given name, with a freshly
// generated trace ID. The sampled flag records the head-sampling decision
// so tail capture (slow traces) can still distinguish the two.
func New(name string, sampled bool) *Trace {
	var id [16]byte
	putUint64(id[:8], rand.Uint64())
	putUint64(id[8:], rand.Uint64())
	return newTrace(id, name, sampled)
}

// NewWithID starts a trace under an externally supplied trace ID — the
// W3C traceparent case, where an upstream caller owns the ID and our
// spans must stitch into its tree.
func NewWithID(id [16]byte, name string, sampled bool) *Trace {
	return newTrace(id, name, sampled)
}

func newTrace(id [16]byte, name string, sampled bool) *Trace {
	tr := &Trace{id: id, sampled: sampled, start: time.Now()}
	putUint64(tr.spanID[:], rand.Uint64())
	tr.root = &Span{tr: tr, name: name, start: tr.start}
	tr.nspans = 1
	return tr
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// ID returns the trace ID as 32 lowercase hex characters.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return hex.EncodeToString(tr.id[:])
}

// Root returns the root span.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Sampled reports the head-sampling decision made at creation.
func (tr *Trace) Sampled() bool { return tr != nil && tr.sampled }

// Start returns the trace's start time.
func (tr *Trace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Duration returns the root span's duration — elapsed-so-far if the root
// has not ended yet.
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.root.duration > 0 {
		return tr.root.duration
	}
	return time.Since(tr.root.start)
}

// Traceparent renders the outgoing W3C traceparent header for this trace,
// using the root span as the parent id.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	return FormatTraceparent(tr.id, tr.spanID, tr.sampled)
}

// Trace returns the owning trace, or nil on a nil span.
func (sp *Span) Trace() *Trace {
	if sp == nil {
		return nil
	}
	return sp.tr
}

// Child opens a sub-span starting now. On a nil receiver, or when the
// trace's span budget is exhausted, it returns nil — a valid span whose
// methods no-op — so callers never branch.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.ChildAt(name, time.Now())
}

// ChildAt opens a sub-span with an explicit start time. Stages whose cost
// is interleaved with another loop (the core scan/filter split) measure
// themselves with accumulated durations and retro-date the span here.
func (sp *Span) ChildAt(name string, start time.Time) *Span {
	if sp == nil {
		return nil
	}
	tr := sp.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.nspans >= maxSpans {
		tr.dropped++
		return nil
	}
	tr.nspans++
	c := &Span{tr: tr, name: name, start: start}
	sp.children = append(sp.children, c)
	return c
}

// End closes the span, fixing its duration to the elapsed wall time.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.EndWithDuration(time.Since(sp.start))
}

// EndWithDuration closes the span with an explicit duration, for stages
// measured by accumulation rather than two wall-clock reads.
func (sp *Span) EndWithDuration(d time.Duration) {
	if sp == nil {
		return
	}
	if d <= 0 {
		d = 1 // a closed span is distinguishable from an open one
	}
	sp.tr.mu.Lock()
	sp.duration = d
	sp.tr.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.set(Attr{Key: key, kind: 'i', i: v})
}

// SetFloat attaches a float attribute.
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.set(Attr{Key: key, kind: 'f', f: v})
}

// SetStr attaches a string attribute.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.set(Attr{Key: key, kind: 's', s: v})
}

// SetBool attaches a boolean attribute.
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.set(Attr{Key: key, kind: 'b', b: v})
}

func (sp *Span) set(a Attr) {
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, a)
	sp.tr.mu.Unlock()
}

type ctxKey struct{}

// With returns a context carrying sp. Layers below pick it up with
// FromContext and hang their own child spans off it.
func With(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil when the request is
// untraced. The nil return is the entire cost of the untraced path.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
