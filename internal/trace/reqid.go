package trace

import "context"

// Request-ID propagation: the HTTP layer assigns (or echoes) an
// X-Request-ID per request and stores it in the request context here, so
// downstream layers that fan out over the network — the coordinator's
// remote shard clients — can stamp the same ID on every hop. One ID then
// names one logical query across every process that worked on it, which is
// what makes cross-machine slow-log and trace correlation possible.

type ridKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}
